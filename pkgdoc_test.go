package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment walks the repository and fails if any
// package under internal/ or cmd/ lacks a godoc package comment. The
// package map in README.md and the generated docs rely on these being
// present; CI runs this test, so a new package cannot land undocumented.
func TestEveryPackageHasDocComment(t *testing.T) {
	fset := token.NewFileSet()
	// package import path -> has a doc comment on at least one file
	documented := map[string]bool{}
	seen := map[string]bool{}

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if dir != "." && !strings.HasPrefix(dir, "internal") && !strings.HasPrefix(dir, "cmd") &&
			!strings.HasPrefix(dir, "examples") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		seen[dir] = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(seen) < 20 {
		t.Fatalf("walked only %d packages; the walker is broken", len(seen))
	}
	var missing []string
	for dir := range seen {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("packages without a godoc package comment: %v", missing)
	}
}
