// Pareto frontier example (paper Section 4): exhaustively evaluate the
// 262,500-point exploration space with regression models for one
// benchmark, extract the delay-power pareto frontier, validate a few
// frontier designs in the detailed simulator, and report the bips^3/w
// sweet spot.
//
//	go run ./examples/paretofrontier [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/core/paretostudy"
	"repro/internal/report"
)

func main() {
	bench := "mcf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	opts := core.DefaultOptions()
	opts.TrainSamples = 250
	opts.TraceLen = 40000
	opts.Benchmarks = []string{bench}
	explorer, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s models...\n", bench)
	if err := explorer.Train(); err != nil {
		log.Fatal(err)
	}

	res, err := paretostudy.Run(explorer, bench, paretostudy.Options{
		DelayTargets:     20,
		SimulateFrontier: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(report.Figure2(explorer.StudySpace, res))
	fmt.Println(report.Figure3(res))

	best := res.Best
	fmt.Printf("bips^3/w optimum: %s\n", best.Config)
	fmt.Printf("  model: delay %.3fs power %.1fW | simulated: delay %.3fs power %.1fW (err %s / %s)\n",
		best.ModelDelay, best.ModelPower, best.SimDelay, best.SimPower,
		report.Pct(best.DelayErr), report.Pct(best.PowerErr))
}
