// Heterogeneity example (paper Section 6): find each benchmark's
// bips^3/w-optimal core with the regression models, cluster the optima
// with K-means into compromise cores, and measure how power-performance
// efficiency grows with the degree of heterogeneity.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/core/heterostudy"
	"repro/internal/report"
)

func main() {
	opts := core.DefaultOptions()
	opts.TrainSamples = 250
	opts.TraceLen = 30000
	// A four-benchmark subset keeps the example fast while spanning the
	// architecture space: compute-bound gzip, memory-bound mcf, and the
	// wide-issue-friendly mesa and jbb.
	opts.Benchmarks = []string{"gzip", "jbb", "mcf", "mesa"}
	explorer, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training models for", explorer.Benchmarks(), "...")
	if err := explorer.Train(); err != nil {
		log.Fatal(err)
	}

	res, err := heterostudy.Run(explorer, nil, heterostudy.Options{
		SimulateValidation: true,
		Seed:               opts.Seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-benchmark optimal cores:")
	for _, bench := range explorer.Benchmarks() {
		o := res.Optima[bench]
		fmt.Printf("  %-6s %s (delay %.3fs, power %.1fW)\n", bench, o.Config, o.Delay, o.Power)
	}

	fmt.Println()
	fmt.Println(report.Figure9(res, explorer.Benchmarks()))

	last := res.Levels[len(res.Levels)-1]
	fmt.Printf("theoretical heterogeneity upper bound (K=%d): %.2fx model, %.2fx simulated\n",
		last.K, last.AvgModelGain, last.AvgSimGain)
	for _, lvl := range res.Levels {
		if lvl.K == 2 {
			fmt.Printf("two cores already capture %.0f%% of the bound\n",
				100*lvl.AvgModelGain/last.AvgModelGain)
		}
	}
}
