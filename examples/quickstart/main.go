// Quickstart: train regression models on a small random sample of the
// microarchitectural design space, predict performance and power for the
// POWER4-like baseline, and check the prediction against the detailed
// simulator — the paper's methodology in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A reduced training budget keeps the example fast; the paper (and
	// cmd/dse) use 1,000 samples and full-length traces.
	opts := core.DefaultOptions()
	opts.TrainSamples = 200
	opts.ValidationSamples = 40
	opts.TraceLen = 30000
	opts.Benchmarks = []string{"gzip", "mcf"}

	explorer, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on 200 random designs (a few seconds)...")
	if err := explorer.Train(); err != nil {
		log.Fatal(err)
	}

	// Predict the baseline architecture and compare with simulation.
	baseline := arch.Baseline()
	fmt.Printf("\nbaseline: %s\n\n", baseline)
	for _, bench := range explorer.Benchmarks() {
		predBIPS, predWatts, err := explorer.Predict(baseline, bench)
		if err != nil {
			log.Fatal(err)
		}
		simBIPS, simWatts, err := explorer.Simulate(baseline, bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s model: %.3f bips %5.1f W | simulator: %.3f bips %5.1f W | err %4.1f%% / %4.1f%%\n",
			bench, predBIPS, predWatts, simBIPS, simWatts,
			100*stats.RelErr(simBIPS, predBIPS), 100*stats.RelErr(simWatts, predWatts))
	}

	// Validate across random designs, the paper's Figure 1 measurement.
	rep, err := explorer.Validate(0)
	if err != nil {
		log.Fatal(err)
	}
	perfMed, powMed := rep.OverallMedians()
	fmt.Printf("\nvalidation medians over %d random designs: performance %.1f%%, power %.1f%%\n",
		opts.ValidationSamples, 100*perfMed, 100*powMed)
	fmt.Println("(the paper reports 7.2% and 5.4% for its simulator)")
}
