// Pipeline depth example (paper Section 5): compare the constrained
// "original" depth analysis — every non-depth parameter pinned to the
// POWER4-like baseline — against the "enhanced" analysis in which the
// regression models evaluate all 37,500 designs at each depth. The
// constrained study's conclusions need not generalize: at every depth a
// large fraction of the unconstrained space beats the baseline.
//
//	go run ./examples/pipelinedepth [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/report"
)

func main() {
	bench := "gzip"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	opts := core.DefaultOptions()
	opts.TrainSamples = 250
	opts.TraceLen = 40000
	opts.Benchmarks = []string{bench}
	explorer, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s models...\n", bench)
	if err := explorer.Train(); err != nil {
		log.Fatal(err)
	}

	res, err := depthstudy.Run(explorer, bench, depthstudy.Options{SimulateValidation: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s: efficiency vs depth, relative to the original optimum (%d FO4)\n",
		bench, res.OriginalBestDepth)
	fmt.Println("depth  original  enhanced distribution (0x .......... 2x)  beats baseline")
	for _, row := range res.Rows {
		rel := row.OriginalModelEff / res.OriginalBestEff
		fmt.Printf("%2dFO4  %8.3f  %s  %s\n",
			row.DepthFO4, rel,
			report.RenderBoxplot(row.EffBox, 0, 2, 40),
			report.Pct(row.FracBeatsBaseline))
	}

	fmt.Printf("\nbound (best) architecture per depth:\n")
	for _, row := range res.Rows {
		fmt.Printf("%2dFO4  %s  model eff %.4f  sim eff %.4f\n",
			row.DepthFO4, row.BoundConfig, row.BoundModelEff, row.BoundSimEff)
	}

	// The Figure 5(b) observation: deeper pipelines favor larger data
	// caches among the most efficient designs.
	fmt.Printf("\nD-L1 sizes among top-5%% designs (shallow vs deep):\n")
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	var sizes []int
	for kb := range first.DL1Histogram {
		sizes = append(sizes, kb)
	}
	sizes = sortInts(sizes)
	for _, kb := range sizes {
		fmt.Printf("  %-6s deep(%dFO4)=%s shallow(%dFO4)=%s\n", report.KB(kb),
			first.DepthFO4, report.Pct(first.DL1Histogram[kb]),
			last.DepthFO4, report.Pct(last.DL1Histogram[kb]))
	}
}

func sortInts(v []int) []int {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v
}
