// Package repro's top-level benchmark harness regenerates every table and
// figure of the paper's evaluation. Each benchmark reproduces one
// artifact and logs the rendered table or figure on its first iteration,
// so
//
//	go test -bench=. -benchmem
//
// both measures the cost of each analysis and reprints the paper.
//
// The default training budget is reduced so the full harness completes in
// minutes on a laptop; pass -paperbudget to use the paper's full
// configuration (1,000 training samples, 100 validation designs,
// 100k-instruction traces).
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

var (
	paperBudget = flag.Bool("paperbudget", false,
		"use the paper's full budget (1000 samples, 100 validation designs, 100k traces)")
	quietFigures = flag.Bool("quietfigures", false,
		"suppress rendered tables and figures in benchmark logs")
	scaleGate = flag.Bool("scalegate", false,
		"fail the sweep benchmark if 2-worker parallel efficiency < 1.5x (skipped on single-CPU hosts)")
	guardGate = flag.Bool("guardgate", false,
		"fail the sweep benchmark if the guardrail's paired overhead exceeds the 8% budget (DESIGN.md §11)")
)

func benchOptions() core.Options {
	opts := core.DefaultOptions()
	if !*paperBudget {
		opts.TrainSamples = 300
		opts.ValidationSamples = 60
		opts.TraceLen = 40000
	}
	return opts
}

// The heavy fixtures are shared across benchmarks: one trained explorer,
// one validation report, and one result set per study.
var (
	fixtureOnce sync.Once
	fixture     struct {
		explorer   *core.Explorer
		validation *core.ValidationReport
		pareto     map[string]*paretostudy.Result
		depth      map[string]*depthstudy.Result
		depthAvg   *depthstudy.SuiteAverage
		hetero     *heterostudy.Result
		err        error
	}
)

func sharedFixture(b *testing.B) *core.Explorer {
	b.Helper()
	fixtureOnce.Do(func() {
		e, err := core.New(benchOptions())
		if err != nil {
			fixture.err = err
			return
		}
		if err := e.Train(); err != nil {
			fixture.err = err
			return
		}
		fixture.explorer = e
	})
	if fixture.err != nil {
		b.Fatal(fixture.err)
	}
	return fixture.explorer
}

func logFigure(b *testing.B, s string) {
	if !*quietFigures {
		b.Logf("\n%s", s)
	}
}

// BenchmarkTable1DesignSpace measures enumerating and sampling the
// paper's Table 1 design space: 375,000 configurations resolved from the
// seven coupled parameter groups.
func BenchmarkTable1DesignSpace(b *testing.B) {
	space := arch.TableOneSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := space.SampleUAR(1000, uint64(i))
		var checksum int
		for _, p := range points {
			checksum += space.Config(p).DepthFO4
		}
		if checksum == 0 {
			b.Fatal("impossible checksum")
		}
	}
	b.StopTimer()
	logFigure(b, fmt.Sprintf(
		"Table 1: sampling space %d designs (10x3x10x10x5x5x5), exploration space %d designs",
		space.Size(), arch.ExplorationSpace().Size()))
}

// BenchmarkFigure1ValidationError reproduces the model validation of
// Section 3.4: error distributions for random designs.
func BenchmarkFigure1ValidationError(b *testing.B) {
	e := sharedFixture(b)
	b.ResetTimer()
	var rep *core.ValidationReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = e.Validate(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fixture.validation = rep
	logFigure(b, report.Figure1(rep))
}

func paretoResults(b *testing.B) map[string]*paretostudy.Result {
	b.Helper()
	e := sharedFixture(b)
	if fixture.pareto == nil {
		res, err := paretostudy.RunSuite(e, paretostudy.Options{
			DelayTargets:     40,
			SimulateFrontier: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		fixture.pareto = res
	}
	return fixture.pareto
}

// BenchmarkFigure2Characterization measures the exhaustive regression
// evaluation of the 262,500-point space (the paper's full-space
// delay-power scatter).
func BenchmarkFigure2Characterization(b *testing.B) {
	e := sharedFixture(b)
	results := paretoResults(b)
	perf, pow, err := e.Models("mcf")
	if err != nil {
		b.Fatal(err)
	}
	space := e.StudySpace
	vals := make([]float64, len(arch.PredictorNames()))
	get := func(name string) float64 { return vals[arch.PredictorIndex(name)] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Evaluate both models over all 262,500 designs — the genuine
		// sweep, bypassing the explorer's per-benchmark cache.
		var sink float64
		for idx := 0; idx < space.Size(); idx++ {
			arch.PredictorsInto(space.Config(space.PointAt(idx)), vals)
			sink += perf.Predict(get) + pow.Predict(get)
		}
		if sink <= 0 {
			b.Fatal("sweep produced nothing")
		}
	}
	b.StopTimer()
	for _, bench := range []string{"ammp", "mcf"} {
		if r, ok := results[bench]; ok {
			logFigure(b, report.Figure2(e.StudySpace, r))
		}
	}
}

// BenchmarkExhaustivePredictParallel measures the 262,500-point
// exhaustive sweep as a worker-scaling curve (1, 2 and 4 workers) on all
// three prediction paths: the blocked structure-of-arrays sweep kernel
// (the default), the scalar compiled kernel (DisableBlocked) and the
// interpreted per-request path (DisableCompile). Every (path, workers)
// combination must produce bit-identical predictions. The measured rates
// are written to BENCH_sweep.json at the repo root, including num_cpu,
// the blocked kernel's 2-worker parallel efficiency
// (parallel_efficiency_2w), the blocked-over-scalar speedup
// (blocked_speedup), the compiled-over-interpreted speedup at the
// highest worker count and the overheads of the two always-on
// safety/visibility layers: the fast-path guardrail
// (guard_overhead_pct, budget <= 8% — see the guard-pair comment) and
// span tracing
// (obs_on_overhead_pct). With -scalegate the benchmark fails if the
// 2-worker parallel efficiency drops below 1.5x — the regression gate CI
// runs on multi-core hosts; a single-CPU host cannot express parallel
// speedup, so there the gate is skipped and recorded as such. With
// -guardgate it fails if the guardrail overhead exceeds its 8% budget
// (that gate never skips: the pair shares whatever host it gets). It also
// reports the simulation engine's cache hit rate, the other lever that
// makes the studies cheap (they revisit the same designs repeatedly).
func BenchmarkExhaustivePredictParallel(b *testing.B) {
	e := sharedFixture(b)
	// Share the fixture's trained models across sub-benchmarks so each
	// measures only the sweep.
	var models bytes.Buffer
	if err := e.SaveModels(&models); err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	type rateKey struct {
		Path    string
		Workers int
	}
	// The framework reruns each sub-benchmark with growing b.N until the
	// benchtime is met; keep only the final (largest-N) measurement.
	measured := make(map[rateKey]float64)
	var order []rateKey
	var baseline []core.Prediction
	sweepBench := func(path string, workers int, disableCompile, disableBlocked bool, guardInterval int64) func(b *testing.B) {
		return func(b *testing.B) {
			opts := benchOptions()
			opts.Workers = workers
			opts.DisableCompile = disableCompile
			opts.DisableBlocked = disableBlocked
			opts.GuardInterval = guardInterval
			ex, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := ex.LoadModels(bytes.NewReader(models.Bytes())); err != nil {
				b.Fatal(err)
			}
			out := make([]core.Prediction, ex.StudySpace.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ex.ExhaustivePredictInto(context.Background(), "mcf", out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perSec := float64(len(out)*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "predictions/s")
			k := rateKey{Path: path, Workers: workers}
			if _, ok := measured[k]; !ok {
				order = append(order, k)
			}
			measured[k] = perSec
			if baseline == nil {
				baseline = append([]core.Prediction(nil), out...)
			} else {
				for i := range out {
					if out[i] != baseline[i] {
						b.Fatalf("path=%s workers=%d: prediction %d = %+v diverges from baseline %+v",
							path, workers, i, out[i], baseline[i])
					}
				}
			}
		}
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("path=blocked/workers=%d", workers),
			sweepBench("blocked", workers, false, false, 0))
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("path=compiled/workers=%d", workers),
			sweepBench("compiled", workers, false, true, 0))
	}
	// Guardrail overhead on the default (blocked) path, measured paired:
	// each iteration runs one guarded (default interval) and one
	// guard-free (GuardInterval < 0) sweep back to back on two otherwise
	// identical explorers, timing each side separately. Machine drift —
	// frequency scaling, shared-CPU noise — hits both sides of every
	// iteration equally, so the rate ratio isolates the guardrail's
	// sampling cost, recorded as guard_overhead_pct. The guard's
	// *rate* is the pinned contract (one cross-check per GuardInterval
	// points, however the sweep is chunked); its *relative* overhead
	// therefore scales with kernel speed — ~0.6% against the scalar
	// kernel, ~5% against the 3x-faster blocked kernel, because each
	// check still costs one interpreted prediction. Budget: <= 8%.
	// Both sides must stay bit-identical to the baseline.
	noguardWorkers := counts[len(counts)-1]
	b.Run(fmt.Sprintf("path=guard-pair/workers=%d", noguardWorkers), func(b *testing.B) {
		mk := func(guardInterval int64) *core.Explorer {
			opts := benchOptions()
			opts.Workers = noguardWorkers
			opts.GuardInterval = guardInterval
			ex, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := ex.LoadModels(bytes.NewReader(models.Bytes())); err != nil {
				b.Fatal(err)
			}
			return ex
		}
		guarded, unguarded := mk(0), mk(-1)
		outG := make([]core.Prediction, guarded.StudySpace.Size())
		outN := make([]core.Prediction, guarded.StudySpace.Size())
		var tG, tN time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if err := guarded.ExhaustivePredictInto(context.Background(), "mcf", outG); err != nil {
				b.Fatal(err)
			}
			tG += time.Since(t0)
			t0 = time.Now()
			if err := unguarded.ExhaustivePredictInto(context.Background(), "mcf", outN); err != nil {
				b.Fatal(err)
			}
			tN += time.Since(t0)
		}
		b.StopTimer()
		for _, side := range []struct {
			path string
			out  []core.Prediction
		}{{"blocked-guarded", outG}, {"blocked-noguard", outN}} {
			if baseline == nil {
				continue
			}
			for i := range side.out {
				if side.out[i] != baseline[i] {
					b.Fatalf("path=%s: prediction %d = %+v diverges from baseline %+v",
						side.path, i, side.out[i], baseline[i])
				}
			}
		}
		points := float64(len(outG) * b.N)
		kG := rateKey{Path: "blocked-guarded", Workers: noguardWorkers}
		kN := rateKey{Path: "blocked-noguard", Workers: noguardWorkers}
		for _, k := range []rateKey{kG, kN} {
			if _, ok := measured[k]; !ok {
				order = append(order, k)
			}
		}
		measured[kG] = points / tG.Seconds()
		measured[kN] = points / tN.Seconds()
		b.ReportMetric(100*(1-tN.Seconds()/tG.Seconds()), "guard-overhead-%")
	})
	// Observability overhead on the default (blocked) path, measured
	// paired exactly like the guardrail: each iteration runs one traced
	// sweep (spans, per-tile latency histograms, progress ticker all on)
	// and one untraced sweep back to back on two otherwise identical
	// explorers, toggling the global obs switch around each side. Machine
	// drift hits both sides of every iteration equally, so the rate ratio
	// isolates the tracing cost, recorded as obs_on_overhead_pct
	// (budget <= 1.5%: the per-tile span is one child-span publish and one
	// shared time.Now for span end + histogram sample, ~70 tiles per
	// 262,500-point sweep). Output must stay bit-identical either way.
	tracedWorkers := counts[len(counts)-1]
	b.Run(fmt.Sprintf("path=obs-pair/workers=%d", tracedWorkers), func(b *testing.B) {
		prevTracer, prevEnabled := obs.DefaultTracer, obs.Enabled()
		obs.DefaultTracer = obs.NewTracer(1 << 12)
		b.Cleanup(func() {
			obs.DefaultTracer = prevTracer
			obs.Enable(prevEnabled)
		})
		mk := func() *core.Explorer {
			opts := benchOptions()
			opts.Workers = tracedWorkers
			ex, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := ex.LoadModels(bytes.NewReader(models.Bytes())); err != nil {
				b.Fatal(err)
			}
			return ex
		}
		traced, untraced := mk(), mk()
		outT := make([]core.Prediction, traced.StudySpace.Size())
		outU := make([]core.Prediction, traced.StudySpace.Size())
		var tOn, tOff time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			obs.Enable(true)
			t0 := time.Now()
			if err := traced.ExhaustivePredictInto(context.Background(), "mcf", outT); err != nil {
				b.Fatal(err)
			}
			tOn += time.Since(t0)
			obs.Enable(false)
			t0 = time.Now()
			if err := untraced.ExhaustivePredictInto(context.Background(), "mcf", outU); err != nil {
				b.Fatal(err)
			}
			tOff += time.Since(t0)
		}
		b.StopTimer()
		obs.Enable(false)
		for _, side := range []struct {
			path string
			out  []core.Prediction
		}{{"blocked-obs-on", outT}, {"blocked-obs-off", outU}} {
			if baseline == nil {
				continue
			}
			for i := range side.out {
				if side.out[i] != baseline[i] {
					b.Fatalf("path=%s: prediction %d = %+v diverges from baseline %+v",
						side.path, i, side.out[i], baseline[i])
				}
			}
		}
		points := float64(len(outT) * b.N)
		kOn := rateKey{Path: "blocked-obs-on", Workers: tracedWorkers}
		kOff := rateKey{Path: "blocked-obs-off", Workers: tracedWorkers}
		for _, k := range []rateKey{kOn, kOff} {
			if _, ok := measured[k]; !ok {
				order = append(order, k)
			}
		}
		measured[kOn] = points / tOn.Seconds()
		measured[kOff] = points / tOff.Seconds()
		b.ReportMetric(100*(1-tOff.Seconds()/tOn.Seconds()), "obs-overhead-%")
	})
	for _, workers := range counts {
		b.Run(fmt.Sprintf("path=interpreted/workers=%d", workers),
			sweepBench("interpreted", workers, true, false, 0))
	}
	// Distributed-sweep overhead, measured paired: each iteration runs one
	// checkpointed single-process sweep (the predict plus its checkpoint
	// write) and one 4-shard run over the same space — four SweepShard
	// calls plus the merge, the exact work `dse -shard`/-merge processes
	// split — back to back on fresh explorers. Two numbers come out, with
	// different semantics:
	//
	//   shard_walltime_overhead_pct — the raw wall-clock ratio of the
	//   sharded run (all shards sequentially on THIS host, plus merge) to
	//   the single-process run. On a host with fewer CPUs than shards the
	//   shards time-slice one another, so this number is dominated by
	//   oversubscription and is expected to be huge (hundreds of percent
	//   on the 1-CPU container); oversubscribed=true flags that regime.
	//
	//   shard_overhead_pct — the per-point cost of distribution itself:
	//   the single-process prediction rate divided by the aggregate of
	//   the per-shard rates (each shard's points over its own running
	//   time), minus one. This models N dedicated hosts, where shards do
	//   not compete for cores, and isolates what sharding adds per point
	//   (per-chunk shard checkpoints, partition bookkeeping); the merge
	//   pass is reported separately as shard_merge_ms. This is the
	//   regression signal for the shard/merge layer, not a speedup claim
	//   (BENCH_train.json's simulation-bound variant shows the realistic
	//   low-single-digit cost).
	//
	// The merged checkpoint file must come out byte-identical to the
	// single-process one.
	const sweepShards = 4
	var (
		shardedSingleTime, shardedTotalTime time.Duration
		shardedSingleRate                   float64
		shardMergeMS                        float64
		shardSecs                           [sweepShards]float64
		shardRanges                         [sweepShards]shard.Range
	)
	b.Run(fmt.Sprintf("path=sharded/shards=%d", sweepShards), func(b *testing.B) {
		singleDir, shardDir := b.TempDir(), b.TempDir()
		mk := func(dir string) *core.Explorer {
			opts := benchOptions()
			opts.Workers = counts[len(counts)-1]
			opts.Benchmarks = []string{"mcf"}
			opts.CheckpointDir = dir
			ex, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := ex.LoadModels(bytes.NewReader(models.Bytes())); err != nil {
				b.Fatal(err)
			}
			return ex
		}
		var tSingle, tSharded time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Fresh explorers every iteration: the sweep cache and merged
			// outputs belong to the previous round.
			one := mk(singleDir)
			t0 := time.Now()
			if _, err := one.ExhaustivePredict("mcf"); err != nil {
				b.Fatal(err)
			}
			tSingle += time.Since(t0)
			many := mk(shardDir)
			t0 = time.Now()
			for s := 0; s < sweepShards; s++ {
				st := time.Now()
				if err := many.SweepShard(context.Background(), "mcf", s, sweepShards); err != nil {
					b.Fatal(err)
				}
				shardSecs[s] = time.Since(st).Seconds()
			}
			mt := time.Now()
			if err := many.MergeSweepShards(sweepShards); err != nil {
				b.Fatal(err)
			}
			shardMergeMS = float64(time.Since(mt).Microseconds()) / 1000
			tSharded += time.Since(t0)
			for s := range shardRanges {
				shardRanges[s] = many.SweepShardRange(s, sweepShards)
			}
		}
		b.StopTimer()
		singleCkpt, err := os.ReadFile(filepath.Join(singleDir, "sweep-mcf.ckpt"))
		if err != nil {
			b.Fatal(err)
		}
		mergedCkpt, err := os.ReadFile(filepath.Join(shardDir, "sweep-mcf.ckpt"))
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(singleCkpt, mergedCkpt) {
			b.Fatalf("merged sweep checkpoint differs from single-process (%d vs %d bytes)",
				len(mergedCkpt), len(singleCkpt))
		}
		shardedSingleTime, shardedTotalTime = tSingle, tSharded
		shardedSingleRate = float64(e.StudySpace.Size()*b.N) / tSingle.Seconds()
		b.ReportMetric(100*(tSharded.Seconds()/tSingle.Seconds()-1), "shard-walltime-overhead-%")
	})
	// Speedups at the highest worker count, the configuration that matters
	// for study wall-clock; parallel efficiency from the blocked kernel's
	// 1-to-2-worker step.
	maxWorkers := counts[len(counts)-1]
	blockedRate := measured[rateKey{Path: "blocked", Workers: maxWorkers}]
	blocked1 := measured[rateKey{Path: "blocked", Workers: 1}]
	blocked2 := measured[rateKey{Path: "blocked", Workers: 2}]
	compiledRate := measured[rateKey{Path: "compiled", Workers: maxWorkers}]
	interpretedRate := measured[rateKey{Path: "interpreted", Workers: maxWorkers}]
	obsOnRate := measured[rateKey{Path: "blocked-obs-on", Workers: maxWorkers}]
	obsOffRate := measured[rateKey{Path: "blocked-obs-off", Workers: maxWorkers}]
	guardedRate := measured[rateKey{Path: "blocked-guarded", Workers: maxWorkers}]
	noguardRate := measured[rateKey{Path: "blocked-noguard", Workers: maxWorkers}]
	if blockedRate > 0 && compiledRate > 0 && interpretedRate > 0 {
		type rate struct {
			Path           string  `json:"path"`
			Workers        int     `json:"workers"`
			PredictionsSec float64 `json:"predictions_per_sec"`
		}
		rates := make([]rate, len(order))
		for i, k := range order {
			rates[i] = rate{Path: k.Path, Workers: k.Workers, PredictionsSec: measured[k]}
		}
		type shardRate struct {
			Shard          int     `json:"shard"`
			Lo             int     `json:"lo"`
			Hi             int     `json:"hi"`
			PredictionsSec float64 `json:"predictions_per_sec"`
		}
		report := struct {
			SpacePoints          int         `json:"space_points"`
			NumCPU               int         `json:"num_cpu"`
			Rates                []rate      `json:"rates"`
			SpeedupWorkers       int         `json:"speedup_workers"`
			BlockedSpeedup       float64     `json:"blocked_speedup"`
			CompiledSpeedup      float64     `json:"compiled_speedup"`
			ParallelEfficiency2W float64     `json:"parallel_efficiency_2w"`
			ObsOnOverheadPct     float64     `json:"obs_on_overhead_pct"`
			GuardOverheadPct     float64     `json:"guard_overhead_pct"`
			Shards               int         `json:"shards,omitempty"`
			Oversubscribed       bool        `json:"oversubscribed,omitempty"`
			ShardOverheadPct     float64     `json:"shard_overhead_pct,omitempty"`
			ShardWallOverheadPct float64     `json:"shard_walltime_overhead_pct,omitempty"`
			ShardMergeMs         float64     `json:"shard_merge_ms,omitempty"`
			PerShardRates        []shardRate `json:"per_shard_rates,omitempty"`
		}{
			SpacePoints:     e.StudySpace.Size(),
			NumCPU:          runtime.NumCPU(),
			Rates:           rates,
			SpeedupWorkers:  maxWorkers,
			BlockedSpeedup:  blockedRate / compiledRate,
			CompiledSpeedup: compiledRate / interpretedRate,
		}
		if blocked1 > 0 && blocked2 > 0 {
			report.ParallelEfficiency2W = blocked2 / blocked1
		}
		if obsOnRate > 0 && obsOffRate > 0 {
			report.ObsOnOverheadPct = 100 * (obsOffRate - obsOnRate) / obsOffRate
		}
		if noguardRate > 0 && guardedRate > 0 {
			report.GuardOverheadPct = 100 * (noguardRate - guardedRate) / noguardRate
		}
		if shardedSingleTime > 0 && shardedTotalTime > 0 {
			report.Shards = sweepShards
			report.Oversubscribed = runtime.NumCPU() < sweepShards
			report.ShardWallOverheadPct = 100 * (shardedTotalTime.Seconds()/shardedSingleTime.Seconds() - 1)
			report.ShardMergeMs = shardMergeMS
			var aggRate float64
			for s, r := range shardRanges {
				psr := shardRate{Shard: s, Lo: r.Lo, Hi: r.Hi}
				if shardSecs[s] > 0 {
					psr.PredictionsSec = float64(r.Len()) / shardSecs[s]
					aggRate += psr.PredictionsSec
				}
				report.PerShardRates = append(report.PerShardRates, psr)
			}
			if aggRate > 0 && shardedSingleRate > 0 {
				report.ShardOverheadPct = 100 * (shardedSingleRate/aggRate - 1)
			}
		}
		data, err := json.MarshalIndent(report, "", " ")
		if err != nil {
			b.Fatal(err)
		}
		if err := atomicio.WriteFile("BENCH_sweep.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_sweep.json: %v", err)
		}
		logFigure(b, fmt.Sprintf(
			"exhaustive sweep at %d workers: blocked %.3gM predictions/s, scalar compiled %.3gM (%.1fx), interpreted %.3gM (%.1fx total); 2-worker efficiency %.2fx on %d CPU; guard overhead %.2f%%, obs overhead %.2f%%, %d-shard overhead %.2f%% aggregate (wall %.1f%%, merge %.1fms)",
			maxWorkers, blockedRate/1e6, compiledRate/1e6, report.BlockedSpeedup,
			interpretedRate/1e6, blockedRate/interpretedRate,
			report.ParallelEfficiency2W, report.NumCPU, report.GuardOverheadPct,
			report.ObsOnOverheadPct, report.Shards, report.ShardOverheadPct,
			report.ShardWallOverheadPct, report.ShardMergeMs))
		// CI regression gate: the tile-parallel sweep must keep scaling.
		// Parallel efficiency needs at least two real cores to exist; on a
		// single-CPU host the gate is structurally unmeasurable, so it is
		// skipped (and says so) rather than reporting a false failure.
		if *scaleGate {
			switch {
			case runtime.NumCPU() < 2:
				b.Logf("scalegate: skipped — %d CPU host cannot express parallel speedup", runtime.NumCPU())
			case report.ParallelEfficiency2W < 1.5:
				b.Fatalf("scalegate: 2-worker parallel efficiency %.2fx < 1.5x (blocked path: %.3gM preds/s at 1 worker, %.3gM at 2)",
					report.ParallelEfficiency2W, blocked1/1e6, blocked2/1e6)
			default:
				b.Logf("scalegate: ok — 2-worker parallel efficiency %.2fx", report.ParallelEfficiency2W)
			}
		}
		// CI regression gate: the guardrail's paired overhead must stay
		// within the DESIGN.md §11 budget. Unlike parallel efficiency it is
		// measurable on any host — the pair runs back to back on the same
		// cores — so there is no skip leg.
		if *guardGate {
			const guardBudgetPct = 8.0
			if report.GuardOverheadPct > guardBudgetPct {
				b.Fatalf("guardgate: guard overhead %.2f%% exceeds the %.0f%% budget (guarded %.3gM preds/s, unguarded %.3gM)",
					report.GuardOverheadPct, guardBudgetPct, guardedRate/1e6, noguardRate/1e6)
			}
			b.Logf("guardgate: ok — guard overhead %.2f%% within the <=%.0f%% budget",
				report.GuardOverheadPct, guardBudgetPct)
		}
	}
	sim := e.SimStats()
	logFigure(b, fmt.Sprintf(
		"evaluation engine: %d simulations run, %d cache hits, %d misses (%.1f%% hit rate), %d workers",
		sim.Evaluations, sim.CacheHits, sim.CacheMisses, 100*sim.HitRate(), sim.Workers))
}

// BenchmarkTrainDataset measures dataset-build throughput — the
// simulation phase of training, the dominant cost of the whole
// methodology — on both simulator paths: the fast path (pooled scratch,
// memoized warm cache/BHT state) and the seed full-warmup path
// (DisableFastSim). Both paths run through a NoCache engine so every
// evaluation is a real simulation, and both must produce bit-identical
// datasets. The measured rates (runs/sec and simulated timed MInst/sec)
// and the fast-over-seed speedup are written to BENCH_train.json at the
// repo root.
func BenchmarkTrainDataset(b *testing.B) {
	traceLen := benchOptions().TraceLen
	benches := []string{"gzip", "mcf", "twolf"}
	// Training samples are drawn from the paper's sampling space; reuse of
	// cache geometries across samples is what the warm memo exploits.
	space := arch.TableOneSpace()
	points := space.SampleUAR(200, 0xDA7A)
	var reqs []eval.Request
	for _, bench := range benches {
		for _, pt := range points {
			reqs = append(reqs, eval.Request{Config: space.Config(pt), Bench: bench})
		}
	}
	timedPerRun := traceLen - int(float64(traceLen)*sim.WarmupFrac)

	measured := make(map[string]float64)
	var baseline []eval.Result
	datasetBench := func(path string, disableFast bool) func(b *testing.B) {
		return func(b *testing.B) {
			s := eval.NewSimulator(traceLen)
			s.DisableFastSim = disableFast
			eng := eval.NewEngine(s, eval.Options{NoCache: true, Name: "train-" + path})
			// Synthesize traces outside the timer; training amortizes
			// synthesis across every sample.
			for _, bench := range benches {
				if _, _, err := s.Evaluate(arch.Baseline(), bench); err != nil {
					b.Fatal(err)
				}
			}
			// Two full passes outside the timer: like trace synthesis, the
			// fast path's warm memo is populated once per geometry and
			// amortized across the whole training sweep (and every study
			// that follows), so the timed iterations measure steady-state
			// throughput on both paths. The second pass matters for
			// geometry keys only one sampled config maps to: their outcome
			// masks are recorded on the second visit, so one pass would
			// leave them on the snapshot-restore tier during measurement.
			for pass := 0; pass < 2; pass++ {
				if _, err := eng.EvaluateBatch(context.Background(), reqs); err != nil {
					b.Fatal(err)
				}
			}
			var out []eval.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				out, err = eng.EvaluateBatch(context.Background(), reqs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runs := float64(len(reqs) * b.N)
			runsPerSec := runs / b.Elapsed().Seconds()
			b.ReportMetric(runsPerSec, "runs/s")
			b.ReportMetric(runsPerSec*float64(timedPerRun)/1e6, "MInst/s")
			measured[path] = runsPerSec
			if baseline == nil {
				baseline = append([]eval.Result(nil), out...)
			} else {
				for i := range out {
					if out[i] != baseline[i] {
						b.Fatalf("path=%s: run %d = %+v diverges from baseline %+v",
							path, i, out[i], baseline[i])
					}
				}
			}
		}
	}
	// Seed first so the fast path's divergence check runs against it.
	b.Run("path=seed", datasetBench("seed", true))
	b.Run("path=fast", datasetBench("fast", false))

	// Sharded dataset build vs single process, measured paired: each
	// iteration builds the same training dataset once as a single shard
	// (BuildDatasetShard 0/1 + merge — the unsharded `dse dataset` path)
	// and once split in two (shards 0/2 and 1/2 + merge), on fresh
	// explorers so every simulation is real. The build is simulation-bound,
	// so the split's extra checkpoint writes and merge pass should cost
	// low single digits at most — recorded as shard_overhead_pct with
	// per-shard rates. Both merged checkpoint sets must be byte-identical.
	const datasetShards = 2
	var (
		dsSingleTime, dsShardedTime time.Duration
		dsShardSecs                 [datasetShards]float64
		dsShardRanges               [datasetShards]shard.Range
	)
	dsBenches := []string{"gzip", "mcf"}
	const dsSamples = 100
	b.Run(fmt.Sprintf("path=sharded/shards=%d", datasetShards), func(b *testing.B) {
		singleDir, shardDir := b.TempDir(), b.TempDir()
		mk := func(dir string) *core.Explorer {
			opts := benchOptions()
			opts.Benchmarks = dsBenches
			opts.TrainSamples = dsSamples
			opts.CheckpointDir = dir
			ex, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			return ex
		}
		var tSingle, tSharded time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			one := mk(singleDir)
			t0 := time.Now()
			if err := one.BuildDatasetShard(context.Background(), 0, 1); err != nil {
				b.Fatal(err)
			}
			if err := one.MergeDatasetShards(1); err != nil {
				b.Fatal(err)
			}
			tSingle += time.Since(t0)
			many := mk(shardDir)
			t0 = time.Now()
			for s := 0; s < datasetShards; s++ {
				st := time.Now()
				if err := many.BuildDatasetShard(context.Background(), s, datasetShards); err != nil {
					b.Fatal(err)
				}
				dsShardSecs[s] = time.Since(st).Seconds()
			}
			if err := many.MergeDatasetShards(datasetShards); err != nil {
				b.Fatal(err)
			}
			tSharded += time.Since(t0)
			for s := range dsShardRanges {
				dsShardRanges[s] = many.DatasetShardRange(s, datasetShards)
			}
		}
		b.StopTimer()
		for _, bench := range dsBenches {
			single, err := os.ReadFile(filepath.Join(singleDir, "train-"+bench+".ckpt"))
			if err != nil {
				b.Fatal(err)
			}
			merged, err := os.ReadFile(filepath.Join(shardDir, "train-"+bench+".ckpt"))
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(single, merged) {
				b.Fatalf("merged %s dataset checkpoint differs from single-process (%d vs %d bytes)",
					bench, len(merged), len(single))
			}
		}
		dsSingleTime, dsShardedTime = tSingle, tSharded
		b.ReportMetric(100*(tSharded.Seconds()/tSingle.Seconds()-1), "shard-overhead-%")
	})

	fastRate, seedRate := measured["fast"], measured["seed"]
	if fastRate > 0 && seedRate > 0 {
		type rate struct {
			Path        string  `json:"path"`
			RunsPerSec  float64 `json:"runs_per_sec"`
			MInstPerSec float64 `json:"timed_minst_per_sec"`
		}
		type shardRate struct {
			Shard      int     `json:"shard"`
			Lo         int     `json:"lo"`
			Hi         int     `json:"hi"`
			RunsPerSec float64 `json:"runs_per_sec"`
		}
		report := struct {
			Benchmarks       []string    `json:"benchmarks"`
			Configs          int         `json:"configs"`
			TraceLen         int         `json:"trace_len"`
			TimedPerRun      int         `json:"timed_instructions_per_run"`
			NumCPU           int         `json:"num_cpu"`
			Rates            []rate      `json:"rates"`
			FastSpeedup      float64     `json:"fast_speedup"`
			Shards           int         `json:"shards,omitempty"`
			ShardOverheadPct float64     `json:"shard_overhead_pct,omitempty"`
			PerShardRates    []shardRate `json:"per_shard_rates,omitempty"`
		}{
			Benchmarks:  benches,
			Configs:     len(points),
			TraceLen:    traceLen,
			TimedPerRun: timedPerRun,
			NumCPU:      runtime.NumCPU(),
			Rates: []rate{
				{Path: "seed", RunsPerSec: seedRate, MInstPerSec: seedRate * float64(timedPerRun) / 1e6},
				{Path: "fast", RunsPerSec: fastRate, MInstPerSec: fastRate * float64(timedPerRun) / 1e6},
			},
			FastSpeedup: fastRate / seedRate,
		}
		if dsSingleTime > 0 && dsShardedTime > 0 {
			report.Shards = datasetShards
			report.ShardOverheadPct = 100 * (dsShardedTime.Seconds()/dsSingleTime.Seconds() - 1)
			for s, r := range dsShardRanges {
				psr := shardRate{Shard: s, Lo: r.Lo, Hi: r.Hi}
				if dsShardSecs[s] > 0 {
					psr.RunsPerSec = float64(r.Len()) / dsShardSecs[s]
				}
				report.PerShardRates = append(report.PerShardRates, psr)
			}
		}
		data, err := json.MarshalIndent(report, "", " ")
		if err != nil {
			b.Fatal(err)
		}
		if err := atomicio.WriteFile("BENCH_train.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("writing BENCH_train.json: %v", err)
		}
		logFigure(b, fmt.Sprintf(
			"dataset build: fast %.0f runs/s, seed %.0f runs/s (%.1fx); %d runs of %d timed instructions",
			fastRate, seedRate, fastRate/seedRate, len(reqs), timedPerRun))
	}
}

// BenchmarkFigure3ParetoFrontier reproduces the frontier construction and
// its simulator validation.
func BenchmarkFigure3ParetoFrontier(b *testing.B) {
	e := sharedFixture(b)
	results := paretoResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paretostudy.Run(e, "mcf", paretostudy.Options{DelayTargets: 40}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, bench := range []string{"ammp", "mcf"} {
		if r, ok := results[bench]; ok {
			logFigure(b, report.Figure3(r))
		}
	}
}

// BenchmarkFigure4ParetoError reproduces the frontier prediction-error
// distributions.
func BenchmarkFigure4ParetoError(b *testing.B) {
	results := paretoResults(b)
	b.ResetTimer()
	var perf, pow float64
	for i := 0; i < b.N; i++ {
		var ok bool
		perf, pow, ok = paretostudy.ErrorSummary(results)
		if !ok {
			b.Fatal("no frontier validation data")
		}
	}
	b.StopTimer()
	logFigure(b, report.Figure4(results))
	logFigure(b, fmt.Sprintf("frontier medians: perf %.1f%%, power %.1f%%", perf*100, pow*100))
}

// BenchmarkTable2EfficiencyOptima reproduces the per-benchmark bips^3/w
// optima with their model-vs-simulation errors.
func BenchmarkTable2EfficiencyOptima(b *testing.B) {
	e := sharedFixture(b)
	results := paretoResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heterostudy.FindOptima(e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logFigure(b, report.Table2(results))
}

func depthResults(b *testing.B) (map[string]*depthstudy.Result, *depthstudy.SuiteAverage) {
	b.Helper()
	e := sharedFixture(b)
	if fixture.depth == nil {
		res, err := depthstudy.RunSuite(e, depthstudy.Options{SimulateValidation: true})
		if err != nil {
			b.Fatal(err)
		}
		avg, err := depthstudy.Average(res)
		if err != nil {
			b.Fatal(err)
		}
		fixture.depth = res
		fixture.depthAvg = avg
	}
	return fixture.depth, fixture.depthAvg
}

// BenchmarkFigure5aDepthEfficiency reproduces the original-vs-enhanced
// depth analysis.
func BenchmarkFigure5aDepthEfficiency(b *testing.B) {
	e := sharedFixture(b)
	_, avg := depthResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := depthstudy.Run(e, "gzip", depthstudy.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logFigure(b, report.Figure5a(avg))
}

// BenchmarkFigure5bTopCacheSizes reproduces the D-L1 distribution among
// the most efficient designs at each depth.
func BenchmarkFigure5bTopCacheSizes(b *testing.B) {
	e := sharedFixture(b)
	results, _ := depthResults(b)
	b.ResetTimer()
	var rendered string
	for i := 0; i < b.N; i++ {
		rendered = report.Figure5b(results, e.StudySpace)
	}
	b.StopTimer()
	logFigure(b, rendered)
}

// BenchmarkFigure6DepthValidation reproduces the predicted-vs-simulated
// depth efficiency comparison.
func BenchmarkFigure6DepthValidation(b *testing.B) {
	results, avg := depthResults(b)
	b.ResetTimer()
	var out *depthstudy.SuiteAverage
	for i := 0; i < b.N; i++ {
		var err error
		out, err = depthstudy.Average(results)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = out
	logFigure(b, report.Figure6(avg))
}

// BenchmarkFigure7PerfPowerDecomposition decomposes the depth validation
// into its performance and power components.
func BenchmarkFigure7PerfPowerDecomposition(b *testing.B) {
	results, _ := depthResults(b)
	b.ResetTimer()
	var rendered string
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"gzip", "mcf"} {
			if r, ok := results[bench]; ok {
				rendered = report.Figure7(r)
			}
		}
	}
	b.StopTimer()
	for _, bench := range []string{"gzip", "mcf"} {
		if r, ok := results[bench]; ok {
			logFigure(b, report.Figure7(r))
		}
	}
	_ = rendered
}

func heteroResult(b *testing.B) *heterostudy.Result {
	b.Helper()
	e := sharedFixture(b)
	if fixture.hetero == nil {
		res, err := heterostudy.Run(e, nil, heterostudy.Options{
			SimulateValidation: true,
			Seed:               benchOptions().Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		fixture.hetero = res
	}
	return fixture.hetero
}

// BenchmarkTable4CompromiseArchitectures reproduces the K=4 compromise
// cores from K-means clustering of the per-benchmark optima.
func BenchmarkTable4CompromiseArchitectures(b *testing.B) {
	e := sharedFixture(b)
	res := heteroResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heterostudy.Run(e, nil, heterostudy.Options{
			MaxClusters: 4,
			Seed:        uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logFigure(b, report.Table4(res))
}

// BenchmarkFigure8DelayPowerClusters reproduces the delay-power scatter
// of optima and compromises.
func BenchmarkFigure8DelayPowerClusters(b *testing.B) {
	res := heteroResult(b)
	b.ResetTimer()
	var rendered string
	for i := 0; i < b.N; i++ {
		rendered = report.Figure8(res)
	}
	b.StopTimer()
	logFigure(b, rendered)
}

// BenchmarkFigure9HeterogeneityGains reproduces the efficiency-gain curve
// versus cluster count, predicted and simulated.
func BenchmarkFigure9HeterogeneityGains(b *testing.B) {
	e := sharedFixture(b)
	res := heteroResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heterostudy.Run(e, nil, heterostudy.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logFigure(b, report.Figure9(res, e.Benchmarks()))
}

// ablationValidate trains a one-benchmark explorer with the given spec
// and reports overall median validation errors.
func ablationValidate(b *testing.B, spec core.SpecBuilder, samples int) (perf, pow float64) {
	b.Helper()
	opts := benchOptions()
	opts.Benchmarks = []string{"mesa"}
	opts.Spec = spec
	if samples > 0 {
		opts.TrainSamples = samples
	}
	e, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Train(); err != nil {
		b.Fatal(err)
	}
	rep, err := e.Validate(0)
	if err != nil {
		b.Fatal(err)
	}
	return rep.OverallMedians()
}

// BenchmarkAblationSplineVsLinear quantifies the value of restricted
// cubic splines (paper Section 3.3) against an all-linear model.
func BenchmarkAblationSplineVsLinear(b *testing.B) {
	var rows []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, w1 := ablationValidate(b, core.PaperSpec, 0)
		p2, w2 := ablationValidate(b, core.LinearSpec, 0)
		rows = []string{
			fmt.Sprintf("paper spec (splines):  perf %.1f%%  power %.1f%%", p1*100, w1*100),
			fmt.Sprintf("linear-only ablation:  perf %.1f%%  power %.1f%%", p2*100, w2*100),
		}
	}
	b.StopTimer()
	logFigure(b, "Ablation: splines vs linear predictors (mesa)\n"+rows[0]+"\n"+rows[1])
}

// BenchmarkAblationResponseTransform quantifies the sqrt/log response
// transformations against fitting on the raw scale.
func BenchmarkAblationResponseTransform(b *testing.B) {
	var rows []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, w1 := ablationValidate(b, core.PaperSpec, 0)
		p2, w2 := ablationValidate(b, core.UntransformedSpec, 0)
		rows = []string{
			fmt.Sprintf("transformed responses: perf %.1f%%  power %.1f%%", p1*100, w1*100),
			fmt.Sprintf("identity ablation:     perf %.1f%%  power %.1f%%", p2*100, w2*100),
		}
	}
	b.StopTimer()
	logFigure(b, "Ablation: response transforms (mesa)\n"+rows[0]+"\n"+rows[1])
}

// BenchmarkAblationInteractions quantifies the domain-knowledge
// interaction terms of Section 3.2.
func BenchmarkAblationInteractions(b *testing.B) {
	var rows []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, w1 := ablationValidate(b, core.PaperSpec, 0)
		p2, w2 := ablationValidate(b, core.NoInteractionSpec, 0)
		rows = []string{
			fmt.Sprintf("with interactions:    perf %.1f%%  power %.1f%%", p1*100, w1*100),
			fmt.Sprintf("without interactions: perf %.1f%%  power %.1f%%", p2*100, w2*100),
		}
	}
	b.StopTimer()
	logFigure(b, "Ablation: predictor interactions (mesa)\n"+rows[0]+"\n"+rows[1])
}

// BenchmarkAblationSampleSize sweeps the training-set size, the paper's
// central tractability lever (Section 2.3: 1,000 samples suffice).
func BenchmarkAblationSampleSize(b *testing.B) {
	sizes := []int{100, 200, 400, 800}
	var rows []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range sizes {
			p, w := ablationValidate(b, core.PaperSpec, n)
			rows = append(rows, fmt.Sprintf("n=%4d: perf %.1f%%  power %.1f%%", n, p*100, w*100))
		}
	}
	b.StopTimer()
	out := "Ablation: training sample size (mesa)"
	for _, r := range rows {
		out += "\n" + r
	}
	logFigure(b, out)
}

// BenchmarkExtensionHeuristicSearch exercises the paper's future-work
// extension: heuristic search over the models instead of exhaustive
// prediction. Hill climbing should find the same bips^3/w optimum as the
// 262,500-point sweep in a few thousand model evaluations.
func BenchmarkExtensionHeuristicSearch(b *testing.B) {
	e := sharedFixture(b)
	perf, pow, err := e.Models("mesa")
	if err != nil {
		b.Fatal(err)
	}
	obj := func(cfg arch.Config) float64 {
		get := arch.PredictorGetter(cfg)
		pb, pw := perf.Predict(get), pow.Predict(get)
		if pb <= 0 || pw <= 0 {
			return 0
		}
		return metrics.BIPS3W(pb, pw)
	}
	// Exhaustive ground truth once.
	preds, err := e.ExhaustivePredict("mesa")
	if err != nil {
		b.Fatal(err)
	}
	exhaustive := 0.0
	for _, p := range preds {
		if p.BIPS > 0 && p.Watts > 0 {
			if eff := metrics.BIPS3W(p.BIPS, p.Watts); eff > exhaustive {
				exhaustive = eff
			}
		}
	}
	b.ResetTimer()
	var res *search.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = search.HillClimb(e.StudySpace, obj, search.Options{Seed: 7, Restarts: 12})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logFigure(b, fmt.Sprintf(
		"Extension: hill climbing reached %.4g vs exhaustive %.4g (%.1f%%) in %d evaluations (sweep: %d)",
		res.BestScore, exhaustive, 100*res.BestScore/exhaustive,
		res.Evaluations, e.StudySpace.Size()))
}

// BenchmarkExtensionInOrderCores probes the paper's second future-work
// extension — in-order execution as a design parameter — and with it the
// Davis-vs-Huh question from the paper's related work: are many mediocre
// in-order cores or fewer aggressive out-of-order cores more
// power-performance efficient?
func BenchmarkExtensionInOrderCores(b *testing.B) {
	traceLen := benchOptions().TraceLen
	benches := []string{"ammp", "gzip", "mcf", "mesa"}
	type row struct {
		bench            string
		oooEff, inoEff   float64
		oooBIPS, inoBIPS float64
		oooW, inoW       float64
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, bench := range benches {
			tr, err := trace.ForBenchmark(bench, traceLen)
			if err != nil {
				b.Fatal(err)
			}
			ooo := arch.Baseline()
			ino := arch.Baseline()
			ino.InOrder = true
			ro, err := sim.Run(ooo, tr)
			if err != nil {
				b.Fatal(err)
			}
			ri, err := sim.Run(ino, tr)
			if err != nil {
				b.Fatal(err)
			}
			wo, wi := power.Watts(ro), power.Watts(ri)
			rows = append(rows, row{
				bench:   bench,
				oooEff:  metrics.BIPS3W(ro.BIPS, wo),
				inoEff:  metrics.BIPS3W(ri.BIPS, wi),
				oooBIPS: ro.BIPS, inoBIPS: ri.BIPS,
				oooW: wo, inoW: wi,
			})
		}
	}
	b.StopTimer()
	t := report.NewTable("Extension: out-of-order vs in-order baseline cores",
		"bench", "ooo bips", "ino bips", "ooo W", "ino W", "ooo eff", "ino eff", "ino/ooo")
	for _, r := range rows {
		t.AddRow(r.bench,
			fmt.Sprintf("%.2f", r.oooBIPS), fmt.Sprintf("%.2f", r.inoBIPS),
			fmt.Sprintf("%.1f", r.oooW), fmt.Sprintf("%.1f", r.inoW),
			fmt.Sprintf("%.4f", r.oooEff), fmt.Sprintf("%.4f", r.inoEff),
			fmt.Sprintf("%.2f", r.inoEff/r.oooEff))
	}
	logFigure(b, t.String())
}

// BenchmarkExtensionCacheAssociativity sweeps the D-L1 associativity
// override, the other parameter the paper plans to add to its models.
func BenchmarkExtensionCacheAssociativity(b *testing.B) {
	traceLen := benchOptions().TraceLen
	tr, err := trace.ForBenchmark("twolf", traceLen)
	if err != nil {
		b.Fatal(err)
	}
	assocs := []int{1, 2, 4, 8}
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, a := range assocs {
			cfg := arch.Baseline()
			cfg.DL1Assoc = a
			res, err := sim.Run(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			w := power.Watts(res)
			lines = append(lines, fmt.Sprintf(
				"assoc %d: dl1 miss %.2f%%  bips %.3f  watts %.1f  eff %.4f",
				a, 100*float64(res.Activity.DL1Miss)/float64(res.Activity.DL1Access),
				res.BIPS, w, metrics.BIPS3W(res.BIPS, w)))
		}
	}
	b.StopTimer()
	out := "Extension: D-L1 associativity sweep (twolf)"
	for _, l := range lines {
		out += "\n" + l
	}
	logFigure(b, out)
}

// BenchmarkSimulatorThroughput measures the detailed simulator itself,
// the unit of cost the regression methodology amortizes.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := trace.ForBenchmark("gcc", benchOptions().TraceLen)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.Baseline()
	e := sharedFixture(b)
	_ = e
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coreSimulate(cfg, tr.Name, benchOptions().TraceLen); err != nil {
			b.Fatal(err)
		}
	}
}

// coreSimulate is a tiny wrapper so the throughput benchmark measures an
// uncached simulation path.
func coreSimulate(cfg arch.Config, bench string, traceLen int) (float64, float64, error) {
	opts := core.DefaultOptions()
	opts.TraceLen = traceLen
	opts.Benchmarks = []string{bench}
	e, err := core.New(opts)
	if err != nil {
		return 0, 0, err
	}
	return e.Simulate(cfg, bench)
}

// BenchmarkRegressionFitFullSpec measures fitting one paper-spec model on
// a 1000-sample training set, the paper's "numerically solving a system
// of linear equations" cost.
func BenchmarkRegressionFitFullSpec(b *testing.B) {
	e := sharedFixture(b)
	// Rebuild a dataset from the live models' training residual path is
	// private; instead time a fresh fit through the public API at the
	// configured budget on one benchmark.
	opts := benchOptions()
	opts.Benchmarks = []string{"gzip"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Train(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perf, _, err := e.Models("gzip")
	if err != nil {
		b.Fatal(err)
	}
	logFigure(b, fmt.Sprintf("gzip performance model: R2=%.4f adjR2=%.4f coefficients=%d",
		perf.R2(), perf.AdjR2(), perf.NumCoefficients()))
}

// BenchmarkPredictionThroughput measures single-point prediction, the
// operation the paper quotes as "thousands of predictions in a few
// seconds".
func BenchmarkPredictionThroughput(b *testing.B) {
	e := sharedFixture(b)
	perf, pow, err := e.Models("gcc")
	if err != nil {
		b.Fatal(err)
	}
	get := arch.PredictorGetter(arch.Baseline())
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += perf.Predict(get) + pow.Predict(get)
	}
	b.StopTimer()
	if sink <= 0 {
		b.Fatal("predictions vanished")
	}
}

// BenchmarkCompiledPredict compares single-point prediction through the
// three evaluation paths: the interpreted models, the compiled value
// path (arbitrary configurations) and the compiled level-table path (the
// sweep hot loop). Each iteration predicts both bips and watts.
func BenchmarkCompiledPredict(b *testing.B) {
	e := sharedFixture(b)
	perf, pow, err := e.Models("gcc")
	if err != nil {
		b.Fatal(err)
	}
	pair, err := eval.CompilePair(perf, pow, e.StudySpace)
	if err != nil {
		b.Fatal(err)
	}
	pt := arch.BaselinePoint(e.StudySpace)
	cfg := e.StudySpace.Config(pt)
	get := arch.PredictorGetter(cfg)
	want := perf.Predict(get) + pow.Predict(get)
	check := func(b *testing.B, sink float64, n int) {
		b.Helper()
		if sink != want*float64(n) {
			b.Fatalf("paths diverged: sink %v, want %v", sink, want*float64(n))
		}
	}
	b.Run("interpreted", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += perf.Predict(get) + pow.Predict(get)
		}
		b.StopTimer()
		check(b, sink, b.N)
	})
	b.Run("compiled-values", func(b *testing.B) {
		var scratch eval.PairScratch
		var sink float64
		for i := 0; i < b.N; i++ {
			bips, watts := pair.EvalConfig(cfg, &scratch)
			sink += bips + watts
		}
		b.StopTimer()
		check(b, sink, b.N)
	})
	b.Run("compiled-levels", func(b *testing.B) {
		var scratch eval.PairScratch
		lev := pt[:]
		var sink float64
		for i := 0; i < b.N; i++ {
			bips, watts := pair.EvalLevels(lev, &scratch)
			sink += bips + watts
		}
		b.StopTimer()
		check(b, sink, b.N)
	})
}

// BenchmarkBoxplotConstruction measures the statistics substrate on a
// 37,500-value population (one depth bin of the enhanced analysis).
func BenchmarkBoxplotConstruction(b *testing.B) {
	data := make([]float64, 37500)
	for i := range data {
		data[i] = float64(i%977) / 977
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box := stats.NewBoxplot(data)
		if box.N != len(data) {
			b.Fatal("bad boxplot")
		}
	}
}

// BenchmarkSplineBasis measures the restricted-cubic-spline evaluation in
// the prediction hot path.
func BenchmarkSplineBasis(b *testing.B) {
	knots := regression.Knots([]float64{9, 12, 15, 18, 21, 24, 27, 30, 33, 36}, 4)
	if knots == nil {
		b.Fatal("no knots")
	}
	buf := make([]float64, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = regression.AppendSplineBasis(buf[:0], 19.5, knots)
	}
	_ = buf
}
