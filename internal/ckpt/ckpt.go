// Package ckpt reads and writes checksummed checkpoint files for
// long-running phases (dataset building, exhaustive sweeps). A
// checkpoint is a JSON envelope carrying a format version, an identity
// key describing the run parameters that produced it, a CRC32 checksum
// of the payload bytes, and the payload itself. Files are written
// atomically (temp file + fsync + rename), so a crash mid-write leaves
// either the previous checkpoint or none — never a torn file; a load
// that fails its checksum therefore indicates real corruption and is
// refused with a typed error rather than silently restarted.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"repro/internal/atomicio"
	"repro/internal/fault"
)

// Version is the checkpoint envelope format version.
const Version = 1

// Typed load failures. ErrNotExist means no checkpoint was saved (start
// fresh); the others mean a checkpoint exists but must not be resumed
// from, and the caller should surface them rather than guess.
var (
	// ErrNotExist reports that no checkpoint file exists at the path.
	ErrNotExist = fs.ErrNotExist
	// ErrVersion reports an envelope written by an incompatible format.
	ErrVersion = errors.New("ckpt: incompatible checkpoint version")
	// ErrIdentity reports a checkpoint from a run with different
	// parameters (seed, sample count, benchmarks, ...). Resuming it would
	// silently mix two experiments.
	ErrIdentity = errors.New("ckpt: checkpoint identity mismatch")
	// ErrChecksum reports payload corruption. Atomic writes rule out torn
	// files, so this means the file was damaged after the fact.
	ErrChecksum = errors.New("ckpt: checkpoint payload checksum mismatch")
)

// envelope is the on-disk frame around a payload.
type envelope struct {
	Version  int             `json:"version"`
	Identity string          `json:"identity"`
	CRC32    uint32          `json:"crc32"`
	Payload  json.RawMessage `json:"payload"`
}

// Save atomically writes payload (JSON-marshaled) to path under the
// given identity key.
func Save(path, identity string, payload any) error {
	// Resilience-test injection point: a failed checkpoint write must
	// fail the phase loudly, never leave a half-written file (the atomic
	// rename guarantees the latter).
	if err := fault.Here("ckpt.save"); err != nil {
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("ckpt: marshaling payload for %s: %w", path, err)
	}
	env := envelope{
		Version:  Version,
		Identity: identity,
		CRC32:    crc32.ChecksumIEEE(raw),
		Payload:  raw,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("ckpt: marshaling envelope for %s: %w", path, err)
	}
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	return nil
}

// Load reads the checkpoint at path, verifies version, identity and
// checksum, and unmarshals the payload. Failures are typed: ErrNotExist
// (no checkpoint), ErrVersion, ErrIdentity, ErrChecksum (all wrapped
// with the path for context).
func Load(path, identity string, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("ckpt: %s: %w", path, ErrNotExist)
		}
		return fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("ckpt: %s is not a checkpoint envelope: %w", path, err)
	}
	if env.Version != Version {
		return fmt.Errorf("ckpt: %s has version %d, want %d: %w", path, env.Version, Version, ErrVersion)
	}
	if env.Identity != identity {
		return fmt.Errorf("ckpt: %s was written by run %q, this run is %q: %w", path, env.Identity, identity, ErrIdentity)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return fmt.Errorf("ckpt: %s payload crc %08x, envelope says %08x: %w", path, got, env.CRC32, ErrChecksum)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("ckpt: unmarshaling %s payload: %w", path, err)
	}
	return nil
}
