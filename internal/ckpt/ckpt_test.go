package ckpt

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Completed int       `json:"completed"`
	Values    []float64 `json:"values"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	in := payload{Completed: 3, Values: []float64{1.5, 0.1 + 0.2, -0}}
	if err := Save(path, "run-a", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "run-a", &out); err != nil {
		t.Fatal(err)
	}
	if out.Completed != in.Completed || len(out.Values) != len(in.Values) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	for i := range in.Values {
		// Floats must round-trip bit-exactly; resume correctness depends
		// on it.
		if out.Values[i] != in.Values[i] {
			t.Fatalf("value %d = %v, want %v", i, out.Values[i], in.Values[i])
		}
	}
}

func TestLoadMissingIsErrNotExist(t *testing.T) {
	err := Load(filepath.Join(t.TempDir(), "none.ckpt"), "id", &payload{})
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestLoadRefusesIdentityMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := Save(path, "seed=1", payload{Completed: 1}); err != nil {
		t.Fatal(err)
	}
	err := Load(path, "seed=2", &payload{})
	if !errors.Is(err, ErrIdentity) {
		t.Fatalf("err = %v, want ErrIdentity", err)
	}
}

func TestLoadRefusesCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := Save(path, "id", payload{Completed: 2, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["payload"] = json.RawMessage(`{"completed":999,"values":[1]}`)
	tampered, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "id", &payload{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestLoadRefusesVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := os.WriteFile(path, []byte(`{"version":999,"identity":"id","crc32":0,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "id", &payload{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}
