// Package cache implements set-associative caches with true-LRU
// replacement, the memory substrate of the timing simulator. The modeled
// hierarchy matches the paper's Table 3: split L1 instruction and data
// caches backed by a unified L2, all with 128-byte blocks.
package cache

import "fmt"

// Cache is one level of set-associative cache. The zero value is not
// usable; construct with New.
type Cache struct {
	name      string
	sets      int
	assoc     int
	blockBits uint
	setMask   uint32

	// tags[set*assoc+way]; valid bit folded in (tag 0 + valid flag).
	tags  []uint32
	valid []bool
	// lru[set*assoc+way] holds a recency counter; larger = more recent.
	lru     []uint64
	counter uint64

	accesses, misses uint64
}

// New constructs a cache of the given capacity in bytes with the given
// associativity and block size. Capacity must be divisible by
// assoc*blockBytes and the set count must be a power of two.
func New(name string, capacityBytes, assoc, blockBytes int) (*Cache, error) {
	c := &Cache{}
	if err := c.Configure(name, capacityBytes, assoc, blockBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// Configure reshapes the cache to the given geometry, reusing the
// existing backing arrays when they are large enough (so a pooled cache
// reconfigured run after run reaches a steady state with zero heap
// allocations), and clears contents and statistics. The geometry rules
// are those of New.
func (c *Cache) Configure(name string, capacityBytes, assoc, blockBytes int) error {
	if capacityBytes <= 0 || assoc <= 0 || blockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry for %s", name)
	}
	if blockBytes&(blockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", blockBytes)
	}
	blocks := capacityBytes / blockBytes
	if blocks*blockBytes != capacityBytes {
		return fmt.Errorf("cache: capacity %d not divisible by block size %d", capacityBytes, blockBytes)
	}
	if assoc > blocks {
		assoc = blocks // degenerate small cache: clamp to fully associative
	}
	sets := blocks / assoc
	if sets*assoc != blocks {
		return fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, assoc)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	blockBits := uint(0)
	for 1<<blockBits != blockBytes {
		blockBits++
	}
	c.name = name
	c.sets = sets
	c.assoc = assoc
	c.blockBits = blockBits
	c.setMask = uint32(sets - 1)
	c.tags = growUint32(c.tags, blocks)
	c.valid = growBool(c.valid, blocks)
	c.lru = growUint64(c.lru, blocks)
	c.Reset()
	return nil
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Access looks up the block containing addr, installing it on a miss
// (allocate-on-miss for both reads and writes, matching a write-allocate
// write-back design). It reports whether the access hit.
func (c *Cache) Access(addr uint32) bool {
	c.accesses++
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	tag := block // full block number as tag; set bits are redundant but harmless
	base := set * c.assoc

	c.counter++
	// One bounds check per set, not per way: the inner loops below run on
	// these set-local views, which the compiler proves in range.
	tags := c.tags[base : base+c.assoc]
	valid := c.valid[base : base+c.assoc]
	lru := c.lru[base : base+c.assoc]
	// Hit path.
	for w, v := range valid {
		if v && tags[w] == tag {
			lru[w] = c.counter
			return true
		}
	}
	// Miss: fill the invalid or least recently used way.
	c.misses++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w, v := range valid {
		if !v {
			victim = w
			break
		}
		if lru[w] < oldest {
			oldest = lru[w]
			victim = w
		}
	}
	tags[victim] = tag
	valid[victim] = true
	lru[victim] = c.counter
	return false
}

// AccessDirect is Access specialized for a direct-mapped cache: no way
// loop, no set-local slices, small enough for the compiler to inline
// into simulator hot loops. State updates are bit-identical to Access
// with assoc 1 (where the hit way and the victim way are the same way,
// so the recency write hoists out of the hit/miss split). Callers must
// ensure Assoc() == 1.
func (c *Cache) AccessDirect(addr uint32) bool {
	c.accesses++
	block := addr >> c.blockBits
	set := block & c.setMask
	c.counter++
	c.lru[set] = c.counter
	if c.valid[set] && c.tags[set] == block {
		return true
	}
	c.misses++
	c.tags[set] = block
	c.valid[set] = true
	return false
}

// Access2 is Access unrolled for a two-way set-associative cache — the
// data cache's fixed associativity in the paper's design space. Hit
// scan, victim choice (first invalid way, else least recently used with
// ties to way 0) and every state update are bit-identical to Access.
// Callers must ensure Assoc() == 2.
func (c *Cache) Access2(addr uint32) bool {
	c.accesses++
	block := addr >> c.blockBits
	base := int(block&c.setMask) * 2
	c.counter++
	t := c.tags[base : base+2 : base+2]
	v := c.valid[base : base+2 : base+2]
	l := c.lru[base : base+2 : base+2]
	if v[0] && t[0] == block {
		l[0] = c.counter
		return true
	}
	if v[1] && t[1] == block {
		l[1] = c.counter
		return true
	}
	c.misses++
	w := 0
	if v[0] && (!v[1] || l[1] < l[0]) {
		w = 1
	}
	t[w] = block
	v[w] = true
	l[w] = c.counter
	return false
}

// Access4 is Access unrolled for a four-way set-associative cache — the
// L2's fixed associativity. Semantics are bit-identical to Access;
// callers must ensure Assoc() == 4.
func (c *Cache) Access4(addr uint32) bool {
	c.accesses++
	block := addr >> c.blockBits
	base := int(block&c.setMask) * 4
	c.counter++
	t := c.tags[base : base+4 : base+4]
	v := c.valid[base : base+4 : base+4]
	l := c.lru[base : base+4 : base+4]
	if v[0] && t[0] == block {
		l[0] = c.counter
		return true
	}
	if v[1] && t[1] == block {
		l[1] = c.counter
		return true
	}
	if v[2] && t[2] == block {
		l[2] = c.counter
		return true
	}
	if v[3] && t[3] == block {
		l[3] = c.counter
		return true
	}
	c.misses++
	w := 0
	switch {
	case !v[0]:
		w = 0
	case !v[1]:
		w = 1
	case !v[2]:
		w = 2
	case !v[3]:
		w = 3
	default:
		min := l[0]
		if l[1] < min {
			w, min = 1, l[1]
		}
		if l[2] < min {
			w, min = 2, l[2]
		}
		if l[3] < min {
			w = 3
		}
	}
	t[w] = block
	v[w] = true
	l[w] = c.counter
	return false
}

// Rehit records another access to the block that the immediately
// preceding access left resident in a direct-mapped set: statistics and
// recency advance exactly as a full AccessDirect hit would, without the
// tag compare. Callers must ensure Assoc() == 1 and that set is the
// block's set index.
func (c *Cache) Rehit(set uint32) {
	c.accesses++
	c.counter++
	c.lru[set] = c.counter
}

// BlockShift returns log2 of the block size: addr >> BlockShift() is the
// block number.
func (c *Cache) BlockShift() uint { return c.blockBits }

// SetMask returns the mask extracting the set index from a block number.
func (c *Cache) SetMask() uint32 { return c.setMask }

// Probe reports whether the block containing addr is resident without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint32) bool {
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == block {
			return true
		}
	}
	return false
}

// Snapshot is an immutable copy of a cache's geometry and contents —
// tags, valid bits, recency counters and the LRU clock — taken at a
// moment in time. Restoring a snapshot reproduces replacement behaviour
// bit-for-bit, so warmed state can be captured once and reused across
// simulations that share the same reference stream and geometry.
type Snapshot struct {
	name      string
	sets      int
	assoc     int
	blockBits uint
	counter   uint64
	tags      []uint32
	valid     []bool
	lru       []uint64
}

// Snapshot deep-copies the cache's current state. Statistics are not
// captured; a restored cache starts with zeroed counters (the state a
// post-warmup ResetStats leaves behind).
func (c *Cache) Snapshot() *Snapshot {
	return &Snapshot{
		name:      c.name,
		sets:      c.sets,
		assoc:     c.assoc,
		blockBits: c.blockBits,
		counter:   c.counter,
		tags:      append([]uint32(nil), c.tags...),
		valid:     append([]bool(nil), c.valid...),
		lru:       append([]uint64(nil), c.lru...),
	}
}

// Bytes returns the heap footprint of the snapshot's payload arrays,
// used by memo budgets.
func (s *Snapshot) Bytes() int64 {
	return int64(len(s.tags))*4 + int64(len(s.valid)) + int64(len(s.lru))*8
}

// Restore reshapes the cache to the snapshot's geometry (reusing backing
// arrays when large enough, like Configure) and copies the snapshot's
// contents in. Statistics are zeroed. After Restore the cache behaves
// exactly as the snapshotted cache did after its stats reset.
func (c *Cache) Restore(s *Snapshot) {
	n := s.sets * s.assoc
	c.name = s.name
	c.sets = s.sets
	c.assoc = s.assoc
	c.blockBits = s.blockBits
	c.setMask = uint32(s.sets - 1)
	c.tags = growUint32(c.tags, n)
	c.valid = growBool(c.valid, n)
	c.lru = growUint64(c.lru, n)
	copy(c.tags, s.tags)
	copy(c.valid, s.valid)
	copy(c.lru, s.lru)
	c.counter = s.counter
	c.accesses = 0
	c.misses = 0
}

// ResetStats clears the access counters but keeps cache contents: used
// after a warmup pass so measured miss rates reflect steady state rather
// than cold start.
func (c *Cache) ResetStats() {
	c.accesses = 0
	c.misses = 0
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.counter = 0
	c.accesses = 0
	c.misses = 0
}

// Stats returns the access and miss counts since the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
