// Package cache implements set-associative caches with true-LRU
// replacement, the memory substrate of the timing simulator. The modeled
// hierarchy matches the paper's Table 3: split L1 instruction and data
// caches backed by a unified L2, all with 128-byte blocks.
package cache

import "fmt"

// Cache is one level of set-associative cache. The zero value is not
// usable; construct with New.
type Cache struct {
	name      string
	sets      int
	assoc     int
	blockBits uint
	setMask   uint32

	// tags[set*assoc+way]; valid bit folded in (tag 0 + valid flag).
	tags  []uint32
	valid []bool
	// lru[set*assoc+way] holds a recency counter; larger = more recent.
	lru     []uint64
	counter uint64

	accesses, misses uint64
}

// New constructs a cache of the given capacity in bytes with the given
// associativity and block size. Capacity must be divisible by
// assoc*blockBytes and the set count must be a power of two.
func New(name string, capacityBytes, assoc, blockBytes int) (*Cache, error) {
	if capacityBytes <= 0 || assoc <= 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry for %s", name)
	}
	if blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d not a power of two", blockBytes)
	}
	blocks := capacityBytes / blockBytes
	if blocks*blockBytes != capacityBytes {
		return nil, fmt.Errorf("cache: capacity %d not divisible by block size %d", capacityBytes, blockBytes)
	}
	if assoc > blocks {
		assoc = blocks // degenerate small cache: clamp to fully associative
	}
	sets := blocks / assoc
	if sets*assoc != blocks {
		return nil, fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, assoc)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	blockBits := uint(0)
	for 1<<blockBits != blockBytes {
		blockBits++
	}
	return &Cache{
		name:      name,
		sets:      sets,
		assoc:     assoc,
		blockBits: blockBits,
		setMask:   uint32(sets - 1),
		tags:      make([]uint32, sets*assoc),
		valid:     make([]bool, sets*assoc),
		lru:       make([]uint64, sets*assoc),
	}, nil
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Access looks up the block containing addr, installing it on a miss
// (allocate-on-miss for both reads and writes, matching a write-allocate
// write-back design). It reports whether the access hit.
func (c *Cache) Access(addr uint32) bool {
	c.accesses++
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	tag := block >> 0 // full block number as tag; set bits are redundant but harmless
	base := set * c.assoc

	c.counter++
	// Hit path.
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.lru[base+w] = c.counter
			return true
		}
	}
	// Miss: fill the invalid or least recently used way.
	c.misses++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.lru[victim] = c.counter
	return false
}

// Probe reports whether the block containing addr is resident without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint32) bool {
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == block {
			return true
		}
	}
	return false
}

// ResetStats clears the access counters but keeps cache contents: used
// after a warmup pass so measured miss rates reflect steady state rather
// than cold start.
func (c *Cache) ResetStats() {
	c.accesses = 0
	c.misses = 0
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.counter = 0
	c.accesses = 0
	c.misses = 0
}

// Stats returns the access and miss counts since the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
