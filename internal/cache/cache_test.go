package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustNew(t *testing.T, name string, capacity, assoc, block int) *Cache {
	t.Helper()
	c, err := New(name, capacity, assoc, block)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, "l1", 32*1024, 2, 128)
	if c.Sets() != 128 || c.Assoc() != 2 {
		t.Fatalf("sets=%d assoc=%d, want 128/2", c.Sets(), c.Assoc())
	}
	if c.Name() != "l1" {
		t.Fatal("name wrong")
	}
}

func TestGeometryErrors(t *testing.T) {
	cases := []struct {
		cap, assoc, block int
	}{
		{0, 1, 128},
		{1024, 0, 128},
		{1024, 1, 0},
		{1024, 1, 100},    // block not power of two
		{1000, 1, 128},    // capacity not divisible
		{3 * 128, 1, 128}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := New("bad", c.cap, c.assoc, c.block); err == nil {
			t.Fatalf("geometry %+v accepted", c)
		}
	}
}

func TestAssocClampedToFullyAssociative(t *testing.T) {
	// 2 blocks total with assoc 8: clamps to 2-way fully associative.
	c, err := New("tiny", 256, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.Assoc() != 2 || c.Sets() != 1 {
		t.Fatalf("tiny cache geometry: sets=%d assoc=%d", c.Sets(), c.Assoc())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, "l1", 1024, 2, 128)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(4) { // same block
		t.Fatal("same-block access missed")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 3/1", acc, miss)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-set cache, 128B blocks: addresses 0, 256, 512 all
	// map to set 0.
	c := mustNew(t, "dm", 256, 1, 128)
	c.Access(0)
	c.Access(256) // evicts 0
	if c.Access(0) {
		t.Fatal("evicted block still hit")
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	// 2-way, 1 set: blocks A, B, C. Touch A, B, re-touch A, then C must
	// evict B (the least recently used), not A.
	c := mustNew(t, "fa", 256, 2, 128)
	a, b, cc := uint32(0), uint32(256), uint32(512)
	c.Access(a)
	c.Access(b)
	c.Access(a)  // A most recent
	c.Access(cc) // evicts B
	if !c.Access(a) {
		t.Fatal("A was evicted, LRU broken")
	}
	if c.Access(b) {
		t.Fatal("B should have been evicted")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mustNew(t, "p", 256, 2, 128)
	c.Access(0)
	accBefore, missBefore := c.Stats()
	if !c.Probe(0) {
		t.Fatal("probe missed resident block")
	}
	if c.Probe(512) {
		t.Fatal("probe hit absent block")
	}
	acc, miss := c.Stats()
	if acc != accBefore || miss != missBefore {
		t.Fatal("probe changed statistics")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, "r", 1024, 2, 128)
	c.Access(0)
	c.Access(128)
	c.Reset()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived reset")
	}
}

func TestMissRate(t *testing.T) {
	c := mustNew(t, "mr", 1024, 2, 128)
	if c.MissRate() != 0 {
		t.Fatal("miss rate before accesses should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestLargerCacheNeverWorseOnLRUFriendlyStream(t *testing.T) {
	// Inclusion property of LRU: for a sequence of accesses, a larger
	// fully-associative LRU cache cannot miss more than a smaller one.
	r := rng.New(31)
	addrs := make([]uint32, 30000)
	for i := range addrs {
		// Zipf-ish reuse: mostly small working set with a long tail.
		var block uint32
		if r.Bool(0.8) {
			block = uint32(r.Intn(100))
		} else {
			block = uint32(r.Intn(5000))
		}
		addrs[i] = block * 128
	}
	miss := func(blocks int) uint64 {
		c, err := New("fa", blocks*128, blocks, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs {
			c.Access(a)
		}
		_, m := c.Stats()
		return m
	}
	small := miss(64)
	big := miss(1024)
	if big > small {
		t.Fatalf("bigger cache missed more: %d vs %d", big, small)
	}
	if big == small {
		t.Fatal("cache size had no effect; stream not exercising capacity")
	}
}

// Property: hit/miss accounting always sums correctly and repeated access
// to one block hits after the first touch.
func TestQuickAccountingConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c, err := New("q", 4*1024, 2, 128)
		if err != nil {
			return false
		}
		n := 500
		var hits uint64
		for i := 0; i < n; i++ {
			if c.Access(uint32(r.Intn(64)) * 128) {
				hits++
			}
		}
		acc, miss := c.Stats()
		return acc == uint64(n) && miss == uint64(n)-hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: after accessing an address, an immediate probe hits.
func TestQuickAccessThenProbe(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c, err := New("q2", 2*1024, 4, 128)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			addr := uint32(r.Intn(1 << 20))
			c.Access(addr)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c, err := New("bench", 32*1024, 2, 128)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(1<<16)) * 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}
