package cache

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustNew(t *testing.T, name string, capacity, assoc, block int) *Cache {
	t.Helper()
	c, err := New(name, capacity, assoc, block)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, "l1", 32*1024, 2, 128)
	if c.Sets() != 128 || c.Assoc() != 2 {
		t.Fatalf("sets=%d assoc=%d, want 128/2", c.Sets(), c.Assoc())
	}
	if c.Name() != "l1" {
		t.Fatal("name wrong")
	}
}

func TestGeometryErrors(t *testing.T) {
	cases := []struct {
		cap, assoc, block int
	}{
		{0, 1, 128},
		{1024, 0, 128},
		{1024, 1, 0},
		{1024, 1, 100},    // block not power of two
		{1000, 1, 128},    // capacity not divisible
		{3 * 128, 1, 128}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := New("bad", c.cap, c.assoc, c.block); err == nil {
			t.Fatalf("geometry %+v accepted", c)
		}
	}
}

func TestAssocClampedToFullyAssociative(t *testing.T) {
	// 2 blocks total with assoc 8: clamps to 2-way fully associative.
	c, err := New("tiny", 256, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c.Assoc() != 2 || c.Sets() != 1 {
		t.Fatalf("tiny cache geometry: sets=%d assoc=%d", c.Sets(), c.Assoc())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, "l1", 1024, 2, 128)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(4) { // same block
		t.Fatal("same-block access missed")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 3/1", acc, miss)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-set cache, 128B blocks: addresses 0, 256, 512 all
	// map to set 0.
	c := mustNew(t, "dm", 256, 1, 128)
	c.Access(0)
	c.Access(256) // evicts 0
	if c.Access(0) {
		t.Fatal("evicted block still hit")
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	// 2-way, 1 set: blocks A, B, C. Touch A, B, re-touch A, then C must
	// evict B (the least recently used), not A.
	c := mustNew(t, "fa", 256, 2, 128)
	a, b, cc := uint32(0), uint32(256), uint32(512)
	c.Access(a)
	c.Access(b)
	c.Access(a)  // A most recent
	c.Access(cc) // evicts B
	if !c.Access(a) {
		t.Fatal("A was evicted, LRU broken")
	}
	if c.Access(b) {
		t.Fatal("B should have been evicted")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mustNew(t, "p", 256, 2, 128)
	c.Access(0)
	accBefore, missBefore := c.Stats()
	if !c.Probe(0) {
		t.Fatal("probe missed resident block")
	}
	if c.Probe(512) {
		t.Fatal("probe hit absent block")
	}
	acc, miss := c.Stats()
	if acc != accBefore || miss != missBefore {
		t.Fatal("probe changed statistics")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, "r", 1024, 2, 128)
	c.Access(0)
	c.Access(128)
	c.Reset()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived reset")
	}
}

func TestMissRate(t *testing.T) {
	c := mustNew(t, "mr", 1024, 2, 128)
	if c.MissRate() != 0 {
		t.Fatal("miss rate before accesses should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestLargerCacheNeverWorseOnLRUFriendlyStream(t *testing.T) {
	// Inclusion property of LRU: for a sequence of accesses, a larger
	// fully-associative LRU cache cannot miss more than a smaller one.
	r := rng.New(31)
	addrs := make([]uint32, 30000)
	for i := range addrs {
		// Zipf-ish reuse: mostly small working set with a long tail.
		var block uint32
		if r.Bool(0.8) {
			block = uint32(r.Intn(100))
		} else {
			block = uint32(r.Intn(5000))
		}
		addrs[i] = block * 128
	}
	miss := func(blocks int) uint64 {
		c, err := New("fa", blocks*128, blocks, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range addrs {
			c.Access(a)
		}
		_, m := c.Stats()
		return m
	}
	small := miss(64)
	big := miss(1024)
	if big > small {
		t.Fatalf("bigger cache missed more: %d vs %d", big, small)
	}
	if big == small {
		t.Fatal("cache size had no effect; stream not exercising capacity")
	}
}

// Property: hit/miss accounting always sums correctly and repeated access
// to one block hits after the first touch.
func TestQuickAccountingConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c, err := New("q", 4*1024, 2, 128)
		if err != nil {
			return false
		}
		n := 500
		var hits uint64
		for i := 0; i < n; i++ {
			if c.Access(uint32(r.Intn(64)) * 128) {
				hits++
			}
		}
		acc, miss := c.Stats()
		return acc == uint64(n) && miss == uint64(n)-hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: after accessing an address, an immediate probe hits.
func TestQuickAccessThenProbe(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c, err := New("q2", 2*1024, 4, 128)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			addr := uint32(r.Intn(1 << 20))
			c.Access(addr)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c, err := New("bench", 32*1024, 2, 128)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	addrs := make([]uint32, 4096)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(1<<16)) * 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

// Snapshot/Restore must reproduce replacement behaviour bit-for-bit:
// an identical access stream applied to the original and to a restored
// copy must produce identical hit/miss sequences, even across geometry
// changes of the destination cache.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	r := rng.New(7)
	warm := mustNew(t, "d", 8*1024, 2, 128)
	addrs := make([]uint32, 4000)
	for i := range addrs {
		addrs[i] = uint32(r.Intn(1 << 18))
		warm.Access(addrs[i])
	}
	warm.ResetStats()
	snap := warm.Snapshot()

	// The destination starts with a different (larger) geometry, so
	// Restore must reshape it, and a previous life's contents must not
	// bleed through.
	dst := mustNew(t, "other", 64*1024, 4, 128)
	for _, a := range addrs {
		dst.Access(a ^ 0x5a5a)
	}
	dst.Restore(snap)
	if dst.Sets() != warm.Sets() || dst.Assoc() != warm.Assoc() {
		t.Fatalf("restored geometry %d/%d, want %d/%d",
			dst.Sets(), dst.Assoc(), warm.Sets(), warm.Assoc())
	}
	if acc, miss := dst.Stats(); acc != 0 || miss != 0 {
		t.Fatalf("restored stats %d/%d, want zeroed", acc, miss)
	}
	probe := make([]uint32, 4000)
	for i := range probe {
		probe[i] = uint32(r.Intn(1 << 18))
	}
	for i, a := range probe {
		if warm.Access(a) != dst.Access(a) {
			t.Fatalf("access %d (addr %#x): restored cache diverged from original", i, a)
		}
	}
	wa, wm := warm.Stats()
	da, dm := dst.Stats()
	if wa != da || wm != dm {
		t.Fatalf("stats diverged: original %d/%d restored %d/%d", wa, wm, da, dm)
	}
}

// A snapshot must be immune to later mutation of the source cache.
func TestSnapshotIsDeepCopy(t *testing.T) {
	c := mustNew(t, "d", 1024, 1, 128)
	c.Access(0)
	snap := c.Snapshot()
	for i := 0; i < 64; i++ {
		c.Access(uint32(i * 128)) // overwrite every set
	}
	fresh := mustNew(t, "d", 1024, 1, 128)
	fresh.Restore(snap)
	if !fresh.Probe(0) {
		t.Fatal("snapshot lost block 0 after source mutation")
	}
	if fresh.Probe(7 * 128) {
		t.Fatal("snapshot picked up a block accessed after it was taken")
	}
}

// Configure must reuse backing arrays once grown: reconfiguring a cache
// between geometries it has already seen allocates nothing.
func TestConfigureSteadyStateAllocFree(t *testing.T) {
	var c Cache
	if err := c.Configure("d", 64*1024, 4, 128); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := c.Configure("d", 8*1024, 2, 128); err != nil {
			t.Fatal(err)
		}
		if err := c.Configure("d", 64*1024, 4, 128); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Configure allocates %v in steady state, want 0", avg)
	}
}

// TestAccessSpecializationsMatchGeneric drives the unrolled 2-way and
// 4-way access paths and the generic loop over the same random reference
// stream and requires identical hit/miss decisions, statistics and final
// contents — the bit-identicality contract the fast simulator kernel
// relies on.
func TestAccessSpecializationsMatchGeneric(t *testing.T) {
	cases := []struct {
		assoc  int
		access func(c *Cache, addr uint32) bool
	}{
		{2, func(c *Cache, addr uint32) bool { return c.Access2(addr) }},
		{4, func(c *Cache, addr uint32) bool { return c.Access4(addr) }},
	}
	for _, tc := range cases {
		ref := mustNew(t, "ref", 8*1024, tc.assoc, 128)
		spec := mustNew(t, "ref", 8*1024, tc.assoc, 128)
		r := rng.New(uint64(tc.assoc))
		for i := 0; i < 20000; i++ {
			// A footprint a few times the cache provokes hits, conflict
			// misses, invalid-way fills and LRU evictions alike.
			addr := uint32(r.Intn(64*1024)) &^ 127
			if ref.Access(addr) != tc.access(spec, addr) {
				t.Fatalf("assoc %d: access %d to %#x diverged", tc.assoc, i, addr)
			}
		}
		ra, rm := ref.Stats()
		sa, sm := spec.Stats()
		if ra != sa || rm != sm {
			t.Fatalf("assoc %d: stats %d/%d vs %d/%d", tc.assoc, ra, rm, sa, sm)
		}
		want, got := ref.Snapshot(), spec.Snapshot()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("assoc %d: final contents diverged", tc.assoc)
		}
	}
}
