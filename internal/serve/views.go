package serve

import (
	"bytes"
	"compress/gzip"
	"container/heap"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pareto"
)

// This file is the materialized-view layer behind /v1/sweep and
// /v1/pareto. The daemon's expensive read endpoints all derive from one
// immutable artifact — the per-(generation, benchmark) exhaustive
// characterization — yet the pre-view handlers re-derived their answers
// per request: every sweep re-ranked all 262,500 cached predictions and
// every pareto rebuilt the full point set and re-ran the discretized
// frontier. That redundant recomputation was the measured p99 tail
// (EXPERIMENTS.md §Serving). The same memoize-the-expensive-view idea
// that drives the paper's models (fit once, query cheaply) applies one
// layer up: compute each generation's derived views once, then serve
// bytes.
//
// Three tiers, all hanging off the generation so a reload invalidates
// everything atomically (a new generation starts with empty caches and
// requests resolve their generation exactly once):
//
//  1. benchView — per (generation, benchmark): the ranked top-K designs
//     (heap-based partial selection, K capped at MaxSweepTop) and the
//     physical (delay, power) point set in structure-of-arrays form,
//     built once behind a singleflight on top of the raw sweep cache.
//  2. viewEntry — per (generation, endpoint, benchmark, parameter): the
//     final encoded JSON response bytes (plus a lazily-built gzip
//     variant), so a hot request is served with zero recomputation and
//     near-zero allocation.
//  3. Conditional requests — every cached response carries a strong
//     ETag derived from (generation, view key); a request presenting it
//     via If-None-Match is answered 304 with no body at all.
//
// Hit/miss/build counters thread through obs
// (serve.view.{hits,misses,builds}) into server Stats, /v1/healthz and
// the daemon's run manifest; each build runs under a serve.view.build
// span with a latency histogram.

// MaxSweepTop caps SweepRequest.Top and is the ranking depth
// precomputed per (generation, benchmark): any request up to the cap is
// a prefix of the materialized ranking.
const MaxSweepTop = 1000

// gzipMinBytes is the smallest response body worth compressing; tiny
// bodies fit one packet either way and gzip headers would grow them.
const gzipMinBytes = 512

// viewStats aggregates the view-cache counters. Owned by the Server
// (counters survive generation swaps); generations hold a pointer.
type viewStats struct {
	hits   atomic.Int64
	misses atomic.Int64
	builds atomic.Int64

	hitCtr    *obs.Counter
	missCtr   *obs.Counter
	buildCtr  *obs.Counter
	buildHist *obs.Histogram
}

func newViewStats() *viewStats {
	return &viewStats{
		hitCtr:    obs.DefaultRegistry.Counter("serve.view.hits"),
		missCtr:   obs.DefaultRegistry.Counter("serve.view.misses"),
		buildCtr:  obs.DefaultRegistry.Counter("serve.view.builds"),
		buildHist: obs.DefaultRegistry.Histogram("serve.view.build"),
	}
}

// viewKey identifies one materialized response: endpoint kind, the
// benchmark, and the single integer parameter that shapes the response
// (top for sweep, targets for pareto). Keys are bounded — top is
// clamped to MaxSweepTop and targets validated against maxParetoTargets
// — so the entry map cannot grow without bound.
type viewKey struct {
	kind  string
	bench string
	param int
}

// etag renders the key as a strong entity tag. The generation id is the
// leading component: a reload changes every tag, so a client that
// revalidates with a stale tag gets a full 200 from the new generation,
// never a false 304.
func (k viewKey) etag(gen int64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("g%d-%s-%s-%d", gen, k.kind, k.bench, k.param))
}

// viewEntry is one materialized response. body is the exact byte
// sequence writeJSON would have produced for the same value — encoded
// once, at build time — so responses are bit-identical whether they
// were served from the cache or built on the miss that populated it.
type viewEntry struct {
	done chan struct{} // closed when the build finishes
	err  error         // build failure; failed entries are dropped for retry
	etag string
	body []byte

	gzOnce sync.Once
	gz     []byte
}

// gzipBody returns the gzip variant, compressing once on first use.
// Returns nil (serve identity) when compression does not pay.
func (v *viewEntry) gzipBody() []byte {
	v.gzOnce.Do(func() {
		if len(v.body) < gzipMinBytes {
			return
		}
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(v.body); err != nil {
			return
		}
		if err := zw.Close(); err != nil {
			return
		}
		if buf.Len() < len(v.body) {
			v.gz = buf.Bytes()
		}
	})
	return v.gz
}

// benchView is the per-(generation, benchmark) derived characterization:
// everything the response builders need that is independent of request
// parameters. Built once behind its own singleflight (on top of the raw
// sweep singleflight), then shared by every sweep/pareto view of the
// benchmark.
type benchView struct {
	done chan struct{}
	err  error

	// points is the full swept space size; physical counts the designs
	// with positive bips and watts (the only ones rankable/plottable).
	points   int
	physical int

	// top is the ranking by bips³/w, descending, ready for response
	// assembly: any requested top <= MaxSweepTop is a prefix slice.
	top []SweepDesign

	// The physical point set in structure-of-arrays form for the
	// discretized-frontier construction: ids[i] is the design index,
	// delays[i]/powers[i] its two minimized objectives. Compact and
	// immutable; every pareto view of this benchmark bins these columns.
	ids    []int
	delays []float64
	powers []float64
}

// viewState is the per-generation cache state: the benchmark-level
// derived views and the response-byte entries. Both maps are
// singleflighted under mu; built entries are immutable.
type viewState struct {
	mu      sync.Mutex
	benches map[string]*benchView
	entries map[viewKey]*viewEntry
	stats   *viewStats
}

func newViewState(stats *viewStats) *viewState {
	return &viewState{
		benches: make(map[string]*benchView),
		entries: make(map[viewKey]*viewEntry),
		stats:   stats,
	}
}

// benchView returns the derived characterization for bench, building it
// at most once per generation however many requests race on it cold.
// Waiters honor their own context; the build itself runs to completion
// (its expensive half, the raw sweep, is cached by the generation and
// bounded by the engine's batch deadline).
func (g *generation) benchView(ctx context.Context, bench string) (*benchView, error) {
	vs := g.views
	vs.mu.Lock()
	bv, ok := vs.benches[bench]
	if !ok {
		bv = &benchView{done: make(chan struct{})}
		vs.benches[bench] = bv
		vs.mu.Unlock()
		bv.err = bv.build(ctx, g, bench)
		if bv.err != nil {
			// Drop the failed build so a later request retries.
			vs.mu.Lock()
			if vs.benches[bench] == bv {
				delete(vs.benches, bench)
			}
			vs.mu.Unlock()
		}
		close(bv.done)
		return bv, bv.err
	}
	vs.mu.Unlock()
	select {
	case <-bv.done:
		return bv, bv.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build derives the benchmark view from the generation's raw sweep:
// one pass selects the top-MaxSweepTop designs by bips³/w through a
// bounded min-heap and collects the physical (delay, power) columns.
func (bv *benchView) build(ctx context.Context, g *generation, bench string) error {
	preds, err := g.sweep(ctx, bench)
	if err != nil {
		return err
	}
	bv.points = len(preds)
	ranked := topKByEfficiency(preds, MaxSweepTop)
	space := g.e.StudySpace
	bv.top = make([]SweepDesign, len(ranked))
	for i, p := range ranked {
		bv.top[i] = SweepDesign{
			Index:  p.Index,
			Config: space.Config(space.PointAt(p.Index)),
			BIPS:   p.BIPS,
			Watts:  p.Watts,
			BIPS3W: metrics.BIPS3W(p.BIPS, p.Watts),
		}
	}
	// Physical column pass. Sized exactly: count first so the three
	// columns are allocated once at their final length.
	n := 0
	for i := range preds {
		if preds[i].BIPS > 0 && preds[i].Watts > 0 {
			n++
		}
	}
	bv.physical = n
	bv.ids = make([]int, 0, n)
	bv.delays = make([]float64, 0, n)
	bv.powers = make([]float64, 0, n)
	for i := range preds {
		p := &preds[i]
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		bv.ids = append(bv.ids, p.Index)
		bv.delays = append(bv.delays, metrics.Delay(p.BIPS))
		bv.powers = append(bv.powers, p.Watts)
	}
	return nil
}

// effHeap is a min-heap over predictions ordered by bips³/w (ties broken
// by index, larger index first, so the heap root is always the weakest
// entry and the final ranking is deterministic).
type effHeap struct {
	preds []core.Prediction
	effs  []float64
}

func (h *effHeap) Len() int { return len(h.preds) }
func (h *effHeap) Less(i, j int) bool {
	if h.effs[i] != h.effs[j] {
		return h.effs[i] < h.effs[j]
	}
	return h.preds[i].Index > h.preds[j].Index
}
func (h *effHeap) Swap(i, j int) {
	h.preds[i], h.preds[j] = h.preds[j], h.preds[i]
	h.effs[i], h.effs[j] = h.effs[j], h.effs[i]
}
func (h *effHeap) Push(x any) { panic("effHeap: push unused") }
func (h *effHeap) Pop() (x any) {
	n := h.Len() - 1
	h.preds = h.preds[:n]
	h.effs = h.effs[:n]
	return nil
}

// topKByEfficiency returns the k highest-bips³/w physical predictions in
// descending order. Bounded selection: a size-k min-heap over one pass
// of the input (O(n log k) worst case, O(n) when the input is not
// adversarially ordered), instead of ranking the full slice. Ties are
// broken toward the lower design index, matching a stable full sort.
func topKByEfficiency(preds []core.Prediction, k int) []core.Prediction {
	if k <= 0 {
		return nil
	}
	h := &effHeap{
		preds: make([]core.Prediction, 0, k),
		effs:  make([]float64, 0, k),
	}
	for i := range preds {
		p := preds[i]
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		e := p.BIPS * p.BIPS * p.BIPS / p.Watts
		if len(h.preds) < k {
			h.preds = append(h.preds, p)
			h.effs = append(h.effs, e)
			if len(h.preds) == k {
				heap.Init(h)
			}
			continue
		}
		// Full heap: replace the root iff p outranks it (higher
		// efficiency, or equal efficiency with a lower index).
		if e < h.effs[0] || (e == h.effs[0] && p.Index > h.preds[0].Index) {
			continue
		}
		h.preds[0], h.effs[0] = p, e
		heap.Fix(h, 0)
	}
	if len(h.preds) < k && len(h.preds) > 1 {
		heap.Init(h)
	}
	// Drain the heap smallest-first into the tail of the result.
	out := make([]core.Prediction, len(h.preds))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.preds[0]
		heap.Pop(h)
	}
	return out
}

// view returns the materialized entry for key, building (and caching)
// it on first use. The build closure produces the response value; it is
// encoded once, with the exact writeJSON encoding, into the entry's
// byte cache. The returned hit flag reports whether the entry was
// already built when the caller arrived — the "zero recomputation,
// zero re-encode" path.
func (g *generation) view(ctx context.Context, key viewKey, build func(ctx context.Context) (any, error)) (entry *viewEntry, hit bool, err error) {
	vs := g.views
	vs.mu.Lock()
	v, ok := vs.entries[key]
	if !ok {
		v = &viewEntry{done: make(chan struct{}), etag: key.etag(g.id)}
		vs.entries[key] = v
		vs.mu.Unlock()

		sp := obs.Begin("serve.view.build",
			obs.String("kind", key.kind), obs.String("bench", key.bench))
		resp, err := build(ctx)
		if err == nil {
			v.body, err = encodeJSON(resp)
		}
		v.err = err
		sp.EndObserve(vs.stats.buildHist)
		if v.err != nil {
			vs.mu.Lock()
			if vs.entries[key] == v {
				delete(vs.entries, key)
			}
			vs.mu.Unlock()
		} else {
			vs.stats.builds.Add(1)
			vs.stats.buildCtr.Add(1)
		}
		close(v.done)
		return v, false, v.err
	}
	vs.mu.Unlock()
	select {
	case <-v.done:
		// Entries that were already built when we arrived are hits; a
		// waiter that parked on an in-flight build shared the miss.
		return v, true, v.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// serveView writes a materialized entry: 304 when the client's
// If-None-Match covers the entry's ETag, the gzip variant when the
// client accepts it and compression pays, the identity bytes otherwise.
// Headers carry the ETag either way so pollers can revalidate.
func serveView(w http.ResponseWriter, r *http.Request, v *viewEntry) {
	h := w.Header()
	h.Set("ETag", v.etag)
	h.Set("Vary", "Accept-Encoding")
	if inmMatches(r.Header.Get("If-None-Match"), v.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	body := v.body
	if acceptsGzip(r) {
		if gz := v.gzipBody(); gz != nil {
			h.Set("Content-Encoding", "gzip")
			body = gz
		}
	}
	h.Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

// inmMatches reports whether an If-None-Match header value covers etag.
// "*" matches any current representation; otherwise the header is a
// comma-separated tag list. Weak validators (W/ prefixes) compare by
// their opaque tag, per RFC 9110's weak comparison for If-None-Match.
func inmMatches(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc = strings.TrimSpace(enc)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}

// buildSweepResponse assembles the sweep response value for one
// materialized view: a prefix slice of the benchmark's precomputed
// ranking. Shared by the request path and prewarming.
func (g *generation) buildSweepResponse(ctx context.Context, bench string, top int) (any, error) {
	bv, err := g.benchView(ctx, bench)
	if err != nil {
		return nil, err
	}
	best := bv.top
	if top < len(best) {
		best = best[:top]
	}
	return SweepResponse{Bench: bench, Generation: g.id, Points: bv.points, Best: best}, nil
}

// buildParetoResponse assembles the pareto response value for one
// materialized view: the discretized frontier binned straight from the
// benchmark view's SoA columns — no per-request point-set rebuild.
func (g *generation) buildParetoResponse(ctx context.Context, bench string, targets int) (any, error) {
	bv, err := g.benchView(ctx, bench)
	if err != nil {
		return nil, err
	}
	frontier, err := pareto.DiscretizedFrontierColumns(bv.ids, bv.delays, bv.powers, targets)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	space := g.e.StudySpace
	resp := ParetoResponse{Bench: bench, Generation: g.id, Targets: targets}
	for _, fp := range frontier {
		resp.Frontier = append(resp.Frontier, ParetoDesign{
			Index:  fp.ID,
			Config: space.Config(space.PointAt(fp.ID)),
			DelayS: fp.Delay,
			Watts:  fp.Power,
		})
	}
	return resp, nil
}

// prewarm materializes the default sweep and pareto views for every
// benchmark of a generation, so the first client request after a (re)load
// is already a cache hit. Runs in the background; failures are dropped
// (the request path will rebuild and surface them). Prewarm builds count
// in the build counters but are neither hits nor misses — they are not
// requests.
func (s *Server) prewarm(g *generation) {
	ctx := context.Background()
	for _, bench := range g.e.Benchmarks() {
		bench := bench
		g.view(ctx, viewKey{kind: "sweep", bench: bench, param: defaultSweepTop},
			func(ctx context.Context) (any, error) { return g.buildSweepResponse(ctx, bench, defaultSweepTop) })
		g.view(ctx, viewKey{kind: "pareto", bench: bench, param: defaultParetoTargets},
			func(ctx context.Context) (any, error) { return g.buildParetoResponse(ctx, bench, defaultParetoTargets) })
	}
}
