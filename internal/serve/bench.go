package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// BenchOptions configures a load-test run against a live daemon.
type BenchOptions struct {
	// URL is the daemon base URL, e.g. http://127.0.0.1:8080.
	URL string
	// Duration is the measured wall time per endpoint (default 5s).
	Duration time.Duration
	// Concurrency is the number of closed-loop client workers per
	// endpoint (default 8). Each worker issues its next request as soon
	// as the previous one answers, hey-style.
	Concurrency int
	// Endpoints selects which endpoints to drive, in order; nil means
	// DefaultBenchEndpoints.
	Endpoints []string
	// Bench is the benchmark name used in request bodies; empty means
	// the first benchmark the daemon reports via /v1/healthz.
	Bench string
	// PointsPerRequest is how many design points each predict/simulate
	// request carries (default 1: the worst case for the engine, the
	// case coalescing exists to fix).
	PointsPerRequest int
	// Seed makes the driven index sequence deterministic (default 2007).
	Seed uint64
	// Warmup is driven but not measured before each endpoint's window
	// (default 200ms), so cold sweeps and cold caches are not billed to
	// the steady-state numbers.
	Warmup time.Duration
}

// DefaultBenchEndpoints is the endpoint order the driver uses when none
// is given. simulate is excluded by default: its per-request cost is
// simulator-bound and drowns the serving-layer signal at default trace
// lengths (drive it explicitly with -endpoints when wanted).
var DefaultBenchEndpoints = []string{"healthz", "predict", "sweep", "pareto"}

// simIndexPool bounds how many distinct design points the simulate
// endpoint is driven with, so steady-state traffic exercises the
// engine's memoization cache the way repeated study queries do.
const simIndexPool = 32

// EndpointReport is one endpoint's measured load-test result.
type EndpointReport struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	// Rejected counts 429 admission-control responses; Errors every
	// other non-2xx outcome or transport failure.
	Rejected int64   `json:"rejected,omitempty"`
	Errors   int64   `json:"errors,omitempty"`
	QPS      float64 `json:"qps"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`

	// ColdFirstMs is the latency of a single probe issued before any
	// warmup traffic (view-cached endpoints only). On a daemon that has
	// not served this endpoint yet it measures the uncached path — the
	// full characterization scan plus view build — which is what every
	// request paid before materialized views existed.
	ColdFirstMs float64 `json:"cold_first_ms,omitempty"`
	// P99SpeedupVsCold is ColdFirstMs / P99ms: how much faster the hot
	// p99 is than the uncached first request.
	P99SpeedupVsCold float64 `json:"p99_speedup_vs_cold,omitempty"`
	// ViewHits/ViewMisses are the server's view-cache counter deltas
	// across this endpoint's warmup+measurement window (the cold probe
	// lands before the baseline snapshot, so its miss is excluded), read
	// from /v1/healthz; ViewHitRate is hits/(hits+misses).
	ViewHits    int64   `json:"view_hits,omitempty"`
	ViewMisses  int64   `json:"view_misses,omitempty"`
	ViewHitRate float64 `json:"view_hit_rate,omitempty"`
}

// Report is the full load-test result, written to BENCH_serve.json.
type Report struct {
	GitRev      string  `json:"git_rev"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	URL         string  `json:"url"`
	Bench       string  `json:"bench"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`

	Endpoints []EndpointReport `json:"endpoints"`

	// Server-side coalescing evidence, read from /v1/healthz-adjacent
	// counters before and after the run is not available over the wire;
	// instead the driver records the healthz snapshot after the run.
	Healthz *HealthzResponse `json:"healthz,omitempty"`
}

// WriteFile writes the report as indented JSON via an atomic replace.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTest drives a live daemon and measures per-endpoint QPS and
// latency quantiles. It is the in-repo `hey`: closed-loop workers, one
// endpoint at a time, client-side latency clocks.
func LoadTest(opts BenchOptions) (*Report, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("serve: bench needs a -url")
	}
	opts.URL = strings.TrimRight(opts.URL, "/")
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.PointsPerRequest <= 0 {
		opts.PointsPerRequest = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 2007
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	} else if opts.Warmup == 0 {
		opts.Warmup = 200 * time.Millisecond
	}
	endpoints := opts.Endpoints
	if len(endpoints) == 0 {
		endpoints = DefaultBenchEndpoints
	}

	client := &http.Client{Timeout: 30 * time.Second}
	hz, err := fetchHealthz(client, opts.URL)
	if err != nil {
		return nil, fmt.Errorf("serve: bench target not healthy: %w", err)
	}
	if opts.Bench == "" {
		if len(hz.Benchmarks) == 0 {
			return nil, fmt.Errorf("serve: daemon reports no benchmarks")
		}
		opts.Bench = hz.Benchmarks[0]
	}

	rep := &Report{
		GitRev:      obs.GitRevision("."),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		URL:         opts.URL,
		Bench:       opts.Bench,
		DurationS:   opts.Duration.Seconds(),
		Concurrency: opts.Concurrency,
	}
	for _, ep := range endpoints {
		body, err := requestBodyFor(ep, opts, hz.SpaceSize)
		if err != nil {
			return nil, err
		}
		// View-cached endpoints get a single pre-warmup probe: on a fresh
		// daemon it pays the full uncached scan+build, giving the report a
		// cold-path baseline to compare the hot quantiles against.
		var coldMS float64
		if ep == "sweep" || ep == "pareto" {
			coldMS, err = probeOnce(client, opts, ep, body)
			if err != nil {
				return nil, fmt.Errorf("serve: cold probe of %s failed: %w", ep, err)
			}
		}
		before, _ := fetchHealthz(client, opts.URL)
		er, err := driveEndpoint(client, opts, ep, body)
		if err != nil {
			return nil, err
		}
		er.ColdFirstMs = coldMS
		if coldMS > 0 && er.P99ms > 0 {
			er.P99SpeedupVsCold = coldMS / er.P99ms
		}
		if after, err := fetchHealthz(client, opts.URL); err == nil && before != nil {
			er.ViewHits = after.ViewHits - before.ViewHits
			er.ViewMisses = after.ViewMisses - before.ViewMisses
			if total := er.ViewHits + er.ViewMisses; total > 0 {
				er.ViewHitRate = float64(er.ViewHits) / float64(total)
			}
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	if hz, err := fetchHealthz(client, opts.URL); err == nil {
		rep.Healthz = hz
	}
	return rep, nil
}

// bodyFunc produces the next request body for one worker, or nil for a
// GET endpoint.
type bodyFunc func(r *rng.Source) []byte

// requestBodyFor builds the body generator for one endpoint. predict
// draws uniform study-space indices (every request a distinct point — no
// cache help, pure engine throughput); simulate draws from a small pool
// so the memoization cache sees revisits, matching how the studies query
// the simulator.
func requestBodyFor(ep string, opts BenchOptions, spaceSize int) (bodyFunc, error) {
	if spaceSize <= 0 {
		spaceSize = 1
	}
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // request structs always marshal
		}
		return b
	}
	switch ep {
	case "healthz":
		return nil, nil
	case "predict":
		return func(r *rng.Source) []byte {
			idx := make([]int, opts.PointsPerRequest)
			for i := range idx {
				idx[i] = r.Intn(spaceSize)
			}
			return marshal(PointRequest{Bench: opts.Bench, Indices: idx})
		}, nil
	case "simulate":
		return func(r *rng.Source) []byte {
			idx := make([]int, opts.PointsPerRequest)
			for i := range idx {
				idx[i] = (r.Intn(simIndexPool) * (spaceSize / simIndexPool)) % spaceSize
			}
			return marshal(PointRequest{Bench: opts.Bench, Indices: idx})
		}, nil
	case "sweep":
		body := marshal(SweepRequest{Bench: opts.Bench, Top: 5})
		return func(*rng.Source) []byte { return body }, nil
	case "pareto":
		body := marshal(ParetoRequest{Bench: opts.Bench, Targets: 40})
		return func(*rng.Source) []byte { return body }, nil
	default:
		return nil, fmt.Errorf("serve: unknown bench endpoint %q", ep)
	}
}

// probeOnce issues a single request against one endpoint and returns its
// latency in milliseconds. A non-2xx answer is an error: the cold path
// must actually serve.
func probeOnce(client *http.Client, opts BenchOptions, ep string, body bodyFunc) (float64, error) {
	url := opts.URL + "/v1/" + ep
	r := rng.New(opts.Seed)
	t0 := time.Now()
	var resp *http.Response
	var err error
	if body == nil {
		resp, err = client.Get(url)
	} else {
		resp, err = client.Post(url, "application/json", bytes.NewReader(body(r)))
	}
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return 0, fmt.Errorf("%s returned %s", ep, resp.Status)
	}
	return float64(time.Since(t0).Microseconds()) / 1000, nil
}

// driveEndpoint runs the closed-loop workers for one endpoint and
// reduces their latency samples.
func driveEndpoint(client *http.Client, opts BenchOptions, ep string, body bodyFunc) (EndpointReport, error) {
	url := opts.URL + "/v1/" + ep
	type workerResult struct {
		latMS              []float64
		requests           int64
		rejected, errcount int64
	}
	results := make([]workerResult, opts.Concurrency)

	issue := func(r *rng.Source) (int, error) {
		var resp *http.Response
		var err error
		if body == nil {
			resp, err = client.Get(url)
		} else {
			resp, err = client.Post(url, "application/json", bytes.NewReader(body(r)))
		}
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	start := time.Now()
	measureFrom := start.Add(opts.Warmup)
	deadline := measureFrom.Add(opts.Duration)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(res *workerResult, seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for {
				t0 := time.Now()
				if !t0.Before(deadline) {
					return
				}
				code, err := issue(r)
				if t0.Before(measureFrom) {
					continue // warmup request: driven, not billed
				}
				res.requests++
				switch {
				case err != nil:
					res.errcount++
				case code == http.StatusTooManyRequests:
					res.rejected++
				case code >= 300:
					res.errcount++
				default:
					res.latMS = append(res.latMS, float64(time.Since(t0).Microseconds())/1000)
				}
			}
		}(&results[w], opts.Seed+uint64(w)*7919)
	}
	wg.Wait()
	elapsed := time.Since(measureFrom).Seconds()

	er := EndpointReport{Endpoint: ep}
	var lats []float64
	for _, res := range results {
		er.Requests += res.requests
		er.Rejected += res.rejected
		er.Errors += res.errcount
		lats = append(lats, res.latMS...)
	}
	if elapsed > 0 {
		er.QPS = float64(len(lats)) / elapsed
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		er.P50ms = stats.QuantileSorted(lats, 0.50)
		er.P99ms = stats.QuantileSorted(lats, 0.99)
		er.MeanMs = stats.Mean(lats)
	}
	return er, nil
}

// fetchHealthz reads and decodes /v1/healthz.
func fetchHealthz(client *http.Client, baseURL string) (*HealthzResponse, error) {
	resp, err := client.Get(baseURL + "/v1/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz returned %s", resp.Status)
	}
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return nil, err
	}
	return &hz, nil
}
