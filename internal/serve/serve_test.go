package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// Model fixture: train one tiny explorer per process and keep its saved
// model bytes; every test loader deserializes a fresh Explorer from them,
// which is exactly the production reload path (dse -savemodels → dsed
// -loadmodels) minus the filesystem.
var (
	modelOnce  sync.Once
	modelBytes []byte
	modelErr   error
)

func testOptions() core.Options {
	opts := core.DefaultOptions()
	opts.TrainSamples = 40
	opts.ValidationSamples = 5
	opts.TraceLen = 2000
	opts.Benchmarks = []string{"gzip", "mcf"}
	return opts
}

func savedModels(t *testing.T) []byte {
	t.Helper()
	modelOnce.Do(func() {
		e, err := core.New(testOptions())
		if err != nil {
			modelErr = err
			return
		}
		if err := e.Train(); err != nil {
			modelErr = err
			return
		}
		var buf bytes.Buffer
		if err := e.SaveModels(&buf); err != nil {
			modelErr = err
			return
		}
		modelBytes = buf.Bytes()
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelBytes
}

func testLoader(t *testing.T) Loader {
	data := savedModels(t)
	return func() (*core.Explorer, error) {
		e, err := core.New(testOptions())
		if err != nil {
			return nil, err
		}
		if err := e.LoadModels(bytes.NewReader(data)); err != nil {
			return nil, err
		}
		return e, nil
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(testLoader(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	return resp, buf.Bytes()
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

func TestEndpointsServe(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// healthz: GET, generation 1, the trained benchmarks, full space.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, hz.Status)
	}
	if hz.Generation != 1 {
		t.Fatalf("generation = %d, want 1", hz.Generation)
	}
	if len(hz.Benchmarks) != 2 || hz.Benchmarks[0] != "gzip" {
		t.Fatalf("benchmarks = %v", hz.Benchmarks)
	}
	if hz.SpaceSize <= 0 {
		t.Fatalf("space size = %d", hz.SpaceSize)
	}

	// predict: indices resolve through the study space, answers in order.
	resp2, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0, 1, hz.SpaceSize - 1}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp2.StatusCode, body)
	}
	var pr PointResponse
	decodeInto(t, body, &pr)
	if len(pr.Results) != 3 || pr.Bench != "gzip" || pr.Generation != 1 {
		t.Fatalf("predict response = %+v", pr)
	}

	// simulate: ground truth for the same points, strictly positive.
	resp3, body := postJSON(t, ts.URL+"/v1/simulate", PointRequest{Bench: "mcf", Indices: []int{7}})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("simulate = %d: %s", resp3.StatusCode, body)
	}
	var sr PointResponse
	decodeInto(t, body, &sr)
	if len(sr.Results) != 1 || sr.Results[0].BIPS <= 0 || sr.Results[0].Watts <= 0 {
		t.Fatalf("simulate response = %+v", sr)
	}

	// sweep: full exhaustive characterization, best list ranked by
	// efficiency.
	resp4, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Bench: "gzip", Top: 3})
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d: %s", resp4.StatusCode, body)
	}
	var sw SweepResponse
	decodeInto(t, body, &sw)
	if sw.Points != hz.SpaceSize {
		t.Fatalf("sweep points = %d, want %d", sw.Points, hz.SpaceSize)
	}
	if len(sw.Best) != 3 {
		t.Fatalf("best = %d designs, want 3", len(sw.Best))
	}
	for i := 1; i < len(sw.Best); i++ {
		if sw.Best[i].BIPS3W > sw.Best[i-1].BIPS3W {
			t.Fatalf("best not ranked: %v", sw.Best)
		}
	}

	// pareto: frontier from the same cached sweep.
	resp5, body := postJSON(t, ts.URL+"/v1/pareto", ParetoRequest{Bench: "gzip", Targets: 20})
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("pareto = %d: %s", resp5.StatusCode, body)
	}
	var pf ParetoResponse
	decodeInto(t, body, &pf)
	if len(pf.Frontier) == 0 {
		t.Fatal("empty pareto frontier")
	}
	for _, fp := range pf.Frontier {
		if fp.DelayS <= 0 || fp.Watts <= 0 {
			t.Fatalf("unphysical frontier point %+v", fp)
		}
	}
}

func TestInputValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown bench", "/v1/predict", PointRequest{Bench: "nope", Indices: []int{0}}, 400},
		{"missing bench", "/v1/predict", PointRequest{Indices: []int{0}}, 400},
		{"no points", "/v1/predict", PointRequest{Bench: "gzip"}, 400},
		{"index out of range", "/v1/predict", PointRequest{Bench: "gzip", Indices: []int{1 << 30}}, 400},
		{"negative index", "/v1/simulate", PointRequest{Bench: "gzip", Indices: []int{-1}}, 400},
		{"sweep unknown bench", "/v1/sweep", SweepRequest{Bench: "nope"}, 400},
		{"pareto too many targets", "/v1/pareto", ParetoRequest{Bench: "gzip", Targets: 99999}, 400},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var eb errorBody
		decodeInto(t, body, &eb)
		if eb.Status != tc.want || eb.Error == "" {
			t.Errorf("%s: envelope = %+v", tc.name, eb)
		}
	}

	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}

	// Wrong methods.
	resp, err = http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict = %d, want 405", resp.StatusCode)
	}
	rq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/healthz", nil)
	resp, err = http.DefaultClient.Do(rq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz = %d, want 405", resp.StatusCode)
	}
}

// TestPredictCoalesces is the acceptance test for request batching: many
// concurrent single-point predicts must reach the engine as a handful of
// EvaluateBatch calls, observable both in eval.EngineStats.BatchCalls and
// in the server's own coalescer counters.
func TestPredictCoalesces(t *testing.T) {
	const n = 16
	s, ts := newTestServer(t, Options{CoalesceWindow: 100 * time.Millisecond})
	e, _ := s.Generation()
	base := e.ModelStats().BatchCalls

	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{i}})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("predict %d = %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	batches := e.ModelStats().BatchCalls - base
	if batches < 1 || batches > n/4 {
		t.Fatalf("%d concurrent predicts cost %d engine batches, want 1..%d (coalescing broken)", n, batches, n/4)
	}
	st := s.Stats()
	if st.PredictCoalesced != n {
		t.Fatalf("coalesced = %d, want %d", st.PredictCoalesced, n)
	}
	if st.PredictBatches != batches {
		t.Fatalf("server batches = %d, engine batches = %d — counters disagree", st.PredictBatches, batches)
	}
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
}

func TestDeadlineReturns504(t *testing.T) {
	_, ts := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	var eb errorBody
	decodeInto(t, body, &eb)
	if eb.Status != http.StatusGatewayTimeout || eb.Error == "" {
		t.Fatalf("envelope = %+v", eb)
	}
}

func TestAdmissionControl429(t *testing.T) {
	// One admitted slot; a long coalescing window holds the first request
	// in flight while the second arrives.
	s, ts := newTestServer(t, Options{MaxInFlight: 1, CoalesceWindow: 500 * time.Millisecond})

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"bench":"gzip","indices":[0]}`))
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()

	// Wait until the first request is admitted.
	for i := 0; ; i++ {
		if s.Stats().InFlight >= 1 {
			break
		}
		if i > 1000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{1}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	var eb errorBody
	decodeInto(t, body, &eb)
	if eb.RetryAfterS != 1 {
		t.Fatalf("envelope retry_after_s = %d, want 1", eb.RetryAfterS)
	}

	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request = %d, want 200", code)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestHotReloadMidTraffic(t *testing.T) {
	s, ts := newTestServer(t, Options{CoalesceWindow: 200 * time.Millisecond})

	// A request in flight across the swap: admitted on generation 1, its
	// batch fires after the reload and must still succeed on whichever
	// generation it resolves.
	inflightDone := make(chan PointResponse, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{3}})
		var pr PointResponse
		if resp.StatusCode == http.StatusOK {
			json.Unmarshal(body, &pr) //nolint:errcheck // zero value fails the assert below
		}
		inflightDone <- pr
	}()
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}
	var rr ReloadResponse
	decodeInto(t, body, &rr)
	if rr.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", rr.Generation)
	}

	pr := <-inflightDone
	if len(pr.Results) != 1 || pr.Generation == 0 {
		t.Fatalf("in-flight request across reload = %+v", pr)
	}

	// New traffic lands on the new generation.
	_, body = postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{3}})
	var pr2 PointResponse
	decodeInto(t, body, &pr2)
	if pr2.Generation != 2 {
		t.Fatalf("post-reload generation = %d, want 2", pr2.Generation)
	}
	if st := s.Stats(); st.Reloads != 1 || st.Generation != 2 {
		t.Fatalf("stats after reload = %+v", st)
	}
}

// TestReloadedModelsMatch pins the swap semantics: both generations are
// loaded from the same bytes, so predictions across a reload must be
// bit-identical.
func TestReloadedModelsMatch(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	_, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "mcf", Indices: []int{123}})
	var before PointResponse
	decodeInto(t, body, &before)
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	_, body = postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "mcf", Indices: []int{123}})
	var after PointResponse
	decodeInto(t, body, &after)
	if len(before.Results) != 1 || len(after.Results) != 1 {
		t.Fatalf("results = %+v / %+v", before, after)
	}
	if before.Results[0] != after.Results[0] {
		t.Fatalf("prediction changed across reload of identical models: %+v -> %+v",
			before.Results[0], after.Results[0])
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{CoalesceWindow: 300 * time.Millisecond})

	inflightDone := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"bench":"gzip","indices":[0]}`))
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for i := 0; !s.Stats().Draining; i++ {
		if i > 1000 {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused immediately with 503 + Retry-After.
	resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request while draining = %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	// Reload is refused too: no point loading models into a dying server.
	resp, _ = postJSON(t, ts.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reload while draining = %d, want 503", resp.StatusCode)
	}
	// healthz reports draining with a 503 so load balancers eject the
	// instance.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	json.NewDecoder(hresp.Body).Decode(&hz) //nolint:errcheck // asserted below
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", hresp.StatusCode, hz.Status)
	}

	// The in-flight request completes and the drain finishes cleanly.
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown = %v", err)
	}
}

// TestServeShutdownOnListener exercises the managed-listener path: Serve
// must return nil after a drain and the in-flight request must finish.
func TestServeShutdownOnListener(t *testing.T) {
	s, err := New(testLoader(t), Options{CoalesceWindow: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/predict", "application/json",
			strings.NewReader(`{"bench":"gzip","indices":[5]}`))
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	for i := 0; s.Stats().InFlight == 0; i++ {
		if i > 1000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown = %v", err)
	}
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request = %d, want 200", code)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown, want nil", err)
	}
}

// Fault-site tests: the serving path must convert injected failures into
// well-formed 500s and keep serving — a panic or an injected error in one
// request is not allowed to kill the daemon.

func TestFaultInjectedRequestError(t *testing.T) {
	if fault.Active() {
		t.Skip("ambient fault plan armed")
	}
	s, ts := newTestServer(t, Options{})
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "serve.request", Kind: fault.KindError, Every: 1, Count: 1},
	}})
	defer fault.Disable()

	resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request = %d (%s), want 500", resp.StatusCode, body)
	}
	var eb errorBody
	decodeInto(t, body, &eb)
	if eb.Status != 500 || !strings.Contains(eb.Error, "fault") {
		t.Fatalf("envelope = %+v", eb)
	}
	// The rule fired its single shot; the server keeps serving.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after fault = %d (%s), want 200", resp.StatusCode, body)
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

func TestFaultInjectedPanicRecovered(t *testing.T) {
	if fault.Active() {
		t.Skip("ambient fault plan armed")
	}
	s, ts := newTestServer(t, Options{})
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "serve.request", Kind: fault.KindPanic, Every: 1, Count: 1},
	}})
	defer fault.Disable()

	resp, body := postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request = %d (%s), want 500", resp.StatusCode, body)
	}
	var eb errorBody
	decodeInto(t, body, &eb)
	if !strings.Contains(eb.Error, "panic") {
		t.Fatalf("envelope = %+v, want a panic message", eb)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic = %d, want 200", resp.StatusCode)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
}

func TestFaultFailedReloadKeepsOldGeneration(t *testing.T) {
	if fault.Active() {
		t.Skip("ambient fault plan armed")
	}
	s, ts := newTestServer(t, Options{})
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "serve.reload", Kind: fault.KindError, Every: 1, Count: 1},
	}})
	defer fault.Disable()

	resp, body := postJSON(t, ts.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted reload = %d (%s), want 500", resp.StatusCode, body)
	}
	if _, gen := s.Generation(); gen != 1 {
		t.Fatalf("generation after failed reload = %d, want 1", gen)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", PointRequest{Bench: "gzip", Indices: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after failed reload = %d (%s), want 200", resp.StatusCode, body)
	}
	var pr PointResponse
	decodeInto(t, body, &pr)
	if pr.Generation != 1 {
		t.Fatalf("serving generation = %d, want 1 (old models)", pr.Generation)
	}
	st := s.Stats()
	if st.ReloadFailures != 1 || st.Reloads != 0 {
		t.Fatalf("reload counters = %+v", st)
	}

	// With the rule exhausted the next reload succeeds.
	resp, _ = postJSON(t, ts.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after fault cleared = %d, want 200", resp.StatusCode)
	}
	if _, gen := s.Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
}

func TestLoaderFailureAtStartup(t *testing.T) {
	_, err := New(func() (*core.Explorer, error) {
		return nil, fmt.Errorf("no models here")
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "no models here") {
		t.Fatalf("New with failing loader = %v, want the loader error", err)
	}
}

func TestUntrainedLoaderRejected(t *testing.T) {
	_, err := New(func() (*core.Explorer, error) {
		return core.New(testOptions())
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "untrained") {
		t.Fatalf("New with untrained explorer = %v, want untrained error", err)
	}
}
