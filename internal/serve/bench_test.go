package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLoadTestDrivesEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	rep, err := LoadTest(BenchOptions{
		URL:         ts.URL,
		Duration:    300 * time.Millisecond,
		Warmup:      50 * time.Millisecond,
		Concurrency: 2,
		Endpoints:   []string{"healthz", "predict", "pareto"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "gzip" {
		t.Fatalf("bench = %q, want the daemon's first benchmark gzip", rep.Bench)
	}
	if len(rep.Endpoints) != 3 {
		t.Fatalf("endpoints = %d, want 3", len(rep.Endpoints))
	}
	for _, ep := range rep.Endpoints {
		if ep.Errors > 0 {
			t.Errorf("%s: %d errors during load test", ep.Endpoint, ep.Errors)
		}
		if ep.QPS <= 0 {
			t.Errorf("%s: qps = %v, want > 0", ep.Endpoint, ep.QPS)
		}
		if ep.P50ms <= 0 || ep.P99ms < ep.P50ms {
			t.Errorf("%s: p50 = %v, p99 = %v — quantiles inconsistent", ep.Endpoint, ep.P50ms, ep.P99ms)
		}
	}
	if rep.Healthz == nil || rep.Healthz.Requests == 0 {
		t.Fatalf("healthz snapshot = %+v, want served-request evidence", rep.Healthz)
	}

	// The report round-trips through its JSON file.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.URL != ts.URL || len(back.Endpoints) != 3 {
		t.Fatalf("round-tripped report = %+v", back)
	}
}

func TestLoadTestValidation(t *testing.T) {
	if _, err := LoadTest(BenchOptions{}); err == nil {
		t.Fatal("LoadTest without a URL accepted")
	}
	if _, err := LoadTest(BenchOptions{URL: "http://127.0.0.1:1", Duration: 10 * time.Millisecond}); err == nil {
		t.Fatal("LoadTest against a dead daemon accepted")
	}
	_, ts := newTestServer(t, Options{})
	if _, err := LoadTest(BenchOptions{URL: ts.URL, Endpoints: []string{"bogus"}, Duration: 10 * time.Millisecond}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}
