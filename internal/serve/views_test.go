package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// sweepBody is the canonical request body the view tests replay; Top is
// explicit so the tests control the view key.
func sweepBody(top int) SweepRequest { return SweepRequest{Bench: "gzip", Top: top} }

// doSweep posts one sweep request with optional extra headers and
// returns the raw response (body fully read and closed).
func doSweep(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestViewSingleflightUnderConcurrency fires many concurrent cold
// requests at one sweep view: the build must run exactly once, every
// request must get the identical bytes, and hits+misses must account for
// every request.
func TestViewSingleflightUnderConcurrency(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	const clients = 16
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(sweepBody(5))
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes than client 0", i)
		}
	}
	st := s.Stats()
	if st.ViewBuilds != 1 {
		t.Fatalf("view builds = %d, want exactly 1 for %d concurrent identical requests", st.ViewBuilds, clients)
	}
	if st.ViewHits+st.ViewMisses != clients {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", st.ViewHits, st.ViewMisses, st.ViewHits+st.ViewMisses, clients)
	}
	if st.ViewMisses < 1 {
		t.Fatalf("misses = %d, want >= 1 (somebody built the view)", st.ViewMisses)
	}
}

// TestViewHitServesIdenticalBytes compares the miss (build) response
// with subsequent hit responses byte for byte, for both cached
// endpoints: caching must be invisible in the payload.
func TestViewHitServesIdenticalBytes(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for _, c := range []struct {
		name string
		path string
		body any
	}{
		{"sweep", "/v1/sweep", sweepBody(7)},
		{"pareto", "/v1/pareto", ParetoRequest{Bench: "gzip", Targets: 25}},
	} {
		_, first := doSweep(t, ts.URL+c.path, c.body, nil)
		_, second := doSweep(t, ts.URL+c.path, c.body, nil)
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: hit bytes differ from miss bytes", c.name)
		}
		if len(first) == 0 || first[len(first)-1] != '\n' {
			t.Fatalf("%s: cached body must keep the writeJSON trailing newline", c.name)
		}
	}
	st := s.Stats()
	if st.ViewHits < 2 {
		t.Fatalf("view hits = %d, want >= 2", st.ViewHits)
	}
}

// TestETagConditionalRequests walks the conditional-request protocol:
// a 200 carrying a strong ETag, a 304 (no body) when revalidating with
// that tag, W/-prefixed and list forms, the "*" wildcard, and a full 200
// again for a stale tag.
func TestETagConditionalRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	url := ts.URL + "/v1/sweep"
	resp, body := doSweep(t, url, sweepBody(5), nil)
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	if len(body) == 0 {
		t.Fatal("empty 200 body")
	}

	for _, inm := range []string{etag, "W/" + etag, `"other", ` + etag, "*"} {
		resp, body := doSweep(t, url, sweepBody(5), map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %q, want %q", got, etag)
		}
	}

	resp, body = doSweep(t, url, sweepBody(5), map[string]string{"If-None-Match": `"g0-stale"`})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("stale tag: status %d body %d bytes, want a full 200", resp.StatusCode, len(body))
	}

	// A different view parameter is a different representation with its
	// own tag: the old tag must not 304 it.
	resp, _ = doSweep(t, url, sweepBody(6), map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("different top with old tag: status %d, want 200", resp.StatusCode)
	}
	if other := resp.Header.Get("ETag"); other == etag {
		t.Fatalf("top=5 and top=6 share ETag %q", etag)
	}
}

// TestReloadInvalidatesViews reloads between requests: the new
// generation must rebuild its views (never serving the old generation's
// bytes) and old ETags must stop matching, so pollers re-download.
func TestReloadInvalidatesViews(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	url := ts.URL + "/v1/sweep"
	resp1, body1 := doSweep(t, url, sweepBody(5), nil)
	etag1 := resp1.Header.Get("ETag")
	var sr1 SweepResponse
	decodeInto(t, body1, &sr1)
	if sr1.Generation != 1 {
		t.Fatalf("generation = %d, want 1", sr1.Generation)
	}
	buildsBefore := s.Stats().ViewBuilds

	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}

	// Revalidating with the old generation's tag must yield a full 200
	// from the new generation, never a false 304.
	resp2, body2 := doSweep(t, url, sweepBody(5), map[string]string{"If-None-Match": etag1})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload conditional request: status %d, want 200", resp2.StatusCode)
	}
	var sr2 SweepResponse
	decodeInto(t, body2, &sr2)
	if sr2.Generation != 2 {
		t.Fatalf("post-reload generation = %d, want 2", sr2.Generation)
	}
	if etag2 := resp2.Header.Get("ETag"); etag2 == etag1 {
		t.Fatalf("ETag %q survived the reload", etag1)
	}
	if builds := s.Stats().ViewBuilds; builds != buildsBefore+1 {
		t.Fatalf("view builds across reload = %d, want %d (new generation rebuilds)", builds, buildsBefore+1)
	}
	// Same models, fresh build: everything except the generation stamp
	// must come out identical — the rebuild is deterministic.
	sr1.Generation = sr2.Generation
	a, _ := json.Marshal(sr1)
	b, _ := json.Marshal(sr2)
	if !bytes.Equal(a, b) {
		t.Fatal("reloaded generation's sweep content differs from the original's")
	}
}

// TestReloadMidViewTraffic hammers the cached endpoints while reloading
// repeatedly: every response must be internally consistent (generation
// in body only ever current-or-recent, never a mix) and error-free.
func TestReloadMidViewTraffic(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := doSweep(t, ts.URL+"/v1/sweep", sweepBody(3), nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("sweep during reload: status %d", resp.StatusCode)
					return
				}
				var sr SweepResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					t.Errorf("sweep during reload: %v", err)
					return
				}
				if sr.Generation < 1 {
					t.Errorf("impossible generation %d", sr.Generation)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Reload(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if gen := s.Stats().Generation; gen != 4 {
		t.Fatalf("final generation = %d, want 4", gen)
	}
}

// TestGzipVariant requests the cached view with Accept-Encoding: gzip
// and cross-checks the compressed bytes decode to exactly the identity
// body.
func TestGzipVariant(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	url := ts.URL + "/v1/sweep"
	_, identity := doSweep(t, url, sweepBody(10), nil)
	if len(identity) < gzipMinBytes {
		t.Fatalf("identity body only %d bytes; fixture too small to exercise gzip", len(identity))
	}
	resp, raw := doSweep(t, url, sweepBody(10), map[string]string{"Accept-Encoding": "gzip"})
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if resp.Header.Get("Vary") != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", resp.Header.Get("Vary"))
	}
	if len(raw) >= len(identity) {
		t.Fatalf("gzip variant (%d bytes) not smaller than identity (%d)", len(raw), len(identity))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, identity) {
		t.Fatal("gzip variant decodes to different bytes than the identity response")
	}
}

// TestPrewarmViews starts the server with PrewarmViews: the background
// prewarmer must build the default sweep and pareto views for both
// benchmarks, and the first real request must be a pure hit.
func TestPrewarmViews(t *testing.T) {
	s, ts := newTestServer(t, Options{PrewarmViews: true})
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().ViewBuilds < 4 { // 2 benchmarks x {sweep, pareto}
		if time.Now().After(deadline) {
			t.Fatalf("prewarm built %d views, want 4", s.Stats().ViewBuilds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Default-parameter requests (top omitted, targets omitted) land on
	// the prewarmed keys.
	if resp, _ := doSweep(t, ts.URL+"/v1/sweep", SweepRequest{Bench: "mcf"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if resp, _ := doSweep(t, ts.URL+"/v1/pareto", ParetoRequest{Bench: "mcf"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pareto status %d", resp.StatusCode)
	}
	st := s.Stats()
	if st.ViewMisses != 0 {
		t.Fatalf("view misses = %d after prewarm, want 0", st.ViewMisses)
	}
	if st.ViewHits != 2 {
		t.Fatalf("view hits = %d, want 2", st.ViewHits)
	}
}

// TestSweepTopClamp asks for more designs than the materialized ranking
// depth: the request must succeed with the ranking capped at
// MaxSweepTop, keeping the view-key space bounded.
func TestSweepTopClamp(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := doSweep(t, ts.URL+"/v1/sweep", sweepBody(MaxSweepTop+500), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SweepResponse
	decodeInto(t, body, &sr)
	if len(sr.Best) > MaxSweepTop {
		t.Fatalf("got %d ranked designs, cap is %d", len(sr.Best), MaxSweepTop)
	}
	if len(sr.Best) == 0 {
		t.Fatal("empty ranking")
	}
}

// TestTopKByEfficiencyMatchesSort cross-checks the heap-based bounded
// selection against a full stable sort on synthetic predictions with
// ties and non-physical entries.
func TestTopKByEfficiencyMatchesSort(t *testing.T) {
	preds := []core.Prediction{
		{Index: 0, BIPS: 2, Watts: 4},
		{Index: 1, BIPS: 0, Watts: 10},  // non-physical: bips <= 0
		{Index: 2, BIPS: 3, Watts: 27},  // eff 1.0
		{Index: 3, BIPS: 1, Watts: 1},   // eff 1.0 tie with 2
		{Index: 4, BIPS: 4, Watts: 2},   // eff 32
		{Index: 5, BIPS: 2, Watts: -1},  // non-physical: watts <= 0
		{Index: 6, BIPS: 2, Watts: 4},   // eff 2.0, tie with 0
		{Index: 7, BIPS: 5, Watts: 125}, // eff 1.0 tie with 2, 3
		{Index: 8, BIPS: 10, Watts: 1},  // eff 1000
	}
	eff := func(p core.Prediction) float64 { return p.BIPS * p.BIPS * p.BIPS / p.Watts }
	var want []core.Prediction
	for _, p := range preds {
		if p.BIPS > 0 && p.Watts > 0 {
			want = append(want, p)
		}
	}
	sort.SliceStable(want, func(i, j int) bool {
		if eff(want[i]) != eff(want[j]) {
			return eff(want[i]) > eff(want[j])
		}
		return want[i].Index < want[j].Index
	})
	for _, k := range []int{0, 1, 2, 3, len(want), len(want) + 5} {
		got := topKByEfficiency(preds, k)
		wantK := want
		if k < len(wantK) {
			wantK = wantK[:k]
		}
		if k <= 0 {
			wantK = nil
		}
		if len(got) != len(wantK) {
			t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(wantK))
		}
		for i := range got {
			if got[i] != wantK[i] {
				t.Fatalf("k=%d: rank %d = %+v, want %+v", k, i, got[i], wantK[i])
			}
		}
	}
}

// TestInmMatches pins the If-None-Match matcher's corner cases.
func TestInmMatches(t *testing.T) {
	const tag = `"g1-sweep-gzip-5"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"*", true},
		{tag, true},
		{"W/" + tag, true},
		{`"other"`, false},
		{`"other", ` + tag, true},
		{` "a" , "b" `, false},
	}
	for _, c := range cases {
		if got := inmMatches(c.header, tag); got != c.want {
			t.Errorf("inmMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
