// Package serve is the evaluation-as-a-service layer: a long-running
// HTTP/JSON daemon over a trained core.Explorer. It is the piece that
// turns the engine's batching, singleflight cache and compiled sweep
// plans into network QPS — "train once, serve many cheap queries".
//
// Five endpoints are exposed: /v1/predict and /v1/simulate evaluate
// design points (model-predicted and detail-simulated respectively),
// /v1/sweep runs the cached exhaustive 262,500-point characterization,
// /v1/pareto extracts the delay-power frontier from it, and /v1/healthz
// reports liveness and the serving generation. docs/API.md documents the
// request/response schemas; a test executes its curl examples verbatim.
//
// The serving mechanics mirror the engine's design goals:
//
//   - Coalescing: concurrent predict/simulate requests arriving within a
//     small window are merged into one eval.EvaluateBatch call, so a
//     thousand single-point network clients cost the engine a handful of
//     batches (measurable via eval.EngineStats.BatchCalls).
//   - Admission control: at most MaxInFlight requests are admitted;
//     excess load is shed immediately with 429 and a Retry-After header
//     rather than queued into latency collapse.
//   - Deadlines: every admitted request runs under RequestTimeout (the
//     serving analogue of core.Options.BatchTimeout, which the daemon
//     also arms on the engines); expiry maps to 504.
//   - Hot reload: models are swapped by loading a whole new generation
//     (Loader → *core.Explorer) and flipping one atomic pointer, so
//     in-flight requests finish on the generation that admitted them and
//     a failed reload (bad file, injected fault) keeps the old one.
//   - Graceful drain: Shutdown stops admitting (503), lets in-flight
//     requests finish, and only then returns.
//
// Every request runs inside an obs span with per-endpoint counters and
// latency histograms; the daemon folds them into its run manifest at
// exit. Fault sites serve.request and serve.reload let the resilience
// suite inject panics, errors and delays into the serving path.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Loader builds one serving generation: a trained (or model-loaded)
// Explorer. New calls it once at startup and Reload calls it again for
// every hot swap; a Loader that fails leaves the previous generation
// serving. Loaders must return a fresh Explorer per call — generations
// are immutable once serving, which is what makes the swap safe under
// in-flight traffic.
type Loader func() (*core.Explorer, error)

// Options tunes the server. The zero value is usable; unset fields take
// the defaults below.
type Options struct {
	// MaxInFlight bounds admitted work requests (predict, simulate,
	// sweep, pareto; healthz is exempt). Excess requests are rejected
	// with 429 and a Retry-After header. 0 means DefaultMaxInFlight;
	// negative disables admission control.
	MaxInFlight int
	// CoalesceWindow is how long the first request of a batch waits for
	// company before the batch fires into eval.EvaluateBatch. 0 means
	// DefaultCoalesceWindow; negative disables waiting (concurrent
	// arrivals still merge, but nothing is delayed for them).
	CoalesceWindow time.Duration
	// CoalesceMax fires a batch early once it holds this many design
	// points, bounding both batch latency and batch memory. 0 means
	// DefaultCoalesceMax.
	CoalesceMax int
	// RequestTimeout bounds each admitted request's evaluation wall
	// time; expiry returns 504. It is the serving analogue of
	// core.Options.BatchTimeout. 0 means no deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request body size; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// PrewarmViews materializes the default sweep and pareto views for
	// every benchmark in the background whenever a generation is
	// (re)loaded, so the first client request is already a cache hit.
	// Off by default: prewarming runs a full exhaustive sweep per
	// benchmark at load time.
	PrewarmViews bool
}

// Defaults for Options fields left zero.
const (
	DefaultMaxInFlight    = 256
	DefaultCoalesceWindow = 2 * time.Millisecond
	DefaultCoalesceMax    = 512
	DefaultMaxBodyBytes   = 8 << 20
)

// generation is one immutable serving state: an Explorer plus identity.
// Requests resolve the current generation once at batch-fire (or
// handler-entry) time and use it to completion, so a reload mid-request
// never mixes models within one response.
type generation struct {
	e      *core.Explorer
	id     int64
	loaded time.Time

	// sweepMu/sweepFlight singleflight ExhaustivePredict per benchmark:
	// the Explorer caches completed sweeps but does not de-duplicate
	// concurrent first computations, and a cold /v1/sweep stampede would
	// run the 262,500-point kernel once per caller.
	sweepMu     sync.Mutex
	sweepFlight map[string]*sweepFlight

	// views is the materialized-view layer (views.go): per-benchmark
	// derived rankings/frontier columns and per-key response byte
	// caches. Owned by the generation, so a swap invalidates every view
	// atomically — a request that resolved the old generation keeps its
	// old views; new requests start from the new, empty cache.
	views *viewState
}

type sweepFlight struct {
	done  chan struct{}
	preds []core.Prediction
	err   error
}

// sweep returns the generation's exhaustive predictions for bench,
// computing them at most once however many requests race on a cold
// benchmark. Waiters honor their own context (a 504 waiter abandons the
// wait; the sweep itself runs to completion and stays cached).
func (g *generation) sweep(ctx context.Context, bench string) ([]core.Prediction, error) {
	g.sweepMu.Lock()
	f, ok := g.sweepFlight[bench]
	if !ok {
		f = &sweepFlight{done: make(chan struct{})}
		g.sweepFlight[bench] = f
		g.sweepMu.Unlock()
		f.preds, f.err = g.e.ExhaustivePredict(bench)
		if f.err != nil {
			// Drop the failed flight so a later request retries.
			g.sweepMu.Lock()
			if g.sweepFlight[bench] == f {
				delete(g.sweepFlight, bench)
			}
			g.sweepMu.Unlock()
		}
		close(f.done)
		return f.preds, f.err
	}
	g.sweepMu.Unlock()
	select {
	case <-f.done:
		return f.preds, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the server's own counters
// (engine-level counters live in eval.EngineStats, reachable through
// Generation).
type Stats struct {
	// Requests counts admitted work requests (all endpoints but healthz).
	Requests int64
	// Rejected counts 429 admission-control rejections.
	Rejected int64
	// Timeouts counts requests that ended in 504.
	Timeouts int64
	// Errors counts non-timeout request failures (4xx input errors and
	// 5xx evaluation failures).
	Errors int64
	// Panics counts handler panics recovered into 500 responses.
	Panics int64
	// Reloads counts successful hot swaps; ReloadFailures counts reloads
	// that failed and left the previous generation serving.
	Reloads        int64
	ReloadFailures int64
	// PredictBatches/PredictCoalesced are the coalescer's fired-batch and
	// merged-request counts for /v1/predict; likewise for /v1/simulate.
	PredictBatches    int64
	PredictCoalesced  int64
	SimulateBatches   int64
	SimulateCoalesced int64
	// ViewHits counts sweep/pareto requests served entirely from a
	// materialized view (zero recomputation, zero re-encode, including
	// 304 conditional answers); ViewMisses counts requests that built or
	// waited on a view; ViewBuilds counts view materializations
	// (requests and prewarming both build).
	ViewHits   int64
	ViewMisses int64
	ViewBuilds int64
	// InFlight is the number of admitted requests running right now.
	InFlight int64
	// Generation is the id of the serving model generation (1-based).
	Generation int64
	// Draining reports whether Shutdown has begun.
	Draining bool
}

// Server is the HTTP evaluation service. Create with New, expose with
// Handler (or Serve for a managed net listener), hot swap with Reload,
// stop with Shutdown.
type Server struct {
	opts   Options
	loader Loader

	gen      atomic.Pointer[generation]
	genSeq   atomic.Int64
	reloadMu sync.Mutex // serializes Reload; requests never take it

	start    time.Time
	inflight atomic.Int64
	draining atomic.Bool

	requests atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
	errs     atomic.Int64
	panics   atomic.Int64
	reloads  atomic.Int64
	reloadNG atomic.Int64

	predictCo  *coalescer
	simulateCo *coalescer

	// vstats aggregates materialized-view hit/miss/build counters
	// across generations (views.go).
	vstats *viewStats

	mux *http.ServeMux

	srvMu   sync.Mutex
	httpSrv *http.Server

	// Process-wide obs counters (shared registry: the daemon's manifest
	// absorbs them at exit). Resolved once at construction.
	reqCtr     *obs.Counter
	rejectCtr  *obs.Counter
	timeoutCtr *obs.Counter
	errCtr     *obs.Counter
	panicCtr   *obs.Counter
	reloadCtr  *obs.Counter
}

// New builds a server and loads the first model generation through the
// loader.
func New(loader Loader, opts Options) (*Server, error) {
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.CoalesceWindow == 0 {
		opts.CoalesceWindow = DefaultCoalesceWindow
	} else if opts.CoalesceWindow < 0 {
		opts.CoalesceWindow = 0
	}
	if opts.CoalesceMax <= 0 {
		opts.CoalesceMax = DefaultCoalesceMax
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		opts:       opts,
		loader:     loader,
		start:      time.Now(),
		reqCtr:     obs.DefaultRegistry.Counter("serve.requests"),
		rejectCtr:  obs.DefaultRegistry.Counter("serve.rejected"),
		timeoutCtr: obs.DefaultRegistry.Counter("serve.timeouts"),
		errCtr:     obs.DefaultRegistry.Counter("serve.errors"),
		panicCtr:   obs.DefaultRegistry.Counter("serve.panics_recovered"),
		reloadCtr:  obs.DefaultRegistry.Counter("serve.reloads"),
		vstats:     newViewStats(),
	}
	if err := s.swapGeneration(); err != nil {
		return nil, fmt.Errorf("serve: loading initial models: %w", err)
	}
	s.predictCo = newCoalescer("predict", opts, s.generation,
		func(ctx context.Context, g *generation, reqs []eval.Request) ([]eval.Result, error) {
			return g.e.PredictBatch(ctx, reqs)
		})
	s.simulateCo = newCoalescer("simulate", opts, s.generation,
		func(ctx context.Context, g *generation, reqs []eval.Request) ([]eval.Result, error) {
			return g.e.SimulateBatch(ctx, reqs)
		})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/predict", s.endpoint("predict", s.handlePredict))
	s.mux.HandleFunc("/v1/simulate", s.endpoint("simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/sweep", s.endpoint("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/pareto", s.endpoint("pareto", s.handlePareto))
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s, nil
}

// swapGeneration runs the loader and, on success, installs the result as
// the next serving generation. The previous generation keeps serving any
// requests that already resolved it; it is garbage once they finish
// (explorers hold no background goroutines).
func (s *Server) swapGeneration() error {
	if err := fault.Here("serve.reload"); err != nil {
		return err
	}
	e, err := s.loader()
	if err != nil {
		return err
	}
	if !e.Trained() {
		return errors.New("serve: loader returned an untrained explorer")
	}
	g := &generation{
		e:           e,
		id:          s.genSeq.Add(1),
		loaded:      time.Now(),
		sweepFlight: make(map[string]*sweepFlight),
		views:       newViewState(s.vstats),
	}
	s.gen.Store(g)
	if s.opts.PrewarmViews {
		go s.prewarm(g)
	}
	return nil
}

// generation returns the current serving generation.
func (s *Server) generation() *generation { return s.gen.Load() }

// Generation exposes the serving explorer and its generation id —
// primarily for tests asserting coalescing through the engine counters.
func (s *Server) Generation() (*core.Explorer, int64) {
	g := s.generation()
	return g.e, g.id
}

// Reload hot swaps the models: it runs the loader and atomically installs
// the new generation without disturbing in-flight requests. On failure
// (loader error or an armed serve.reload fault) the previous generation
// keeps serving and the error is returned. Reloads are serialized;
// requests never block on one.
func (s *Server) Reload() (int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if err := s.swapGeneration(); err != nil {
		s.reloadNG.Add(1)
		return s.generation().id, err
	}
	s.reloads.Add(1)
	s.reloadCtr.Add(1)
	return s.generation().id, nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	pb, pc := s.predictCo.stats()
	sb, sc := s.simulateCo.stats()
	return Stats{
		Requests:          s.requests.Load(),
		Rejected:          s.rejected.Load(),
		Timeouts:          s.timeouts.Load(),
		Errors:            s.errs.Load(),
		Panics:            s.panics.Load(),
		Reloads:           s.reloads.Load(),
		ReloadFailures:    s.reloadNG.Load(),
		PredictBatches:    pb,
		PredictCoalesced:  pc,
		SimulateBatches:   sb,
		SimulateCoalesced: sc,
		ViewHits:          s.vstats.hits.Load(),
		ViewMisses:        s.vstats.misses.Load(),
		ViewBuilds:        s.vstats.builds.Load(),
		InFlight:          s.inflight.Load(),
		Generation:        s.generation().id,
		Draining:          s.draining.Load(),
	}
}

// Handler returns the server's HTTP handler (all /v1/ routes).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean Shutdown and the listener error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.srvMu.Lock()
	s.httpSrv = srv
	s.srvMu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: new work requests are refused
// with 503 immediately, in-flight requests run to completion, and
// Shutdown returns once the server is idle (or ctx expires, whichever is
// first). Safe to call without Serve (handler-only servers drain on the
// in-flight counter alone) and safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.srvMu.Lock()
	srv := s.httpSrv
	s.srvMu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// errorBody is the uniform error envelope: every non-2xx response
// carries it. RetryAfterS mirrors the Retry-After header on 429/503.
type errorBody struct {
	Status      int    `json:"status"`
	Error       string `json:"error"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// httpError carries a status code through handler returns.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// encBufPool recycles the encoder buffers behind every JSON response —
// one buffer per response instead of per-write allocations in the
// encoder, and a single Write (with Content-Length) to the socket.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeJSON renders v exactly as writeJSON sends it: indented with one
// space and newline-terminated. The materialized-view layer caches these
// bytes, so cached and freshly-encoded responses are bit-identical by
// construction.
func encodeJSON(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfterS int) {
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	}
	writeJSON(w, status, errorBody{Status: status, Error: msg, RetryAfterS: retryAfterS})
}

// retryAfterSeconds is the hint sent with 429/503: long enough for a
// coalescing window or a drain to make progress, short enough that
// clients retry promptly.
const retryAfterSeconds = 1

// endpoint wraps a work handler with the shared serving mechanics, in
// order: panic recovery, method check, the request deadline, the
// serve.request fault site (bounded by that deadline), drain refusal
// (503), admission control (429), and per-request observability (span,
// counters, latency histogram).
func (s *Server) endpoint(name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	hist := obs.DefaultRegistry.Histogram("serve." + name)
	ctr := obs.DefaultRegistry.Counter("serve." + name + ".requests")
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.panicCtr.Add(1)
				s.errs.Add(1)
				s.errCtr.Add(1)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("panic: %v", rec), 0)
			}
		}()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST", 0)
			return
		}
		// The request deadline is armed before the fault site so injected
		// delay and hang faults are bounded the way genuinely slow work
		// is: a hang unblocks at RequestTimeout (or on client disconnect,
		// which the server only detects once the body is consumed — too
		// late for a fault that fires before decoding), pinning a handler
		// goroutine for a bounded time instead of forever.
		ctx := r.Context()
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		if err := fault.HereCtx(ctx, "serve.request"); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.timeouts.Add(1)
				s.timeoutCtr.Add(1)
				writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("deadline exceeded after %v", s.opts.RequestTimeout), 0)
				return
			}
			s.errs.Add(1)
			s.errCtr.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is draining", retryAfterSeconds)
			return
		}
		if max := s.opts.MaxInFlight; max > 0 && s.inflight.Add(1) > int64(max) {
			s.inflight.Add(-1)
			s.rejected.Add(1)
			s.rejectCtr.Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("at admission limit (%d in flight)", max), retryAfterSeconds)
			return
		} else if max <= 0 {
			s.inflight.Add(1)
		}
		defer s.inflight.Add(-1)
		s.requests.Add(1)
		s.reqCtr.Add(1)
		ctr.Add(1)

		ctx, sp := obs.Start(ctx, "serve."+name)
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		err := h(ctx, w, r)
		hist.Observe(time.Since(start))
		sp.End()
		if err == nil {
			return
		}
		var he *httpError
		switch {
		case errors.As(err, &he):
			s.errs.Add(1)
			s.errCtr.Add(1)
			writeError(w, he.status, he.msg, 0)
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			s.timeoutCtr.Add(1)
			writeError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("deadline exceeded after %v", s.opts.RequestTimeout), 0)
		case errors.Is(err, context.Canceled):
			// Client went away; nothing useful to write.
			s.errs.Add(1)
			s.errCtr.Add(1)
		default:
			s.errs.Add(1)
			s.errCtr.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error(), 0)
		}
	}
}

// PointRequest is the request body shared by /v1/predict and
// /v1/simulate: one benchmark and the design points to evaluate, given
// either as fully-resolved configurations or as flat indices into the
// 262,500-point study space (both may be combined; configs come first in
// the response order).
type PointRequest struct {
	Bench   string        `json:"bench"`
	Configs []arch.Config `json:"configs,omitempty"`
	Indices []int         `json:"indices,omitempty"`
}

// PointResult is one evaluated design point.
type PointResult struct {
	BIPS  float64 `json:"bips"`
	Watts float64 `json:"watts"`
	// BIPS3W is the paper's efficiency metric, 0 for unphysical
	// (non-positive) predictions.
	BIPS3W float64 `json:"bips3w"`
}

// PointResponse answers /v1/predict and /v1/simulate.
type PointResponse struct {
	Bench string `json:"bench"`
	// Generation identifies the model generation that served the batch.
	Generation int64         `json:"generation"`
	Results    []PointResult `json:"results"`
}

// decodePoints parses and validates a PointRequest against the current
// generation, returning the engine requests in response order.
func (s *Server) decodePoints(g *generation, r *http.Request) (string, []eval.Request, error) {
	var req PointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return "", nil, badRequest("decoding request body: %v", err)
	}
	if req.Bench == "" {
		return "", nil, badRequest("missing \"bench\"")
	}
	known := false
	for _, b := range g.e.Benchmarks() {
		if b == req.Bench {
			known = true
			break
		}
	}
	if !known {
		return "", nil, badRequest("unknown benchmark %q (serving: %v)", req.Bench, g.e.Benchmarks())
	}
	n := len(req.Configs) + len(req.Indices)
	if n == 0 {
		return "", nil, badRequest("empty request: provide \"configs\" and/or \"indices\"")
	}
	space := g.e.StudySpace
	reqs := make([]eval.Request, 0, n)
	for i, cfg := range req.Configs {
		if err := cfg.Validate(); err != nil {
			return "", nil, badRequest("configs[%d]: %v", i, err)
		}
		reqs = append(reqs, eval.Request{Config: cfg, Bench: req.Bench})
	}
	for i, idx := range req.Indices {
		if idx < 0 || idx >= space.Size() {
			return "", nil, badRequest("indices[%d] = %d outside study space [0, %d)", i, idx, space.Size())
		}
		reqs = append(reqs, eval.Request{Config: space.Config(space.PointAt(idx)), Bench: req.Bench})
	}
	return req.Bench, reqs, nil
}

func pointResults(results []eval.Result) []PointResult {
	out := make([]PointResult, len(results))
	for i, r := range results {
		out[i] = PointResult{BIPS: r.BIPS, Watts: r.Watts}
		if r.BIPS > 0 && r.Watts > 0 {
			out[i].BIPS3W = metrics.BIPS3W(r.BIPS, r.Watts)
		}
	}
	return out
}

func (s *Server) handlePoints(ctx context.Context, co *coalescer, w http.ResponseWriter, r *http.Request) error {
	bench, reqs, err := s.decodePoints(s.generation(), r)
	if err != nil {
		return err
	}
	results, g, err := co.submit(ctx, reqs)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, PointResponse{Bench: bench, Generation: g.id, Results: pointResults(results)})
	return nil
}

func (s *Server) handlePredict(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.handlePoints(ctx, s.predictCo, w, r)
}

func (s *Server) handleSimulate(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.handlePoints(ctx, s.simulateCo, w, r)
}

// SweepRequest asks for the exhaustive model characterization of one
// benchmark. Top bounds the number of best-efficiency designs returned
// (default 10, max 1000).
type SweepRequest struct {
	Bench string `json:"bench"`
	Top   int    `json:"top,omitempty"`
}

// SweepDesign is one ranked design from a sweep.
type SweepDesign struct {
	Index  int         `json:"index"`
	Config arch.Config `json:"config"`
	BIPS   float64     `json:"bips"`
	Watts  float64     `json:"watts"`
	BIPS3W float64     `json:"bips3w"`
}

// SweepResponse answers /v1/sweep: the space size actually swept and the
// top designs by bips³/w. Sweeps are computed once per (generation,
// benchmark) and served from cache afterwards.
type SweepResponse struct {
	Bench      string        `json:"bench"`
	Generation int64         `json:"generation"`
	Points     int           `json:"points"`
	Best       []SweepDesign `json:"best"`
}

// Defaults and bounds for the view-shaping request parameters. The
// defaults double as the keys prewarming materializes.
const (
	defaultSweepTop      = 10
	defaultParetoTargets = 40
	maxParetoTargets     = 10000
)

func (s *Server) handleSweep(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("decoding request body: %v", err)
	}
	if req.Top <= 0 {
		req.Top = defaultSweepTop
	}
	if req.Top > MaxSweepTop {
		req.Top = MaxSweepTop
	}
	g := s.generation()
	if err := validBench(g, req.Bench); err != nil {
		return err
	}
	key := viewKey{kind: "sweep", bench: req.Bench, param: req.Top}
	return s.serveMaterialized(ctx, w, r, g, key, func(ctx context.Context) (any, error) {
		return g.buildSweepResponse(ctx, req.Bench, req.Top)
	})
}

// serveMaterialized resolves (building on first use) the materialized
// view for key and writes it, maintaining the hit/miss counters. This is
// the whole hot path of /v1/sweep and /v1/pareto: on a hit the handler
// touches no prediction data at all — it writes cached bytes (or just an
// ETag, for a 304).
func (s *Server) serveMaterialized(ctx context.Context, w http.ResponseWriter, r *http.Request, g *generation, key viewKey, build func(ctx context.Context) (any, error)) error {
	v, hit, err := g.view(ctx, key, build)
	if hit {
		s.vstats.hits.Add(1)
		s.vstats.hitCtr.Add(1)
	} else {
		s.vstats.misses.Add(1)
		s.vstats.missCtr.Add(1)
	}
	if err != nil {
		return err
	}
	serveView(w, r, v)
	return nil
}

// validBench rejects requests for benchmarks the generation is not
// serving.
func validBench(g *generation, bench string) error {
	if bench == "" {
		return badRequest("missing \"bench\"")
	}
	for _, b := range g.e.Benchmarks() {
		if b == bench {
			return nil
		}
	}
	return badRequest("unknown benchmark %q (serving: %v)", bench, g.e.Benchmarks())
}

// ParetoRequest asks for the delay-power pareto frontier of one
// benchmark, discretized into Targets delay bins (default 40, the
// paper's Section 4.2 construction).
type ParetoRequest struct {
	Bench   string `json:"bench"`
	Targets int    `json:"targets,omitempty"`
}

// ParetoDesign is one frontier point.
type ParetoDesign struct {
	Index  int         `json:"index"`
	Config arch.Config `json:"config"`
	// DelayS is predicted execution time in seconds for the nominal
	// 100M-instruction workload; Watts the predicted power.
	DelayS float64 `json:"delay_s"`
	Watts  float64 `json:"watts"`
}

// ParetoResponse answers /v1/pareto.
type ParetoResponse struct {
	Bench      string         `json:"bench"`
	Generation int64          `json:"generation"`
	Targets    int            `json:"targets"`
	Frontier   []ParetoDesign `json:"frontier"`
}

func (s *Server) handlePareto(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req ParetoRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("decoding request body: %v", err)
	}
	if req.Targets <= 0 {
		req.Targets = defaultParetoTargets
	}
	if req.Targets > maxParetoTargets {
		return badRequest("targets = %d too large (max %d)", req.Targets, maxParetoTargets)
	}
	g := s.generation()
	if err := validBench(g, req.Bench); err != nil {
		return err
	}
	key := viewKey{kind: "pareto", bench: req.Bench, param: req.Targets}
	return s.serveMaterialized(ctx, w, r, g, key, func(ctx context.Context) (any, error) {
		return g.buildParetoResponse(ctx, req.Bench, req.Targets)
	})
}

// HealthzResponse answers /v1/healthz: liveness, the serving generation
// and a compact load summary. Returned with status 200 while serving and
// 503 while draining (load balancers read the status code).
type HealthzResponse struct {
	Status        string   `json:"status"` // "ok" or "draining"
	Generation    int64    `json:"generation"`
	ModelLoadedAt string   `json:"model_loaded_at"` // RFC 3339
	UptimeS       float64  `json:"uptime_s"`
	Benchmarks    []string `json:"benchmarks"`
	SpaceSize     int      `json:"space_size"`
	Workers       int      `json:"workers"`
	InFlight      int64    `json:"in_flight"`
	Requests      int64    `json:"requests"`
	// View-cache counters (views.go): the load driver reads deltas of
	// these around its measurement windows to report cache hit rates.
	ViewHits   int64 `json:"view_hits"`
	ViewMisses int64 `json:"view_misses"`
	ViewBuilds int64 `json:"view_builds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET", 0)
		return
	}
	g := s.generation()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthzResponse{
		Status:        status,
		Generation:    g.id,
		ModelLoadedAt: g.loaded.UTC().Format(time.RFC3339),
		UptimeS:       time.Since(s.start).Seconds(),
		Benchmarks:    g.e.Benchmarks(),
		SpaceSize:     g.e.StudySpace.Size(),
		Workers:       g.e.Options().Workers,
		InFlight:      s.inflight.Load(),
		Requests:      s.requests.Load(),
		ViewHits:      s.vstats.hits.Load(),
		ViewMisses:    s.vstats.misses.Load(),
		ViewBuilds:    s.vstats.builds.Load(),
	})
}

// ReloadResponse answers /v1/reload.
type ReloadResponse struct {
	Generation int64 `json:"generation"`
}

// handleReload is the HTTP face of Reload (SIGHUP is the other). It is
// not subject to admission control — operators must be able to reload a
// saturated server — but it is refused while draining.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST", 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", retryAfterSeconds)
		return
	}
	sp := obs.Begin("serve.reload")
	gen, err := s.Reload()
	sp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("reload failed (still serving generation %d): %v", gen, err), 0)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Generation: gen})
}
