package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// curlExample is one curl invocation lifted out of docs/API.md.
type curlExample struct {
	method  string
	path    string
	body    string
	headers map[string]string
}

var (
	curlBodyRE   = regexp.MustCompile(`-d '([^']*)'`)
	curlHeaderRE = regexp.MustCompile(`-H '([^':]+): *([^']*)'`)
)

// parseCurlExamples extracts every curl command from the markdown's
// fenced code blocks. Continuation lines (trailing backslash) are joined
// first, so the documented multi-line examples parse as one command.
func parseCurlExamples(t *testing.T, markdown string) []curlExample {
	t.Helper()
	var joined []string
	cur := ""
	for _, line := range strings.Split(markdown, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			cur += strings.TrimSuffix(line, "\\")
			continue
		}
		joined = append(joined, cur+line)
		cur = ""
	}
	var out []curlExample
	for _, cmd := range joined {
		if !strings.HasPrefix(cmd, "curl ") {
			continue
		}
		ex := curlExample{method: http.MethodGet}
		if strings.Contains(cmd, "-X POST") {
			ex.method = http.MethodPost
		}
		if m := curlBodyRE.FindStringSubmatch(cmd); m != nil {
			ex.body = m[1]
		}
		for _, m := range curlHeaderRE.FindAllStringSubmatch(cmd, -1) {
			if ex.headers == nil {
				ex.headers = make(map[string]string)
			}
			ex.headers[m[1]] = m[2]
		}
		urlAt := strings.Index(cmd, "http://")
		if urlAt < 0 {
			t.Fatalf("curl example without a URL: %q", cmd)
		}
		url := strings.Fields(cmd[urlAt:])[0]
		slash := strings.Index(url, "/v1/")
		if slash < 0 {
			t.Fatalf("curl example URL %q is not under /v1/", url)
		}
		ex.path = url[slash:]
		out = append(out, ex)
	}
	return out
}

// TestAPIDocCurlExamples executes every curl example in docs/API.md
// against a live test server, in document order, and requires each to
// succeed. The API reference cannot drift from the handlers without
// breaking this test.
func TestAPIDocCurlExamples(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	examples := parseCurlExamples(t, string(data))
	if len(examples) < 2 {
		t.Fatalf("docs/API.md has %d curl examples, want at least 2", len(examples))
	}

	_, ts := newTestServer(t, Options{})
	for _, ex := range examples {
		req, err := http.NewRequest(ex.method, ts.URL+ex.path, strings.NewReader(ex.body))
		if err != nil {
			t.Fatalf("%s %s: %v", ex.method, ex.path, err)
		}
		if ex.method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range ex.headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", ex.method, ex.path, err)
		}
		resp.Body.Close()
		// Examples demonstrating conditional requests are expected to
		// revalidate: a 304 is their documented success outcome.
		if ex.headers["If-None-Match"] != "" {
			if resp.StatusCode != http.StatusNotModified {
				t.Errorf("documented conditional example %s %s = %d, want 304",
					ex.method, ex.path, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode/100 != 2 {
			t.Errorf("documented example %s %s (body %q) = %d, want 2xx",
				ex.method, ex.path, ex.body, resp.StatusCode)
		}
	}
}
