package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
)

// runBatch evaluates one coalesced batch on a resolved generation.
type runBatch func(ctx context.Context, g *generation, reqs []eval.Request) ([]eval.Result, error)

// coalescer merges concurrent requests into engine batches. The first
// submitter of a batch becomes its leader: it waits up to the coalescing
// window (or until the batch holds CoalesceMax points, whichever is
// first) for other requests to pile in, then closes the batch and runs
// it as one eval.EvaluateBatch call. Followers park on the batch and
// read their own slice of the results, so every request still gets
// exactly its answers in its order. One network round per client, one
// engine batch per window — the singleflight cache, worker pool and
// compiled kernels all see batch-shaped traffic even when every client
// sends a single design point.
type coalescer struct {
	name    string
	window  time.Duration
	maxReqs int
	run     runBatch
	gen     func() *generation
	timeout time.Duration

	mu  sync.Mutex
	cur *batch

	batches   atomic.Int64
	coalesced atomic.Int64

	batchCtr *obs.Counter
	joinCtr  *obs.Counter
	sizeHist *obs.Histogram
}

// batch is one in-formation (then in-flight) coalesced batch. reqs is
// append-only while the batch is open (guarded by the coalescer mutex);
// once the leader detaches the batch it is immutable until done closes,
// after which results and err are readable by every participant.
type batch struct {
	reqs       []eval.Request
	full       chan struct{} // closed when maxReqs reached; wakes the leader early
	fullClosed bool
	done       chan struct{} // closed by the leader after the engine call
	results    []eval.Result
	err        error
	gen        *generation
}

func newCoalescer(name string, opts Options, gen func() *generation, run runBatch) *coalescer {
	return &coalescer{
		name:     name,
		window:   opts.CoalesceWindow,
		maxReqs:  opts.CoalesceMax,
		run:      run,
		gen:      gen,
		timeout:  opts.RequestTimeout,
		batchCtr: obs.DefaultRegistry.Counter("serve." + name + ".batches"),
		joinCtr:  obs.DefaultRegistry.Counter("serve." + name + ".coalesced"),
		sizeHist: obs.DefaultRegistry.Histogram("serve." + name + ".batch_wait"),
	}
}

func (c *coalescer) stats() (batches, coalesced int64) {
	return c.batches.Load(), c.coalesced.Load()
}

// submit joins (or opens) the current batch with reqs and returns this
// request's results once the batch has run, along with the generation
// that served it. A caller whose ctx expires before the batch completes
// gets the ctx error (typically mapped to 504); the batch itself runs on
// with the server-level deadline, so co-batched requests are unaffected.
func (c *coalescer) submit(ctx context.Context, reqs []eval.Request) ([]eval.Result, *generation, error) {
	c.mu.Lock()
	b := c.cur
	leader := b == nil
	if leader {
		b = &batch{full: make(chan struct{}), done: make(chan struct{})}
		c.cur = b
	}
	off := len(b.reqs)
	b.reqs = append(b.reqs, reqs...)
	if len(b.reqs) >= c.maxReqs && !b.fullClosed {
		b.fullClosed = true
		close(b.full)
	}
	// Snapshot under the lock: fullClosed is written by followers while
	// the leader sleeps, so the leader must not read the field again.
	fullAlready := b.fullClosed
	c.mu.Unlock()
	c.coalesced.Add(1)
	c.joinCtr.Add(1)

	if leader {
		start := time.Now()
		if c.window > 0 && !fullAlready {
			t := time.NewTimer(c.window)
			select {
			case <-t.C:
			case <-b.full:
				t.Stop()
			case <-ctx.Done():
				// The leader's deadline is about to fire: run the batch now
				// so followers are not stranded by a leader that gives up.
				t.Stop()
			}
		}
		// Detach the batch: after cur is cleared no submitter can append,
		// so reading b.reqs outside the lock below is safe.
		c.mu.Lock()
		if c.cur == b {
			c.cur = nil
		}
		all := b.reqs
		c.mu.Unlock()
		c.batches.Add(1)
		c.batchCtr.Add(1)
		c.sizeHist.Observe(time.Since(start))

		// The batch runs under its own deadline, detached from any single
		// participant's context: one impatient client must not cancel the
		// answers of everyone batched with it.
		bctx := context.Background()
		if c.timeout > 0 {
			var cancel context.CancelFunc
			bctx, cancel = context.WithTimeout(bctx, c.timeout)
			defer cancel()
		}
		b.gen = c.gen()
		b.results, b.err = c.run(bctx, b.gen, all)
		close(b.done)
	}

	select {
	case <-b.done:
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	if b.err != nil {
		return nil, b.gen, b.err
	}
	return b.results[off : off+len(reqs)], b.gen, nil
}
