// Package sim implements the trace-driven out-of-order core timing model,
// the repository's substitute for the Turandot simulator the paper builds
// on. The model is a cycle-accounting list scheduler: instructions flow
// through fetch (width-limited, I-cache and misprediction stalls), rename
// (physical-register window), dispatch into per-class reservation
// stations, issue (operand readiness + functional units + memory
// latencies), completion and in-order retirement. Pipeline depth sets
// clock frequency, stage count and the misprediction refill penalty, so
// the depth/width/cache/ILP interactions the regression models must learn
// all emerge from the mechanism rather than from fitted formulas.
package sim

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cacti"
)

// Technology constants. The absolute numbers target the paper's 130 nm,
// POWER4-era design point; the studies depend only on their relative
// scaling.
const (
	// TFO4NS is the delay of one fan-out-of-four inverter in nanoseconds.
	// 40 ps puts a 19 FO4 pipeline at 1.32 GHz, matching the POWER4-like
	// baseline.
	TFO4NS = 0.040

	// TotalLogicFO4 is the total logic depth of the pipeline in FO4s.
	// 240 FO4 yields 15 stages at 19 FO4 per stage (3 FO4 of latch
	// overhead), a POWER4-like pipeline.
	TotalLogicFO4 = 240

	// LatchOverheadFO4 is the per-stage latch plus clock-skew overhead.
	LatchOverheadFO4 = 3

	// MemoryLatencyNS is the flat main-memory access latency. At the
	// 19 FO4 baseline clock this is 79 cycles, matching Table 3's 77.
	MemoryLatencyNS = 60.0

	// BHTEntries is the branch history table size (Table 3: 16K, 1-bit).
	BHTEntries = 16384

	// Cache associativities (Table 3).
	IL1Assoc = 1
	DL1Assoc = 2
	L2Assoc  = 4

	// Functional-unit latencies in cycles.
	IntLatency    = 1
	FPLatency     = 4
	BranchLatency = 1
	StoreLatency  = 1

	// Architected registers reserved out of each physical pool.
	ArchGPR = 32
	ArchFPR = 32
	ArchSPR = 36

	// WarmupFrac is the leading fraction of each trace used to warm the
	// caches and branch predictor before timing begins.
	WarmupFrac = 0.3
)

// Params holds the derived timing parameters for one configuration.
type Params struct {
	Config arch.Config

	PeriodNS float64 // clock period
	FreqGHz  float64

	Stages         int // total pipeline stages
	FrontendStages int // fetch -> dispatch depth

	IL1Cycles int // L1 instruction hit latency
	DL1Cycles int // L1 data hit latency
	L2Cycles  int // additional cycles on an L1 miss
	MemCycles int // additional cycles on an L2 miss

	// Rename pool capacities (physical minus architected registers).
	GPRPool, FPRPool, SPRPool int

	// DL1Assoc is the effective data-cache associativity after applying
	// any configuration override.
	DL1Assoc int
}

// EffectiveDL1Assoc resolves the configured data-cache associativity,
// applying the Table 3 default of 2 ways when unset.
func EffectiveDL1Assoc(cfg arch.Config) int {
	if cfg.DL1Assoc > 0 {
		return cfg.DL1Assoc
	}
	return DL1Assoc
}

// Derive computes timing parameters from a configuration.
func Derive(cfg arch.Config) (Params, error) {
	if err := cfg.Validate(); err != nil {
		return Params{}, err
	}
	period := float64(cfg.DepthFO4) * TFO4NS
	logicPerStage := cfg.DepthFO4 - LatchOverheadFO4
	if logicPerStage < 1 {
		return Params{}, fmt.Errorf("sim: depth %d FO4 leaves no room for logic", cfg.DepthFO4)
	}
	stages := int(math.Ceil(TotalLogicFO4 / float64(logicPerStage)))
	frontend := stages * 2 / 5
	if frontend < 2 {
		frontend = 2
	}
	p := Params{
		Config:         cfg,
		PeriodNS:       period,
		FreqGHz:        1 / period,
		Stages:         stages,
		FrontendStages: frontend,
		IL1Cycles:      l1Cycles(cfg.IL1KB),
		DL1Cycles:      l1Cycles(cfg.DL1KB),
		L2Cycles:       cacti.CyclesAt(cacti.AccessTimeNS(cfg.L2KB, L2Assoc), period),
		MemCycles:      cacti.CyclesAt(MemoryLatencyNS, period),
		GPRPool:        cfg.GPR - ArchGPR,
		FPRPool:        cfg.FPR - ArchFPR,
		SPRPool:        cfg.SPR - ArchSPR,
		DL1Assoc:       EffectiveDL1Assoc(cfg),
	}
	if p.GPRPool < 1 || p.FPRPool < 1 || p.SPRPool < 1 {
		return Params{}, fmt.Errorf("sim: register files too small to rename (%d/%d/%d physical)",
			cfg.GPR, cfg.FPR, cfg.SPR)
	}
	return p, nil
}

// l1Cycles returns the level-one hit latency in cycles as a function of
// capacity only. Unlike the L2 and memory, whose nanosecond latencies are
// converted to more cycles as the clock quickens, first-level caches are
// co-designed with the pipeline: their access is pipelined to fit the
// cycle time at any depth, at the cost of an extra stage or two for
// larger arrays (Table 3's one-cycle 32 KB D-cache is the anchor). This
// preserves the paper's depth-cache interaction in the correct direction:
// deeper pipelines make *misses* more expensive, so their most efficient
// designs carry larger caches (Figure 5b).
func l1Cycles(sizeKB int) int {
	switch {
	case sizeKB <= 32:
		return 1
	case sizeKB <= 128:
		return 2
	default:
		return 3
	}
}

// MispredictRedirect returns the minimum fetch-restart distance after a
// mispredicted branch resolves, in cycles: one redirect cycle. The full
// penalty additionally includes the front-end refill, which the scheduler
// models through the fetch-to-dispatch depth of the re-fetched path.
func (p Params) MispredictRedirect() int64 { return 1 }
