package sim

import (
	"runtime/debug"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// fullRun simulates with the seed path: fresh scratch, full warmup walk.
func fullRun(t *testing.T, cfg arch.Config, tr *trace.Trace) *Result {
	t.Helper()
	var s Scratch
	out := new(Result)
	if err := s.Run(out, cfg, tr); err != nil {
		t.Fatal(err)
	}
	return out
}

func testTrace(t *testing.T, bench string) *trace.Trace {
	t.Helper()
	tr, err := trace.ForBenchmark(bench, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFastPathGolden pins the fast path to the seed path bit-for-bit:
// for sampled configurations across every benchmark, a Runner (memoized
// warm state, pooled scratch) must reproduce the full-warmup result
// exactly — same cycles, same activity, same floats.
func TestFastPathGolden(t *testing.T) {
	space := arch.ExplorationSpace()
	points := space.SampleUAR(6, 42)
	r := NewRunner()
	for _, bench := range trace.Benchmarks() {
		tr := testTrace(t, bench)
		for _, p := range points {
			cfg := space.Config(p)
			want := fullRun(t, cfg, tr)
			// Three times per key, once per memo tier: the first run warms
			// the memo (miss), the second restores the snapshot and records
			// the outcome mask, the third replays the mask; all must match
			// the seed.
			for pass := 0; pass < 3; pass++ {
				got, err := r.Run(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				if *got != *want {
					t.Fatalf("%s %v pass %d: fast path diverged\n got %+v\nwant %+v",
						bench, cfg, pass, got, want)
				}
			}
		}
	}
	hits, misses := r.WarmStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("warm stats hits=%d misses=%d, want both > 0", hits, misses)
	}
}

// TestWarmStateCrossGeometry interleaves runs with distinct cache
// geometries through one Runner and checks each against a fresh
// full-warmup run: restored warm state must never leak between keys.
func TestWarmStateCrossGeometry(t *testing.T) {
	tr := testTrace(t, "mcf")
	base := arch.Baseline()
	small := base
	small.IL1KB, small.DL1KB, small.L2KB = 16, 8, 256
	large := base
	large.IL1KB, large.DL1KB, large.L2KB, large.DL1Assoc = 256, 128, 4096, 4
	cfgs := []arch.Config{small, base, large, small, large, base, small}

	r := NewRunner()
	for i, cfg := range cfgs {
		want := fullRun(t, cfg, tr)
		got, err := r.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d (%v): warm state leaked across geometries\n got %+v\nwant %+v",
				i, cfg, got, want)
		}
	}
	hits, _ := r.WarmStats()
	if hits != int64(len(cfgs)-3) {
		t.Fatalf("warm hits = %d, want %d (every revisit of a geometry)", hits, len(cfgs)-3)
	}
}

// TestWarmBudgetFallback pins the over-budget behaviour: with a zero
// budget nothing is memoized — every run warms itself — and results are
// still bit-identical to the seed path.
func TestWarmBudgetFallback(t *testing.T) {
	tr := testTrace(t, "gzip")
	cfg := arch.Baseline()
	r := NewRunner()
	r.SetWarmBudget(0)
	want := fullRun(t, cfg, tr)
	for i := 0; i < 3; i++ {
		got, err := r.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d: over-budget path diverged", i)
		}
	}
	hits, misses := r.WarmStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("warm stats hits=%d misses=%d, want 0/3 under zero budget", hits, misses)
	}
}

// TestRunZeroAllocs enforces the PR's core claim: once scratch and warm
// state reach steady state, simulating a run performs zero heap
// allocations — on the Runner fast path, the package Run path, and the
// caller-owned-Scratch path alike. GC is disabled for the measurement so
// a collection cannot clear the sync.Pool mid-run and charge the refill
// to us.
func TestRunZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by race-detector instrumentation")
	}
	tr := testTrace(t, "gcc")
	cfg := arch.Baseline()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	r := NewRunner()
	var out Result
	// Warm the pool, the memo and the scratch arrays.
	for i := 0; i < 3; i++ {
		if err := r.RunInto(&out, cfg, tr); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(5, func() {
		if err := r.RunInto(&out, cfg, tr); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Runner.RunInto allocates %v per steady-state run, want 0", avg)
	}

	var s Scratch
	if err := s.Run(&out, cfg, tr); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(5, func() {
		if err := s.Run(&out, cfg, tr); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Scratch.Run allocates %v per steady-state run, want 0", avg)
	}

	if err := RunInto(&out, cfg, tr); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(5, func() {
		if err := RunInto(&out, cfg, tr); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("RunInto allocates %v per steady-state run, want 0", avg)
	}
}

// BenchmarkRunnerWarm measures the fast path in steady state (warm memo
// hit, pooled scratch).
func BenchmarkRunnerWarm(b *testing.B) {
	tr, err := trace.ForBenchmark("gzip", testTraceLen)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.Baseline()
	r := NewRunner()
	var out Result
	if err := r.RunInto(&out, cfg, tr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunInto(&out, cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReplayAcrossConfigs pins the property the replay tier rests on:
// cache and predictor outcomes recorded under one configuration replay
// bit-identically under configurations with different widths, depths,
// latencies, pools and queues, as long as the warm key (trace, cache
// geometry) matches. The third config's first run replays a mask that
// was recorded by the second config's run.
func TestReplayAcrossConfigs(t *testing.T) {
	tr := testTrace(t, "gcc")
	base := arch.Baseline()
	wide := base
	wide.Width, wide.FUPerKind, wide.LSQ, wide.SQ = base.Width*2, base.FUPerKind*2, base.LSQ*2, base.SQ*2
	deep := base
	deep.DepthFO4 = 12
	deep.GPR, deep.FPR = base.GPR+30, base.FPR+30

	r := NewRunner()
	for i, cfg := range []arch.Config{base, wide, deep, base} {
		want := fullRun(t, cfg, tr)
		got, err := r.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d (%v): replayed outcomes diverged from the seed path\n got %+v\nwant %+v",
				i, cfg, got, want)
		}
	}
	hits, misses := r.WarmStats()
	if hits != 3 || misses != 1 {
		t.Fatalf("warm stats hits=%d misses=%d, want 3/1 (one key, four configs)", hits, misses)
	}
}

// TestMaskBudgetFallback pins the intermediate memo state: a budget that
// fits the warm snapshots but not the outcome mask keeps every later run
// on the snapshot-restore tier, still bit-identical and still counted as
// a warm hit.
func TestMaskBudgetFallback(t *testing.T) {
	tr := testTrace(t, "gzip")
	cfg := arch.Baseline()

	// Learn the snapshot footprint of this key with an unbounded budget.
	probe := NewRunner()
	if _, err := probe.Run(cfg, tr); err != nil {
		t.Fatal(err)
	}
	snapBytes := probe.used.Load()
	if snapBytes <= 0 {
		t.Fatalf("snapshot bytes = %d, want > 0", snapBytes)
	}

	r := NewRunner()
	r.SetWarmBudget(snapBytes) // snapshots fit exactly; any mask overflows
	want := fullRun(t, cfg, tr)
	for i := 0; i < 3; i++ {
		got, err := r.Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d: snapshot-tier fallback diverged", i)
		}
	}
	hits, misses := r.WarmStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("warm stats hits=%d misses=%d, want 2/1", hits, misses)
	}
	if e, ok := (*r.warm.Load())[warmKey{tr, cfg.IL1KB, cfg.DL1KB, DL1Assoc, cfg.L2KB}]; !ok {
		t.Fatal("warm entry missing")
	} else if e.mask.Load() != nil {
		t.Fatal("outcome mask recorded despite exhausted budget")
	}
	if used := r.used.Load(); used != snapBytes {
		t.Fatalf("budget accounting drifted: used %d, want %d", used, snapBytes)
	}
}
