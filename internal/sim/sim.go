package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Observability instruments. The counters are always live (one atomic
// add per multi-millisecond simulation); the latency histogram records
// only while tracing is enabled.
var (
	simRuns         = obs.DefaultRegistry.Counter("sim.runs")
	simInstructions = obs.DefaultRegistry.Counter("sim.instructions")
	simCycles       = obs.DefaultRegistry.Counter("sim.cycles")
	simWarmHits     = obs.DefaultRegistry.Counter("sim.warm.hits")
	simWarmMisses   = obs.DefaultRegistry.Counter("sim.warm.misses")
	simWarmReplays  = obs.DefaultRegistry.Counter("sim.warm.replays")
	simRunHist      = obs.DefaultRegistry.Histogram("sim.run")
)

// Activity counts the micro-events of one simulation, the inputs to the
// power model.
type Activity struct {
	Int, FP, Load, Store, Branch int64

	IL1Access, IL1Miss int64
	DL1Access, DL1Miss int64
	L2Access, L2Miss   int64
	MemAccess          int64

	BranchLookups, BranchMispredicts int64

	Issued int64
}

// Result is the outcome of simulating one (configuration, trace) pair.
type Result struct {
	Benchmark string
	Config    arch.Config
	Params    Params

	Instructions int64
	Cycles       int64

	IPC  float64
	BIPS float64 // billions of instructions per second

	Activity Activity
}

// DelaySeconds returns the paper's delay metric: seconds to execute 100M
// instructions at the achieved throughput.
func (r Result) DelaySeconds() float64 { return 0.1 / r.BIPS }

// ring models a fully pipelined resource pool of fixed capacity with
// FIFO slot reuse: the k-th allocation cannot start before the (k-C)-th
// release.
type ring struct {
	slots []int64
	pos   int
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{slots: make([]int64, capacity)}
}

// earliest returns the soonest time >= t at which a slot is free.
func (r *ring) earliest(t int64) int64 {
	if s := r.slots[r.pos]; s > t {
		return s
	}
	return t
}

// commit consumes the current slot until the given release time.
func (r *ring) commit(release int64) {
	r.slots[r.pos] = release
	r.pos++
	if r.pos == len(r.slots) {
		r.pos = 0
	}
}

// bw fuses earliest and commit for bandwidth-style rings — fetch and
// retire slots and fully pipelined functional units, which always
// recycle their slot one cycle after use: it returns the soonest time
// >= t at which a slot is free and consumes that slot until the
// following cycle, touching the slot array once.
func (r *ring) bw(t int64) int64 {
	if s := r.slots[r.pos]; s > t {
		t = s
	}
	r.slots[r.pos] = t + 1
	r.pos++
	if r.pos == len(r.slots) {
		r.pos = 0
	}
	return t
}

// Scratch holds every piece of per-run mutable state the cycle kernel
// needs: the completion array, the backing storage for the fourteen
// resource rings, the three caches and the branch history table. A
// Scratch reaches a steady state after a few runs — its arrays grow to
// the largest geometry seen and are reused — so simulating through one
// performs zero heap allocations. The zero value is ready to use.
// A Scratch is not safe for concurrent use; Run and Runner draw them
// from pools.
type Scratch struct {
	complete []int64
	ringBuf  []int64
	il1      cache.Cache
	dl1      cache.Cache
	l2       cache.Cache
	bht      branch.Predictor
}

// scratchPool recycles run scratch for the package-level Run entry
// points.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// warmupLen returns the number of leading trace instructions used for
// data-side and predictor warmup.
func warmupLen(n int) int { return int(float64(n) * WarmupFrac) }

// configure reshapes the scratch's caches and predictor to the
// configuration's geometry, clearing their contents.
func (s *Scratch) configure(p Params) error {
	cfg := p.Config
	if err := s.il1.Configure("il1", cfg.IL1KB*1024, IL1Assoc, trace.BlockBytes); err != nil {
		return err
	}
	if err := s.dl1.Configure("dl1", cfg.DL1KB*1024, p.DL1Assoc, trace.BlockBytes); err != nil {
		return err
	}
	if err := s.l2.Configure("l2", cfg.L2KB*1024, L2Assoc, trace.BlockBytes); err != nil {
		return err
	}
	return s.bht.Configure(BHTEntries, 1)
}

// warmup primes the caches and branch predictor without timing, so the
// timed portion measures steady-state behaviour rather than cold-start
// compulsory misses — standard practice for sampled trace simulation
// (the paper's traces are sampled from full runs with systematic warmup
// validation [11]). First-touch misses within the timed region remain,
// preserving the memory-boundedness of streaming workloads.
//
// The instruction side warms over the whole trace: code is static and
// long resident by the time a mid-execution sample begins, so timed
// I-misses should be capacity and conflict misses, not first touches.
// The data side and the predictor warm over the leading WarmupFrac only,
// preserving the compulsory component of streaming workloads.
//
// Nothing here reads a latency, width, pool or queue parameter: warmup
// state depends only on the trace and the cache/BHT geometries, which is
// what makes it safe for Runner to memoize per (trace, geometry) key.
func (s *Scratch) warmup(tr *trace.Trace) {
	warm := warmupLen(tr.Len())
	for i := range tr.Insts {
		in := &tr.Insts[i]
		if !s.il1.Access(in.PC) {
			s.l2.Access(in.PC)
		}
	}
	for i := 0; i < warm; i++ {
		in := &tr.Insts[i]
		switch in.Kind {
		case trace.OpLoad, trace.OpStore:
			if !s.dl1.Access(in.Addr) {
				s.l2.Access(in.Addr)
			}
		case trace.OpBranch:
			s.bht.Update(in.PC, in.Taken)
		}
	}
	s.il1.ResetStats()
	s.dl1.ResetStats()
	s.l2.ResetStats()
	s.bht.ResetStats()
}

// Run simulates the trace on the configuration with a full warmup pass,
// writing the result into out — the zero-steady-state-allocation
// equivalent of the package-level Run.
func (s *Scratch) Run(out *Result, cfg arch.Config, tr *trace.Trace) error {
	p, err := Derive(cfg)
	if err != nil {
		return err
	}
	if tr == nil || tr.Len() == 0 {
		return fmt.Errorf("sim: empty trace")
	}
	if err := s.configure(p); err != nil {
		return err
	}
	s.warmup(tr)
	s.timed(out, p, tr)
	return nil
}

// Run simulates the trace on the configuration and returns timing and
// activity. The simulation is deterministic. Per-run working state is
// drawn from a pool, so steady-state cost is the cycle kernel itself.
func Run(cfg arch.Config, tr *trace.Trace) (*Result, error) {
	res := new(Result)
	if err := RunInto(res, cfg, tr); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run writing into caller-owned storage, allocating nothing
// in steady state.
func RunInto(out *Result, cfg arch.Config, tr *trace.Trace) error {
	traced := obs.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	s := scratchPool.Get().(*Scratch)
	err := s.Run(out, cfg, tr)
	scratchPool.Put(s)
	if err != nil {
		return err
	}
	observeRun(out, traced, start)
	return nil
}

// observeRun feeds the per-run observability instruments.
func observeRun(out *Result, traced bool, start time.Time) {
	simRuns.Add(1)
	simInstructions.Add(out.Instructions)
	simCycles.Add(out.Cycles)
	if traced {
		simRunHist.Observe(time.Since(start))
	}
}

// numRings is the number of resource rings the kernel carves out of the
// pooled backing array; see prepare for the slot assignment.
const numRings = 14

// prepare readies the scratch's per-run arrays for the timed kernel:
// zeroes the warmup prefix of the completion array (timed entries are
// always written before they are read, so only the prefix needs
// clearing) and carves the fourteen resource rings out of one pooled,
// zeroed backing array. Shared by the reference and fast kernels.
func (s *Scratch) prepare(p Params, n, warm int) [numRings]ring {
	cfg := p.Config
	if cap(s.complete) < n {
		s.complete = make([]int64, n)
	} else {
		s.complete = s.complete[:n]
	}
	complete := s.complete
	for i := 0; i < warm; i++ {
		complete[i] = 0
	}

	capacities := [numRings]int{
		cfg.Width,     // 0: fetch slots per cycle
		cfg.Width,     // 1: commit slots per cycle
		p.GPRPool,     // 2: integer rename registers
		p.FPRPool,     // 3: floating-point rename registers
		p.SPRPool,     // 4: special-purpose (branch/condition)
		cfg.ResvFX,    // 5: fixed-point reservation stations
		cfg.ResvFP,    // 6: floating-point reservation stations
		cfg.ResvBR,    // 7: branch reservation stations
		cfg.LSQ,       // 8: load queue entries
		cfg.SQ,        // 9: store queue entries
		cfg.FUPerKind, // 10: fixed-point units
		cfg.FUPerKind, // 11: floating-point units
		cfg.FUPerKind, // 12: load/store units
		cfg.FUPerKind, // 13: branch units
	}
	total := 0
	for i, c := range capacities {
		if c < 1 {
			capacities[i] = 1
			c = 1
		}
		total += c
	}
	buf := s.ringBuf
	if cap(buf) < total {
		buf = make([]int64, total)
		s.ringBuf = buf
	} else {
		buf = buf[:total]
		s.ringBuf = buf
		for i := range buf {
			buf[i] = 0
		}
	}
	var rings [numRings]ring
	off := 0
	for i, c := range capacities {
		rings[i] = ring{slots: buf[off : off+c]}
		off += c
	}
	return rings
}

// timed runs the cycle-accounting kernel over the post-warmup portion of
// the trace, assuming the scratch's caches and predictor already hold
// warmed state, and writes the result into out. This is the reference
// kernel — the straightforward transcription of the pipeline model that
// the specialized timedFast kernel is pinned against by golden tests.
func (s *Scratch) timed(out *Result, p Params, tr *trace.Trace) {
	cfg := p.Config
	n := tr.Len()
	warm := warmupLen(n)
	rings := s.prepare(p, n, warm)
	complete := s.complete
	fetchBW := &rings[0]
	retireBW := &rings[1]
	gpr := &rings[2]
	fpr := &rings[3]
	spr := &rings[4]
	rsFX := &rings[5]
	rsFP := &rings[6]
	rsBR := &rings[7]
	lsq := &rings[8]
	sq := &rings[9]
	fuFX := &rings[10]
	fuFP := &rings[11]
	fuLS := &rings[12]
	fuBR := &rings[13]

	// Per-kind routing, resolved once per run instead of switched per
	// instruction: which rename pool, reservation-station class, memory
	// queue and functional unit an instruction of each kind occupies, and
	// its base execution latency. A nil entry means the kind does not use
	// that structure (stores write no register; memory ops wait in the
	// LSQ/SQ instead of a reservation station).
	var (
		poolFor [trace.NumOpKinds]*ring
		rsFor   [trace.NumOpKinds]*ring
		memqFor [trace.NumOpKinds]*ring
		fuFor   [trace.NumOpKinds]*ring
		latFor  [trace.NumOpKinds]int64
	)
	il1Lat := int64(p.IL1Cycles)
	dl1Lat := int64(p.DL1Cycles)
	l2Lat := int64(p.L2Cycles)
	memLat := int64(p.MemCycles)
	poolFor[trace.OpInt], rsFor[trace.OpInt], fuFor[trace.OpInt], latFor[trace.OpInt] = gpr, rsFX, fuFX, IntLatency
	poolFor[trace.OpFP], rsFor[trace.OpFP], fuFor[trace.OpFP], latFor[trace.OpFP] = fpr, rsFP, fuFP, FPLatency
	poolFor[trace.OpLoad], memqFor[trace.OpLoad], fuFor[trace.OpLoad], latFor[trace.OpLoad] = gpr, lsq, fuLS, dl1Lat
	memqFor[trace.OpStore], fuFor[trace.OpStore], latFor[trace.OpStore] = sq, fuLS, StoreLatency
	poolFor[trace.OpBranch], rsFor[trace.OpBranch], fuFor[trace.OpBranch], latFor[trace.OpBranch] = spr, rsBR, fuBR, BranchLatency

	il1, dl1, l2, bht := &s.il1, &s.dl1, &s.l2, &s.bht

	var act Activity
	frontend := int64(p.FrontendStages)

	var (
		redirect     int64 // earliest fetch after the last mispredict
		lastFetch    int64 // fetch time of the previous instruction
		lastDispatch int64 // dispatch is in order
		lastIssue    int64 // enforced only for in-order cores
		lastRetire   int64
		prevTakenAt  int64 = -1 // fetch cycle of the last taken branch
	)
	inOrder := cfg.InOrder

	for i := warm; i < n; i++ {
		in := &tr.Insts[i]
		kind := in.Kind

		// ---- Fetch ----
		f := lastFetch
		if redirect > f {
			f = redirect
		}
		// A taken branch ends its fetch group: the target is fetched no
		// earlier than the following cycle.
		if prevTakenAt >= 0 && f <= prevTakenAt {
			f = prevTakenAt + 1
			prevTakenAt = -1
		}
		f = fetchBW.earliest(f)

		// Instruction cache.
		act.IL1Access++
		if !il1.Access(in.PC) {
			act.IL1Miss++
			stall := l2Lat
			act.L2Access++
			if !l2.Access(in.PC) {
				act.L2Miss++
				act.MemAccess++
				stall += memLat
			}
			f += il1Lat + stall
		}
		fetchBW.commit(f + 1)
		lastFetch = f

		// ---- Rename/dispatch ----
		d := f + frontend
		// A physical destination register must be free.
		pool := poolFor[kind]
		if pool != nil {
			d = pool.earliest(d)
		}
		// A reservation-station slot of the class must be free.
		rs := rsFor[kind]
		if rs != nil {
			d = rs.earliest(d)
		}
		memq := memqFor[kind]
		if memq != nil {
			d = memq.earliest(d)
		}
		// Dispatch proceeds in program order.
		if d < lastDispatch {
			d = lastDispatch
		}
		lastDispatch = d

		// ---- Issue ----
		ready := d + 1 // minimum one cycle in the queue
		// In-order cores issue in program order with stall-on-use:
		// nothing may issue before its predecessor has.
		if inOrder && lastIssue > ready {
			ready = lastIssue
		}
		if in.Dep1 > 0 {
			if c := complete[i-int(in.Dep1)]; c > ready {
				ready = c
			}
		}
		if in.Dep2 > 0 {
			if c := complete[i-int(in.Dep2)]; c > ready {
				ready = c
			}
		}
		fu := fuFor[kind]
		issue := fu.earliest(ready)
		fu.commit(issue + 1) // fully pipelined units
		lastIssue = issue
		act.Issued++

		// ---- Execute/complete ----
		lat := latFor[kind]
		switch kind {
		case trace.OpInt:
			act.Int++
		case trace.OpFP:
			act.FP++
		case trace.OpBranch:
			act.Branch++
		case trace.OpStore:
			act.Store++
			// Stores update the hierarchy for state and power accounting;
			// the store buffer hides their latency.
			act.DL1Access++
			if !dl1.Access(in.Addr) {
				act.DL1Miss++
				act.L2Access++
				if !l2.Access(in.Addr) {
					act.L2Miss++
					act.MemAccess++
				}
			}
		case trace.OpLoad:
			act.Load++
			act.DL1Access++
			if !dl1.Access(in.Addr) {
				act.DL1Miss++
				act.L2Access++
				lat += l2Lat
				if !l2.Access(in.Addr) {
					act.L2Miss++
					act.MemAccess++
					lat += memLat
				}
			}
		}
		c := issue + lat
		complete[i] = c

		// Release the structures the instruction held.
		if rs != nil {
			rs.commit(issue)
		}
		if memq != nil {
			if kind == trace.OpLoad {
				memq.commit(c)
			}
			// Store queue entries release at retirement, handled below.
		}

		// ---- Branch resolution ----
		if kind == trace.OpBranch {
			act.BranchLookups++
			if bht.Update(in.PC, in.Taken) {
				act.BranchMispredicts++
				// Wrong-path fetch halts until the branch resolves; the
				// refetched path then refills the front end.
				if r := c + p.MispredictRedirect(); r > redirect {
					redirect = r
				}
			} else if in.Taken {
				prevTakenAt = f
			}
		}

		// ---- Retire (in order, width per cycle) ----
		ret := c
		if ret < lastRetire {
			ret = lastRetire
		}
		ret = retireBW.earliest(ret)
		retireBW.commit(ret + 1)
		lastRetire = ret
		if pool != nil {
			pool.commit(ret)
		}
		if kind == trace.OpStore {
			sq.commit(ret)
		}
	}

	timed := int64(n - warm)
	cycles := lastRetire + 1
	if prof, ok := trace.ProfileFor(tr.Name); ok && prof.IPCScale != 1 {
		cycles = int64(float64(cycles) / prof.IPCScale)
	}
	*out = Result{
		Benchmark:    tr.Name,
		Config:       cfg,
		Params:       p,
		Instructions: timed,
		Cycles:       cycles,
		Activity:     act,
	}
	out.IPC = float64(timed) / float64(cycles)
	out.BIPS = out.IPC * p.FreqGHz
}
