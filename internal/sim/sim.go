package sim

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Observability instruments. The counters are always live (one atomic
// add per multi-millisecond simulation); the latency histogram records
// only while tracing is enabled.
var (
	simRuns         = obs.DefaultRegistry.Counter("sim.runs")
	simInstructions = obs.DefaultRegistry.Counter("sim.instructions")
	simCycles       = obs.DefaultRegistry.Counter("sim.cycles")
	simRunHist      = obs.DefaultRegistry.Histogram("sim.run")
)

// Activity counts the micro-events of one simulation, the inputs to the
// power model.
type Activity struct {
	Int, FP, Load, Store, Branch int64

	IL1Access, IL1Miss int64
	DL1Access, DL1Miss int64
	L2Access, L2Miss   int64
	MemAccess          int64

	BranchLookups, BranchMispredicts int64

	Issued int64
}

// Result is the outcome of simulating one (configuration, trace) pair.
type Result struct {
	Benchmark string
	Config    arch.Config
	Params    Params

	Instructions int64
	Cycles       int64

	IPC  float64
	BIPS float64 // billions of instructions per second

	Activity Activity
}

// DelaySeconds returns the paper's delay metric: seconds to execute 100M
// instructions at the achieved throughput.
func (r Result) DelaySeconds() float64 { return 0.1 / r.BIPS }

// ring models a fully pipelined resource pool of fixed capacity with
// FIFO slot reuse: the k-th allocation cannot start before the (k-C)-th
// release.
type ring struct {
	slots []int64
	pos   int
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{slots: make([]int64, capacity)}
}

// earliest returns the soonest time >= t at which a slot is free.
func (r *ring) earliest(t int64) int64 {
	if s := r.slots[r.pos]; s > t {
		return s
	}
	return t
}

// commit consumes the current slot until the given release time.
func (r *ring) commit(release int64) {
	r.slots[r.pos] = release
	r.pos++
	if r.pos == len(r.slots) {
		r.pos = 0
	}
}

// Run simulates the trace on the configuration and returns timing and
// activity. The simulation is deterministic.
func Run(cfg arch.Config, tr *trace.Trace) (*Result, error) {
	p, err := Derive(cfg)
	if err != nil {
		return nil, err
	}
	traced := obs.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	res, err := runWithParams(p, tr)
	if err != nil {
		return nil, err
	}
	simRuns.Add(1)
	simInstructions.Add(res.Instructions)
	simCycles.Add(res.Cycles)
	if traced {
		simRunHist.Observe(time.Since(start))
	}
	return res, nil
}

func runWithParams(p Params, tr *trace.Trace) (*Result, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	cfg := p.Config

	il1, err := cache.New("il1", cfg.IL1KB*1024, IL1Assoc, trace.BlockBytes)
	if err != nil {
		return nil, err
	}
	dl1, err := cache.New("dl1", cfg.DL1KB*1024, p.DL1Assoc, trace.BlockBytes)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New("l2", cfg.L2KB*1024, L2Assoc, trace.BlockBytes)
	if err != nil {
		return nil, err
	}
	bht, err := branch.New(BHTEntries, 1)
	if err != nil {
		return nil, err
	}

	// Warmup pass: the first WarmupFrac of the trace primes the caches
	// and branch predictor without timing, so the timed portion measures
	// steady-state behaviour rather than cold-start compulsory misses —
	// standard practice for sampled trace simulation (the paper's traces
	// are sampled from full runs with systematic warmup validation [11]).
	// First-touch misses within the timed region remain, preserving the
	// memory-boundedness of streaming workloads.
	n := tr.Len()
	warm := int(float64(n) * WarmupFrac)
	// The instruction side warms over the whole trace: code is static
	// and long resident by the time a mid-execution sample begins, so
	// timed I-misses should be capacity and conflict misses, not first
	// touches. The data side and the predictor warm over the leading
	// fraction only, preserving the compulsory component of streaming
	// workloads.
	for i := range tr.Insts {
		in := &tr.Insts[i]
		if !il1.Access(in.PC) {
			l2.Access(in.PC)
		}
	}
	for i := 0; i < warm; i++ {
		in := &tr.Insts[i]
		switch in.Kind {
		case trace.OpLoad, trace.OpStore:
			if !dl1.Access(in.Addr) {
				l2.Access(in.Addr)
			}
		case trace.OpBranch:
			bht.Update(in.PC, in.Taken)
		}
	}
	il1.ResetStats()
	dl1.ResetStats()
	l2.ResetStats()
	bht.ResetStats()

	var act Activity

	// Completion times for dependency resolution; warmup instructions
	// count as long retired (time zero).
	complete := make([]int64, n)

	// Resource pools.
	fetchBW := newRing(cfg.Width)  // fetch slots per cycle
	retireBW := newRing(cfg.Width) // commit slots per cycle
	gpr := newRing(p.GPRPool)      // integer rename registers
	fpr := newRing(p.FPRPool)      // floating-point rename registers
	spr := newRing(p.SPRPool)      // special-purpose (branch/condition)
	rsFX := newRing(cfg.ResvFX)    // fixed-point reservation stations
	rsFP := newRing(cfg.ResvFP)    // floating-point reservation stations
	rsBR := newRing(cfg.ResvBR)    // branch reservation stations
	lsq := newRing(cfg.LSQ)        // load queue entries
	sq := newRing(cfg.SQ)          // store queue entries
	fuFX := newRing(cfg.FUPerKind) // fixed-point units
	fuFP := newRing(cfg.FUPerKind) // floating-point units
	fuLS := newRing(cfg.FUPerKind) // load/store units
	fuBR := newRing(cfg.FUPerKind) // branch units

	frontend := int64(p.FrontendStages)
	il1Lat := int64(p.IL1Cycles)
	dl1Lat := int64(p.DL1Cycles)
	l2Lat := int64(p.L2Cycles)
	memLat := int64(p.MemCycles)

	var (
		redirect     int64 // earliest fetch after the last mispredict
		lastFetch    int64 // fetch time of the previous instruction
		lastDispatch int64 // dispatch is in order
		lastIssue    int64 // enforced only for in-order cores
		lastRetire   int64
		prevTakenAt  int64 = -1 // fetch cycle of the last taken branch
	)
	inOrder := cfg.InOrder

	for i := warm; i < n; i++ {
		in := &tr.Insts[i]

		// ---- Fetch ----
		f := lastFetch
		if redirect > f {
			f = redirect
		}
		// A taken branch ends its fetch group: the target is fetched no
		// earlier than the following cycle.
		if prevTakenAt >= 0 && f <= prevTakenAt {
			f = prevTakenAt + 1
			prevTakenAt = -1
		}
		f = fetchBW.earliest(f)

		// Instruction cache.
		act.IL1Access++
		if !il1.Access(in.PC) {
			act.IL1Miss++
			stall := l2Lat
			act.L2Access++
			if !l2.Access(in.PC) {
				act.L2Miss++
				act.MemAccess++
				stall += memLat
			}
			f += il1Lat + stall
		}
		fetchBW.commit(f + 1)
		lastFetch = f

		// ---- Rename/dispatch ----
		d := f + frontend
		// A physical destination register must be free.
		var pool *ring
		switch in.Kind {
		case trace.OpFP:
			pool = fpr
		case trace.OpBranch:
			pool = spr
		case trace.OpStore:
			pool = nil // stores write no register
		default:
			pool = gpr
		}
		if pool != nil {
			d = pool.earliest(d)
		}
		// A reservation-station slot of the class must be free.
		var rs *ring
		switch in.Kind {
		case trace.OpFP:
			rs = rsFP
		case trace.OpBranch:
			rs = rsBR
		case trace.OpLoad, trace.OpStore:
			rs = nil // memory ops wait in the LSQ/SQ instead
		default:
			rs = rsFX
		}
		if rs != nil {
			d = rs.earliest(d)
		}
		var memq *ring
		switch in.Kind {
		case trace.OpLoad:
			memq = lsq
		case trace.OpStore:
			memq = sq
		}
		if memq != nil {
			d = memq.earliest(d)
		}
		// Dispatch proceeds in program order.
		if d < lastDispatch {
			d = lastDispatch
		}
		lastDispatch = d

		// ---- Issue ----
		ready := d + 1 // minimum one cycle in the queue
		// In-order cores issue in program order with stall-on-use:
		// nothing may issue before its predecessor has.
		if inOrder && lastIssue > ready {
			ready = lastIssue
		}
		if in.Dep1 > 0 {
			if c := complete[i-int(in.Dep1)]; c > ready {
				ready = c
			}
		}
		if in.Dep2 > 0 {
			if c := complete[i-int(in.Dep2)]; c > ready {
				ready = c
			}
		}
		var fu *ring
		switch in.Kind {
		case trace.OpFP:
			fu = fuFP
		case trace.OpBranch:
			fu = fuBR
		case trace.OpLoad, trace.OpStore:
			fu = fuLS
		default:
			fu = fuFX
		}
		issue := fu.earliest(ready)
		fu.commit(issue + 1) // fully pipelined units
		lastIssue = issue
		act.Issued++

		// ---- Execute/complete ----
		var lat int64
		switch in.Kind {
		case trace.OpInt:
			lat = IntLatency
			act.Int++
		case trace.OpFP:
			lat = FPLatency
			act.FP++
		case trace.OpBranch:
			lat = BranchLatency
			act.Branch++
		case trace.OpStore:
			lat = StoreLatency
			act.Store++
			// Stores update the hierarchy for state and power accounting;
			// the store buffer hides their latency.
			act.DL1Access++
			if !dl1.Access(in.Addr) {
				act.DL1Miss++
				act.L2Access++
				if !l2.Access(in.Addr) {
					act.L2Miss++
					act.MemAccess++
				}
			}
		case trace.OpLoad:
			act.Load++
			act.DL1Access++
			lat = dl1Lat
			if !dl1.Access(in.Addr) {
				act.DL1Miss++
				act.L2Access++
				lat += l2Lat
				if !l2.Access(in.Addr) {
					act.L2Miss++
					act.MemAccess++
					lat += memLat
				}
			}
		}
		c := issue + lat
		complete[i] = c

		// Release the structures the instruction held.
		if rs != nil {
			rs.commit(issue)
		}
		if memq != nil {
			if in.Kind == trace.OpLoad {
				memq.commit(c)
			}
			// Store queue entries release at retirement, handled below.
		}

		// ---- Branch resolution ----
		if in.Kind == trace.OpBranch {
			act.BranchLookups++
			if bht.Update(in.PC, in.Taken) {
				act.BranchMispredicts++
				// Wrong-path fetch halts until the branch resolves; the
				// refetched path then refills the front end.
				if r := c + p.MispredictRedirect(); r > redirect {
					redirect = r
				}
			} else if in.Taken {
				prevTakenAt = f
			}
		}

		// ---- Retire (in order, width per cycle) ----
		ret := c
		if ret < lastRetire {
			ret = lastRetire
		}
		ret = retireBW.earliest(ret)
		retireBW.commit(ret + 1)
		lastRetire = ret
		if pool != nil {
			pool.commit(ret)
		}
		if in.Kind == trace.OpStore {
			sq.commit(ret)
		}
	}

	timed := int64(n - warm)
	cycles := lastRetire + 1
	if prof, ok := trace.ProfileFor(tr.Name); ok && prof.IPCScale != 1 {
		cycles = int64(float64(cycles) / prof.IPCScale)
	}
	res := &Result{
		Benchmark:    tr.Name,
		Config:       cfg,
		Params:       p,
		Instructions: timed,
		Cycles:       cycles,
		Activity:     act,
	}
	res.IPC = float64(timed) / float64(cycles)
	res.BIPS = res.IPC * p.FreqGHz
	return res, nil
}
