package sim

import "repro/internal/trace"

// Outcome-mask bits, one byte per timed-region instruction. The caches
// and the branch history table are private structures driven in program
// order by an immutable trace, so for a fixed (trace, geometry) warm key
// their hit/miss/mispredict outcomes are identical across every
// configuration — latencies, width, depth, pools and queues change when
// events cost, never whether they occur. Recording the outcomes once per
// key lets later runs replay them without simulating the hierarchy at
// all (timedReplay).
const (
	mIL1Miss    byte = 1 << iota // instruction fetch missed the IL1
	mIL2Miss                     // ...and the L2 (memory fill)
	mDL1Miss                     // load/store missed the DL1
	mDL2Miss                     // ...and the L2 (memory fill)
	mMispredict                  // branch was mispredicted
)

// timedFast is the specialized cycle-accounting kernel the Runner fast
// path uses. It computes exactly what timed computes — the golden tests
// in fast_test.go and the eval/core layers pin the two bit-for-bit — but
// restructures the loop for speed:
//
//   - One switch on the instruction kind selects a straight-line block
//     per kind, replacing the reference kernel's routing tables, nil
//     checks and second execute switch with direct ring references.
//   - Bandwidth-style rings (functional units, retire slots) fuse their
//     earliest/commit pair into one slot-array touch via ring.bw. The
//     fetch ring cannot fuse: an I-cache miss stall lands between its
//     earliest and its commit.
//   - The instruction cache is always direct-mapped (IL1Assoc is a
//     package constant of 1), so lookups go through the inlinable
//     cache.AccessDirect, and consecutive instructions in the same cache
//     block — the overwhelmingly common case — short-circuit the tag
//     compare entirely through cache.Rehit. Both leave state
//     bit-identical to the reference Access path.
//   - The data cache takes the same AccessDirect shortcut when the
//     configuration is direct-mapped.
//
// The reference kernel stays the plain transcription of the pipeline
// model; this file is allowed to be clever precisely because timed is
// not, mirroring how the compiled model tables are pinned against the
// interpreted models under DisableCompile.
//
// When rec is non-nil it must hold one byte per timed instruction; the
// kernel records each instruction's cache and predictor outcomes into it
// (the m* mask bits) so later runs of the same warm key can replay them
// through timedReplay.
func (s *Scratch) timedFast(out *Result, p Params, tr *trace.Trace, rec []byte) {
	cfg := p.Config
	n := tr.Len()
	warm := warmupLen(n)
	rings := s.prepare(p, n, warm)
	complete := s.complete
	fetchBW := &rings[0]
	retireBW := &rings[1]
	gpr := &rings[2]
	fpr := &rings[3]
	spr := &rings[4]
	rsFX := &rings[5]
	rsFP := &rings[6]
	rsBR := &rings[7]
	lsq := &rings[8]
	sq := &rings[9]
	fuFX := &rings[10]
	fuFP := &rings[11]
	fuLS := &rings[12]
	fuBR := &rings[13]

	il1, dl1, l2, bht := &s.il1, &s.dl1, &s.l2, &s.bht
	il1Lat := int64(p.IL1Cycles)
	dl1Lat := int64(p.DL1Cycles)
	l2Lat := int64(p.L2Cycles)
	memLat := int64(p.MemCycles)
	il1Shift := il1.BlockShift()
	il1Mask := il1.SetMask()
	// Associativity dispatch, resolved once per run: every design-space
	// configuration has a 2-way data cache and a 4-way L2 (Table 3), with
	// direct-mapped and generic fallbacks for the override extensions.
	dl1Direct := p.DL1Assoc == 1
	dl1Two := p.DL1Assoc == 2
	l2Four := l2.Assoc() == 4
	redirectLat := p.MispredictRedirect()

	var act Activity
	frontend := int64(p.FrontendStages)

	var (
		redirect     int64
		lastFetch    int64
		lastDispatch int64
		lastIssue    int64
		lastRetire   int64
		prevTakenAt  int64 = -1
		lastIBlk     int64 = -1 // I-block of the previous fetch; -1 = none
	)
	inOrder := cfg.InOrder

	for i := warm; i < n; i++ {
		in := &tr.Insts[i]
		var mbits byte

		// ---- Fetch ----
		f := lastFetch
		if redirect > f {
			f = redirect
		}
		if prevTakenAt >= 0 && f <= prevTakenAt {
			f = prevTakenAt + 1
			prevTakenAt = -1
		}
		f = fetchBW.earliest(f)

		// Instruction cache: direct-mapped, so a repeat of the previous
		// instruction's block is a guaranteed hit (both the hit and the
		// miss path of that access leave the block resident) and skips
		// the tag compare.
		act.IL1Access++
		blk := in.PC >> il1Shift
		if int64(blk) == lastIBlk {
			il1.Rehit(blk & il1Mask)
		} else {
			lastIBlk = int64(blk)
			if !il1.AccessDirect(in.PC) {
				mbits = mIL1Miss
				act.IL1Miss++
				stall := l2Lat
				act.L2Access++
				var l2hit bool
				if l2Four {
					l2hit = l2.Access4(in.PC)
				} else {
					l2hit = l2.Access(in.PC)
				}
				if !l2hit {
					mbits |= mIL2Miss
					act.L2Miss++
					act.MemAccess++
					stall += memLat
				}
				f += il1Lat + stall
			}
		}
		fetchBW.commit(f + 1)
		lastFetch = f

		switch in.Kind {
		case trace.OpInt:
			d := gpr.earliest(f + frontend)
			d = rsFX.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuFX.bw(ready)
			lastIssue = issue
			act.Issued++
			act.Int++
			c := issue + IntLatency
			complete[i] = c
			rsFX.commit(issue)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			gpr.commit(ret)

		case trace.OpFP:
			d := fpr.earliest(f + frontend)
			d = rsFP.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuFP.bw(ready)
			lastIssue = issue
			act.Issued++
			act.FP++
			c := issue + FPLatency
			complete[i] = c
			rsFP.commit(issue)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			fpr.commit(ret)

		case trace.OpLoad:
			d := gpr.earliest(f + frontend)
			d = lsq.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuLS.bw(ready)
			lastIssue = issue
			act.Issued++
			act.Load++
			act.DL1Access++
			lat := dl1Lat
			var hit bool
			switch {
			case dl1Two:
				hit = dl1.Access2(in.Addr)
			case dl1Direct:
				hit = dl1.AccessDirect(in.Addr)
			default:
				hit = dl1.Access(in.Addr)
			}
			if !hit {
				mbits |= mDL1Miss
				act.DL1Miss++
				act.L2Access++
				lat += l2Lat
				var l2hit bool
				if l2Four {
					l2hit = l2.Access4(in.Addr)
				} else {
					l2hit = l2.Access(in.Addr)
				}
				if !l2hit {
					mbits |= mDL2Miss
					act.L2Miss++
					act.MemAccess++
					lat += memLat
				}
			}
			c := issue + lat
			complete[i] = c
			lsq.commit(c)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			gpr.commit(ret)

		case trace.OpStore:
			d := sq.earliest(f + frontend)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuLS.bw(ready)
			lastIssue = issue
			act.Issued++
			act.Store++
			act.DL1Access++
			var hit bool
			switch {
			case dl1Two:
				hit = dl1.Access2(in.Addr)
			case dl1Direct:
				hit = dl1.AccessDirect(in.Addr)
			default:
				hit = dl1.Access(in.Addr)
			}
			if !hit {
				mbits |= mDL1Miss
				act.DL1Miss++
				act.L2Access++
				var l2hit bool
				if l2Four {
					l2hit = l2.Access4(in.Addr)
				} else {
					l2hit = l2.Access(in.Addr)
				}
				if !l2hit {
					mbits |= mDL2Miss
					act.L2Miss++
					act.MemAccess++
				}
			}
			c := issue + StoreLatency
			complete[i] = c
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			sq.commit(ret)

		case trace.OpBranch:
			d := spr.earliest(f + frontend)
			d = rsBR.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuBR.bw(ready)
			lastIssue = issue
			act.Issued++
			act.Branch++
			c := issue + BranchLatency
			complete[i] = c
			rsBR.commit(issue)
			act.BranchLookups++
			if bht.Update(in.PC, in.Taken) {
				mbits |= mMispredict
				act.BranchMispredicts++
				if r := c + redirectLat; r > redirect {
					redirect = r
				}
			} else if in.Taken {
				prevTakenAt = f
			}
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			spr.commit(ret)
		}
		if rec != nil {
			rec[i-warm] = mbits
		}
	}

	timed := int64(n - warm)
	cycles := lastRetire + 1
	if prof, ok := trace.ProfileFor(tr.Name); ok && prof.IPCScale != 1 {
		cycles = int64(float64(cycles) / prof.IPCScale)
	}
	*out = Result{
		Benchmark:    tr.Name,
		Config:       cfg,
		Params:       p,
		Instructions: timed,
		Cycles:       cycles,
		Activity:     act,
	}
	out.IPC = float64(timed) / float64(cycles)
	out.BIPS = out.IPC * p.FreqGHz
}

// timedReplay is the third-tier kernel: it consumes a recorded outcome
// mask instead of simulating the caches and the branch predictor, so a
// replayed run touches no hierarchy state at all — no warmup, no
// snapshot restore, just latency arithmetic over the resource rings.
// mask holds one byte per timed instruction as recorded by timedFast;
// because outcomes are configuration-independent within a warm key (see
// the m* constants), replaying them under different latencies, widths,
// depths, pools and queues is bit-identical to simulating them.
func (s *Scratch) timedReplay(out *Result, p Params, tr *trace.Trace, mask []byte) {
	cfg := p.Config
	n := tr.Len()
	warm := warmupLen(n)
	rings := s.prepare(p, n, warm)
	complete := s.complete
	fetchBW := &rings[0]
	retireBW := &rings[1]
	gpr := &rings[2]
	fpr := &rings[3]
	spr := &rings[4]
	rsFX := &rings[5]
	rsFP := &rings[6]
	rsBR := &rings[7]
	lsq := &rings[8]
	sq := &rings[9]
	fuFX := &rings[10]
	fuFP := &rings[11]
	fuLS := &rings[12]
	fuBR := &rings[13]

	il1Lat := int64(p.IL1Cycles)
	dl1Lat := int64(p.DL1Cycles)
	l2Lat := int64(p.L2Cycles)
	memLat := int64(p.MemCycles)
	redirectLat := p.MispredictRedirect()

	var act Activity
	frontend := int64(p.FrontendStages)

	var (
		redirect     int64
		lastFetch    int64
		lastDispatch int64
		lastIssue    int64
		lastRetire   int64
		prevTakenAt  int64 = -1
	)
	inOrder := cfg.InOrder
	mask = mask[:n-warm]

	for i := warm; i < n; i++ {
		in := &tr.Insts[i]
		mbits := mask[i-warm]

		// ---- Fetch ----
		f := lastFetch
		if redirect > f {
			f = redirect
		}
		if prevTakenAt >= 0 && f <= prevTakenAt {
			f = prevTakenAt + 1
			prevTakenAt = -1
		}
		f = fetchBW.earliest(f)
		if mbits&mIL1Miss != 0 {
			act.IL1Miss++
			stall := l2Lat
			if mbits&mIL2Miss != 0 {
				act.L2Miss++
				stall += memLat
			}
			f += il1Lat + stall
		}
		fetchBW.commit(f + 1)
		lastFetch = f

		switch in.Kind {
		case trace.OpInt:
			d := gpr.earliest(f + frontend)
			d = rsFX.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuFX.bw(ready)
			lastIssue = issue
			act.Int++
			c := issue + IntLatency
			complete[i] = c
			rsFX.commit(issue)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			gpr.commit(ret)

		case trace.OpFP:
			d := fpr.earliest(f + frontend)
			d = rsFP.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuFP.bw(ready)
			lastIssue = issue
			act.FP++
			c := issue + FPLatency
			complete[i] = c
			rsFP.commit(issue)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			fpr.commit(ret)

		case trace.OpLoad:
			d := gpr.earliest(f + frontend)
			d = lsq.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuLS.bw(ready)
			lastIssue = issue
			act.Load++
			lat := dl1Lat
			if mbits&mDL1Miss != 0 {
				act.DL1Miss++
				lat += l2Lat
				if mbits&mDL2Miss != 0 {
					act.L2Miss++
					lat += memLat
				}
			}
			c := issue + lat
			complete[i] = c
			lsq.commit(c)
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			gpr.commit(ret)

		case trace.OpStore:
			d := sq.earliest(f + frontend)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuLS.bw(ready)
			lastIssue = issue
			act.Store++
			if mbits&mDL1Miss != 0 {
				act.DL1Miss++
				if mbits&mDL2Miss != 0 {
					act.L2Miss++
				}
			}
			c := issue + StoreLatency
			complete[i] = c
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			sq.commit(ret)

		case trace.OpBranch:
			d := spr.earliest(f + frontend)
			d = rsBR.earliest(d)
			if d < lastDispatch {
				d = lastDispatch
			}
			lastDispatch = d
			ready := d + 1
			if inOrder && lastIssue > ready {
				ready = lastIssue
			}
			if in.Dep1 > 0 {
				if c := complete[i-int(in.Dep1)]; c > ready {
					ready = c
				}
			}
			if in.Dep2 > 0 {
				if c := complete[i-int(in.Dep2)]; c > ready {
					ready = c
				}
			}
			issue := fuBR.bw(ready)
			lastIssue = issue
			act.Branch++
			c := issue + BranchLatency
			complete[i] = c
			rsBR.commit(issue)
			if mbits&mMispredict != 0 {
				act.BranchMispredicts++
				if r := c + redirectLat; r > redirect {
					redirect = r
				}
			} else if in.Taken {
				prevTakenAt = f
			}
			ret := c
			if ret < lastRetire {
				ret = lastRetire
			}
			ret = retireBW.bw(ret)
			lastRetire = ret
			spr.commit(ret)
		}
	}

	// Access and issue totals are structural — one I-fetch and one issue
	// per instruction, one D-access per memory op, one L2 access per L1
	// miss, one memory access per L2 miss, one BHT lookup per branch — so
	// replay derives them instead of counting them in the loop.
	timed := int64(n - warm)
	act.Issued = timed
	act.IL1Access = timed
	act.DL1Access = act.Load + act.Store
	act.L2Access = act.IL1Miss + act.DL1Miss
	act.MemAccess = act.L2Miss
	act.BranchLookups = act.Branch

	cycles := lastRetire + 1
	if prof, ok := trace.ProfileFor(tr.Name); ok && prof.IPCScale != 1 {
		cycles = int64(float64(cycles) / prof.IPCScale)
	}
	*out = Result{
		Benchmark:    tr.Name,
		Config:       cfg,
		Params:       p,
		Instructions: timed,
		Cycles:       cycles,
		Activity:     act,
	}
	out.IPC = float64(timed) / float64(cycles)
	out.BIPS = out.IPC * p.FreqGHz
}
