package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultWarmBudget bounds the total heap the warm-state memo may hold.
// A full training sweep touches at most il1×dl1×l2 = 125 geometry
// combinations per benchmark (~10 MB each suite-wide at the largest L2),
// so the default comfortably covers the paper's workloads; overflowing
// runs simply fall back to walking their own warmup.
const DefaultWarmBudget int64 = 256 << 20

// warmKey identifies one memoizable warm state. Warmup touches only the
// caches and the branch predictor, so warmed state depends on nothing
// but the trace and the cache geometries — never on latencies, width,
// depth, pools or queues (the BHT geometry is a package constant). Keys
// hold the trace pointer: traces are immutable and memoized per
// (benchmark, length), so pointer identity is exactly trace identity.
type warmKey struct {
	tr       *trace.Trace
	il1KB    int
	dl1KB    int
	dl1Assoc int
	l2KB     int
}

// warmState is the warmed hierarchy: one snapshot per cache plus the
// trained branch history table, captured right after the warmup passes
// and their stats reset.
type warmState struct {
	il1 *cache.Snapshot
	dl1 *cache.Snapshot
	l2  *cache.Snapshot
	bht *branch.Snapshot
}

func (w *warmState) bytes() int64 {
	return w.il1.Bytes() + w.dl1.Bytes() + w.l2.Bytes() + w.bht.Bytes()
}

// warmEntry is one key's memo slot: the once runs the warmup walk
// exactly once however many goroutines race on the key; state stays nil
// when the memo budget is exhausted (or the walk failed), in which case
// later runs warm themselves. mask is the key's recorded outcome stream
// (one byte per timed instruction, see the m* bits in kernel.go),
// captured by the first snapshot-restored run and replayed by every run
// after it; it stays nil until recorded, or forever if the budget is
// exhausted.
type warmEntry struct {
	once  sync.Once
	state *warmState
	mask  atomic.Pointer[[]byte]
}

type warmMap map[warmKey]*warmEntry

// Runner is the simulator's steady-state fast path: a pool of run
// scratch plus a memo of warmed cache and branch-predictor state keyed
// by (trace, cache geometry). The first run of each key walks the full
// warmup and snapshots the result; every later run restores the snapshot
// into pooled arrays and goes straight to the timed kernel, skipping the
// warmup walk entirely. Results are bit-identical to Run's. Safe for
// concurrent use.
type Runner struct {
	pool   sync.Pool
	warm   atomic.Pointer[warmMap]
	mu     sync.Mutex // serializes copy-on-write inserts into warm
	budget int64
	used   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// NewRunner returns a fast-path runner with the default warm-state
// budget.
func NewRunner() *Runner {
	r := &Runner{budget: DefaultWarmBudget}
	r.pool.New = func() any { return new(Scratch) }
	m := make(warmMap)
	r.warm.Store(&m)
	return r
}

// SetWarmBudget caps the memo's total snapshot bytes. Runs whose warm
// state would exceed the cap warm themselves and nothing is evicted;
// results are unaffected either way. Call before the runner is shared.
func (r *Runner) SetWarmBudget(bytes int64) { r.budget = bytes }

// WarmStats returns how many runs restored a memoized warm state (hits)
// versus walked their own warmup (misses, including every first run of a
// key).
func (r *Runner) WarmStats() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// entry returns the memo slot for a key, creating it if needed. The hot
// path is one atomic load and a map read; inserts copy the map under the
// mutex, which is rare (once per distinct geometry per trace) and cheap
// next to the warmup walk that follows.
func (r *Runner) entry(key warmKey) *warmEntry {
	if e, ok := (*r.warm.Load())[key]; ok {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := *r.warm.Load()
	if e, ok := m[key]; ok {
		return e
	}
	next := make(warmMap, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	e := &warmEntry{}
	next[key] = e
	r.warm.Store(&next)
	return e
}

// Run simulates through the fast path and returns a fresh Result.
func (r *Runner) Run(cfg arch.Config, tr *trace.Trace) (*Result, error) {
	res := new(Result)
	if err := r.RunInto(res, cfg, tr); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates through the fast path into caller-owned storage.
// On a warm hit it performs zero steady-state heap allocations; output
// is bit-identical to Run's full-warmup path.
func (r *Runner) RunInto(out *Result, cfg arch.Config, tr *trace.Trace) error {
	p, err := Derive(cfg)
	if err != nil {
		return err
	}
	if tr == nil || tr.Len() == 0 {
		return fmt.Errorf("sim: empty trace")
	}
	// Resilience-test injection point: delays model slow runs against a
	// batch deadline, errors and panics exercise the engine's recovery.
	if err := fault.Here("sim.run"); err != nil {
		return err
	}
	traced := obs.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	s := r.pool.Get().(*Scratch)
	err = r.runFast(out, s, p, tr)
	r.pool.Put(s)
	if err != nil {
		return err
	}
	observeRun(out, traced, start)
	return nil
}

// runFast simulates through the memo's fastest available tier. The first
// run of a key walks the warmup and snapshots the warmed hierarchy; the
// second restores the snapshot and records the timed region's cache and
// predictor outcomes; every run after that replays the recorded outcomes
// without touching the hierarchy at all. All three tiers produce
// bit-identical results.
func (r *Runner) runFast(out *Result, s *Scratch, p Params, tr *trace.Trace) error {
	key := warmKey{
		tr:       tr,
		il1KB:    p.Config.IL1KB,
		dl1KB:    p.Config.DL1KB,
		dl1Assoc: p.DL1Assoc,
		l2KB:     p.Config.L2KB,
	}
	e := r.entry(key)
	warmed := false
	var onceErr error
	e.once.Do(func() {
		// First run of this key: walk the warmup in this scratch, then
		// snapshot it for everyone else — unless that would bust the
		// budget, in which case the state simply is not memoized.
		if onceErr = s.configure(p); onceErr != nil {
			return
		}
		s.warmup(tr)
		st := &warmState{
			il1: s.il1.Snapshot(),
			dl1: s.dl1.Snapshot(),
			l2:  s.l2.Snapshot(),
			bht: s.bht.Snapshot(),
		}
		if r.used.Add(st.bytes()) <= r.budget {
			e.state = st
		} else {
			r.used.Add(-st.bytes())
		}
		warmed = true
	})
	if onceErr != nil {
		return onceErr
	}
	switch {
	case warmed:
		// This goroutine just walked the warmup; its scratch is hot.
		r.misses.Add(1)
		simWarmMisses.Add(1)
		s.timedFast(out, p, tr, nil)
	case e.state != nil:
		if m := e.mask.Load(); m != nil {
			// Outcome replay: no restore, no cache or predictor work.
			r.hits.Add(1)
			simWarmHits.Add(1)
			simWarmReplays.Add(1)
			s.timedReplay(out, p, tr, *m)
			return nil
		}
		s.il1.Restore(e.state.il1)
		s.dl1.Restore(e.state.dl1)
		s.l2.Restore(e.state.l2)
		s.bht.Restore(e.state.bht)
		r.hits.Add(1)
		simWarmHits.Add(1)
		// Record the key's outcome stream during this run so later runs
		// can replay it. Concurrent recorders of the same key produce
		// identical bytes; the first to publish wins and the rest refund
		// their budget charge.
		var rec []byte
		size := int64(tr.Len() - warmupLen(tr.Len()))
		if r.used.Add(size) <= r.budget {
			rec = make([]byte, size)
		} else {
			r.used.Add(-size)
		}
		s.timedFast(out, p, tr, rec)
		if rec != nil && !e.mask.CompareAndSwap(nil, &rec) {
			r.used.Add(-size)
		}
	default:
		// Over budget (or the first walk failed): warm locally.
		if err := s.configure(p); err != nil {
			return err
		}
		s.warmup(tr)
		r.misses.Add(1)
		simWarmMisses.Add(1)
		s.timedFast(out, p, tr, nil)
	}
	return nil
}
