package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// The tests in this file cover the paper's future-work extensions:
// in-order execution and cache associativity as additional design
// parameters.

func TestInOrderSlowerThanOutOfOrder(t *testing.T) {
	tr, err := trace.ForBenchmark("ammp", 30000)
	if err != nil {
		t.Fatal(err)
	}
	ooo := arch.Baseline()
	ino := arch.Baseline()
	ino.InOrder = true
	roo, err := Run(ooo, tr)
	if err != nil {
		t.Fatal(err)
	}
	rio, err := Run(ino, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rio.IPC >= roo.IPC {
		t.Fatalf("in-order IPC %v should trail out-of-order %v", rio.IPC, roo.IPC)
	}
	// The gap should be substantial for a high-ILP workload: OoO exists
	// for a reason.
	if rio.IPC > roo.IPC*0.9 {
		t.Fatalf("in-order penalty too small: %v vs %v", rio.IPC, roo.IPC)
	}
}

func TestInOrderHurtsLessWhenMemoryBound(t *testing.T) {
	// mcf is serialized by dependent misses either way; the relative
	// in-order penalty should be smaller than for high-ILP ammp.
	penalty := func(bench string) float64 {
		tr, err := trace.ForBenchmark(bench, 30000)
		if err != nil {
			t.Fatal(err)
		}
		ooo := arch.Baseline()
		ino := arch.Baseline()
		ino.InOrder = true
		roo, err := Run(ooo, tr)
		if err != nil {
			t.Fatal(err)
		}
		rio, err := Run(ino, tr)
		if err != nil {
			t.Fatal(err)
		}
		return rio.IPC / roo.IPC
	}
	if penalty("mcf") <= penalty("ammp") {
		t.Fatalf("mcf in-order retention %v should exceed ammp %v",
			penalty("mcf"), penalty("ammp"))
	}
}

func TestInOrderIssueOrderingInvariant(t *testing.T) {
	// With InOrder set, issue times must be non-decreasing; verify
	// indirectly: IPC can never exceed 1 per FU class bottleneck... the
	// direct invariant is cheaper to check through a crafted trace where
	// a long-latency load precedes independent instructions.
	insts := make([]trace.Inst, 2000)
	for i := range insts {
		insts[i] = trace.Inst{Kind: trace.OpInt, PC: uint32((i % 32) * 4)}
	}
	// One load with a far address in the middle; followers independent.
	insts[1000] = trace.Inst{Kind: trace.OpLoad, PC: 0, Addr: 1 << 20}
	tr := &trace.Trace{Name: "synthetic", Insts: insts}
	ooo := arch.Baseline()
	ino := arch.Baseline()
	ino.InOrder = true
	roo, err := Run(ooo, tr)
	if err != nil {
		t.Fatal(err)
	}
	rio, err := Run(ino, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rio.Cycles < roo.Cycles {
		t.Fatalf("in-order (%d cycles) finished before out-of-order (%d)", rio.Cycles, roo.Cycles)
	}
}

func TestDL1AssocReducesConflictMisses(t *testing.T) {
	// A direct-mapped D-L1 should miss at least as often as an 8-way one
	// of the same capacity (LRU inclusion does not formally hold across
	// associativities, but statistically conflict misses dominate).
	tr, err := trace.ForBenchmark("twolf", 50000)
	if err != nil {
		t.Fatal(err)
	}
	missRate := func(assoc int) float64 {
		cfg := arch.Baseline()
		cfg.DL1Assoc = assoc
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Activity.DL1Miss) / float64(res.Activity.DL1Access)
	}
	if dm, wide := missRate(1), missRate(8); dm < wide {
		t.Fatalf("direct-mapped miss rate %v below 8-way %v", dm, wide)
	}
}

func TestDL1AssocDefault(t *testing.T) {
	cfg := arch.Baseline()
	if got := EffectiveDL1Assoc(cfg); got != DL1Assoc {
		t.Fatalf("default assoc = %d, want %d", got, DL1Assoc)
	}
	cfg.DL1Assoc = 4
	if got := EffectiveDL1Assoc(cfg); got != 4 {
		t.Fatalf("override assoc = %d, want 4", got)
	}
	p, err := Derive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.DL1Assoc != 4 {
		t.Fatalf("derived assoc = %d", p.DL1Assoc)
	}
}

func TestDL1AssocValidation(t *testing.T) {
	cfg := arch.Baseline()
	cfg.DL1Assoc = 3
	if cfg.Validate() == nil {
		t.Fatal("non-power-of-two associativity accepted")
	}
	cfg.DL1Assoc = 32
	if cfg.Validate() == nil {
		t.Fatal("excessive associativity accepted")
	}
	cfg.DL1Assoc = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default associativity rejected: %v", err)
	}
}
