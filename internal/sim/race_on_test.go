//go:build race

package sim

// raceEnabled reports whether the race detector is instrumenting this
// build. Allocation-count assertions are skipped under it: the
// detector's shadow-memory bookkeeping charges allocations to the
// measured function that the real build never performs.
const raceEnabled = true
