package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/trace"
)

const testTraceLen = 20000

func simFor(t *testing.T, cfg arch.Config, bench string) *Result {
	t.Helper()
	tr, err := trace.ForBenchmark(bench, testTraceLen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeriveBaseline(t *testing.T) {
	p, err := Derive(arch.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages != 15 {
		t.Errorf("baseline stages = %d, want 15", p.Stages)
	}
	if p.FreqGHz < 1.2 || p.FreqGHz > 1.4 {
		t.Errorf("baseline frequency = %v GHz, want ~1.32", p.FreqGHz)
	}
	if p.MemCycles < 70 || p.MemCycles > 90 {
		t.Errorf("baseline memory latency = %d cycles, want ~79", p.MemCycles)
	}
	if p.IL1Cycles != 1 && p.IL1Cycles != 2 {
		t.Errorf("baseline IL1 latency = %d", p.IL1Cycles)
	}
	if p.L2Cycles < 7 || p.L2Cycles > 12 {
		t.Errorf("baseline L2 latency = %d cycles, want ~9-10", p.L2Cycles)
	}
}

func TestDeriveDepthScaling(t *testing.T) {
	shallow := arch.Baseline()
	shallow.DepthFO4 = 30
	deep := arch.Baseline()
	deep.DepthFO4 = 12
	ps, err := Derive(shallow)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Derive(deep)
	if err != nil {
		t.Fatal(err)
	}
	if pd.FreqGHz <= ps.FreqGHz {
		t.Fatal("deeper pipeline must clock faster")
	}
	if pd.Stages <= ps.Stages {
		t.Fatal("deeper pipeline must have more stages")
	}
	if pd.MemCycles <= ps.MemCycles {
		t.Fatal("memory must cost more cycles at higher frequency")
	}
}

func TestDeriveErrors(t *testing.T) {
	bad := arch.Baseline()
	bad.Width = 0
	if _, err := Derive(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	tiny := arch.Baseline()
	tiny.GPR = 10
	if _, err := Derive(tiny); err == nil {
		t.Fatal("unrenameable register file accepted")
	}
}

func TestRunBasics(t *testing.T) {
	res := simFor(t, arch.Baseline(), "gzip")
	wantTimed := int64(testTraceLen - int(float64(testTraceLen)*WarmupFrac))
	if res.Instructions != wantTimed {
		t.Fatalf("timed instructions = %d, want %d", res.Instructions, wantTimed)
	}
	if res.Cycles <= 0 {
		t.Fatal("non-positive cycles")
	}
	if res.IPC <= 0.05 || res.IPC > float64(res.Config.Width) {
		t.Fatalf("IPC = %v outside (0.05, width]", res.IPC)
	}
	if res.BIPS <= 0 {
		t.Fatal("non-positive BIPS")
	}
	if res.DelaySeconds() <= 0 {
		t.Fatal("non-positive delay")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := simFor(t, arch.Baseline(), "gcc")
	b := simFor(t, arch.Baseline(), "gcc")
	if a.Cycles != b.Cycles || a.Activity != b.Activity {
		t.Fatal("simulation not deterministic")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := Run(arch.Baseline(), &trace.Trace{Name: "x"}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestActivityAccounting(t *testing.T) {
	res := simFor(t, arch.Baseline(), "twolf")
	act := res.Activity
	if act.Int+act.FP+act.Load+act.Store+act.Branch != res.Instructions {
		t.Fatal("instruction kind counts do not sum to total")
	}
	if act.Issued != res.Instructions {
		t.Fatal("every instruction should issue exactly once")
	}
	if act.IL1Access != res.Instructions {
		t.Fatal("every instruction should access the I-cache")
	}
	if act.DL1Access != act.Load+act.Store {
		t.Fatal("D-cache accesses should equal memory ops")
	}
	if act.IL1Miss > act.IL1Access || act.DL1Miss > act.DL1Access {
		t.Fatal("misses exceed accesses")
	}
	if act.L2Miss > act.L2Access || act.MemAccess != act.L2Miss {
		t.Fatal("L2/memory accounting inconsistent")
	}
	if act.BranchMispredicts > act.BranchLookups || act.BranchLookups != act.Branch {
		t.Fatal("branch accounting inconsistent")
	}
}

func TestWiderIsFasterForILPWorkload(t *testing.T) {
	// ammp has high ILP: an 8-wide machine with ample resources must beat
	// a 2-wide one in IPC.
	narrow := arch.Baseline()
	narrow.Width, narrow.LSQ, narrow.SQ, narrow.FUPerKind = 2, 15, 14, 1
	wide := arch.Baseline()
	wide.Width, wide.LSQ, wide.SQ, wide.FUPerKind = 8, 45, 42, 4
	wide.GPR, wide.FPR, wide.SPR = 130, 112, 96
	wide.ResvBR, wide.ResvFX, wide.ResvFP = 15, 28, 14
	rn := simFor(t, narrow, "ammp")
	rw := simFor(t, wide, "ammp")
	if rw.IPC <= rn.IPC*1.3 {
		t.Fatalf("8-wide IPC %v should clearly beat 2-wide %v on ammp", rw.IPC, rn.IPC)
	}
}

func TestBiggerL2HelpsMcfNotApplu(t *testing.T) {
	// mcf's working set spans the L2 size axis, so this check needs the
	// full-length trace; short traces cannot re-reference a multi-MB set.
	simLong := func(cfg arch.Config, bench string) *Result {
		tr, err := trace.ForBenchmark(bench, 100000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := arch.Baseline()
	small.L2KB = 256
	big := arch.Baseline()
	big.L2KB = 4096
	mcfSmall := simLong(small, "mcf")
	mcfBig := simLong(big, "mcf")
	if mcfBig.IPC <= mcfSmall.IPC*1.1 {
		t.Fatalf("mcf should gain >10%% from 4MB L2: %v -> %v", mcfSmall.IPC, mcfBig.IPC)
	}
	appluSmall := simLong(small, "applu")
	appluBig := simLong(big, "applu")
	gain := appluBig.IPC / appluSmall.IPC
	if gain > 1.10 {
		t.Fatalf("applu (streaming) should barely gain from L2: gain %v", gain)
	}
}

func TestDeeperPipelineRaisesBIPSUntilPenaltiesBite(t *testing.T) {
	// Going from 30 FO4 to 18 FO4 should raise bips for a predictable
	// workload (frequency wins); the relationship with IPC is the
	// opposite (more cycles lost per miss).
	shallow := arch.Baseline()
	shallow.DepthFO4 = 30
	mid := arch.Baseline()
	mid.DepthFO4 = 18
	rs := simFor(t, shallow, "gzip")
	rm := simFor(t, mid, "gzip")
	if rm.BIPS <= rs.BIPS {
		t.Fatalf("18FO4 bips %v should beat 30FO4 %v on gzip", rm.BIPS, rs.BIPS)
	}
	if rm.IPC >= rs.IPC {
		t.Fatalf("18FO4 IPC %v should trail 30FO4 %v", rm.IPC, rs.IPC)
	}
}

func TestBigICacheHelpsLargeCodeFootprint(t *testing.T) {
	small := arch.Baseline()
	small.IL1KB = 16
	big := arch.Baseline()
	big.IL1KB = 256
	gccSmall := simFor(t, small, "gcc")
	gccBig := simFor(t, big, "gcc")
	if gccBig.Activity.IL1Miss >= gccSmall.Activity.IL1Miss {
		t.Fatal("larger I-cache did not reduce gcc I-misses")
	}
	if gccBig.IPC <= gccSmall.IPC {
		t.Fatalf("gcc should speed up with a big I-cache: %v -> %v", gccSmall.IPC, gccBig.IPC)
	}
}

func TestMorePhysicalRegistersHelpILP(t *testing.T) {
	small := arch.Baseline()
	small.GPR, small.FPR, small.SPR = 40, 40, 42
	big := arch.Baseline()
	big.GPR, big.FPR, big.SPR = 130, 112, 96
	rs := simFor(t, small, "ammp")
	rb := simFor(t, big, "ammp")
	if rb.IPC <= rs.IPC {
		t.Fatalf("more rename registers should help ammp: %v -> %v", rs.IPC, rb.IPC)
	}
}

func TestMispredictionHurtsDeepPipes(t *testing.T) {
	// gcc is branchy and hard to predict: the IPC gap between deep and
	// shallow pipes should exceed the gap for mesa, whose branches are
	// few and predictable and whose working set is cache friendly.
	deep := arch.Baseline()
	deep.DepthFO4 = 12
	shallow := arch.Baseline()
	shallow.DepthFO4 = 30
	gapFor := func(bench string) float64 {
		d := simFor(t, deep, bench)
		s := simFor(t, shallow, bench)
		return d.IPC / s.IPC
	}
	if gapFor("gcc") >= gapFor("mesa") {
		t.Fatalf("branchy gcc should lose more IPC to depth than mesa (gcc ratio %v, mesa %v)",
			gapFor("gcc"), gapFor("mesa"))
	}
}

// Property: for any design point in the sampling space, simulation
// succeeds with sane outputs.
func TestQuickAnyDesignRuns(t *testing.T) {
	s := arch.TableOneSpace()
	levels := s.Levels()
	tr, err := trace.ForBenchmark("equake", 4000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [arch.NumAxes]uint8) bool {
		var p arch.Point
		for a := range p {
			p[a] = int(raw[a]) % levels[a]
		}
		res, err := Run(s.Config(p), tr)
		if err != nil {
			return false
		}
		return res.Cycles > 0 && res.IPC > 0 && res.IPC <= float64(res.Config.Width) &&
			res.BIPS > 0 && res.BIPS < 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingSemantics(t *testing.T) {
	r := newRing(2)
	if got := r.earliest(5); got != 5 {
		t.Fatalf("earliest on empty ring = %d", got)
	}
	r.commit(10) // slot 0 busy until 10
	r.commit(12) // slot 1 busy until 12
	if got := r.earliest(5); got != 10 {
		t.Fatalf("earliest = %d, want 10", got)
	}
	r.commit(11)
	if got := r.earliest(5); got != 12 {
		t.Fatalf("earliest = %d, want 12", got)
	}
}

func TestRingCapacityClamp(t *testing.T) {
	r := newRing(0)
	if len(r.slots) != 1 {
		t.Fatal("zero-capacity ring should clamp to 1")
	}
}

func BenchmarkRunBaseline(b *testing.B) {
	tr, err := trace.ForBenchmark("gcc", 50000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}
