package arch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableOneSpaceSize(t *testing.T) {
	s := TableOneSpace()
	if got := s.Size(); got != 375000 {
		t.Fatalf("Table 1 space size = %d, want 375000", got)
	}
	levels := s.Levels()
	want := [NumAxes]int{10, 3, 10, 10, 5, 5, 5}
	if levels != want {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
}

func TestExplorationSpaceSize(t *testing.T) {
	s := ExplorationSpace()
	if got := s.Size(); got != 262500 {
		t.Fatalf("exploration space size = %d, want 262500", got)
	}
	depths := s.DepthLevels()
	if depths[0] != 12 || depths[len(depths)-1] != 30 || len(depths) != 7 {
		t.Fatalf("exploration depths = %v", depths)
	}
}

func TestDepthLevelsTableOne(t *testing.T) {
	depths := TableOneSpace().DepthLevels()
	want := []int{9, 12, 15, 18, 21, 24, 27, 30, 33, 36}
	if len(depths) != len(want) {
		t.Fatalf("depths = %v", depths)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}

func TestConfigResolution(t *testing.T) {
	s := TableOneSpace()
	// Max point: deepest FO4 level (36, i.e. shallowest pipeline), widest,
	// biggest everything.
	p := Point{9, 2, 9, 9, 4, 4, 4}
	c := s.Config(p)
	if c.DepthFO4 != 36 {
		t.Errorf("DepthFO4 = %d, want 36", c.DepthFO4)
	}
	if c.Width != 8 || c.LSQ != 45 || c.SQ != 42 || c.FUPerKind != 4 {
		t.Errorf("width group = %+v", c)
	}
	if c.GPR != 130 || c.FPR != 112 || c.SPR != 96 {
		t.Errorf("registers = %d/%d/%d, want 130/112/96", c.GPR, c.FPR, c.SPR)
	}
	if c.ResvFX != 28 || c.ResvBR != 15 || c.ResvFP != 14 {
		t.Errorf("reservation stations = %d/%d/%d, want 28/15/14", c.ResvBR, c.ResvFX, c.ResvFP)
	}
	if c.IL1KB != 256 || c.DL1KB != 128 || c.L2KB != 4096 {
		t.Errorf("caches = %d/%d/%d", c.IL1KB, c.DL1KB, c.L2KB)
	}
}

func TestConfigMinPoint(t *testing.T) {
	c := TableOneSpace().Config(Point{})
	if c.DepthFO4 != 9 || c.Width != 2 || c.GPR != 40 || c.FPR != 40 ||
		c.SPR != 42 || c.ResvBR != 6 || c.ResvFX != 10 || c.ResvFP != 5 ||
		c.IL1KB != 16 || c.DL1KB != 8 || c.L2KB != 256 {
		t.Fatalf("min config = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("min config invalid: %v", err)
	}
}

func TestFlatIndexRoundTrip(t *testing.T) {
	s := ExplorationSpace()
	for _, i := range []int{0, 1, 1234, 99999, s.Size() - 1} {
		p := s.PointAt(i)
		if got := s.FlatIndex(p); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, p, got)
		}
	}
}

func TestFlatIndexPanics(t *testing.T) {
	s := ExplorationSpace()
	for _, f := range []func(){
		func() { s.FlatIndex(Point{99, 0, 0, 0, 0, 0, 0}) },
		func() { s.PointAt(-1) },
		func() { s.PointAt(s.Size()) },
		func() { s.Config(Point{0, 0, 0, 0, 0, 0, 99}) },
		func() { s.PointsAtDepth(7) },
		func() { s.SampleUAR(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSampleUARDeterministicAndInRange(t *testing.T) {
	s := TableOneSpace()
	a := s.SampleUAR(500, 42)
	b := s.SampleUAR(500, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
		if !s.Contains(a[i]) {
			t.Fatalf("sample %v out of space", a[i])
		}
	}
	c := s.SampleUAR(500, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/500 identical samples", same)
	}
}

func TestSampleUARCoversAxes(t *testing.T) {
	// With 1000 samples every level of every axis should be hit.
	s := TableOneSpace()
	samples := s.SampleUAR(1000, 7)
	levels := s.Levels()
	for a := 0; a < NumAxes; a++ {
		seen := make([]bool, levels[a])
		for _, p := range samples {
			seen[p[a]] = true
		}
		for l, ok := range seen {
			if !ok {
				t.Fatalf("axis %d level %d never sampled in 1000 draws", a, l)
			}
		}
	}
}

func TestPointsAtDepth(t *testing.T) {
	s := ExplorationSpace()
	pts := s.PointsAtDepth(2)
	if len(pts) != 37500 {
		t.Fatalf("PointsAtDepth count = %d, want 37500", len(pts))
	}
	seen := make(map[int]bool, len(pts))
	for _, p := range pts {
		if p[AxisDepth] != 2 {
			t.Fatalf("point %v has wrong depth level", p)
		}
		idx := s.FlatIndex(p)
		if seen[idx] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[idx] = true
	}
}

func TestBaseline(t *testing.T) {
	b := Baseline()
	if err := b.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if b.DepthFO4 != 19 || b.Width != 4 || b.GPR != 80 || b.FPR != 72 {
		t.Fatalf("baseline = %+v", b)
	}
	if b.IL1KB != 64 || b.DL1KB != 32 || b.L2KB != 2048 {
		t.Fatalf("baseline caches = %+v", b)
	}
}

func TestBaselinePoint(t *testing.T) {
	s := ExplorationSpace()
	p := BaselinePoint(s)
	if !s.Contains(p) {
		t.Fatalf("baseline point %v not in space", p)
	}
	c := s.Config(p)
	// Depth 19 snaps to 18 FO4 in the exploration grid.
	if c.DepthFO4 != 18 {
		t.Fatalf("baseline point depth = %d, want 18", c.DepthFO4)
	}
	if c.Width != 4 || c.GPR != 80 || c.IL1KB != 64 || c.DL1KB != 32 || c.L2KB != 2048 {
		t.Fatalf("baseline point config = %+v", c)
	}
	if c.ResvBR != 12 {
		t.Fatalf("baseline point ResvBR = %d, want 12", c.ResvBR)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Baseline()
	bad := good
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
	bad = good
	bad.DepthFO4 = 100
	if bad.Validate() == nil {
		t.Fatal("absurd depth accepted")
	}
	bad = good
	bad.L2KB = -1
	if bad.Validate() == nil {
		t.Fatal("negative L2 accepted")
	}
}

func TestPredictors(t *testing.T) {
	c := Baseline()
	v := Predictors(c)
	names := PredictorNames()
	if len(v) != len(names) {
		t.Fatalf("predictor count mismatch: %d vs %d", len(v), len(names))
	}
	if v[0] != 19 || v[1] != 4 || v[2] != 80 || v[3] != 22 {
		t.Fatalf("predictors = %v", v)
	}
	if v[4] != 6 { // log2(64)
		t.Fatalf("il1 predictor = %v, want 6", v[4])
	}
	if v[5] != 5 || v[6] != 11 { // log2(32), log2(2048)
		t.Fatalf("cache predictors = %v", v)
	}
}

func TestPredictorGetter(t *testing.T) {
	get := PredictorGetter(Baseline())
	if get(PredDepth) != 19 || get(PredL2) != 11 {
		t.Fatal("getter values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown predictor did not panic")
		}
	}()
	get("bogus")
}

func TestConfigStringMentionsKeyFields(t *testing.T) {
	s := Baseline().String()
	for _, want := range []string{"19FO4", "width=4", "2MB"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: flat index round trip holds for any in-range point.
func TestQuickFlatIndexRoundTrip(t *testing.T) {
	s := TableOneSpace()
	levels := s.Levels()
	f := func(raw [NumAxes]uint8) bool {
		var p Point
		for a := range p {
			p[a] = int(raw[a]) % levels[a]
		}
		return s.PointAt(s.FlatIndex(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every resolved config from a valid point passes Validate and
// has coupled parameters consistent with their group level.
func TestQuickConfigCoupling(t *testing.T) {
	s := TableOneSpace()
	levels := s.Levels()
	f := func(raw [NumAxes]uint8) bool {
		var p Point
		for a := range p {
			p[a] = int(raw[a]) % levels[a]
		}
		c := s.Config(p)
		if c.Validate() != nil {
			return false
		}
		// Coupling invariants from Table 1.
		if c.FPR != 40+8*p[AxisRegs] || c.SPR != 42+6*p[AxisRegs] {
			return false
		}
		if c.ResvBR != 6+p[AxisResv] || c.ResvFP != 5+p[AxisResv] {
			return false
		}
		switch c.Width {
		case 2:
			return c.LSQ == 15 && c.SQ == 14 && c.FUPerKind == 1
		case 4:
			return c.LSQ == 30 && c.SQ == 28 && c.FUPerKind == 2
		case 8:
			return c.LSQ == 45 && c.SQ == 42 && c.FUPerKind == 4
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: predictors are finite for all configs in the space.
func TestQuickPredictorsFinite(t *testing.T) {
	s := TableOneSpace()
	levels := s.Levels()
	f := func(raw [NumAxes]uint8) bool {
		var p Point
		for a := range p {
			p[a] = int(raw[a]) % levels[a]
		}
		for _, v := range Predictors(s.Config(p)) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConfigResolution(b *testing.B) {
	s := ExplorationSpace()
	n := s.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Config(s.PointAt(i % n))
	}
}

func TestPredictorsIntoMatchesPredictors(t *testing.T) {
	cfg := Baseline()
	buf := make([]float64, 7)
	got := PredictorsInto(cfg, buf)
	want := Predictors(cfg)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PredictorsInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[0] {
		t.Fatal("PredictorsInto allocated instead of reusing the buffer")
	}
}

func TestPredictorIndexConsistentWithNames(t *testing.T) {
	for i, name := range PredictorNames() {
		if got := PredictorIndex(name); got != i {
			t.Fatalf("PredictorIndex(%q) = %d, want %d", name, got, i)
		}
	}
	if PredictorIndex("bogus") != -1 {
		t.Fatal("unknown predictor should index to -1")
	}
}

func TestDL1Levels(t *testing.T) {
	levels := ExplorationSpace().DL1Levels()
	want := []int{8, 16, 32, 64, 128}
	if len(levels) != len(want) {
		t.Fatalf("DL1Levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("DL1Levels = %v, want %v", levels, want)
		}
	}
	// The returned slice must be a copy.
	levels[0] = 999
	if ExplorationSpace().DL1Levels()[0] == 999 {
		t.Fatal("DL1Levels leaked internal state")
	}
}

func TestPredictorLevelValuesExact(t *testing.T) {
	for _, space := range []*Space{TableOneSpace(), ExplorationSpace()} {
		table := PredictorLevelValues(space)
		if len(table) != NumAxes {
			t.Fatalf("level table has %d axes, want %d", len(table), NumAxes)
		}
		levels := space.Levels()
		for a := 0; a < NumAxes; a++ {
			if len(table[a]) != levels[a] {
				t.Fatalf("axis %d: %d level values, want %d", a, len(table[a]), levels[a])
			}
		}
		// The table must reproduce Predictors bit-for-bit for every point
		// of the space, whatever the other axes are set to.
		for trial := 0; trial < 500; trial++ {
			p := space.SampleUAR(1, uint64(trial))[0]
			vals := Predictors(space.Config(p))
			for a := 0; a < NumAxes; a++ {
				if table[a][p[a]] != vals[a] {
					t.Fatalf("point %v axis %d: table %v, Predictors %v", p, a, table[a][p[a]], vals[a])
				}
			}
		}
	}
}

func TestDepthBlockMatchesPointsAtDepth(t *testing.T) {
	space := ExplorationSpace()
	levels := space.Levels()
	covered := 0
	for d := 0; d < levels[AxisDepth]; d++ {
		lo, hi := space.DepthBlock(d)
		if hi-lo != space.Size()/levels[AxisDepth] {
			t.Fatalf("depth %d block [%d,%d) has wrong size", d, lo, hi)
		}
		covered += hi - lo
		// Every enumerated point at this depth must land inside the
		// block, and the block must contain nothing else.
		want := make(map[int]bool)
		for _, p := range space.PointsAtDepth(d) {
			idx := space.FlatIndex(p)
			if idx < lo || idx >= hi {
				t.Fatalf("depth %d: point %v flat index %d outside [%d,%d)", d, p, idx, lo, hi)
			}
			want[idx] = true
		}
		if len(want) != hi-lo {
			t.Fatalf("depth %d: %d distinct points for block of %d", d, len(want), hi-lo)
		}
		for i := lo; i < hi; i++ {
			if p := space.PointAt(i); p[AxisDepth] != d {
				t.Fatalf("index %d in depth-%d block decodes to depth %d", i, d, p[AxisDepth])
			}
		}
	}
	if covered != space.Size() {
		t.Fatalf("depth blocks cover %d of %d indices", covered, space.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DepthBlock accepted an out-of-range level")
		}
	}()
	space.DepthBlock(levels[AxisDepth])
}

// TestFingerprint checks the space hash is deterministic, identical for
// independently-constructed equal spaces, and distinguishes the two
// spaces the repository actually uses.
func TestFingerprint(t *testing.T) {
	study := ExplorationSpace().Fingerprint()
	if study == 0 {
		t.Fatal("zero fingerprint")
	}
	if again := ExplorationSpace().Fingerprint(); again != study {
		t.Fatalf("fingerprint not deterministic: %016x vs %016x", study, again)
	}
	if sample := TableOneSpace().Fingerprint(); sample == study {
		t.Fatalf("TableOneSpace and ExplorationSpace share fingerprint %016x", study)
	}
}
