// Package arch defines the microarchitectural design space of the paper's
// Table 1 and the POWER4-like baseline of Table 3: seven simultaneously
// varied parameter groups whose Cartesian product spans 375,000 designs,
// plus the smaller 262,500-point exploration subspace (pipeline depths of
// 12 to 30 FO4) used by the design-space studies.
package arch

import (
	"fmt"

	"repro/internal/rng"
)

// NumAxes is the number of independently varied parameter groups
// (S1..S7 in Table 1).
const NumAxes = 7

// Axis indices into a Point.
const (
	AxisDepth = iota // S1: pipeline depth (FO4 per stage)
	AxisWidth        // S2: decode width + coupled queues and FUs
	AxisRegs         // S3: physical registers (GPR/FPR/SPR coupled)
	AxisResv         // S4: reservation stations (BR/FX/FP coupled)
	AxisIL1          // S5: L1 instruction cache size
	AxisDL1          // S6: L1 data cache size
	AxisL2           // S7: L2 cache size
)

// Point identifies one design as a level index per axis.
type Point [NumAxes]int

// Config is a fully-resolved microarchitecture: the values the simulator
// consumes. All cache sizes are in KB.
type Config struct {
	// S1: pipeline depth in fan-out-of-four inverter delays per stage.
	// Smaller FO4 means a deeper pipeline at a higher clock frequency.
	DepthFO4 int

	// S2: pipeline width and its coupled resources.
	Width     int // decode bandwidth, instructions per cycle
	LSQ       int // load queue entries
	SQ        int // store queue entries
	FUPerKind int // functional units of each kind (FXU, FPU, LSU, BR)

	// S3: physical register file sizes.
	GPR, FPR, SPR int

	// S4: reservation station (issue queue) entries per class.
	ResvBR, ResvFX, ResvFP int

	// S5-S7: cache capacities in KB.
	IL1KB, DL1KB, L2KB int

	// Extension parameters beyond the paper's Table 1 space, from the
	// paper's stated future work ("we intend to expand our models to
	// support other parameters such as cache-associativity and in-order
	// execution"). Zero values select the paper's baseline behaviour.

	// InOrder restricts the core to in-order issue: instructions issue
	// in program order with stall-on-use semantics.
	InOrder bool
	// DL1Assoc overrides the data-cache associativity (0 means the
	// Table 3 default of 2 ways).
	DL1Assoc int
}

// Validate performs basic sanity checks on a configuration.
func (c Config) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"DepthFO4", c.DepthFO4}, {"Width", c.Width}, {"LSQ", c.LSQ},
		{"SQ", c.SQ}, {"FUPerKind", c.FUPerKind}, {"GPR", c.GPR},
		{"FPR", c.FPR}, {"SPR", c.SPR}, {"ResvBR", c.ResvBR},
		{"ResvFX", c.ResvFX}, {"ResvFP", c.ResvFP}, {"IL1KB", c.IL1KB},
		{"DL1KB", c.DL1KB}, {"L2KB", c.L2KB},
	}
	for _, ch := range checks {
		if ch.v <= 0 {
			return fmt.Errorf("arch: %s = %d must be positive", ch.name, ch.v)
		}
	}
	if c.DepthFO4 < 6 || c.DepthFO4 > 48 {
		return fmt.Errorf("arch: DepthFO4 = %d outside plausible range [6, 48]", c.DepthFO4)
	}
	if c.DL1Assoc < 0 || c.DL1Assoc > 16 {
		return fmt.Errorf("arch: DL1Assoc = %d outside [0, 16]", c.DL1Assoc)
	}
	if c.DL1Assoc != 0 && c.DL1Assoc&(c.DL1Assoc-1) != 0 {
		return fmt.Errorf("arch: DL1Assoc = %d must be a power of two", c.DL1Assoc)
	}
	return nil
}

// String renders the configuration compactly, in the spirit of the
// paper's Table 2 rows.
func (c Config) String() string {
	return fmt.Sprintf("depth=%dFO4 width=%d regs=%d/%d/%d resv=%d/%d/%d i$=%dKB d$=%dKB l2=%gMB",
		c.DepthFO4, c.Width, c.GPR, c.FPR, c.SPR,
		c.ResvBR, c.ResvFX, c.ResvFP, c.IL1KB, c.DL1KB, float64(c.L2KB)/1024)
}

// widthLevel is one row of the coupled S2 group.
type widthLevel struct {
	width, lsq, sq, fu int
}

// Space is a concrete design space: a list of levels per axis. Use
// TableOneSpace for the 375,000-point sampling space or ExplorationSpace
// for the 262,500-point study space.
type Space struct {
	depths []int        // S1
	widths []widthLevel // S2
	regs   []int        // S3 level index -> GPR (FPR/SPR derived)
	resv   []int        // S4 level index -> ResvFX (BR/FP derived)
	il1    []int        // S5 KB
	dl1    []int        // S6 KB
	l2     []int        // S7 KB
}

// Table 1 rows, shared by both spaces.
var (
	widthLevels = []widthLevel{
		{width: 2, lsq: 15, sq: 14, fu: 1},
		{width: 4, lsq: 30, sq: 28, fu: 2},
		{width: 8, lsq: 45, sq: 42, fu: 4},
	}
	il1Sizes = []int{16, 32, 64, 128, 256}       // KB, 16::2x::256
	dl1Sizes = []int{8, 16, 32, 64, 128}         // KB, 8::2x::128
	l2Sizes  = []int{256, 512, 1024, 2048, 4096} // KB, 0.25::2x::4 MB
)

func regLevels() []int {
	out := make([]int, 10) // GPR 40::10::130
	for i := range out {
		out[i] = 40 + 10*i
	}
	return out
}

func resvLevels() []int {
	out := make([]int, 10) // fixed-point RS 10::2::28
	for i := range out {
		out[i] = 10 + 2*i
	}
	return out
}

// TableOneSpace returns the paper's sampling space: depths 9 to 36 FO4 in
// steps of 3 (ten levels), for a total of 375,000 designs. Models are
// trained on samples from this space so the smaller exploration space is
// free of extrapolation at the depth extremes (paper Section 3.5).
func TableOneSpace() *Space {
	depths := make([]int, 10)
	for i := range depths {
		depths[i] = 9 + 3*i
	}
	return newSpace(depths)
}

// ExplorationSpace returns the 262,500-point study space with depths 12 to
// 30 FO4 (seven levels); all other axes match Table 1.
func ExplorationSpace() *Space {
	depths := make([]int, 7)
	for i := range depths {
		depths[i] = 12 + 3*i
	}
	return newSpace(depths)
}

func newSpace(depths []int) *Space {
	return &Space{
		depths: depths,
		widths: widthLevels,
		regs:   regLevels(),
		resv:   resvLevels(),
		il1:    il1Sizes,
		dl1:    dl1Sizes,
		l2:     l2Sizes,
	}
}

// Levels returns the number of levels on each axis.
func (s *Space) Levels() [NumAxes]int {
	return [NumAxes]int{
		len(s.depths), len(s.widths), len(s.regs), len(s.resv),
		len(s.il1), len(s.dl1), len(s.l2),
	}
}

// Size returns the total number of designs in the space.
func (s *Space) Size() int {
	n := 1
	for _, l := range s.Levels() {
		n *= l
	}
	return n
}

// Contains reports whether the point's level indices are in range.
func (s *Space) Contains(p Point) bool {
	levels := s.Levels()
	for a, idx := range p {
		if idx < 0 || idx >= levels[a] {
			return false
		}
	}
	return true
}

// Config resolves a point to a full configuration. It panics if the point
// is out of range.
func (s *Space) Config(p Point) Config {
	if !s.Contains(p) {
		panic(fmt.Sprintf("arch: point %v outside space with levels %v", p, s.Levels()))
	}
	w := s.widths[p[AxisWidth]]
	regIdx := p[AxisRegs]
	resvIdx := p[AxisResv]
	return Config{
		DepthFO4:  s.depths[p[AxisDepth]],
		Width:     w.width,
		LSQ:       w.lsq,
		SQ:        w.sq,
		FUPerKind: w.fu,
		GPR:       s.regs[regIdx],
		FPR:       40 + 8*regIdx, // 40::8::112, coupled to the GPR level
		SPR:       42 + 6*regIdx, // 42::6::96
		ResvFX:    s.resv[resvIdx],
		ResvBR:    6 + resvIdx, // 6::1::15
		ResvFP:    5 + resvIdx, // 5::1::14
		IL1KB:     s.il1[p[AxisIL1]],
		DL1KB:     s.dl1[p[AxisDL1]],
		L2KB:      s.l2[p[AxisL2]],
	}
}

// FlatIndex maps a point to a dense index in [0, Size()) using mixed-radix
// encoding with AxisDepth as the most significant digit.
func (s *Space) FlatIndex(p Point) int {
	if !s.Contains(p) {
		panic(fmt.Sprintf("arch: point %v outside space", p))
	}
	levels := s.Levels()
	idx := 0
	for a := 0; a < NumAxes; a++ {
		idx = idx*levels[a] + p[a]
	}
	return idx
}

// PointAt inverts FlatIndex. It panics if i is out of range.
func (s *Space) PointAt(i int) Point {
	if i < 0 || i >= s.Size() {
		panic(fmt.Sprintf("arch: flat index %d outside space of size %d", i, s.Size()))
	}
	levels := s.Levels()
	var p Point
	for a := NumAxes - 1; a >= 0; a-- {
		p[a] = i % levels[a]
		i /= levels[a]
	}
	return p
}

// SampleUAR draws n points uniformly at random from the space, the
// paper's sampling strategy (Section 2.3). Sampling is with replacement;
// for n much smaller than the space size duplicates are rare, and the
// paper's methodology does not deduplicate either. The draw is
// deterministic in the seed.
func (s *Space) SampleUAR(n int, seed uint64) []Point {
	if n < 0 {
		panic("arch: SampleUAR with negative n")
	}
	r := rng.New(seed)
	levels := s.Levels()
	out := make([]Point, n)
	for i := range out {
		var p Point
		for a := 0; a < NumAxes; a++ {
			p[a] = r.Intn(levels[a])
		}
		out[i] = p
	}
	return out
}

// Fingerprint returns a stable FNV-1a hash over every axis's level
// values, identifying the concrete design space independently of how it
// was constructed. Two spaces with the same levels hash identically;
// TableOneSpace and ExplorationSpace differ. Sharded runs key their
// checkpoints on this, so a shard computed over one space can never be
// merged into a sweep over another.
func (s *Space) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= uint64(v) >> shift & 0xff
			h *= prime64
		}
	}
	for _, d := range s.depths {
		mix(d)
	}
	for _, w := range s.widths {
		mix(w.width)
		mix(w.lsq)
		mix(w.sq)
		mix(w.fu)
	}
	for _, group := range [][]int{s.regs, s.resv, s.il1, s.dl1, s.l2} {
		mix(len(group))
		for _, v := range group {
			mix(v)
		}
	}
	return h
}

// DepthLevels returns the FO4 values of the depth axis.
func (s *Space) DepthLevels() []int {
	return append([]int(nil), s.depths...)
}

// DL1Levels returns the data-cache sizes (KB) of the D-L1 axis.
func (s *Space) DL1Levels() []int {
	return append([]int(nil), s.dl1...)
}

// DepthBlock returns the contiguous flat-index range [lo, hi) covering
// every point at the given depth level: AxisDepth is the most
// significant digit of FlatIndex, so each depth owns one block of
// Size()/len(depths) consecutive indices. Consumers that group an
// exhaustive sweep by depth can slice the prediction array instead of
// enumerating and re-encoding 37,500 points.
func (s *Space) DepthBlock(depthLevel int) (lo, hi int) {
	levels := s.Levels()
	if depthLevel < 0 || depthLevel >= levels[AxisDepth] {
		panic(fmt.Sprintf("arch: depth level %d out of range", depthLevel))
	}
	block := s.Size() / levels[AxisDepth]
	return depthLevel * block, (depthLevel + 1) * block
}

// PointsAtDepth enumerates all points whose depth axis equals the given
// level index. The exploration space has 37,500 such designs per depth
// (262,500 / 7), matching the boxplot populations of the paper's
// Figure 5(a).
func (s *Space) PointsAtDepth(depthLevel int) []Point {
	levels := s.Levels()
	if depthLevel < 0 || depthLevel >= levels[AxisDepth] {
		panic(fmt.Sprintf("arch: depth level %d out of range", depthLevel))
	}
	count := s.Size() / levels[AxisDepth]
	out := make([]Point, 0, count)
	var walk func(axis int, p Point)
	walk = func(axis int, p Point) {
		if axis == NumAxes {
			out = append(out, p)
			return
		}
		if axis == AxisDepth {
			p[axis] = depthLevel
			walk(axis+1, p)
			return
		}
		for l := 0; l < levels[axis]; l++ {
			p[axis] = l
			walk(axis+1, p)
		}
	}
	walk(0, Point{})
	return out
}

// Baseline returns the POWER4-like reference architecture of the paper's
// Table 3, expressed in this repository's configuration terms: a 19 FO4,
// 4-wide core with 80 GPR / 72 FPR, moderate reservation stations, 64 KB
// I-cache, 32 KB D-cache and a 2 MB L2.
func Baseline() Config {
	return Config{
		DepthFO4:  19,
		Width:     4,
		LSQ:       30,
		SQ:        28,
		FUPerKind: 2,
		GPR:       80, FPR: 72, SPR: 66,
		ResvBR: 12, ResvFX: 22, ResvFP: 11,
		IL1KB: 64, DL1KB: 32, L2KB: 2048,
	}
}

// BaselinePoint returns the closest point to Baseline within the given
// space (depth is matched to the nearest level). This is the grid design
// used when the baseline must live inside the modeled space.
func BaselinePoint(s *Space) Point {
	base := Baseline()
	var p Point
	// Nearest depth level.
	bestD, bestDist := 0, 1<<30
	for i, d := range s.depths {
		dist := abs(d - base.DepthFO4)
		if dist < bestDist {
			bestDist, bestD = dist, i
		}
	}
	p[AxisDepth] = bestD
	p[AxisWidth] = 1 // 4-wide
	p[AxisRegs] = 4  // GPR 80 / FPR 72 / SPR 66
	p[AxisResv] = 6  // BR 12 / FX 22 / FP 11
	p[AxisIL1] = 2   // 64 KB
	p[AxisDL1] = 2   // 32 KB
	p[AxisL2] = 3    // 2 MB
	return p
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
