package arch

import "math"

// Predictor column names used by the regression models. Coupled
// sub-parameters (e.g. FPR, store queue) vary in lockstep with their group
// leader, so one representative value per Table 1 group is sufficient and
// keeps the design matrix full rank. Cache capacities enter as log2(KB):
// the axis is geometric (each level doubles), so the log is the natural
// scale on which splines interpolate.
const (
	PredDepth = "depth" // FO4 per stage
	PredWidth = "width" // decode bandwidth
	PredRegs  = "regs"  // general-purpose physical registers
	PredResv  = "resv"  // fixed-point reservation station entries
	PredIL1   = "il1"   // log2 of I-L1 KB
	PredDL1   = "dl1"   // log2 of D-L1 KB
	PredL2    = "l2"    // log2 of L2 KB
)

// PredictorNames lists the regression predictors in canonical order.
func PredictorNames() []string {
	return []string{PredDepth, PredWidth, PredRegs, PredResv, PredIL1, PredDL1, PredL2}
}

// Predictors returns the regression predictor vector for a configuration,
// ordered as PredictorNames.
func Predictors(c Config) []float64 {
	return []float64{
		float64(c.DepthFO4),
		float64(c.Width),
		float64(c.GPR),
		float64(c.ResvFX),
		math.Log2(float64(c.IL1KB)),
		math.Log2(float64(c.DL1KB)),
		math.Log2(float64(c.L2KB)),
	}
}

// PredictorsInto fills dst (which must have length >= 7) with the
// predictor vector, avoiding allocation in exhaustive-prediction loops,
// and returns dst[:7].
func PredictorsInto(c Config, dst []float64) []float64 {
	dst = dst[:7]
	dst[0] = float64(c.DepthFO4)
	dst[1] = float64(c.Width)
	dst[2] = float64(c.GPR)
	dst[3] = float64(c.ResvFX)
	dst[4] = math.Log2(float64(c.IL1KB))
	dst[5] = math.Log2(float64(c.DL1KB))
	dst[6] = math.Log2(float64(c.L2KB))
	return dst
}

// PredictorIndex returns the position of a predictor name within
// PredictorNames ordering, or -1 if unknown.
func PredictorIndex(name string) int {
	switch name {
	case PredDepth:
		return 0
	case PredWidth:
		return 1
	case PredRegs:
		return 2
	case PredResv:
		return 3
	case PredIL1:
		return 4
	case PredDL1:
		return 5
	case PredL2:
		return 6
	default:
		return -1
	}
}

// PredictorLevelValues returns, for each predictor in PredictorNames
// order, the value the predictor takes at each level of its axis within
// the space. Predictors map one-to-one onto axes in order and each
// depends only on its own axis, so the table is exact: for any point p,
// Predictors(s.Config(p))[a] == PredictorLevelValues(s)[a][p[a]], bit
// for bit. Compiled regression models use these tables to precompute
// every spline-basis value a sweep can ever need.
func PredictorLevelValues(s *Space) [][]float64 {
	levels := s.Levels()
	out := make([][]float64, NumAxes)
	for a := 0; a < NumAxes; a++ {
		out[a] = make([]float64, levels[a])
		for l := 0; l < levels[a]; l++ {
			var p Point
			p[a] = l
			out[a][l] = Predictors(s.Config(p))[a]
		}
	}
	return out
}

// PredictorGetter adapts a configuration to the lookup function consumed
// by regression.Model.Predict.
func PredictorGetter(c Config) func(string) float64 {
	vals := Predictors(c)
	names := PredictorNames()
	m := make(map[string]float64, len(names))
	for i, n := range names {
		m[n] = vals[i]
	}
	return func(name string) float64 {
		v, ok := m[name]
		if !ok {
			panic("arch: unknown predictor " + name)
		}
		return v
	}
}
