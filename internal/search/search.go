// Package search implements heuristic design-space optimization over the
// regression models, the paper's stated future direction ("for larger
// design spaces, we may apply the models in heuristic search instead of
// exhaustive prediction") and its point of comparison with Eyerman et
// al.'s simulation-driven heuristics: because model evaluations cost
// microseconds instead of simulator-hours, even thousands of search steps
// are effectively free, and one trained model serves every optimization
// problem.
//
// Two optimizers are provided: steepest-ascent hill climbing with random
// restarts, and simulated annealing. Both walk the design space's level
// grid through single-axis moves.
package search

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/rng"
)

// Objective scores a configuration; optimizers maximize it. Objectives
// typically wrap regression predictions (e.g. modeled bips^3/w), but any
// function works, including simulator-backed ones for comparison.
type Objective func(arch.Config) float64

// BatchObjective scores many configurations at once, enabling concurrent
// evaluation: hill climbing submits each step's whole neighborhood as one
// batch (typically to an eval.Engine), so neighbor scoring parallelizes
// across cores. The returned slice must have one score per input, in
// input order.
type BatchObjective func([]arch.Config) ([]float64, error)

// Batch lifts a single-point objective to a BatchObjective.
func Batch(obj Objective) BatchObjective {
	return func(cfgs []arch.Config) ([]float64, error) {
		out := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = obj(cfg)
		}
		return out, nil
	}
}

// Result reports the outcome of a search.
type Result struct {
	Best      arch.Point
	BestScore float64
	// Evaluations counts objective calls, the search's cost unit.
	Evaluations int
	// Restarts or annealing steps actually performed.
	Iterations int
}

// Options configures the optimizers.
type Options struct {
	// Seed drives all randomness; fixed seed, fixed result.
	Seed uint64
	// Restarts for hill climbing (default 10); Steps for annealing
	// (default 2000).
	Restarts int
	Steps    int
	// InitialTemp for annealing as a fraction of the first score's
	// magnitude (default 0.5); cooling is geometric to ~1e-3 of it.
	InitialTemp float64
}

// HillClimb runs steepest-ascent hill climbing with random restarts: from
// a random point, repeatedly move to the best scoring neighbor (one level
// up or down on one axis) until no neighbor improves.
func HillClimb(space *arch.Space, obj Objective, opts Options) (*Result, error) {
	if space == nil || obj == nil {
		return nil, fmt.Errorf("search: nil space or objective")
	}
	return HillClimbBatch(space, Batch(obj), opts)
}

// HillClimbBatch is HillClimb over a batch objective: each step's full
// neighborhood (up to two neighbors per axis) is scored in one call.
// With a deterministic objective the walk — and therefore the result —
// is identical to HillClimb's, whatever parallelism the batch objective
// uses underneath.
func HillClimbBatch(space *arch.Space, obj BatchObjective, opts Options) (*Result, error) {
	if space == nil || obj == nil {
		return nil, fmt.Errorf("search: nil space or objective")
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 10
	}
	r := rng.New(opts.Seed ^ 0x68696c6c)
	levels := space.Levels()

	res := &Result{BestScore: math.Inf(-1)}
	nbPts := make([]arch.Point, 0, 2*arch.NumAxes)
	nbCfgs := make([]arch.Config, 0, 2*arch.NumAxes)
	for attempt := 0; attempt < restarts; attempt++ {
		cur := randomPoint(space, r)
		scores, err := obj([]arch.Config{space.Config(cur)})
		if err != nil {
			return nil, err
		}
		if len(scores) != 1 {
			return nil, fmt.Errorf("search: objective returned %d scores for 1 config", len(scores))
		}
		curScore := scores[0]
		res.Evaluations++
		for {
			nbPts, nbCfgs = nbPts[:0], nbCfgs[:0]
			for axis := 0; axis < arch.NumAxes; axis++ {
				for _, delta := range [2]int{-1, 1} {
					nb := cur
					nb[axis] += delta
					if nb[axis] < 0 || nb[axis] >= levels[axis] {
						continue
					}
					nbPts = append(nbPts, nb)
					nbCfgs = append(nbCfgs, space.Config(nb))
				}
			}
			scores, err := obj(nbCfgs)
			if err != nil {
				return nil, err
			}
			if len(scores) != len(nbCfgs) {
				return nil, fmt.Errorf("search: objective returned %d scores for %d configs",
					len(scores), len(nbCfgs))
			}
			res.Evaluations += len(nbCfgs)
			improved := false
			bestNb := cur
			bestScore := curScore
			for i, s := range scores {
				if s > bestScore {
					bestScore, bestNb = s, nbPts[i]
					improved = true
				}
			}
			if !improved {
				break
			}
			cur, curScore = bestNb, bestScore
		}
		res.Iterations++
		if curScore > res.BestScore {
			res.BestScore, res.Best = curScore, cur
		}
	}
	return res, nil
}

// Anneal runs simulated annealing: random single-axis moves are always
// accepted when improving and accepted with Boltzmann probability when
// not, under a geometrically cooling temperature.
func Anneal(space *arch.Space, obj Objective, opts Options) (*Result, error) {
	if space == nil || obj == nil {
		return nil, fmt.Errorf("search: nil space or objective")
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 2000
	}
	r := rng.New(opts.Seed ^ 0x616e6e65)
	levels := space.Levels()

	cur := randomPoint(space, r)
	curScore := obj(space.Config(cur))
	res := &Result{Best: cur, BestScore: curScore, Evaluations: 1}

	t0 := opts.InitialTemp
	if t0 <= 0 {
		t0 = 0.5
	}
	temp := t0 * math.Abs(curScore)
	if temp == 0 {
		temp = t0
	}
	cool := math.Pow(1e-3, 1/float64(steps)) // reach temp*1e-3 at the end

	for i := 0; i < steps; i++ {
		axis := r.Intn(arch.NumAxes)
		delta := 1
		if r.Bool(0.5) {
			delta = -1
		}
		nb := cur
		nb[axis] += delta
		if nb[axis] < 0 || nb[axis] >= levels[axis] {
			continue
		}
		s := obj(space.Config(nb))
		res.Evaluations++
		res.Iterations++
		if s >= curScore || r.Bool(math.Exp((s-curScore)/temp)) {
			cur, curScore = nb, s
			if curScore > res.BestScore {
				res.Best, res.BestScore = cur, curScore
			}
		}
		temp *= cool
	}
	return res, nil
}

func randomPoint(space *arch.Space, r *rng.Source) arch.Point {
	levels := space.Levels()
	var p arch.Point
	for a := 0; a < arch.NumAxes; a++ {
		p[a] = r.Intn(levels[a])
	}
	return p
}
