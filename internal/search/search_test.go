package search

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// smoothObjective is a concave function of the predictors with a unique
// interior optimum, easy for local search.
func smoothObjective(c arch.Config) float64 {
	d := float64(c.DepthFO4) - 18
	w := float64(c.Width) - 4
	g := float64(c.GPR) - 90
	l := math.Log2(float64(c.L2KB)) - 10
	return 100 - d*d/4 - w*w - g*g/100 - l*l
}

func TestHillClimbFindsSmoothOptimum(t *testing.T) {
	space := arch.ExplorationSpace()
	res, err := HillClimb(space, smoothObjective, Options{Seed: 1, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.Config(res.Best)
	if cfg.DepthFO4 != 18 || cfg.Width != 4 || cfg.GPR != 90 || cfg.L2KB != 1024 {
		t.Fatalf("hill climb found %v, want depth 18 width 4 gpr 90 l2 1MB", cfg)
	}
	if res.Evaluations >= space.Size()/10 {
		t.Fatalf("search used %d evaluations; exhaustive would use %d", res.Evaluations, space.Size())
	}
}

func TestAnnealFindsSmoothOptimumRegion(t *testing.T) {
	space := arch.ExplorationSpace()
	res, err := Anneal(space, smoothObjective, Options{Seed: 2, Steps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Annealing should land within a small margin of the true optimum.
	best := smoothObjective(space.Config(res.Best))
	if best < 95 {
		t.Fatalf("annealing score %v too far from optimum 100", best)
	}
}

func TestSearchMatchesExhaustiveOnSmooth(t *testing.T) {
	space := arch.ExplorationSpace()
	// Exhaustive ground truth.
	bestScore := math.Inf(-1)
	for i := 0; i < space.Size(); i += 7 { // stride keeps the test fast
		s := smoothObjective(space.Config(space.PointAt(i)))
		if s > bestScore {
			bestScore = s
		}
	}
	res, err := HillClimb(space, smoothObjective, Options{Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < bestScore {
		t.Fatalf("hill climb %v below strided exhaustive %v", res.BestScore, bestScore)
	}
}

func TestSearchDeterministic(t *testing.T) {
	space := arch.ExplorationSpace()
	a, err := HillClimb(space, smoothObjective, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(space, smoothObjective, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Evaluations != b.Evaluations {
		t.Fatal("same seed produced different searches")
	}
	c, err := Anneal(space, smoothObjective, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Anneal(space, smoothObjective, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Best != d.Best {
		t.Fatal("annealing not deterministic")
	}
}

// TestHillClimbBatchMatchesScalar pins the equivalence contract: a batch
// objective (however parallel underneath) must walk exactly the same
// path as the scalar objective it wraps.
func TestHillClimbBatchMatchesScalar(t *testing.T) {
	space := arch.ExplorationSpace()
	scalar, err := HillClimb(space, smoothObjective, Options{Seed: 4, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	var batches, scored int
	batched, err := HillClimbBatch(space, func(cfgs []arch.Config) ([]float64, error) {
		batches++
		scored += len(cfgs)
		out := make([]float64, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = smoothObjective(cfg)
		}
		return out, nil
	}, Options{Seed: 4, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Best != batched.Best || scalar.BestScore != batched.BestScore ||
		scalar.Evaluations != batched.Evaluations || scalar.Iterations != batched.Iterations {
		t.Fatalf("batched walk diverged: scalar %+v, batched %+v", scalar, batched)
	}
	if scored != batched.Evaluations {
		t.Fatalf("objective scored %d configs, result reports %d", scored, batched.Evaluations)
	}
	// Neighborhoods batch up to 2*NumAxes configs per call, so the walk
	// needs far fewer calls than evaluations.
	if batches >= scored {
		t.Fatalf("batching degenerated to scalar calls: %d batches for %d scores", batches, scored)
	}
}

func TestHillClimbBatchPropagatesObjectiveError(t *testing.T) {
	space := arch.ExplorationSpace()
	wantErr := "objective exploded"
	_, err := HillClimbBatch(space, func(cfgs []arch.Config) ([]float64, error) {
		return nil, errors.New(wantErr)
	}, Options{Seed: 1, Restarts: 1})
	if err == nil || !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("err = %v, want objective error", err)
	}
	_, err = HillClimbBatch(space, func(cfgs []arch.Config) ([]float64, error) {
		return make([]float64, len(cfgs)+1), nil
	}, Options{Seed: 1, Restarts: 1})
	if err == nil || !strings.Contains(err.Error(), "scores") {
		t.Fatalf("err = %v, want score-count mismatch error", err)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := HillClimb(nil, smoothObjective, Options{}); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := HillClimb(arch.ExplorationSpace(), nil, Options{}); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := Anneal(nil, smoothObjective, Options{}); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := Anneal(arch.ExplorationSpace(), nil, Options{}); err == nil {
		t.Fatal("nil objective accepted")
	}
}

// Property: returned points are always inside the space and the reported
// score matches re-evaluating the objective.
func TestQuickSearchInvariants(t *testing.T) {
	space := arch.ExplorationSpace()
	f := func(seed uint64) bool {
		hc, err := HillClimb(space, smoothObjective, Options{Seed: seed, Restarts: 2})
		if err != nil || !space.Contains(hc.Best) {
			return false
		}
		if smoothObjective(space.Config(hc.Best)) != hc.BestScore {
			return false
		}
		an, err := Anneal(space, smoothObjective, Options{Seed: seed, Steps: 300})
		if err != nil || !space.Contains(an.Best) {
			return false
		}
		return smoothObjective(space.Config(an.Best)) == an.BestScore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: hill climbing never returns a point with a strictly better
// immediate neighbor (it is a genuine local optimum).
func TestQuickHillClimbLocalOptimality(t *testing.T) {
	space := arch.ExplorationSpace()
	levels := space.Levels()
	f := func(seed uint64) bool {
		res, err := HillClimb(space, smoothObjective, Options{Seed: seed, Restarts: 1})
		if err != nil {
			return false
		}
		for axis := 0; axis < arch.NumAxes; axis++ {
			for _, delta := range [2]int{-1, 1} {
				nb := res.Best
				nb[axis] += delta
				if nb[axis] < 0 || nb[axis] >= levels[axis] {
					continue
				}
				if smoothObjective(space.Config(nb)) > res.BestScore {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHillClimb(b *testing.B) {
	space := arch.ExplorationSpace()
	for i := 0; i < b.N; i++ {
		if _, err := HillClimb(space, smoothObjective, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
