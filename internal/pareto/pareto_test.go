package pareto

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFrontierSimple(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 1, Power: 10},
		{ID: 1, Delay: 2, Power: 5},
		{ID: 2, Delay: 3, Power: 7}, // dominated by 1
		{ID: 3, Delay: 4, Power: 2},
		{ID: 4, Delay: 0.5, Power: 20},
	}
	f := Frontier(points)
	ids := frontierIDs(f)
	want := []int{4, 0, 1, 3}
	if len(ids) != len(want) {
		t.Fatalf("frontier = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", ids, want)
		}
	}
}

func frontierIDs(f []Point) []int {
	ids := make([]int, len(f))
	for i, p := range f {
		ids[i] = p.ID
	}
	return ids
}

func TestFrontierEmpty(t *testing.T) {
	if f := Frontier(nil); f != nil {
		t.Fatalf("Frontier(nil) = %v", f)
	}
}

func TestFrontierSinglePoint(t *testing.T) {
	f := Frontier([]Point{{ID: 7, Delay: 1, Power: 1}})
	if len(f) != 1 || f[0].ID != 7 {
		t.Fatalf("frontier = %v", f)
	}
}

func TestFrontierDuplicateDelays(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 1, Power: 5},
		{ID: 1, Delay: 1, Power: 3}, // same delay, cheaper: keep this one
		{ID: 2, Delay: 2, Power: 1},
	}
	f := Frontier(points)
	ids := frontierIDs(f)
	want := []int{1, 2}
	if len(ids) != 2 || ids[0] != want[0] || ids[1] != want[1] {
		t.Fatalf("frontier = %v, want %v", ids, want)
	}
}

func TestFrontierAllDominatedByOne(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 1, Power: 1},
		{ID: 1, Delay: 2, Power: 2},
		{ID: 2, Delay: 3, Power: 3},
	}
	f := Frontier(points)
	if len(f) != 1 || f[0].ID != 0 {
		t.Fatalf("frontier = %v, want just ID 0", frontierIDs(f))
	}
}

func TestFrontierDoesNotMutateInput(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 3, Power: 1},
		{ID: 1, Delay: 1, Power: 3},
	}
	Frontier(points)
	if points[0].ID != 0 || points[1].ID != 1 {
		t.Fatal("input reordered")
	}
}

func TestIsDominated(t *testing.T) {
	p := Point{Delay: 2, Power: 2}
	cases := []struct {
		q    Point
		want bool
	}{
		{Point{Delay: 1, Power: 1}, true},
		{Point{Delay: 2, Power: 1}, true},
		{Point{Delay: 1, Power: 2}, true},
		{Point{Delay: 2, Power: 2}, false}, // equal, not strict
		{Point{Delay: 3, Power: 1}, false},
		{Point{Delay: 1, Power: 3}, false},
	}
	for _, c := range cases {
		if got := IsDominated(p, c.q); got != c.want {
			t.Fatalf("IsDominated(%v, %v) = %v, want %v", p, c.q, got, c.want)
		}
	}
}

func TestDiscretizedFrontier(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 0.0, Power: 10},
		{ID: 1, Delay: 0.4, Power: 6},
		{ID: 2, Delay: 1.0, Power: 8},
		{ID: 3, Delay: 1.4, Power: 3},
		{ID: 4, Delay: 2.0, Power: 1},
	}
	f, err := DiscretizedFrontier(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bins: [0,1) -> cheapest is ID 1 (6W); [1,2] -> cheapest is ID 4.
	ids := frontierIDs(f)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 4 {
		t.Fatalf("discretized frontier = %v, want [1 4]", ids)
	}
}

func TestDiscretizedFrontierDegenerate(t *testing.T) {
	points := []Point{
		{ID: 0, Delay: 1, Power: 5},
		{ID: 1, Delay: 1, Power: 3},
	}
	f, err := DiscretizedFrontier(points, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || f[0].ID != 1 {
		t.Fatalf("degenerate frontier = %v", frontierIDs(f))
	}
}

func TestDiscretizedFrontierErrors(t *testing.T) {
	if _, err := DiscretizedFrontier([]Point{{}}, 0); err == nil {
		t.Fatal("nTargets=0 accepted")
	}
	f, err := DiscretizedFrontier(nil, 5)
	if err != nil || f != nil {
		t.Fatalf("empty input: f=%v err=%v", f, err)
	}
}

// Property: no frontier point is dominated by any input point, and every
// non-frontier input point is dominated by (or duplicates) some frontier
// point.
func TestQuickFrontierCorrectness(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(60)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{
				ID:    i,
				Delay: float64(r.Intn(20)) / 4, // ties likely
				Power: float64(r.Intn(20)) / 4,
			}
		}
		front := Frontier(points)
		onFront := map[int]bool{}
		for _, fp := range front {
			onFront[fp.ID] = true
			for _, q := range points {
				if IsDominated(fp, q) {
					return false // frontier point dominated
				}
			}
		}
		for _, p := range points {
			if onFront[p.ID] {
				continue
			}
			covered := false
			for _, fp := range front {
				if IsDominated(p, fp) || (fp.Delay == p.Delay && fp.Power == p.Power) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: frontier is sorted by delay with strictly decreasing power.
func TestQuickFrontierMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{ID: i, Delay: r.Float64() * 10, Power: r.Float64() * 100}
		}
		front := Frontier(points)
		if !sort.SliceIsSorted(front, func(i, j int) bool { return front[i].Delay < front[j].Delay }) {
			return false
		}
		for i := 1; i < len(front); i++ {
			if front[i].Power >= front[i-1].Power {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the discretized frontier is a subset of the input and each
// selected point is the power minimum of its bin.
func TestQuickDiscretizedSubset(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{ID: i, Delay: r.Float64() * 10, Power: r.Float64() * 100}
		}
		front, err := DiscretizedFrontier(points, 8)
		if err != nil {
			return false
		}
		byID := map[int]Point{}
		for _, p := range points {
			byID[p.ID] = p
		}
		for _, fp := range front {
			orig, ok := byID[fp.ID]
			if !ok || orig != fp {
				return false
			}
		}
		return len(front) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrontier100k(b *testing.B) {
	r := rng.New(1)
	points := make([]Point, 100000)
	for i := range points {
		points[i] = Point{ID: i, Delay: r.Float64() * 5, Power: r.Float64() * 150}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Frontier(points)
	}
}

// TestDiscretizedFrontierColumnsEquivalence checks the columnar
// construction against the []Point entry on random inputs — the two are
// documented as identical in semantics — plus its own error cases.
func TestDiscretizedFrontierColumnsEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(80)
		points := make([]Point, n)
		ids := make([]int, n)
		delays := make([]float64, n)
		powers := make([]float64, n)
		for i := range points {
			points[i] = Point{
				ID:    i,
				Delay: float64(r.Intn(16)) / 3, // ties likely
				Power: float64(r.Intn(16)) / 3,
			}
			ids[i] = points[i].ID
			delays[i] = points[i].Delay
			powers[i] = points[i].Power
		}
		nTargets := 1 + r.Intn(12)
		a, errA := DiscretizedFrontier(points, nTargets)
		b, errB := DiscretizedFrontierColumns(ids, delays, powers, nTargets)
		if (errA == nil) != (errB == nil) || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizedFrontierColumnsErrors(t *testing.T) {
	if _, err := DiscretizedFrontierColumns([]int{1}, []float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("nTargets=0 accepted")
	}
	if _, err := DiscretizedFrontierColumns([]int{1, 2}, []float64{1}, []float64{1, 2}, 4); err == nil {
		t.Fatal("mismatched column lengths accepted")
	}
	f, err := DiscretizedFrontierColumns(nil, nil, nil, 5)
	if err != nil || f != nil {
		t.Fatalf("empty columns: f=%v err=%v", f, err)
	}
}

func TestDiscretizedFrontierColumnsDegenerate(t *testing.T) {
	// All delays equal: the single cheapest design survives, lowest ID on
	// power ties.
	f, err := DiscretizedFrontierColumns(
		[]int{7, 3, 9},
		[]float64{2, 2, 2},
		[]float64{5, 4, 4},
		10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || f[0].ID != 3 || f[0].Power != 4 {
		t.Fatalf("degenerate frontier = %+v, want single point ID 3 power 4", f)
	}
}
