// Package pareto extracts pareto-optimal frontiers in the two-dimensional
// (delay, power) space used by the paper's Section 4. A design is pareto
// optimal if no other design has both lower delay and lower power.
package pareto

import (
	"fmt"
	"sort"
)

// Point is one evaluated design: an opaque ID (typically a design-space
// index) and its two objectives, both minimized.
type Point struct {
	ID    int
	Delay float64
	Power float64
}

// Frontier returns the pareto-optimal subset of points, sorted by
// increasing delay. Among points with identical delay, only the one with
// minimal power survives. The input is not modified.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	// Sort by delay ascending, power ascending to break ties; a stable ID
	// tiebreak keeps output deterministic across runs.
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		if a.Power != b.Power {
			return a.Power < b.Power
		}
		return a.ID < b.ID
	})
	var out []Point
	bestPower := sorted[0].Power + 1
	lastDelay := sorted[0].Delay - 1
	for _, p := range sorted {
		if p.Delay == lastDelay {
			continue // a cheaper point at this exact delay already kept
		}
		if p.Power < bestPower {
			out = append(out, p)
			bestPower = p.Power
			lastDelay = p.Delay
		}
	}
	return out
}

// IsDominated reports whether p is strictly dominated by q: q is no worse
// in both objectives and strictly better in at least one.
func IsDominated(p, q Point) bool {
	if q.Delay > p.Delay || q.Power > p.Power {
		return false
	}
	return q.Delay < p.Delay || q.Power < p.Power
}

// DiscretizedFrontier reproduces the paper's construction (Section 4.2):
// "the frontier is constructed by discretizing the range of delays and
// identifying the design that minimizes power for each delay in a number
// of delay targets". The delay axis is split into nTargets equal bins
// spanning [min delay, max delay]; within each bin the power-minimizing
// design is selected. Empty bins contribute nothing. The result is sorted
// by delay. nTargets must be positive.
func DiscretizedFrontier(points []Point, nTargets int) ([]Point, error) {
	ids := make([]int, len(points))
	delays := make([]float64, len(points))
	powers := make([]float64, len(points))
	for i, p := range points {
		ids[i] = p.ID
		delays[i] = p.Delay
		powers[i] = p.Power
	}
	return DiscretizedFrontierColumns(ids, delays, powers, nTargets)
}

// DiscretizedFrontierColumns is DiscretizedFrontier over parallel columns
// (structure-of-arrays) instead of a []Point slice, so callers holding
// columnar prediction data — e.g. a materialized per-generation view —
// can build frontiers without assembling a point slice per request. The
// three columns must have equal length; element i describes one design.
// Semantics are identical to DiscretizedFrontier.
func DiscretizedFrontierColumns(ids []int, delays, powers []float64, nTargets int) ([]Point, error) {
	if nTargets <= 0 {
		return nil, fmt.Errorf("pareto: nTargets=%d must be positive", nTargets)
	}
	if len(delays) != len(ids) || len(powers) != len(ids) {
		return nil, fmt.Errorf("pareto: column lengths differ: ids=%d delays=%d powers=%d",
			len(ids), len(delays), len(powers))
	}
	if len(ids) == 0 {
		return nil, nil
	}
	lo, hi := delays[0], delays[0]
	for _, d := range delays {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi == lo {
		// Degenerate: all designs share one delay; keep the cheapest.
		best := 0
		for i := 1; i < len(ids); i++ {
			if powers[i] < powers[best] || (powers[i] == powers[best] && ids[i] < ids[best]) {
				best = i
			}
		}
		return []Point{{ID: ids[best], Delay: delays[best], Power: powers[best]}}, nil
	}
	width := (hi - lo) / float64(nTargets)
	best := make([]int, nTargets) // index+1 into the columns; 0 = empty bin
	for i := range ids {
		bin := int((delays[i] - lo) / width)
		if bin >= nTargets {
			bin = nTargets - 1
		}
		cur := best[bin] - 1
		if cur < 0 || powers[i] < powers[cur] ||
			(powers[i] == powers[cur] && (delays[i] < delays[cur] || (delays[i] == delays[cur] && ids[i] < ids[cur]))) {
			best[bin] = i + 1
		}
	}
	var binned []Point
	for _, b := range best {
		if b > 0 {
			i := b - 1
			binned = append(binned, Point{ID: ids[i], Delay: delays[i], Power: powers[i]})
		}
	}
	sort.Slice(binned, func(i, j int) bool { return binned[i].Delay < binned[j].Delay })
	// A bin winner can still be dominated by a faster bin's winner;
	// filter so the result is a true frontier (strictly decreasing power
	// along increasing delay).
	out := binned[:0]
	for _, p := range binned {
		if len(out) == 0 || p.Power < out[len(out)-1].Power {
			out = append(out, p)
		}
	}
	return out, nil
}
