package power

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runFor(t *testing.T, cfg arch.Config, bench string, n int) *sim.Result {
	t.Helper()
	tr, err := trace.ForBenchmark(bench, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBreakdownComponentsPositive(t *testing.T) {
	res := runFor(t, arch.Baseline(), "gcc", 20000)
	b := Estimate(res)
	comps := map[string]float64{
		"FrontEnd": b.FrontEnd, "RegFile": b.RegFile, "IssueQ": b.IssueQ,
		"FuncUnits": b.FuncUnits, "LSQ": b.LSQ, "Predictor": b.Predictor,
		"IL1": b.IL1, "DL1": b.DL1, "L2": b.L2,
		"Clock": b.Clock, "Leakage": b.Leakage,
	}
	for name, v := range comps {
		if v <= 0 {
			t.Errorf("component %s = %v, want > 0", name, v)
		}
	}
	if b.Memory < 0 {
		t.Errorf("Memory = %v, want >= 0", b.Memory)
	}
}

func TestTotalSumsComponents(t *testing.T) {
	res := runFor(t, arch.Baseline(), "gzip", 20000)
	b := Estimate(res)
	sum := b.FrontEnd + b.RegFile + b.IssueQ + b.FuncUnits + b.LSQ +
		b.Predictor + b.IL1 + b.DL1 + b.L2 + b.Memory + b.Clock + b.Leakage
	if diff := b.Total() - sum; diff != 0 {
		t.Fatalf("Total differs from component sum by %v", diff)
	}
	if Watts(res) != b.Total() {
		t.Fatal("Watts disagrees with Estimate().Total()")
	}
}

func TestBaselinePowerRange(t *testing.T) {
	// The POWER4-like baseline should land in the tens of watts, the
	// paper's regime for mid-range designs.
	res := runFor(t, arch.Baseline(), "ammp", 50000)
	w := Watts(res)
	if w < 10 || w > 80 {
		t.Fatalf("baseline power = %v W, want 10-80", w)
	}
}

func TestWiderCostsSuperlinearPower(t *testing.T) {
	s := arch.ExplorationSpace()
	base := arch.BaselinePoint(s)
	narrow := base
	narrow[arch.AxisWidth] = 0
	wide := base
	wide[arch.AxisWidth] = 2
	rn := runFor(t, s.Config(narrow), "mesa", 30000)
	rw := runFor(t, s.Config(wide), "mesa", 30000)
	pn, pw := Watts(rn), Watts(rw)
	if pw <= pn {
		t.Fatalf("8-wide power %v should exceed 2-wide %v", pw, pn)
	}
	// Superlinear: quadrupling width should more than double power.
	if pw < 2*pn {
		t.Fatalf("width power scaling too weak: %v -> %v", pn, pw)
	}
	// Performance should not grow as fast as power (bips^3/w motivation).
	if rw.BIPS/rn.BIPS > pw/pn {
		t.Fatalf("width gained more bips (%vx) than power (%vx); superlinear cost missing",
			rw.BIPS/rn.BIPS, pw/pn)
	}
}

func TestDeeperCostsPower(t *testing.T) {
	deep := arch.Baseline()
	deep.DepthFO4 = 12
	shallow := arch.Baseline()
	shallow.DepthFO4 = 30
	pd := Watts(runFor(t, deep, "gzip", 30000))
	ps := Watts(runFor(t, shallow, "gzip", 30000))
	if pd <= ps*1.5 {
		t.Fatalf("deep pipe power %v should far exceed shallow %v", pd, ps)
	}
}

func TestBiggerCachesCostPower(t *testing.T) {
	small := arch.Baseline()
	small.IL1KB, small.DL1KB, small.L2KB = 16, 8, 256
	big := arch.Baseline()
	big.IL1KB, big.DL1KB, big.L2KB = 256, 128, 4096
	// gzip barely misses, so the power delta is mostly leakage + access
	// energy: big caches must still cost more.
	psmall := Watts(runFor(t, small, "gzip", 30000))
	pbig := Watts(runFor(t, big, "gzip", 30000))
	if pbig <= psmall {
		t.Fatalf("big caches power %v should exceed small %v", pbig, psmall)
	}
}

func TestMemoryBoundWorkloadBurnsMemoryPower(t *testing.T) {
	cfg := arch.Baseline()
	cfg.L2KB = 256
	mcf := Estimate(runFor(t, cfg, "mcf", 50000))
	gzip := Estimate(runFor(t, cfg, "gzip", 50000))
	if mcf.Memory <= gzip.Memory {
		t.Fatalf("mcf memory power %v should exceed gzip %v", mcf.Memory, gzip.Memory)
	}
}

func TestClockGatingReducesIdlePower(t *testing.T) {
	// mcf (low IPC) should burn less clock power than mesa (high IPC) on
	// the same configuration, because idle cycles gate the clock.
	cfg := arch.Baseline()
	mcf := Estimate(runFor(t, cfg, "mcf", 30000))
	mesa := Estimate(runFor(t, cfg, "mesa", 30000))
	if mcf.Clock >= mesa.Clock {
		t.Fatalf("gated clock power (mcf %v) should be below busy (mesa %v)", mcf.Clock, mesa.Clock)
	}
}

// Property: power is positive and finite for any design in the space.
func TestQuickPowerPositive(t *testing.T) {
	s := arch.TableOneSpace()
	levels := s.Levels()
	tr, err := trace.ForBenchmark("twolf", 5000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [arch.NumAxes]uint8) bool {
		var p arch.Point
		for a := range p {
			p[a] = int(raw[a]) % levels[a]
		}
		res, err := sim.Run(s.Config(p), tr)
		if err != nil {
			return false
		}
		w := Watts(res)
		return w > 0 && w < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEstimate(b *testing.B) {
	tr, err := trace.ForBenchmark("gcc", 20000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(arch.Baseline(), tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Estimate(res)
	}
}
