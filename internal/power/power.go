// Package power estimates chip power from the timing simulator's activity
// counts, substituting for PowerTimer. The model follows PowerTimer's
// structure: per-access dynamic energies for each microarchitectural
// structure scaled by utilization (idle structures are clock gated),
// superlinear width scaling for multi-ported structures (register files,
// rename, forwarding), near-linear width scaling for the clustered
// functional units, cache energies from the CACTI-like model, latch/clock
// power proportional to stage count, width and frequency, and
// area-proportional leakage.
package power

import (
	"math"

	"repro/internal/cacti"
	"repro/internal/sim"
)

// Technology calibration constants (nanojoules per event, watts for
// static terms). Absolute values target a 130 nm high-performance
// process: the POWER4-like baseline lands in the tens of watts and the
// most aggressive 12 FO4, 8-wide designs in the low hundreds, matching
// the ranges of the paper's Figure 2.
const (
	// Front end: decode/rename/dependence-check energy per instruction.
	// Port and crossbar complexity grows superlinearly with width.
	feBase     = 1.3 // nJ at width 4
	feWidthExp = 1.0

	// Register file: per-instruction read/write energy; multi-ported
	// arrays scale superlinearly with width and linearly with entries.
	rfBase     = 2.6
	rfWidthExp = 1.15

	// Issue queue CAM search per issued instruction.
	iqBase     = 1.1
	iqWidthExp = 0.6

	// Functional-unit energies per operation. Clustering keeps the
	// width scaling of execution resources near linear (Zyuban), so
	// these carry no width exponent.
	fuInt    = 1.5
	fuFP     = 6.0
	fuLS     = 1.8
	fuBranch = 0.6

	// Load/store queue search per memory operation.
	lsqBase = 0.9

	// Branch predictor energy per lookup.
	bhtEnergy = 0.4

	// Main memory access energy (controller + pins), per access.
	memEnergy = 30.0

	// Cache energy technology scale applied to the cacti estimates.
	cacheScale = 15.0

	// Clock tree and pipeline latches: watts per (stage x width-factor x
	// GHz). Deeper and wider pipelines carry more latches.
	clockCoeff    = 0.13
	clockWidthExp = 0.9
	// Fraction of clock power that cannot be gated away.
	clockUngated = 0.4

	// Leakage: watts per register-file entry, per queue entry, per
	// functional unit, plus a fixed core floor. Cache leakage comes from
	// cacti.
	leakPerReg   = 0.006
	leakPerQueue = 0.014
	leakPerFU    = 0.35
	leakCore     = 2.5
)

// Breakdown reports per-component power in watts.
type Breakdown struct {
	FrontEnd  float64 // decode, rename, dependence check
	RegFile   float64
	IssueQ    float64 // reservation stations
	FuncUnits float64
	LSQ       float64
	Predictor float64
	IL1       float64
	DL1       float64
	L2        float64
	Memory    float64
	Clock     float64
	Leakage   float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.FrontEnd + b.RegFile + b.IssueQ + b.FuncUnits + b.LSQ +
		b.Predictor + b.IL1 + b.DL1 + b.L2 + b.Memory + b.Clock + b.Leakage
}

// Estimate computes the power breakdown for a finished simulation.
func Estimate(res *sim.Result) Breakdown {
	cfg := res.Config
	act := res.Activity
	timeNS := float64(res.Cycles) * res.Params.PeriodNS
	if timeNS <= 0 {
		timeNS = 1
	}
	instr := float64(res.Instructions)
	widthF := func(exp float64) float64 {
		return math.Pow(float64(cfg.Width)/4, exp)
	}
	// Energy (nJ) divided by time (ns) gives watts directly.
	perSec := func(energyNJ float64) float64 { return energyNJ / timeNS }

	var b Breakdown

	// In-order cores dispense with register renaming and the CAM-based
	// wakeup/select logic: the front end slims down and the issue queues
	// become simple in-order buffers (the Davis vs Huh trade-off the
	// paper's related work discusses).
	feScale, iqScale := 1.0, 1.0
	if cfg.InOrder {
		feScale, iqScale = 0.6, 0.2
	}

	// Front end processes every fetched instruction.
	b.FrontEnd = perSec(instr * feBase * feScale * widthF(feWidthExp))

	// Register file: roughly two reads and one write per instruction;
	// energy grows with the number of physical entries.
	totalRegs := float64(cfg.GPR + cfg.FPR + cfg.SPR)
	b.RegFile = perSec(instr * rfBase * (0.3 + totalRegs/220) * widthF(rfWidthExp))

	// Issue queues: CAM broadcast on every issue, scaled by total entries.
	totalRS := float64(cfg.ResvBR + cfg.ResvFX + cfg.ResvFP)
	b.IssueQ = perSec(float64(act.Issued) * iqBase * iqScale * (totalRS / 39) * widthF(iqWidthExp))

	// Functional units: per-operation energies.
	b.FuncUnits = perSec(float64(act.Int)*fuInt + float64(act.FP)*fuFP +
		float64(act.Load+act.Store)*fuLS + float64(act.Branch)*fuBranch)

	// Load/store queue search.
	b.LSQ = perSec(float64(act.Load+act.Store) * lsqBase *
		(float64(cfg.LSQ+cfg.SQ) / 58) * widthF(0.5))

	// Branch predictor.
	b.Predictor = perSec(float64(act.BranchLookups) * bhtEnergy)

	// Caches.
	b.IL1 = perSec(float64(act.IL1Access) * cacheScale * cacti.EnergyPerAccessNJ(cfg.IL1KB, sim.IL1Assoc))
	b.DL1 = perSec(float64(act.DL1Access) * cacheScale * cacti.EnergyPerAccessNJ(cfg.DL1KB, sim.EffectiveDL1Assoc(cfg)))
	b.L2 = perSec(float64(act.L2Access) * cacheScale * cacti.EnergyPerAccessNJ(cfg.L2KB, sim.L2Assoc))
	b.Memory = perSec(float64(act.MemAccess) * memEnergy)

	// Clock and latches: proportional to stage count, width and
	// frequency; partially gated by utilization.
	util := res.IPC / float64(cfg.Width)
	if util > 1 {
		util = 1
	}
	gating := clockUngated + (1-clockUngated)*util
	b.Clock = clockCoeff * float64(res.Params.Stages) *
		math.Pow(float64(cfg.Width), clockWidthExp) * res.Params.FreqGHz * gating

	// Leakage.
	b.Leakage = leakCore +
		leakPerReg*totalRegs +
		leakPerQueue*(totalRS+float64(cfg.LSQ+cfg.SQ)) +
		leakPerFU*float64(4*cfg.FUPerKind) +
		cacti.LeakageW(cfg.IL1KB) + cacti.LeakageW(cfg.DL1KB) + cacti.LeakageW(cfg.L2KB)

	return b
}

// Watts is a convenience returning only the total.
func Watts(res *sim.Result) float64 { return Estimate(res).Total() }
