package cacti

import (
	"testing"
	"testing/quick"
)

func TestAccessTimeMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		ns := AccessTimeNS(kb, 2)
		if ns <= prev {
			t.Fatalf("access time not increasing at %d KB: %v <= %v", kb, ns, prev)
		}
		prev = ns
	}
}

func TestAccessTimeCalibration(t *testing.T) {
	// Table 3 anchors: a 32 KB 2-way L1 should hit in one ~0.76 ns cycle
	// (19 FO4 at 40 ps/FO4); a 2 MB 4-way L2 in roughly 9 cycles.
	period := 0.76
	l1 := CyclesAt(AccessTimeNS(32, 2), period)
	if l1 != 1 {
		t.Fatalf("32KB L1 latency = %d cycles at 19FO4, want 1", l1)
	}
	l2 := CyclesAt(AccessTimeNS(2048, 4), period)
	if l2 < 7 || l2 > 12 {
		t.Fatalf("2MB L2 latency = %d cycles at 19FO4, want ~9", l2)
	}
}

func TestAccessTimeAssocPenalty(t *testing.T) {
	if AccessTimeNS(64, 4) <= AccessTimeNS(64, 1) {
		t.Fatal("higher associativity should cost latency")
	}
}

func TestEnergyMonotone(t *testing.T) {
	if EnergyPerAccessNJ(2048, 4) <= EnergyPerAccessNJ(32, 4) {
		t.Fatal("bigger cache should cost more energy per access")
	}
	if EnergyPerAccessNJ(64, 4) <= EnergyPerAccessNJ(64, 1) {
		t.Fatal("higher associativity should cost more energy")
	}
}

func TestEnergySublinear(t *testing.T) {
	// Doubling capacity should less than double access energy.
	e1 := EnergyPerAccessNJ(256, 2)
	e2 := EnergyPerAccessNJ(512, 2)
	if e2 >= 2*e1 {
		t.Fatalf("energy superlinear: %v -> %v", e1, e2)
	}
}

func TestLeakageLinear(t *testing.T) {
	if LeakageW(64) != 2*LeakageW(32) {
		t.Fatal("leakage should be linear in capacity")
	}
}

func TestAreaGrows(t *testing.T) {
	if AreaMM2(128) <= AreaMM2(16) {
		t.Fatal("area should grow with capacity")
	}
}

func TestCyclesAtFloor(t *testing.T) {
	if CyclesAt(0.1, 1.0) != 1 {
		t.Fatal("cycle floor of 1 violated")
	}
	if CyclesAt(2.5, 1.0) != 3 {
		t.Fatal("ceil conversion wrong")
	}
	if CyclesAt(2.0, 1.0) != 2 {
		t.Fatal("exact conversion wrong")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { AccessTimeNS(0, 1) },
		func() { AccessTimeNS(32, 0) },
		func() { EnergyPerAccessNJ(-1, 1) },
		func() { LeakageW(0) },
		func() { AreaMM2(0) },
		func() { CyclesAt(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: cycle latency never decreases as frequency rises (period
// shrinks), the mechanism behind the paper's depth-cache interaction.
func TestQuickCyclesMonotoneInFrequency(t *testing.T) {
	f := func(kbRaw, fo4Raw uint8) bool {
		kb := 8 << (kbRaw % 10) // 8..4096
		fo4a := 9 + int(fo4Raw%10)*3
		fo4b := fo4a + 3
		ns := AccessTimeNS(kb, 2)
		fast := CyclesAt(ns, float64(fo4a)*0.040)
		slow := CyclesAt(ns, float64(fo4b)*0.040)
		return fast >= slow && slow >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
