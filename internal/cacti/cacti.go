// Package cacti provides an analytic cache timing, power and area model
// in the spirit of CACTI (Shivakumar & Jouppi), which the paper uses to
// scale cache latency and power with array size. The constants are
// calibrated to 130 nm-era publications so that a 32 KB L1 hits in about
// one 1.3 GHz cycle and a 2 MB L2 in roughly nine (the paper's Table 3),
// with access energy growing sublinearly and leakage linearly in capacity.
// Absolute values are less important than the shape: larger caches are
// slower and hungrier, and latency measured in cycles grows with clock
// frequency, creating the depth-cache interactions the regression models
// must capture.
package cacti

import (
	"fmt"
	"math"
)

// AccessTimeNS returns the access latency of a cache array in
// nanoseconds. Latency grows logarithmically with capacity (decoder
// depth) plus a linear term for wire delay across the array, plus a small
// comparator cost per way.
func AccessTimeNS(sizeKB, assoc int) float64 {
	mustPositive(sizeKB, assoc)
	kb := float64(sizeKB)
	return 0.12 + 0.10*math.Log2(kb) + 0.003*kb + 0.02*float64(assoc-1)
}

// EnergyPerAccessNJ returns the dynamic energy of one access in
// nanojoules. Energy grows sublinearly with capacity (only one subarray
// switches) and mildly with associativity (parallel tag compares).
func EnergyPerAccessNJ(sizeKB, assoc int) float64 {
	mustPositive(sizeKB, assoc)
	kb := float64(sizeKB)
	return 0.02 + 0.010*math.Pow(kb, 0.55)*(1+0.05*float64(assoc-1))
}

// LeakageW returns the static power of the array in watts. Leakage is
// proportional to the number of cells.
func LeakageW(sizeKB int) float64 {
	if sizeKB <= 0 {
		panic(fmt.Sprintf("cacti: size %d KB must be positive", sizeKB))
	}
	return 0.001 * float64(sizeKB)
}

// AreaMM2 returns the die area of the array in square millimeters,
// slightly sublinear in capacity as peripheral overheads amortize.
func AreaMM2(sizeKB int) float64 {
	if sizeKB <= 0 {
		panic(fmt.Sprintf("cacti: size %d KB must be positive", sizeKB))
	}
	return 0.03 * math.Pow(float64(sizeKB), 0.95)
}

// CyclesAt converts an access time in nanoseconds to pipeline cycles at
// the given clock period, with a floor of one cycle.
func CyclesAt(accessNS, periodNS float64) int {
	if periodNS <= 0 {
		panic(fmt.Sprintf("cacti: period %v must be positive", periodNS))
	}
	c := int(math.Ceil(accessNS / periodNS))
	if c < 1 {
		c = 1
	}
	return c
}

func mustPositive(sizeKB, assoc int) {
	if sizeKB <= 0 {
		panic(fmt.Sprintf("cacti: size %d KB must be positive", sizeKB))
	}
	if assoc <= 0 {
		panic(fmt.Sprintf("cacti: associativity %d must be positive", assoc))
	}
}
