package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/fault"
)

// BeaconVersion is the beacon file format version; DecodeBeacon rejects
// anything else.
const BeaconVersion = 1

// MaxBeaconBytes bounds an on-disk beacon. Real beacons are well under
// 300 bytes; anything larger is corruption, and bounding the read keeps
// a hostile or trashed file from ballooning the monitor.
const MaxBeaconBytes = 4096

// maxBeaconName bounds the free-form string fields.
const maxBeaconName = 64

// Beacon is one worker's progress heartbeat — the liveness half of the
// distributed-run story. A worker that crashes is caught by process
// exit, but a worker that hangs (NFS stall, livelock, an injected
// KindHang) exits nothing, so each worker publishes a beacon through
// atomicio at every checkpoint chunk and the coordinator's monitor
// declares it stuck when the beacon's *content* stops changing for
// longer than the stall timeout. Staleness is clocked by the monitor's
// own local monotonic clock, never the beacon's wall timestamp, so
// clock skew between machines cannot fake or mask a stall.
//
// Cursor is the absolute design-space index the worker has completed
// through within [Lo, Hi); Seq increases on every write and survives
// restarts (a resumed attempt continues its predecessor's sequence), so
// any content change — even a rewrite of the same cursor — counts as
// progress.
type Beacon struct {
	Version int    `json:"version"`
	Domain  string `json:"domain"` // "sweep" or "dataset"
	Index   int    `json:"index"`  // shard index, 0-based
	Count   int    `json:"count"`  // total shards
	Bench   string `json:"bench,omitempty"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Cursor  int    `json:"cursor"`
	Seq     int64  `json:"seq"`
	Time    int64  `json:"time_unix_nano"` // informational only; never used for staleness
	PID     int    `json:"pid"`
}

// Progressed reports whether b shows progress over prev — any content
// change the monitor should treat as a sign of life.
func (b Beacon) Progressed(prev Beacon) bool {
	return b.Seq != prev.Seq || b.Cursor != prev.Cursor || b.Bench != prev.Bench
}

// BeaconPath names the beacon file for shard i of n in a domain, in the
// same directory as the shard's checkpoints.
func BeaconPath(dir, domain string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("beacon-%s-%dof%d.json", domain, i, n))
}

// validate rejects beacons no writer of ours could have produced.
func (b Beacon) validate() error {
	switch {
	case b.Version != BeaconVersion:
		return fmt.Errorf("shard: beacon version %d, want %d", b.Version, BeaconVersion)
	case b.Domain == "" || len(b.Domain) > maxBeaconName:
		return fmt.Errorf("shard: beacon domain %q out of range", b.Domain)
	case len(b.Bench) > maxBeaconName:
		return fmt.Errorf("shard: beacon bench name too long (%d bytes)", len(b.Bench))
	case b.Count <= 0 || b.Index < 0 || b.Index >= b.Count:
		return fmt.Errorf("shard: beacon shard %d/%d out of range", b.Index, b.Count)
	case b.Lo < 0 || b.Hi < b.Lo:
		return fmt.Errorf("shard: beacon range [%d,%d) invalid", b.Lo, b.Hi)
	case b.Cursor < b.Lo || b.Cursor > b.Hi:
		return fmt.Errorf("shard: beacon cursor %d outside [%d,%d]", b.Cursor, b.Lo, b.Hi)
	case b.Seq < 0:
		return fmt.Errorf("shard: beacon sequence %d negative", b.Seq)
	case b.PID < 0:
		return fmt.Errorf("shard: beacon pid %d negative", b.PID)
	}
	return nil
}

// EncodeBeacon validates and serializes a beacon.
func EncodeBeacon(b Beacon) ([]byte, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(b)
}

// DecodeBeacon parses and validates beacon bytes. It never panics on
// hostile input (see FuzzReadBeacon) and any beacon it accepts
// round-trips through EncodeBeacon to an equal struct.
func DecodeBeacon(data []byte) (Beacon, error) {
	var b Beacon
	if len(data) > MaxBeaconBytes {
		return b, fmt.Errorf("shard: beacon is %d bytes, max %d", len(data), MaxBeaconBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Beacon{}, fmt.Errorf("shard: decoding beacon: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Beacon{}, fmt.Errorf("shard: trailing data after beacon")
	}
	if err := b.validate(); err != nil {
		return Beacon{}, err
	}
	return b, nil
}

// WriteBeacon atomically publishes a beacon. The "shard.beacon" fault
// site makes heartbeat publication itself injectable — a worker whose
// beacon write fails must fail loudly (and be restarted) rather than
// run on invisibly, since an unwatchable worker is indistinguishable
// from a stuck one.
func WriteBeacon(path string, b Beacon) error {
	if err := fault.Here("shard.beacon"); err != nil {
		return fmt.Errorf("shard: writing beacon: %w", err)
	}
	data, err := EncodeBeacon(b)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// ReadBeacon loads and validates the beacon at path.
func ReadBeacon(path string) (Beacon, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Beacon{}, err
	}
	return DecodeBeacon(data)
}
