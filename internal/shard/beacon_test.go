package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func validBeacon() Beacon {
	return Beacon{
		Version: BeaconVersion,
		Domain:  "sweep",
		Index:   1,
		Count:   4,
		Bench:   "gzip",
		Lo:      1000,
		Hi:      2000,
		Cursor:  1500,
		Seq:     7,
		Time:    1754000000000000000,
		PID:     4242,
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := validBeacon()
	path := BeaconPath(dir, b.Domain, b.Index, b.Count)
	if err := WriteBeacon(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBeacon(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip changed beacon:\n got %+v\nwant %+v", got, b)
	}
}

func TestBeaconPathNames(t *testing.T) {
	got := BeaconPath("ckpts", "sweep", 2, 8)
	want := filepath.Join("ckpts", "beacon-sweep-2of8.json")
	if got != want {
		t.Fatalf("BeaconPath = %q, want %q", got, want)
	}
}

func TestDecodeBeaconRejectsInvalid(t *testing.T) {
	// Bypass EncodeBeacon's validation by marshaling directly, so the
	// decoder is what rejects the damage.
	mut := func(f func(*Beacon)) []byte {
		b := validBeacon()
		f(&b)
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	cases := map[string][]byte{
		"wrong version":   mut(func(b *Beacon) { b.Version = 2 }),
		"empty domain":    mut(func(b *Beacon) { b.Domain = "" }),
		"long domain":     mut(func(b *Beacon) { b.Domain = strings.Repeat("d", 65) }),
		"long bench":      mut(func(b *Beacon) { b.Bench = strings.Repeat("b", 65) }),
		"zero count":      mut(func(b *Beacon) { b.Count = 0 }),
		"index past n":    mut(func(b *Beacon) { b.Index = 4 }),
		"inverted range":  mut(func(b *Beacon) { b.Lo, b.Hi = 2000, 1000; b.Cursor = 2000 }),
		"cursor below lo": mut(func(b *Beacon) { b.Cursor = 999 }),
		"cursor past hi":  mut(func(b *Beacon) { b.Cursor = 2001 }),
		"negative seq":    mut(func(b *Beacon) { b.Seq = -1 }),
		"negative pid":    mut(func(b *Beacon) { b.PID = -1 }),
		"trailing junk":   append(mustEncode(t, validBeacon()), []byte("{}")...),
		"unknown field":   []byte(`{"version":1,"domain":"sweep","index":0,"count":1,"lo":0,"hi":1,"cursor":0,"seq":0,"time_unix_nano":0,"pid":1,"extra":true}`),
		"oversized":       append(mustEncode(t, validBeacon()), make([]byte, MaxBeaconBytes)...),
		"not json":        []byte("beacon?"),
	}
	for name, data := range cases {
		if _, err := DecodeBeacon(data); err == nil {
			t.Errorf("%s: DecodeBeacon accepted %q", name, data)
		}
	}
}

func mustEncode(t *testing.T, b Beacon) []byte {
	t.Helper()
	data, err := EncodeBeacon(b)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestProgressed(t *testing.T) {
	b := validBeacon()
	if b.Progressed(b) {
		t.Fatal("identical beacon counted as progress")
	}
	for name, f := range map[string]func(*Beacon){
		"seq":    func(n *Beacon) { n.Seq++ },
		"cursor": func(n *Beacon) { n.Cursor++ },
		"bench":  func(n *Beacon) { n.Bench = "mcf" },
	} {
		next := b
		f(&next)
		if !next.Progressed(b) {
			t.Errorf("%s change not counted as progress", name)
		}
	}
	// A wall-timestamp-only change is NOT progress: staleness must come
	// from content the worker can only produce by doing work, and Seq
	// already covers "alive but same cursor" rewrites.
	next := b
	next.Time++
	if next.Progressed(b) {
		t.Fatal("timestamp-only change counted as progress")
	}
}

func TestWriteBeaconFaultSite(t *testing.T) {
	prev := fault.Current()
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "shard.beacon", Kind: fault.KindFatal, Every: 1, Count: 1},
	}})
	t.Cleanup(func() { fault.Enable(prev) })

	path := filepath.Join(t.TempDir(), "b.json")
	if err := WriteBeacon(path, validBeacon()); err == nil {
		t.Fatal("injected beacon-write fault was swallowed")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed beacon write left a file behind")
	}
	// The count=1 rule is spent; the next write succeeds.
	if err := WriteBeacon(path, validBeacon()); err != nil {
		t.Fatal(err)
	}
}
