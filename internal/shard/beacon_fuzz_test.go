package shard

import (
	"testing"
)

// FuzzReadBeacon throws arbitrary bytes at the beacon decoder,
// mirroring FuzzReadTrace's invariants: DecodeBeacon never panics,
// never accepts a beacon outside the format's sanity bounds, and
// anything it accepts survives an encode/decode round trip to an equal
// struct (so the monitor can never observe a beacon the writer could
// not have produced).
func FuzzReadBeacon(f *testing.F) {
	good, err := EncodeBeacon(validBeacon())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	tampered := append([]byte{}, good...)
	tampered[len(tampered)/2] ^= 0x40
	f.Add(tampered)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"domain":"d","index":0,"count":1,"lo":0,"hi":0,"cursor":0,"seq":0,"time_unix_nano":0,"pid":0}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBeacon(data)
		if err != nil {
			return
		}
		if b.Version != BeaconVersion || b.Domain == "" || len(b.Domain) > 64 ||
			b.Count <= 0 || b.Index < 0 || b.Index >= b.Count ||
			b.Cursor < b.Lo || b.Cursor > b.Hi || b.Seq < 0 {
			t.Fatalf("accepted out-of-bounds beacon %+v", b)
		}
		reencoded, err := EncodeBeacon(b)
		if err != nil {
			t.Fatalf("re-encoding accepted beacon: %v", err)
		}
		again, err := DecodeBeacon(reencoded)
		if err != nil {
			t.Fatalf("re-reading re-encoded beacon: %v", err)
		}
		if again != b {
			t.Fatalf("round trip changed beacon:\n got %+v\nwant %+v", again, b)
		}
	})
}
