package shard

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
)

// TestOfCoversDomain checks that Plan tiles [0, total) exactly for a
// spread of domain sizes and shard counts, including n > total (empty
// shards) and uneven remainders.
func TestOfCoversDomain(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 100, 262500, 375000} {
		for _, n := range []int{1, 2, 3, 4, 7, 13, 64, 262501} {
			ranges := Plan(total, n)
			cursor := 0
			minLen, maxLen := total+1, -1
			for i, r := range ranges {
				if r.Lo != cursor {
					t.Fatalf("Plan(%d,%d) shard %d starts at %d, want %d", total, n, i, r.Lo, cursor)
				}
				if r.Len() < 0 {
					t.Fatalf("Plan(%d,%d) shard %d has negative length", total, n, i)
				}
				cursor = r.Hi
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
			}
			if cursor != total {
				t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", total, n, cursor, total)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("Plan(%d,%d) shard sizes range %d..%d, want spread <= 1", total, n, minLen, maxLen)
			}
		}
	}
}

// TestOfMoreShardsThanWork pins the n > total case: every index still
// lands somewhere and the surplus shards are empty, not invalid.
func TestOfMoreShardsThanWork(t *testing.T) {
	ranges := Plan(3, 5)
	nonEmpty := 0
	for _, r := range ranges {
		if !r.IsEmpty() {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("Plan(3,5): %d non-empty shards, want 3 (%v)", nonEmpty, ranges)
	}
}

// TestOfUnevenRemainder pins the remainder distribution: 10 indices
// over 4 shards must split 2/3/2/3 (the i*total/n rule), never 3/3/3/1.
func TestOfUnevenRemainder(t *testing.T) {
	got := Plan(10, 4)
	want := []Range{{0, 2}, {2, 5}, {5, 7}, {7, 10}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Plan(10,4) = %v, want %v", got, want)
		}
	}
}

func TestOfPanicsOnBadSpec(t *testing.T) {
	for _, bad := range []struct{ total, i, n int }{
		{-1, 0, 1}, {10, -1, 2}, {10, 2, 2}, {10, 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Of(%d,%d,%d) did not panic", bad.total, bad.i, bad.n)
				}
			}()
			Of(bad.total, bad.i, bad.n)
		}()
	}
}

// TestPlanAligned checks that interior boundaries are multiples of the
// alignment, coverage stays exact, and the unaligned tail still lands
// in the last shard.
func TestPlanAligned(t *testing.T) {
	for _, tc := range []struct{ total, n, align int }{
		{262500, 4, 3750}, // the study space over 4 sweep shards
		{262500, 7, 3750}, // shard count matching the depth levels
		{10000, 3, 512},   // tail not a multiple of align
		{100, 64, 64},     // heavy snapping: most shards empty
	} {
		ranges := PlanAligned(tc.total, tc.n, tc.align)
		cursor := 0
		for i, r := range ranges {
			if r.Lo != cursor {
				t.Fatalf("PlanAligned(%v) shard %d starts at %d, want %d", tc, i, r.Lo, cursor)
			}
			if r.Lo != 0 && r.Lo%tc.align != 0 {
				t.Fatalf("PlanAligned(%v) shard %d boundary %d not aligned", tc, i, r.Lo)
			}
			cursor = r.Hi
		}
		if cursor != tc.total {
			t.Fatalf("PlanAligned(%v) covers [0,%d)", tc, cursor)
		}
	}
}

func TestParseSpec(t *testing.T) {
	i, n, err := ParseSpec("2/4")
	if err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseSpec(2/4) = %d,%d,%v", i, n, err)
	}
	for _, bad := range []string{"", "3", "a/b", "4/4", "-1/4", "0/0", "1/-2"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSegments(t *testing.T) {
	groups := []string{"gzip", "mcf", "twolf"}
	// Range spanning the tail of gzip, all of mcf, the head of twolf.
	got := Segments(groups, 10, Range{Lo: 7, Hi: 23})
	want := []Segment{{"gzip", 0, 7, 10}, {"mcf", 1, 0, 10}, {"twolf", 2, 0, 3}}
	if len(got) != len(want) {
		t.Fatalf("Segments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", got, want)
		}
	}
	if s := Segments(groups, 10, Range{Lo: 5, Hi: 5}); s != nil {
		t.Fatalf("empty range yielded %v", s)
	}
}

func TestMergeColumns(t *testing.T) {
	mk := func(lo, hi int) Piece {
		p := Piece{Lo: lo, Hi: hi, BIPS: make([]float64, hi-lo), Watts: make([]float64, hi-lo)}
		for i := range p.BIPS {
			p.BIPS[i] = float64(lo + i)
			p.Watts[i] = float64(lo+i) * 2
		}
		return p
	}
	// Out-of-order pieces with an empty one merge to identity columns.
	bips, watts, err := MergeColumns(10, []Piece{mk(4, 10), mk(0, 4), mk(7, 7)})
	if err != nil {
		t.Fatalf("MergeColumns: %v", err)
	}
	for i := 0; i < 10; i++ {
		if bips[i] != float64(i) || watts[i] != float64(i)*2 {
			t.Fatalf("merged[%d] = %g/%g", i, bips[i], watts[i])
		}
	}

	for _, tc := range []struct {
		name   string
		pieces []Piece
		want   error
	}{
		{"gap", []Piece{mk(0, 4), mk(5, 10)}, ErrCoverage},
		{"overlap", []Piece{mk(0, 6), mk(4, 10)}, ErrCoverage},
		{"short", []Piece{mk(0, 4), mk(4, 9)}, ErrCoverage},
		{"outside", []Piece{mk(0, 11)}, ErrCoverage},
		{"shape", []Piece{{Lo: 0, Hi: 10, BIPS: make([]float64, 9), Watts: make([]float64, 10)}}, ErrShape},
	} {
		if _, _, err := MergeColumns(10, tc.pieces); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestIdentityMismatchRejected pins the contract the whole layer leans
// on: a checkpoint written under one shard identity cannot be loaded
// under another — wrong shard index, wrong shard count, or wrong domain
// fingerprint all fail with ckpt.ErrIdentity, the typed refusal.
func TestIdentityMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ckpt")
	id := ID{Domain: "sweep", Space: 0xabcdef, Index: 0, Count: 4}
	payload := map[string]int{"completed": 7}
	if err := ckpt.Save(path, "run;"+id.String(), payload); err != nil {
		t.Fatalf("save: %v", err)
	}

	var out map[string]int
	if err := ckpt.Load(path, "run;"+id.String(), &out); err != nil {
		t.Fatalf("load with matching identity: %v", err)
	}

	for _, wrong := range []ID{
		{Domain: "sweep", Space: 0xabcdef, Index: 1, Count: 4},   // other shard
		{Domain: "sweep", Space: 0xabcdef, Index: 0, Count: 8},   // other partition
		{Domain: "sweep", Space: 0x123456, Index: 0, Count: 4},   // other space
		{Domain: "dataset", Space: 0xabcdef, Index: 0, Count: 4}, // other domain
	} {
		err := ckpt.Load(path, "run;"+wrong.String(), &out)
		if !errors.Is(err, ckpt.ErrIdentity) {
			t.Errorf("load as %v: err = %v, want ckpt.ErrIdentity", wrong, err)
		}
	}
}
