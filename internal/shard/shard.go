// Package shard partitions the repository's two long-pole work domains —
// exhaustive sweep point ranges and dataset-build (benchmark ×
// config-index) ranges — into deterministic contiguous shards that
// independent processes compute and a coordinator merges back into
// byte-identical single-process results.
//
// The partition is pure arithmetic: shard i of n over a domain of size
// total owns the half-open range [i*total/n, (i+1)*total/n), so every
// process — workers, the merger, tests — derives the same handout from
// (total, i, n) alone, with no shard table to distribute or keep
// consistent. PlanAligned additionally snaps interior cut points down to
// a stride (the sweep tile size, which divides arch.Space.DepthBlock
// blocks evenly), so sweep shards never split a worker tile or a depth
// block. Each shard's checkpoint is keyed by an ID string that bakes in
// the domain fingerprint and i/n, so internal/ckpt refuses to resume a
// shard file written for a different partition or space.
package shard

import (
	"errors"
	"fmt"
	"sort"
)

// Range is a half-open interval [Lo, Hi) of flat work indices.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// IsEmpty reports whether the range holds no work.
func (r Range) IsEmpty() bool { return r.Hi <= r.Lo }

// String renders the range as "[lo,hi)".
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Of returns shard i of n over a domain of total indices: the half-open
// range [i*total/n, (i+1)*total/n). Shard sizes differ by at most one,
// every index belongs to exactly one shard, and shards are ordered: all
// of shard i precedes all of shard i+1. When n exceeds total, the last
// n-total shards are empty — still valid shards, with nothing to do.
// It panics when total is negative or i/n is not a valid shard spec.
func Of(total, i, n int) Range {
	if total < 0 {
		panic(fmt.Sprintf("shard: negative domain size %d", total))
	}
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("shard: invalid shard %d/%d", i, n))
	}
	return Range{Lo: i * total / n, Hi: (i + 1) * total / n}
}

// Plan returns all n shards of Of in order.
func Plan(total, n int) []Range {
	out := make([]Range, n)
	for i := range out {
		out[i] = Of(total, i, n)
	}
	return out
}

// OfAligned returns shard i of n over total indices with every interior
// cut point snapped down to a multiple of align, so no shard boundary
// falls inside an align-sized block. The first shard always starts at 0
// and the last always ends at total (which need not be a multiple of
// align — the final shard absorbs the tail). Snapping can empty a shard
// when n*align exceeds total; empty shards are valid and own no work.
func OfAligned(total, i, n, align int) Range {
	if align <= 0 {
		panic(fmt.Sprintf("shard: non-positive alignment %d", align))
	}
	r := Of(total, i, n)
	if r.Lo != 0 {
		r.Lo = r.Lo / align * align
	}
	if r.Hi != total {
		r.Hi = r.Hi / align * align
	}
	return r
}

// PlanAligned returns all n shards of OfAligned in order.
func PlanAligned(total, n, align int) []Range {
	out := make([]Range, n)
	for i := range out {
		out[i] = OfAligned(total, i, n, align)
	}
	return out
}

// ParseSpec parses a "i/n" shard specification (as passed to
// `dse -shard`), requiring 0 <= i < n.
func ParseSpec(spec string) (i, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("shard: spec %q is not of the form i/n", spec)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("shard: spec %q needs 0 <= i < n", spec)
	}
	return i, n, nil
}

// ID names one shard of a work domain. Its String form is appended to
// the run identity when keying internal/ckpt envelopes, so a shard file
// can only resume the same shard of the same partition over the same
// domain: restore a 0/4 file into a 0/8 run (or into a different design
// space) and ckpt.Load fails with ErrIdentity instead of silently
// merging mismatched ranges.
type ID struct {
	Domain string // work-domain name, e.g. "sweep" or "dataset"
	Space  uint64 // fingerprint of the domain (space hash, sample-set hash)
	Index  int    // shard index in [0, Count)
	Count  int    // total shards in the partition
}

// String renders the identity fragment, e.g.
// "domain=sweep;space=00c0ffee00c0ffee;shard=0/4".
func (id ID) String() string {
	return fmt.Sprintf("domain=%s;space=%016x;shard=%d/%d",
		id.Domain, id.Space, id.Index, id.Count)
}

// Segment is the part of a shard's flat range that falls inside one
// group of a grouped domain (one benchmark of a bench-major dataset
// build): indices [Lo, Hi) within that group.
type Segment struct {
	Group string
	Index int // position of the group in the domain's group list
	Lo    int // index within the group
	Hi    int
}

// Segments splits a flat range over a bench-major domain — group g owns
// flat indices [g*groupSize, (g+1)*groupSize) — into per-group
// sub-ranges, in group order. Groups the range never touches are
// omitted; an empty range yields nil.
func Segments(groups []string, groupSize int, r Range) []Segment {
	if groupSize <= 0 {
		panic(fmt.Sprintf("shard: non-positive group size %d", groupSize))
	}
	var out []Segment
	for g, name := range groups {
		base := g * groupSize
		lo, hi := r.Lo-base, r.Hi-base
		if lo < 0 {
			lo = 0
		}
		if hi > groupSize {
			hi = groupSize
		}
		if lo < hi {
			out = append(out, Segment{Group: name, Index: g, Lo: lo, Hi: hi})
		}
	}
	return out
}

// Merge errors. ErrCoverage means the pieces do not tile the domain
// exactly (a gap, an overlap, or a piece outside [0, total)); ErrShape
// means a piece's column lengths disagree with its declared range.
var (
	ErrCoverage = errors.New("shard: pieces do not tile the domain exactly")
	ErrShape    = errors.New("shard: piece columns do not match its range")
)

// Piece is one shard's contribution to a merged column pair: the
// response values for flat indices [Lo, Hi).
type Piece struct {
	Lo, Hi      int
	BIPS, Watts []float64
}

// MergeColumns reassembles per-shard column pieces into full-domain
// columns, verifying that the pieces tile [0, total) exactly — every
// index covered once, no gaps, no overlaps — and that each piece's
// column lengths match its range. The merge is pure placement: values
// are copied to their absolute indices, so the result is byte-identical
// to a single process computing the whole domain, whatever order the
// pieces arrive in. Empty pieces are permitted and contribute nothing.
func MergeColumns(total int, pieces []Piece) (bips, watts []float64, err error) {
	ordered := make([]Piece, 0, len(pieces))
	for _, p := range pieces {
		if p.Lo > p.Hi || p.Lo < 0 || p.Hi > total {
			return nil, nil, fmt.Errorf("%w: piece [%d,%d) outside [0,%d)", ErrCoverage, p.Lo, p.Hi, total)
		}
		if len(p.BIPS) != p.Hi-p.Lo || len(p.Watts) != p.Hi-p.Lo {
			return nil, nil, fmt.Errorf("%w: piece [%d,%d) carries %d/%d values",
				ErrShape, p.Lo, p.Hi, len(p.BIPS), len(p.Watts))
		}
		if p.Lo < p.Hi {
			ordered = append(ordered, p)
		}
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Lo < ordered[b].Lo })
	cursor := 0
	for _, p := range ordered {
		if p.Lo != cursor {
			return nil, nil, fmt.Errorf("%w: index %d expected, piece starts at %d", ErrCoverage, cursor, p.Lo)
		}
		cursor = p.Hi
	}
	if cursor != total {
		return nil, nil, fmt.Errorf("%w: coverage ends at %d of %d", ErrCoverage, cursor, total)
	}
	bips = make([]float64, total)
	watts = make([]float64, total)
	for _, p := range ordered {
		copy(bips[p.Lo:p.Hi], p.BIPS)
		copy(watts[p.Lo:p.Hi], p.Watts)
	}
	return bips, watts, nil
}
