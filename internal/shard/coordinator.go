package shard

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Coordinator observability instruments; they flow into run manifests
// like every obs counter.
var (
	workersLaunchedCtr = obs.DefaultRegistry.Counter("shard.workers_launched")
	workerRestartsCtr  = obs.DefaultRegistry.Counter("shard.worker_restarts")
	workerFailuresCtr  = obs.DefaultRegistry.Counter("shard.worker_failures")
	workersStalledCtr  = obs.DefaultRegistry.Counter("shard.workers_stalled")
	specLaunchesCtr    = obs.DefaultRegistry.Counter("shard.speculative_launches")
	specWinsCtr        = obs.DefaultRegistry.Counter("shard.speculative_wins")
)

// DefaultRetries is how many times a coordinator restarts a failed
// worker before giving up on its shard. Because workers checkpoint and
// restart with resume enabled, each attempt begins where the previous
// one died rather than redoing the shard.
const DefaultRetries = 2

// DefaultStallRestarts bounds restarts of stalled workers, separately
// from crash Retries and more generously: a stall-kill resumes from the
// worker's checkpoint, so even a fault that re-hangs every attempt
// makes forward progress chunk by chunk, and a small crash budget would
// declare such a shard dead when it is actually converging. The bound
// exists for workers that hang before their first beacon, which would
// otherwise loop forever.
const DefaultStallRestarts = 8

// ErrStalled marks a worker killed by the liveness monitor: its process
// was alive but its beacon showed no progress for the stall timeout.
var ErrStalled = errors.New("worker stalled")

// EventKind classifies a coordinator Event.
type EventKind int

// Coordinator event kinds.
const (
	EventStart       EventKind = iota // a worker attempt launched
	EventExit                         // a worker attempt exited cleanly
	EventRestart                      // a worker attempt failed; relaunching
	EventFail                         // a shard exhausted its retries
	EventStalled                      // the monitor killed a worker for lack of beacon progress
	EventSpeculative                  // a backup attempt launched for a tail straggler
)

// Event is one coordinator lifecycle notification, delivered to the
// OnEvent hook as it happens — the per-shard progress stream.
type Event struct {
	Kind    EventKind
	Shard   int           // shard index
	Attempt int           // 1-based attempt number
	Elapsed time.Duration // attempt duration (all kinds but EventStart)
	Err     error         // failure cause (EventRestart/EventFail/EventStalled)
}

// Worker is the final per-shard record a coordinator run reports:
// how many attempts the shard took, how long they ran in total, how
// often the monitor had to intervene, and whether it completed.
type Worker struct {
	Shard      int
	Attempts   int
	Stalls     int  // stall-kills by the liveness monitor
	Speculated bool // a backup attempt was launched for this shard
	SpecWon    bool // ... and it finished first
	Elapsed    time.Duration
	Err        error // nil when the shard completed
}

// Coordinator forks one OS process per shard, restarts failed workers
// (each restart resumes from the worker's own checkpoint — the command
// constructor must arm resume), and joins them. It owns no work itself:
// partitioning is Of's arithmetic and merging is the caller's, so the
// coordinator is pure process supervision.
//
// With StallTimeout set it also supervises liveness: a monitor
// goroutine per attempt watches the worker's beacon file and kills the
// process when the beacon's content stops changing for the timeout —
// catching hangs, which never surface as an exit. Staleness is measured
// on the coordinator's local monotonic clock from the moment a content
// change is observed; the beacon's own wall timestamp is never
// consulted, so worker-side clock skew is harmless. With SpecCommand
// also set, the monitor additionally projects tail stragglers: when all
// but SpecTail shards are done and a live worker's observed progress
// rate projects its remaining range past the stall timeout, a backup
// attempt is launched on the same range and whichever finishes first
// wins (the loser is killed). Checkpoint identity keying makes both
// attempts' outputs interchangeable, so the merged result stays
// bit-identical either way.
type Coordinator struct {
	// N is the shard count; one worker process per shard.
	N int
	// Command builds the process for one attempt at shard i of n. It is
	// called for restarts too, so it must produce a fresh exec.Cmd each
	// time (a Cmd cannot be started twice).
	Command func(i, n int) *exec.Cmd
	// Retries is how many restarts a crashed shard gets; negative means
	// none, zero means DefaultRetries.
	Retries int
	// OnEvent, when non-nil, receives lifecycle events. Calls are
	// serialized; the hook must not block for long.
	OnEvent func(Event)

	// StallTimeout enables liveness supervision: a worker whose beacon
	// content does not change for this long is killed and restarted
	// with resume. Zero disables monitoring. It must comfortably exceed
	// the longest legitimate gap between beacon writes (worker startup
	// plus one checkpoint chunk), or healthy workers get killed.
	StallTimeout time.Duration
	// BeaconPath names the beacon file for shard i of n; required when
	// StallTimeout is set.
	BeaconPath func(i, n int) string
	// PollInterval is how often the monitor re-reads beacons. Zero
	// defaults to StallTimeout/4, clamped to [10ms, 1s].
	PollInterval time.Duration
	// StallRestarts is how many stall-kills a shard gets before the
	// coordinator gives up on it; negative means none, zero means
	// DefaultStallRestarts. It is budgeted separately from Retries
	// because stall restarts resume from checkpoints and so converge.
	StallRestarts int

	// SpecCommand, when non-nil, enables speculative re-execution of
	// tail stragglers and builds the backup process for shard i of n.
	// The backup must write its outputs under names of its own (a shard
	// suffix) so the two attempts never race on files; OnSpecWin
	// promotes the backup's outputs when it wins. Requires StallTimeout.
	SpecCommand func(i, n int) *exec.Cmd
	// SpecTail is how many unfinished shards count as "the tail"; a
	// backup launches only when at most SpecTail shards remain. Zero
	// defaults to 1.
	SpecTail int
	// OnSpecWin, when non-nil, runs after a backup finishes first and
	// its loser is reaped, and before the shard is declared done —
	// the hook that renames the backup's outputs over the canonical
	// ones. An error fails the shard's attempt.
	OnSpecWin func(i, n int) error
}

// Run launches all shards, supervises them to completion and returns
// one Worker record per shard, in shard order. It returns an error when
// any shard exhausted its retries or the context was cancelled; the
// records are returned either way so callers can report partial
// progress. Context cancellation kills running workers via exec's
// process management.
func (c *Coordinator) Run(ctx context.Context) ([]Worker, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("shard: coordinator needs a positive shard count, got %d", c.N)
	}
	if c.Command == nil {
		return nil, fmt.Errorf("shard: coordinator needs a Command constructor")
	}
	if c.StallTimeout > 0 && c.BeaconPath == nil {
		return nil, fmt.Errorf("shard: stall monitoring needs a BeaconPath")
	}
	if c.SpecCommand != nil && c.StallTimeout <= 0 {
		return nil, fmt.Errorf("shard: speculative re-execution needs a StallTimeout (its projection reads beacons)")
	}
	retries := c.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}
	stallBudget := c.StallRestarts
	if stallBudget == 0 {
		stallBudget = DefaultStallRestarts
	}
	if stallBudget < 0 {
		stallBudget = 0
	}

	var eventMu sync.Mutex
	emit := func(ev Event) {
		if c.OnEvent == nil {
			return
		}
		eventMu.Lock()
		defer eventMu.Unlock()
		c.OnEvent(ev)
	}

	var doneShards atomic.Int64
	workers := make([]Worker, c.N)
	var wg sync.WaitGroup
	wg.Add(c.N)
	for i := 0; i < c.N; i++ {
		go func(i int) {
			defer wg.Done()
			w := &workers[i]
			w.Shard = i
			crashes := 0
			for attempt := 1; ; attempt++ {
				w.Attempts = attempt
				if err := ctx.Err(); err != nil {
					w.Err = err
					return
				}
				res := c.attempt(ctx, i, attempt, &doneShards, emit)
				w.Elapsed += res.elapsed
				if res.specLaunched {
					w.Speculated = true
				}
				if res.stalled {
					w.Stalls++
					workersStalledCtr.Add(1)
					emit(Event{Kind: EventStalled, Shard: i, Attempt: attempt, Elapsed: res.elapsed, Err: res.err})
				}
				if res.err == nil {
					if res.specWon {
						w.SpecWon = true
					}
					doneShards.Add(1)
					emit(Event{Kind: EventExit, Shard: i, Attempt: attempt, Elapsed: res.elapsed})
					return
				}
				if ctx.Err() != nil {
					w.Err = ctx.Err()
					return
				}
				if res.stalled {
					if w.Stalls > stallBudget {
						workerFailuresCtr.Add(1)
						w.Err = fmt.Errorf("shard %d/%d gave up after %d stall-kills: %w", i, c.N, w.Stalls, res.err)
						emit(Event{Kind: EventFail, Shard: i, Attempt: attempt, Elapsed: res.elapsed, Err: res.err})
						return
					}
					// The stall itself was already announced; the next
					// EventStart is the restart.
					continue
				}
				crashes++
				if crashes > retries {
					workerFailuresCtr.Add(1)
					w.Err = fmt.Errorf("shard %d/%d failed after %d attempts: %w", i, c.N, attempt, res.err)
					emit(Event{Kind: EventFail, Shard: i, Attempt: attempt, Elapsed: res.elapsed, Err: res.err})
					return
				}
				workerRestartsCtr.Add(1)
				emit(Event{Kind: EventRestart, Shard: i, Attempt: attempt, Elapsed: res.elapsed, Err: res.err})
			}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for i := range workers {
		if workers[i].Err != nil {
			firstErr = workers[i].Err
			break
		}
	}
	return workers, firstErr
}

// attemptOutcome is what one supervised attempt reports back to the
// per-shard retry loop.
type attemptOutcome struct {
	err          error
	stalled      bool // the monitor killed the primary for lack of beacon progress
	specLaunched bool
	specWon      bool
	elapsed      time.Duration
}

// monitorSignal is what the beacon monitor tells the attempt loop.
type monitorSignal int

const (
	sigStall    monitorSignal = iota // no beacon progress for StallTimeout: kill the worker
	sigStraggle                      // tail straggler projected past the deadline: launch a backup
)

// proc is a started worker process plus the channel its Wait lands on.
type proc struct {
	cmd  *exec.Cmd
	done chan error
}

func startProc(cmd *exec.Cmd) (*proc, error) {
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	return p, nil
}

func (p *proc) kill() { _ = p.cmd.Process.Kill() }

// attempt runs one supervised attempt at shard i: the primary process,
// optionally a beacon monitor, and optionally a speculative backup. It
// returns when the shard's work is done (some attempt exited cleanly)
// or the attempt failed. Every process it started has been reaped by
// the time it returns, so no writer can touch the shard's files after.
func (c *Coordinator) attempt(ctx context.Context, i, attempt int, doneShards *atomic.Int64, emit func(Event)) attemptOutcome {
	start := time.Now()
	var out attemptOutcome
	finish := func() attemptOutcome { out.elapsed = time.Since(start); return out }

	primary, err := startProc(c.Command(i, c.N))
	if err != nil {
		out.err = err
		return finish()
	}
	workersLaunchedCtr.Add(1)
	emit(Event{Kind: EventStart, Shard: i, Attempt: attempt})

	var signal chan monitorSignal
	if c.StallTimeout > 0 {
		signal = make(chan monitorSignal, 2)
		stop := make(chan struct{})
		defer close(stop)
		go c.monitor(i, doneShards, signal, stop)
	}

	var spec *proc
	primaryDone := primary.done
	var specDone chan error
	var primaryErr error
	stallKilled := false
	for {
		select {
		case err := <-primaryDone:
			if err == nil {
				// A clean exit wins even when a stall-kill raced it:
				// exit 0 means the shard's work is complete on disk.
				if spec != nil {
					spec.kill()
					<-spec.done
				}
				return finish()
			}
			if stallKilled {
				err = fmt.Errorf("%w: no beacon progress for %v (shard %d/%d, attempt %d)",
					ErrStalled, c.StallTimeout, i, c.N, attempt)
				out.stalled = true
			}
			if spec == nil {
				out.err = err
				return finish()
			}
			// The backup is still running; it can finish the shard.
			primaryErr = err
			primaryDone = nil
		case err := <-specDone:
			if err == nil {
				if primaryDone != nil {
					primary.kill()
					<-primaryDone
					primaryDone = nil
				}
				if c.OnSpecWin != nil {
					if werr := c.OnSpecWin(i, c.N); werr != nil {
						out.err = fmt.Errorf("promoting speculative attempt for shard %d/%d: %w", i, c.N, werr)
						return finish()
					}
				}
				specWinsCtr.Add(1)
				out.specWon = true
				return finish()
			}
			if primaryDone == nil {
				if out.err = primaryErr; out.err == nil {
					out.err = err
				}
				return finish()
			}
			specDone = nil // the primary is still running; let it finish
		case sig := <-signal:
			switch sig {
			case sigStall:
				if primaryDone != nil && !stallKilled {
					stallKilled = true
					primary.kill()
				}
			case sigStraggle:
				if spec != nil || c.SpecCommand == nil || primaryDone == nil || stallKilled {
					break
				}
				sp, err := startProc(c.SpecCommand(i, c.N))
				if err != nil {
					break // the projected primary is still live; let it run
				}
				spec = sp
				specDone = sp.done
				out.specLaunched = true
				workersLaunchedCtr.Add(1)
				specLaunchesCtr.Add(1)
				emit(Event{Kind: EventSpeculative, Shard: i, Attempt: attempt, Elapsed: time.Since(start)})
			}
		case <-ctx.Done():
			if primaryDone != nil {
				primary.kill()
				<-primaryDone
			}
			if specDone != nil {
				spec.kill()
				<-specDone
			}
			out.err = ctx.Err()
			return finish()
		}
	}
}

// monitor watches shard i's beacon until stopped, telling the attempt
// loop to kill a stalled worker or to back up a projected straggler.
// It sends at most one stall signal (and stops: the attempt is over
// either way) and at most one straggle signal.
func (c *Coordinator) monitor(i int, doneShards *atomic.Int64, signal chan<- monitorSignal, stop <-chan struct{}) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = c.StallTimeout / 4
	}
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	specTail := c.SpecTail
	if specTail <= 0 {
		specTail = 1
	}
	path := c.BeaconPath(i, c.N)
	var last Beacon
	var have bool
	lastChange := time.Now() // process start is the liveness baseline
	var rateStart time.Time
	var rateBase int
	specSent := false
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if b, err := ReadBeacon(path); err == nil && (!have || b.Progressed(last)) {
			if !have || b.Bench != last.Bench {
				// First sighting, or a new bench segment: cursor deltas
				// across segments are meaningless, so restart the rate
				// window.
				rateStart, rateBase = time.Now(), b.Cursor
			}
			last, have = b, true
			lastChange = time.Now()
		}
		if time.Since(lastChange) > c.StallTimeout {
			select {
			case signal <- sigStall:
			default:
			}
			return
		}
		if specSent || c.SpecCommand == nil || !have {
			continue
		}
		if int(doneShards.Load()) < c.N-specTail {
			continue
		}
		window := time.Since(rateStart).Seconds()
		if window <= 0 || last.Cursor <= rateBase {
			continue
		}
		rate := float64(last.Cursor-rateBase) / window
		if projected := float64(last.Hi-last.Cursor) / rate; projected > c.StallTimeout.Seconds() {
			specSent = true
			select {
			case signal <- sigStraggle:
			default:
			}
		}
	}
}
