package shard

import (
	"context"
	"fmt"
	"os/exec"
	"sync"
	"time"

	"repro/internal/obs"
)

// Coordinator observability instruments; they flow into run manifests
// like every obs counter.
var (
	workersLaunchedCtr = obs.DefaultRegistry.Counter("shard.workers_launched")
	workerRestartsCtr  = obs.DefaultRegistry.Counter("shard.worker_restarts")
	workerFailuresCtr  = obs.DefaultRegistry.Counter("shard.worker_failures")
)

// DefaultRetries is how many times a coordinator restarts a failed
// worker before giving up on its shard. Because workers checkpoint and
// restart with resume enabled, each attempt begins where the previous
// one died rather than redoing the shard.
const DefaultRetries = 2

// EventKind classifies a coordinator Event.
type EventKind int

// Coordinator event kinds.
const (
	EventStart   EventKind = iota // a worker attempt launched
	EventExit                     // a worker attempt exited cleanly
	EventRestart                  // a worker attempt failed; relaunching
	EventFail                     // a shard exhausted its retries
)

// Event is one coordinator lifecycle notification, delivered to the
// OnEvent hook as it happens — the per-shard progress stream.
type Event struct {
	Kind    EventKind
	Shard   int           // shard index
	Attempt int           // 1-based attempt number
	Elapsed time.Duration // attempt duration (EventExit/EventRestart/EventFail)
	Err     error         // failure cause (EventRestart/EventFail)
}

// Worker is the final per-shard record a coordinator run reports:
// how many attempts the shard took, how long they ran in total, and
// whether it completed.
type Worker struct {
	Shard    int
	Attempts int
	Elapsed  time.Duration
	Err      error // nil when the shard completed
}

// Coordinator forks one OS process per shard, restarts failed workers
// (each restart resumes from the worker's own checkpoint — the command
// constructor must arm resume), and joins them. It owns no work itself:
// partitioning is Of's arithmetic and merging is the caller's, so the
// coordinator is pure process supervision.
type Coordinator struct {
	// N is the shard count; one worker process per shard.
	N int
	// Command builds the process for one attempt at shard i of n. It is
	// called for restarts too, so it must produce a fresh exec.Cmd each
	// time (a Cmd cannot be started twice).
	Command func(i, n int) *exec.Cmd
	// Retries is how many restarts a failed shard gets; negative means
	// none, zero means DefaultRetries.
	Retries int
	// OnEvent, when non-nil, receives lifecycle events. Calls are
	// serialized; the hook must not block for long.
	OnEvent func(Event)
}

// Run launches all shards, supervises them to completion and returns
// one Worker record per shard, in shard order. It returns an error when
// any shard exhausted its retries or the context was cancelled; the
// records are returned either way so callers can report partial
// progress. Context cancellation kills running workers via exec's
// process management.
func (c *Coordinator) Run(ctx context.Context) ([]Worker, error) {
	if c.N <= 0 {
		return nil, fmt.Errorf("shard: coordinator needs a positive shard count, got %d", c.N)
	}
	if c.Command == nil {
		return nil, fmt.Errorf("shard: coordinator needs a Command constructor")
	}
	retries := c.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}

	var eventMu sync.Mutex
	emit := func(ev Event) {
		if c.OnEvent == nil {
			return
		}
		eventMu.Lock()
		defer eventMu.Unlock()
		c.OnEvent(ev)
	}

	workers := make([]Worker, c.N)
	var wg sync.WaitGroup
	wg.Add(c.N)
	for i := 0; i < c.N; i++ {
		go func(i int) {
			defer wg.Done()
			w := &workers[i]
			w.Shard = i
			for attempt := 1; ; attempt++ {
				w.Attempts = attempt
				if err := ctx.Err(); err != nil {
					w.Err = err
					return
				}
				cmd := c.Command(i, c.N)
				workersLaunchedCtr.Add(1)
				emit(Event{Kind: EventStart, Shard: i, Attempt: attempt})
				start := time.Now()
				err := runCmd(ctx, cmd)
				elapsed := time.Since(start)
				w.Elapsed += elapsed
				if err == nil {
					emit(Event{Kind: EventExit, Shard: i, Attempt: attempt, Elapsed: elapsed})
					return
				}
				if ctx.Err() != nil {
					w.Err = ctx.Err()
					return
				}
				if attempt > retries {
					workerFailuresCtr.Add(1)
					w.Err = fmt.Errorf("shard %d/%d failed after %d attempts: %w", i, c.N, attempt, err)
					emit(Event{Kind: EventFail, Shard: i, Attempt: attempt, Elapsed: elapsed, Err: err})
					return
				}
				workerRestartsCtr.Add(1)
				emit(Event{Kind: EventRestart, Shard: i, Attempt: attempt, Elapsed: elapsed, Err: err})
			}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for i := range workers {
		if workers[i].Err != nil {
			firstErr = workers[i].Err
			break
		}
	}
	return workers, firstErr
}

// runCmd starts cmd and waits for it, killing the process when ctx is
// cancelled first. exec.CommandContext is not used because Command
// constructors build plain Cmds; this keeps cancellation in one place.
func runCmd(ctx context.Context, cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		<-done
		return ctx.Err()
	case err := <-done:
		return err
	}
}
