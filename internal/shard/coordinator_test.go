package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// shCmd builds a /bin/sh -c command, the stand-in worker for
// coordinator tests (real dse workers are exercised in cmd/dse).
func shCmd(script string) *exec.Cmd {
	return exec.Command("/bin/sh", "-c", script)
}

func TestCoordinatorRunsAllShards(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{
		N: 3,
		Command: func(i, n int) *exec.Cmd {
			return shCmd(fmt.Sprintf("echo %d/%d > %s/shard-%d", i, n, dir, i))
		},
	}
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, w := range workers {
		if w.Shard != i || w.Attempts != 1 || w.Err != nil {
			t.Fatalf("worker %d = %+v", i, w)
		}
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		if err != nil || string(b) != fmt.Sprintf("%d/3\n", i) {
			t.Fatalf("shard %d output %q, %v", i, b, err)
		}
	}
}

// TestCoordinatorRestartsFailedWorker makes shard 1 fail on its first
// attempt only (a marker file distinguishes attempts), mimicking a
// worker killed mid-shard whose restart resumes and completes.
func TestCoordinatorRestartsFailedWorker(t *testing.T) {
	dir := t.TempDir()
	marker := filepath.Join(dir, "attempted")
	var mu sync.Mutex
	var events []Event
	c := &Coordinator{
		N: 2,
		Command: func(i, n int) *exec.Cmd {
			if i == 1 {
				return shCmd(fmt.Sprintf("test -e %s || { touch %s; exit 1; }", marker, marker))
			}
			return shCmd("true")
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if workers[1].Attempts != 2 || workers[1].Err != nil {
		t.Fatalf("shard 1 = %+v, want 2 attempts and success", workers[1])
	}
	restarts := 0
	for _, ev := range events {
		if ev.Kind == EventRestart {
			restarts++
			if ev.Shard != 1 || ev.Err == nil {
				t.Fatalf("restart event %+v", ev)
			}
		}
	}
	if restarts != 1 {
		t.Fatalf("%d restart events, want 1", restarts)
	}
}

func TestCoordinatorExhaustsRetries(t *testing.T) {
	c := &Coordinator{
		N:       1,
		Retries: 1,
		Command: func(i, n int) *exec.Cmd { return shCmd("exit 3") },
	}
	workers, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded despite permanent failure")
	}
	if workers[0].Attempts != 2 || workers[0].Err == nil {
		t.Fatalf("worker = %+v, want 2 attempts and an error", workers[0])
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		N:       1,
		Command: func(i, n int) *exec.Cmd { return shCmd("sleep 30") },
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run(ctx)
	if err == nil {
		t.Fatal("Run survived cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; worker not killed", elapsed)
	}
}
