package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shCmd builds a /bin/sh -c command, the stand-in worker for
// coordinator tests (real dse workers are exercised in cmd/dse).
func shCmd(script string) *exec.Cmd {
	return exec.Command("/bin/sh", "-c", script)
}

func TestCoordinatorRunsAllShards(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{
		N: 3,
		Command: func(i, n int) *exec.Cmd {
			return shCmd(fmt.Sprintf("echo %d/%d > %s/shard-%d", i, n, dir, i))
		},
	}
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, w := range workers {
		if w.Shard != i || w.Attempts != 1 || w.Err != nil {
			t.Fatalf("worker %d = %+v", i, w)
		}
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		if err != nil || string(b) != fmt.Sprintf("%d/3\n", i) {
			t.Fatalf("shard %d output %q, %v", i, b, err)
		}
	}
}

// TestCoordinatorRestartsFailedWorker makes shard 1 fail on its first
// attempt only (a marker file distinguishes attempts), mimicking a
// worker killed mid-shard whose restart resumes and completes.
func TestCoordinatorRestartsFailedWorker(t *testing.T) {
	dir := t.TempDir()
	marker := filepath.Join(dir, "attempted")
	var mu sync.Mutex
	var events []Event
	c := &Coordinator{
		N: 2,
		Command: func(i, n int) *exec.Cmd {
			if i == 1 {
				return shCmd(fmt.Sprintf("test -e %s || { touch %s; exit 1; }", marker, marker))
			}
			return shCmd("true")
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if workers[1].Attempts != 2 || workers[1].Err != nil {
		t.Fatalf("shard 1 = %+v, want 2 attempts and success", workers[1])
	}
	restarts := 0
	for _, ev := range events {
		if ev.Kind == EventRestart {
			restarts++
			if ev.Shard != 1 || ev.Err == nil {
				t.Fatalf("restart event %+v", ev)
			}
		}
	}
	if restarts != 1 {
		t.Fatalf("%d restart events, want 1", restarts)
	}
}

func TestCoordinatorExhaustsRetries(t *testing.T) {
	c := &Coordinator{
		N:       1,
		Retries: 1,
		Command: func(i, n int) *exec.Cmd { return shCmd("exit 3") },
	}
	workers, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded despite permanent failure")
	}
	if workers[0].Attempts != 2 || workers[0].Err == nil {
		t.Fatalf("worker = %+v, want 2 attempts and an error", workers[0])
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		N:       1,
		Command: func(i, n int) *exec.Cmd { return shCmd("sleep 30") },
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run(ctx)
	if err == nil {
		t.Fatal("Run survived cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; worker not killed", elapsed)
	}
}

// beaconJSON hand-rolls a beacon for shell-script stand-in workers.
func beaconJSON(i, n, lo, hi, cursor, seq int) string {
	return fmt.Sprintf(`{"version":1,"domain":"sweep","index":%d,"count":%d,"lo":%d,"hi":%d,"cursor":%d,"seq":%d,"time_unix_nano":0,"pid":0}`,
		i, n, lo, hi, cursor, seq)
}

// TestCoordinatorStallKillAndRestartConcurrent stalls BOTH shards on
// their first attempt (a beacon, then a hang), so two monitors drill
// two concurrent kill+restart cycles under the race detector. Within a
// shard the supervision sequence must be exactly Start, Stalled, Start,
// Exit; across shards the interleaving is free.
func TestCoordinatorStallKillAndRestartConcurrent(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var events []Event
	c := &Coordinator{
		N: 2,
		Command: func(i, n int) *exec.Cmd {
			marker := filepath.Join(dir, fmt.Sprintf("attempted-%d", i))
			beacon := BeaconPath(dir, "sweep", i, n)
			// Attempt 1: publish one beacon, then hang. Attempt 2 (the
			// marker exists): publish progress and exit cleanly.
			return shCmd(fmt.Sprintf(
				"if test -e %[1]s; then echo '%[3]s' > %[2]s; exit 0; fi; touch %[1]s; echo '%[4]s' > %[2]s; sleep 30",
				marker, beacon, beaconJSON(i, 2, 0, 100, 50, 2), beaconJSON(i, 2, 0, 100, 10, 1)))
		},
		StallTimeout: 300 * time.Millisecond,
		BeaconPath:   func(i, n int) string { return BeaconPath(dir, "sweep", i, n) },
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, w := range workers {
		if w.Attempts != 2 || w.Stalls != 1 || w.Err != nil {
			t.Fatalf("worker %d = %+v, want 2 attempts, 1 stall, success", i, w)
		}
	}
	for i := 0; i < 2; i++ {
		var seq []EventKind
		for _, ev := range events {
			if ev.Shard == i {
				seq = append(seq, ev.Kind)
			}
		}
		want := []EventKind{EventStart, EventStalled, EventStart, EventExit}
		if !slices.Equal(seq, want) {
			t.Fatalf("shard %d event order %v, want %v", i, seq, want)
		}
	}
	for _, ev := range events {
		if ev.Kind == EventStalled && !errors.Is(ev.Err, ErrStalled) {
			t.Fatalf("stalled event carries %v, want ErrStalled", ev.Err)
		}
		if ev.Kind == EventRestart {
			t.Fatal("a stall produced a crash-restart event")
		}
	}
}

// TestCoordinatorStallBudgetExhausted starves the monitor of beacons
// entirely (the worker hangs before its first write), so every attempt
// is a stall-kill and the separate stall budget — not crash Retries —
// is what gives up on the shard.
func TestCoordinatorStallBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	c := &Coordinator{
		N:             1,
		Command:       func(i, n int) *exec.Cmd { return shCmd("sleep 30") },
		StallTimeout:  150 * time.Millisecond,
		BeaconPath:    func(i, n int) string { return BeaconPath(dir, "sweep", i, n) },
		StallRestarts: 1,
	}
	workers, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded despite a permanently hung worker")
	}
	w := workers[0]
	if !errors.Is(w.Err, ErrStalled) || w.Stalls != 2 || w.Attempts != 2 {
		t.Fatalf("worker = %+v, want 2 attempts and 2 stalls wrapping ErrStalled", w)
	}
}

// TestCoordinatorSpeculativeBackupWins gives shard 0 a live but
// hopeless straggler — it heartbeats every 100ms with ~10s of projected
// work against a 1s deadline — and a backup that finishes instantly.
// Once shard 1 is done the tail condition holds, the projection fires,
// and the backup must win: loser killed, OnSpecWin called, shard
// recorded as speculated-and-won.
func TestCoordinatorSpeculativeBackupWins(t *testing.T) {
	dir := t.TempDir()
	var promoted atomic.Bool
	var mu sync.Mutex
	var events []Event
	c := &Coordinator{
		N: 2,
		Command: func(i, n int) *exec.Cmd {
			if i == 1 {
				return shCmd("true")
			}
			beacon := BeaconPath(dir, "sweep", i, n)
			return shCmd(fmt.Sprintf(`c=0; s=0
while [ $c -lt 1000 ]; do
  c=$((c+10)); s=$((s+1))
  printf '{"version":1,"domain":"sweep","index":0,"count":2,"lo":0,"hi":1000,"cursor":%%d,"seq":%%d,"time_unix_nano":0,"pid":0}' $c $s > %[1]s.tmp && mv %[1]s.tmp %[1]s
  sleep 0.1
done`, beacon))
		},
		StallTimeout: time.Second,
		PollInterval: 50 * time.Millisecond,
		BeaconPath:   func(i, n int) string { return BeaconPath(dir, "sweep", i, n) },
		SpecCommand: func(i, n int) *exec.Cmd {
			return shCmd("true")
		},
		OnSpecWin: func(i, n int) error {
			promoted.Store(true)
			return nil
		},
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	start := time.Now()
	workers, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	w := workers[0]
	if !w.Speculated || !w.SpecWon || w.Err != nil {
		t.Fatalf("worker 0 = %+v, want a winning speculative backup", w)
	}
	if !promoted.Load() {
		t.Fatal("OnSpecWin was not called")
	}
	// The primary alone would have taken ~100s; the backup win must
	// have cut the run short by killing it.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v; the straggling primary was not preempted", elapsed)
	}
	sawSpec := false
	for _, ev := range events {
		if ev.Kind == EventSpeculative && ev.Shard == 0 {
			sawSpec = true
		}
	}
	if !sawSpec {
		t.Fatal("no EventSpeculative was emitted")
	}
}

// TestCoordinatorValidatesSupervisionConfig: stall monitoring without a
// beacon path, and speculation without stall monitoring, are config
// errors, not silent no-ops.
func TestCoordinatorValidatesSupervisionConfig(t *testing.T) {
	base := func() *Coordinator {
		return &Coordinator{N: 1, Command: func(i, n int) *exec.Cmd { return shCmd("true") }}
	}
	c := base()
	c.StallTimeout = time.Second
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("StallTimeout without BeaconPath accepted")
	}
	c = base()
	c.SpecCommand = func(i, n int) *exec.Cmd { return shCmd("true") }
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("SpecCommand without StallTimeout accepted")
	}
}
