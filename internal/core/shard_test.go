package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/shard"
)

// mustEqualFiles asserts two checkpoint files are byte-identical — the
// sharding layer's core promise.
func mustEqualFiles(t *testing.T, golden, merged string) {
	t.Helper()
	g, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	m, err := os.ReadFile(merged)
	if err != nil {
		t.Fatalf("merged: %v", err)
	}
	if !bytes.Equal(g, m) {
		t.Fatalf("%s (%d bytes) differs from %s (%d bytes)", merged, len(m), golden, len(g))
	}
}

// TestShardedSweepBitIdentical is the sweep acceptance test: the full
// 262,500-point study space swept as four shards by independent
// explorers, merged, must produce a sweep checkpoint byte-identical to
// a single-process checkpointed sweep.
func TestShardedSweepBitIdentical(t *testing.T) {
	goldenDir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = goldenDir
	golden, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.ExhaustivePredict("gzip"); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	const n = 4
	covered := 0
	for i := 0; i < n; i++ {
		// A fresh explorer per shard stands in for a separate process.
		o := ckptTestOptions()
		o.CheckpointDir = shardDir
		w, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Train(); err != nil {
			t.Fatal(err)
		}
		if err := w.SweepShard(context.Background(), "gzip", i, n); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		r := w.SweepShardRange(i, n)
		covered += r.Len()
		if got := w.ModelStats().SweptPoints; got != int64(r.Len()) {
			t.Errorf("shard %d swept %d points, want %d", i, got, r.Len())
		}
	}
	if covered != golden.StudySpace.Size() {
		t.Fatalf("shards cover %d of %d points", covered, golden.StudySpace.Size())
	}

	merger, err := New(func() Options { o := ckptTestOptions(); o.CheckpointDir = shardDir; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if err := merger.MergeSweepShards(n); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, filepath.Join(goldenDir, "sweep-gzip.ckpt"), filepath.Join(shardDir, "sweep-gzip.ckpt"))
}

// TestShardedDatasetBitIdentical is the dataset acceptance test: a
// 200-config dataset over two benchmarks built as three shards (ranges
// straddle the benchmark boundary), merged, must match the unsharded
// training checkpoints byte for byte — and a resumed Train must fit off
// the merged files without a single simulation.
func TestShardedDatasetBitIdentical(t *testing.T) {
	if fault.Active() {
		t.Skip("exact eval counts need a fault-free world")
	}
	dsOpts := func() Options {
		o := DefaultOptions()
		o.TrainSamples = 200
		o.ValidationSamples = 5
		o.TraceLen = 2000
		o.Benchmarks = []string{"gzip", "mcf"}
		o.Workers = 2
		o.CheckpointEvery = 64
		return o
	}

	goldenDir := t.TempDir()
	opts := dsOpts()
	opts.CheckpointDir = goldenDir
	golden, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	const n = 3 // 400 flat indices -> uneven shards spanning both benchmarks
	for i := 0; i < n; i++ {
		o := dsOpts()
		o.CheckpointDir = shardDir
		w, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.BuildDatasetShard(context.Background(), i, n); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		r := w.DatasetShardRange(i, n)
		if got := w.SimStats().Evaluations; got != int64(r.Len()) {
			t.Errorf("shard %d simulated %d, want %d", i, got, r.Len())
		}
	}

	mergeOpts := dsOpts()
	mergeOpts.CheckpointDir = shardDir
	merger, err := New(mergeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := merger.MergeDatasetShards(n); err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"gzip", "mcf"} {
		mustEqualFiles(t,
			filepath.Join(goldenDir, "train-"+bench+".ckpt"),
			filepath.Join(shardDir, "train-"+bench+".ckpt"))
	}

	// The merged checkpoints are a complete dataset: training resumes to
	// identical models with zero simulations.
	mergeOpts.Resume = true
	trained, err := New(mergeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := trained.Train(); err != nil {
		t.Fatal(err)
	}
	if got := trained.SimStats().Evaluations; got != 0 {
		t.Errorf("post-merge Train simulated %d samples, want 0", got)
	}
	for _, bench := range []string{"gzip", "mcf"} {
		_, gc := golden.perf[bench].Coefficients()
		_, rc := trained.perf[bench].Coefficients()
		for i := range gc {
			if gc[i] != rc[i] {
				t.Fatalf("%s perf coefficient %d: golden %v, merged %v", bench, i, gc[i], rc[i])
			}
		}
	}
}

// TestShardedDatasetMoreShardsThanWork covers the degenerate partition
// end to end: more shards than flat indices, so several shards are
// empty — every shard still writes its (possibly empty) checkpoint and
// the merge still reassembles the exact dataset.
func TestShardedDatasetMoreShardsThanWork(t *testing.T) {
	tiny := func() Options {
		o := DefaultOptions()
		o.TrainSamples = 5
		o.ValidationSamples = 2
		o.TraceLen = 2000
		o.Benchmarks = []string{"gzip"}
		o.Workers = 2
		return o
	}
	// Golden: the whole domain as one shard (too few samples to fit a
	// model, so the comparison stops at the dataset checkpoint).
	goldenDir := t.TempDir()
	opts := tiny()
	opts.CheckpointDir = goldenDir
	golden, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.BuildDatasetShard(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := golden.MergeDatasetShards(1); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	const n = 8 // 5 flat indices over 8 shards: 3 empty
	for i := 0; i < n; i++ {
		o := tiny()
		o.CheckpointDir = shardDir
		w, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.BuildDatasetShard(context.Background(), i, n); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	mergeOpts := tiny()
	mergeOpts.CheckpointDir = shardDir
	merger, err := New(mergeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := merger.MergeDatasetShards(n); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, filepath.Join(goldenDir, "train-gzip.ckpt"), filepath.Join(shardDir, "train-gzip.ckpt"))
}

// TestSweepShardKillResumesMidShard is the mid-shard crash acceptance
// test: a sweep shard killed by a deterministic fault at its third
// checkpoint chunk resumes from its own checkpoint — sweeping only the
// remaining points, never restarting the shard — and the final merge is
// still byte-identical to the single-process sweep.
func TestSweepShardKillResumesMidShard(t *testing.T) {
	if fault.Active() {
		t.Skip("test arms its own fault plan; exact sweep counts need a fault-free world")
	}
	goldenDir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = goldenDir
	golden, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.ExhaustivePredict("gzip"); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	mk := func(resume bool) *Explorer {
		o := ckptTestOptions()
		o.CheckpointDir = shardDir
		o.SweepCheckpointEvery = 37500
		o.Resume = resume
		w, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Train(); err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Shard 0/2 of the aligned partition is [0, 131250): four checkpoint
	// chunks of 37,500 (the last one short). Kill the worker at its third
	// chunk: two chunks (75,000 points) are checkpointed when it dies.
	killed := mk(false)
	prev := fault.Current()
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "core.sweep.shard", Kind: fault.KindFatal, After: 2, Every: 1, Count: 1},
	}})
	err = killed.SweepShard(context.Background(), "gzip", 0, 2)
	fault.Enable(prev)
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("killed SweepShard returned %v, want wrapped *fault.Injected", err)
	}
	if got := killed.ModelStats().SweptPoints; got != 75000 {
		t.Fatalf("killed shard swept %d points, want 75000 before dying", got)
	}

	// Merging now must refuse: the shard checkpoint exists but is not
	// complete.
	if err := mk(false).MergeSweepShards(2); !errors.Is(err, ErrShardIncomplete) {
		t.Fatalf("merge of incomplete shard returned %v, want ErrShardIncomplete", err)
	}

	// A fresh worker (new process) resumes the shard from its checkpoint:
	// only the remaining 56,250 points are swept.
	resumed := mk(true)
	if err := resumed.SweepShard(context.Background(), "gzip", 0, 2); err != nil {
		t.Fatalf("resumed SweepShard: %v", err)
	}
	if got := resumed.ModelStats().SweptPoints; got != 131250-75000 {
		t.Fatalf("resumed shard swept %d points, want %d", got, 131250-75000)
	}

	if err := mk(false).SweepShard(context.Background(), "gzip", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := mk(false).MergeSweepShards(2); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, filepath.Join(goldenDir, "sweep-gzip.ckpt"), filepath.Join(shardDir, "sweep-gzip.ckpt"))
}

// TestSweepShardKillDuringBeaconWriteResumes kills a sweep worker in
// the middle of publishing its progress beacon — the liveness
// protocol's own write path. The atomic beacon write must leave the
// previous (valid) beacon on disk, and a resumed worker must pick up
// the on-disk sequence number (so a supervisor never sees Seq move
// backwards across the restart), finish the remaining chunks, and
// still merge byte-identical.
func TestSweepShardKillDuringBeaconWriteResumes(t *testing.T) {
	if fault.Active() {
		t.Skip("test arms its own fault plan; exact sweep counts need a fault-free world")
	}
	goldenDir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = goldenDir
	golden, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.ExhaustivePredict("gzip"); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	mk := func(resume bool) *Explorer {
		o := ckptTestOptions()
		o.CheckpointDir = shardDir
		o.SweepCheckpointEvery = 37500
		o.Resume = resume
		w, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Train(); err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Beacon writes in a shard run: one on entry, then one after each
	// checkpointed chunk. Kill the third write — the one announcing the
	// second chunk, which ckpt.Save has already published.
	killed := mk(false)
	prev := fault.Current()
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "shard.beacon", Kind: fault.KindFatal, After: 2, Every: 1, Count: 1},
	}})
	err = killed.SweepShard(context.Background(), "gzip", 0, 2)
	fault.Enable(prev)
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("killed SweepShard returned %v, want wrapped *fault.Injected", err)
	}
	if got := killed.ModelStats().SweptPoints; got != 75000 {
		t.Fatalf("killed shard swept %d points, want 75000 before dying", got)
	}

	// The beacon on disk is the previous one, intact: first chunk done.
	b, err := shard.ReadBeacon(shard.BeaconPath(shardDir, "sweep", 0, 2))
	if err != nil {
		t.Fatalf("beacon after mid-write kill: %v", err)
	}
	if b.Cursor != 37500 || b.Seq != 2 {
		t.Fatalf("beacon after kill: cursor %d seq %d, want cursor 37500 seq 2", b.Cursor, b.Seq)
	}

	// Resume: only the remaining points are swept, and the beacon's
	// sequence continues past the on-disk value instead of restarting.
	resumed := mk(true)
	if err := resumed.SweepShard(context.Background(), "gzip", 0, 2); err != nil {
		t.Fatalf("resumed SweepShard: %v", err)
	}
	if got := resumed.ModelStats().SweptPoints; got != 131250-75000 {
		t.Fatalf("resumed shard swept %d points, want %d", got, 131250-75000)
	}
	final, err := shard.ReadBeacon(shard.BeaconPath(shardDir, "sweep", 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if final.Cursor != 131250 {
		t.Fatalf("final beacon cursor %d, want 131250", final.Cursor)
	}
	if final.Seq <= b.Seq {
		t.Fatalf("beacon seq went backwards across restart: %d -> %d", b.Seq, final.Seq)
	}
	if !final.Progressed(b) {
		t.Fatal("final beacon does not register as progress over the pre-kill one")
	}

	if err := mk(false).SweepShard(context.Background(), "gzip", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := mk(false).MergeSweepShards(2); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, filepath.Join(goldenDir, "sweep-gzip.ckpt"), filepath.Join(shardDir, "sweep-gzip.ckpt"))
}

// TestShardIdentityMismatchRejected: shard checkpoints carry the run
// identity plus the shard ID, so a merge under a different run (seed)
// or partition must fail with ckpt.ErrIdentity.
func TestShardIdentityMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = dir
	opts.TrainSamples = 10
	w, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BuildDatasetShard(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}

	// Different run identity (seed).
	other := opts
	other.Seed++
	m, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MergeDatasetShards(1); !errors.Is(err, ckpt.ErrIdentity) {
		t.Fatalf("merge under different seed returned %v, want ckpt.ErrIdentity", err)
	}

	// Same run, different partition: copy the 0/1 shard file where a 0/2
	// merge would look for it. The identity's shard ID must refuse it.
	src, err := os.ReadFile(filepath.Join(dir, "train-shard-0of1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"train-shard-0of2.ckpt", "train-shard-1of2.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.MergeDatasetShards(2); !errors.Is(err, ckpt.ErrIdentity) {
		t.Fatalf("merge of repartitioned shard file returned %v, want ckpt.ErrIdentity", err)
	}
}
