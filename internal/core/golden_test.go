package core

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/eval"
)

// TestCompiledGoldenEquivalence pins the compile step's core contract:
// for every benchmark's fitted performance and power models, the
// compiled evaluator — on both the value path and the level-table path —
// is bit-identical to the interpreted Model.Predict, over a large
// deterministic sample of the study space and over the full space for
// one benchmark.
func TestCompiledGoldenEquivalence(t *testing.T) {
	e := testExplorer(t)
	space := e.StudySpace
	for _, bench := range e.Benchmarks() {
		perf, pow, err := e.Models(bench)
		if err != nil {
			t.Fatal(err)
		}
		pair, err := eval.CompilePair(perf, pow, space)
		if err != nil {
			t.Fatal(err)
		}
		if !pair.Leveled() {
			t.Fatalf("%s: compiled pair not leveled against the study space", bench)
		}
		var scratch eval.PairScratch
		for _, pt := range space.SampleUAR(10000, 0xC0FFEE) {
			cfg := space.Config(pt)
			get := arch.PredictorGetter(cfg)
			wantB, wantW := perf.Predict(get), pow.Predict(get)
			if b, w := pair.EvalConfig(cfg, &scratch); b != wantB || w != wantW {
				t.Fatalf("%s: EvalConfig(%v) = (%v, %v), interpreted (%v, %v)",
					bench, cfg, b, w, wantB, wantW)
			}
			if b, w := pair.EvalLevels(pt[:], &scratch); b != wantB || w != wantW {
				t.Fatalf("%s: EvalLevels(%v) = (%v, %v), interpreted (%v, %v)",
					bench, pt, b, w, wantB, wantW)
			}
		}
	}

	// Full 262,500-point space for one benchmark.
	perf, pow, err := e.Models("gzip")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := eval.CompilePair(perf, pow, space)
	if err != nil {
		t.Fatal(err)
	}
	var scratch eval.PairScratch
	for i := 0; i < space.Size(); i++ {
		pt := space.PointAt(i)
		get := arch.PredictorGetter(space.Config(pt))
		wantB, wantW := perf.Predict(get), pow.Predict(get)
		if b, w := pair.EvalLevels(pt[:], &scratch); b != wantB || w != wantW {
			t.Fatalf("gzip flat %d: compiled (%v, %v), interpreted (%v, %v)",
				i, b, w, wantB, wantW)
		}
	}
}

// TestSweepThreePathsBitIdentical is the golden equivalence ladder for
// the exhaustive sweep: the blocked structure-of-arrays kernel (the
// default), the scalar compiled kernel (DisableBlocked) and the
// interpreted per-request path (DisableCompile) must produce
// bit-identical output over the full 262,500-point study space for
// every trained benchmark — and each explorer must actually take its
// intended path.
func TestSweepThreePathsBitIdentical(t *testing.T) {
	e := testExplorer(t)

	newPath := func(mutate func(*Options)) *Explorer {
		t.Helper()
		opts := e.Options()
		mutate(&opts)
		ex, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := copyModels(e, ex); err != nil {
			t.Fatal(err)
		}
		return ex
	}
	scalar := newPath(func(o *Options) { o.DisableBlocked = true })
	interp := newPath(func(o *Options) { o.DisableCompile = true })

	n := e.StudySpace.Size()
	blockedOut := make([]Prediction, n)
	scalarOut := make([]Prediction, n)
	interpOut := make([]Prediction, n)
	for _, bench := range e.Benchmarks() {
		if err := e.ExhaustivePredictInto(context.Background(), bench, blockedOut); err != nil {
			t.Fatal(err)
		}
		if err := scalar.ExhaustivePredictInto(context.Background(), bench, scalarOut); err != nil {
			t.Fatal(err)
		}
		if err := interp.ExhaustivePredictInto(context.Background(), bench, interpOut); err != nil {
			t.Fatal(err)
		}
		for i := range blockedOut {
			if blockedOut[i] != scalarOut[i] || blockedOut[i] != interpOut[i] {
				t.Fatalf("%s flat %d: blocked %+v, scalar %+v, interpreted %+v",
					bench, i, blockedOut[i], scalarOut[i], interpOut[i])
			}
		}
	}
	if st := e.ModelStats(); st.SweptPoints == 0 {
		t.Fatal("default explorer did not use the sweep kernel")
	}
	if st := scalar.ModelStats(); st.SweptPoints == 0 {
		t.Fatal("DisableBlocked explorer did not use the sweep kernel")
	}
	if st := interp.ModelStats(); st.SweptPoints != 0 {
		t.Fatal("DisableCompile explorer used the sweep kernel")
	}
}

// TestSweepGuardCheckRateMatchesScalar pins the guardrail coverage
// contract across sweep kernels: the blocked kernel ticks the guard per
// point (TickCount per chunk), so a full sweep must cross-check the
// same one-in-GuardInterval fraction of points as the scalar compiled
// kernel — within 2x, not collapsed to one check per tile the way a
// whole-tile TickN would.
func TestSweepGuardCheckRateMatchesScalar(t *testing.T) {
	e := testExplorer(t)

	sweep := func(mutate func(*Options)) int64 {
		t.Helper()
		opts := e.Options()
		mutate(&opts)
		ex, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := copyModels(e, ex); err != nil {
			t.Fatal(err)
		}
		out := make([]Prediction, ex.StudySpace.Size())
		if err := ex.ExhaustivePredictInto(context.Background(), "gzip", out); err != nil {
			t.Fatal(err)
		}
		return ex.ModelStats().GuardChecks
	}
	blocked := sweep(func(o *Options) {})
	scalar := sweep(func(o *Options) { o.DisableBlocked = true })

	// 262,500 points at the default interval of 1024 → ~256 checks.
	n := int64(e.StudySpace.Size())
	want := n / eval.DefaultModelGuardInterval
	if blocked < want/2 || blocked > want*2 {
		t.Fatalf("blocked kernel made %d guard checks, want about %d", blocked, want)
	}
	if scalar < want/2 || scalar > want*2 {
		t.Fatalf("scalar kernel made %d guard checks, want about %d", scalar, want)
	}
	if blocked > scalar*2 || scalar > blocked*2 {
		t.Fatalf("guard check rates diverge: blocked %d, scalar %d", blocked, scalar)
	}
}

// TestSimFastPathVsDisabledIdentical compares the simulator's default
// fast path (pooled scratch + memoized warm state) against the
// DisableFastSim full-warmup path through the public Explorer surface,
// for bit-identical output, and checks the warm memo actually engaged.
func TestSimFastPathVsDisabledIdentical(t *testing.T) {
	opts := DefaultOptions()
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mcf"}
	fast, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableFastSim = true
	slow, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	space := fast.StudySpace
	points := space.SampleUAR(5, 7)
	for _, bench := range opts.Benchmarks {
		for _, pt := range points {
			cfg := space.Config(pt)
			// Vary width at fixed cache geometry so the fast explorer
			// sees warm-key reuse across distinct requests.
			for _, width := range []int{cfg.Width, cfg.Width * 2} {
				c := cfg
				c.Width = width
				fb, fw, err := fast.Simulate(c, bench)
				if err != nil {
					t.Fatal(err)
				}
				sb, sw, err := slow.Simulate(c, bench)
				if err != nil {
					t.Fatal(err)
				}
				if fb != sb || fw != sw {
					t.Fatalf("%s %v: fast (%v, %v), disabled (%v, %v)",
						bench, c, fb, fw, sb, sw)
				}
			}
		}
	}
	if st := fast.SimStats(); st.WarmHits == 0 {
		t.Fatal("fast explorer recorded no warm hits")
	}
	if st := slow.SimStats(); st.WarmHits != 0 || st.WarmMisses != 0 {
		t.Fatalf("DisableFastSim explorer recorded warm traffic: %d/%d",
			st.WarmHits, st.WarmMisses)
	}
}
