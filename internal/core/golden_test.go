package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/eval"
)

// TestCompiledGoldenEquivalence pins the compile step's core contract:
// for every benchmark's fitted performance and power models, the
// compiled evaluator — on both the value path and the level-table path —
// is bit-identical to the interpreted Model.Predict, over a large
// deterministic sample of the study space and over the full space for
// one benchmark.
func TestCompiledGoldenEquivalence(t *testing.T) {
	e := testExplorer(t)
	space := e.StudySpace
	for _, bench := range e.Benchmarks() {
		perf, pow, err := e.Models(bench)
		if err != nil {
			t.Fatal(err)
		}
		pair, err := eval.CompilePair(perf, pow, space)
		if err != nil {
			t.Fatal(err)
		}
		if !pair.Leveled() {
			t.Fatalf("%s: compiled pair not leveled against the study space", bench)
		}
		var scratch eval.PairScratch
		for _, pt := range space.SampleUAR(10000, 0xC0FFEE) {
			cfg := space.Config(pt)
			get := arch.PredictorGetter(cfg)
			wantB, wantW := perf.Predict(get), pow.Predict(get)
			if b, w := pair.EvalConfig(cfg, &scratch); b != wantB || w != wantW {
				t.Fatalf("%s: EvalConfig(%v) = (%v, %v), interpreted (%v, %v)",
					bench, cfg, b, w, wantB, wantW)
			}
			if b, w := pair.EvalLevels(pt[:], &scratch); b != wantB || w != wantW {
				t.Fatalf("%s: EvalLevels(%v) = (%v, %v), interpreted (%v, %v)",
					bench, pt, b, w, wantB, wantW)
			}
		}
	}

	// Full 262,500-point space for one benchmark.
	perf, pow, err := e.Models("gzip")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := eval.CompilePair(perf, pow, space)
	if err != nil {
		t.Fatal(err)
	}
	var scratch eval.PairScratch
	for i := 0; i < space.Size(); i++ {
		pt := space.PointAt(i)
		get := arch.PredictorGetter(space.Config(pt))
		wantB, wantW := perf.Predict(get), pow.Predict(get)
		if b, w := pair.EvalLevels(pt[:], &scratch); b != wantB || w != wantW {
			t.Fatalf("gzip flat %d: compiled (%v, %v), interpreted (%v, %v)",
				i, b, w, wantB, wantW)
		}
	}
}

// TestSweepCompiledVsInterpretedIdentical compares the two ends of the
// exhaustive sweep — the fused compiled kernel (default) against the
// interpreted per-request path (DisableCompile) — for bit-identical
// output, and checks each explorer actually took its intended path.
func TestSweepCompiledVsInterpretedIdentical(t *testing.T) {
	e := testExplorer(t)
	opts := e.Options()
	opts.DisableCompile = true
	interp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	if err := interp.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}

	n := e.StudySpace.Size()
	compiled := make([]Prediction, n)
	interpreted := make([]Prediction, n)
	if err := e.ExhaustivePredictInto(context.Background(), "mcf", compiled); err != nil {
		t.Fatal(err)
	}
	if err := interp.ExhaustivePredictInto(context.Background(), "mcf", interpreted); err != nil {
		t.Fatal(err)
	}
	for i := range compiled {
		if compiled[i] != interpreted[i] {
			t.Fatalf("flat %d: compiled %+v, interpreted %+v", i, compiled[i], interpreted[i])
		}
	}
	if st := e.ModelStats(); st.SweptPoints == 0 {
		t.Fatal("default explorer did not use the sweep kernel")
	}
	if st := interp.ModelStats(); st.SweptPoints != 0 {
		t.Fatal("DisableCompile explorer used the sweep kernel")
	}
}

// TestSimFastPathVsDisabledIdentical compares the simulator's default
// fast path (pooled scratch + memoized warm state) against the
// DisableFastSim full-warmup path through the public Explorer surface,
// for bit-identical output, and checks the warm memo actually engaged.
func TestSimFastPathVsDisabledIdentical(t *testing.T) {
	opts := DefaultOptions()
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mcf"}
	fast, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableFastSim = true
	slow, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	space := fast.StudySpace
	points := space.SampleUAR(5, 7)
	for _, bench := range opts.Benchmarks {
		for _, pt := range points {
			cfg := space.Config(pt)
			// Vary width at fixed cache geometry so the fast explorer
			// sees warm-key reuse across distinct requests.
			for _, width := range []int{cfg.Width, cfg.Width * 2} {
				c := cfg
				c.Width = width
				fb, fw, err := fast.Simulate(c, bench)
				if err != nil {
					t.Fatal(err)
				}
				sb, sw, err := slow.Simulate(c, bench)
				if err != nil {
					t.Fatal(err)
				}
				if fb != sb || fw != sw {
					t.Fatalf("%s %v: fast (%v, %v), disabled (%v, %v)",
						bench, c, fb, fw, sb, sw)
				}
			}
		}
	}
	if st := fast.SimStats(); st.WarmHits == 0 {
		t.Fatal("fast explorer recorded no warm hits")
	}
	if st := slow.SimStats(); st.WarmHits != 0 || st.WarmMisses != 0 {
		t.Fatalf("DisableFastSim explorer recorded warm traffic: %d/%d",
			st.WarmHits, st.WarmMisses)
	}
}
