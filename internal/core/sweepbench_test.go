package core

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// copyModels transfers trained models from src to dst through the
// persistence round-trip, so benchmark explorers share one training run.
func copyModels(src, dst *Explorer) error {
	var buf bytes.Buffer
	if err := src.SaveModels(&buf); err != nil {
		return err
	}
	return dst.LoadModels(&buf)
}

// benchSweepState trains a one-benchmark explorer once at a reduced
// budget and shares it across the sweep kernel benchmarks, so each
// benchmark measures only the 262,500-point sweep itself.
var benchSweepState struct {
	once sync.Once
	e    *Explorer
	err  error
}

func benchSweepExplorer(b *testing.B) *Explorer {
	b.Helper()
	benchSweepState.once.Do(func() {
		opts := DefaultOptions()
		opts.TrainSamples = 120
		opts.ValidationSamples = 20
		opts.TraceLen = 20000
		opts.Benchmarks = []string{"mcf"}
		e, err := New(opts)
		if err != nil {
			benchSweepState.err = err
			return
		}
		benchSweepState.e = e
		benchSweepState.err = e.Train()
	})
	if benchSweepState.err != nil {
		b.Fatal(benchSweepState.err)
	}
	return benchSweepState.e
}

// sweepKernelBench measures ExhaustivePredictInto on one explorer
// configuration, reporting predictions/s.
func sweepKernelBench(b *testing.B, mutate func(*Options)) {
	src := benchSweepExplorer(b)
	opts := src.Options()
	if mutate != nil {
		mutate(&opts)
	}
	e, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := copyModels(src, e); err != nil {
		b.Fatal(err)
	}
	out := make([]Prediction, e.StudySpace.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ExhaustivePredictInto(context.Background(), "mcf", out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(out)*b.N)/b.Elapsed().Seconds(), "predictions/s")
}

// BenchmarkSweepKernel pits the sweep's evaluation paths against each
// other on one worker: the blocked SweepPlan kernel (default), the
// scalar compiled kernel (DisableBlocked) and the interpreted
// per-request path (DisableCompile). All three are bit-identical; the
// deltas are pure kernel cost.
func BenchmarkSweepKernel(b *testing.B) {
	b.Run("path=blocked", func(b *testing.B) {
		sweepKernelBench(b, func(o *Options) { o.Workers = 1 })
	})
	b.Run("path=compiled", func(b *testing.B) {
		sweepKernelBench(b, func(o *Options) { o.Workers = 1; o.DisableBlocked = true })
	})
	b.Run("path=interpreted", func(b *testing.B) {
		sweepKernelBench(b, func(o *Options) { o.Workers = 1; o.DisableCompile = true })
	})
}
