package paretostudy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pareto"
)

var shared *core.Explorer

func testExplorer(t *testing.T) *core.Explorer {
	t.Helper()
	if shared != nil {
		return shared
	}
	opts := core.DefaultOptions()
	opts.TrainSamples = 180
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mcf"}
	e, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	shared = e
	return e
}

func TestRunProducesFrontier(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "gzip", Options{DelayTargets: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Characterization) != e.StudySpace.Size() {
		t.Fatalf("characterization size = %d", len(res.Characterization))
	}
	if len(res.Frontier) == 0 || len(res.Frontier) > 20 {
		t.Fatalf("frontier size = %d, want 1..20", len(res.Frontier))
	}
	// Frontier must be sorted by delay with decreasing power.
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].ModelDelay <= res.Frontier[i-1].ModelDelay {
			t.Fatal("frontier not sorted by delay")
		}
		if res.Frontier[i].ModelPower >= res.Frontier[i-1].ModelPower {
			t.Fatal("frontier power not decreasing")
		}
	}
}

func TestFrontierPointsUndominatedWithinBins(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "mcf", Options{DelayTargets: 15})
	if err != nil {
		t.Fatal(err)
	}
	// No frontier point may be strictly dominated by another frontier
	// point (binning guarantees this across bins).
	for i, a := range res.Frontier {
		for j, b := range res.Frontier {
			if i == j {
				continue
			}
			if pareto.IsDominated(
				pareto.Point{Delay: a.ModelDelay, Power: a.ModelPower},
				pareto.Point{Delay: b.ModelDelay, Power: b.ModelPower},
			) {
				t.Fatalf("frontier point %d dominated by %d", i, j)
			}
		}
	}
}

func TestValidationErrorsPopulated(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "gzip", Options{DelayTargets: 10, SimulateFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerfErrs) != len(res.Frontier) || len(res.PowerErrs) != len(res.Frontier) {
		t.Fatal("validation errors not aligned with frontier")
	}
	for i, fp := range res.Frontier {
		if fp.SimDelay <= 0 || fp.SimPower <= 0 {
			t.Fatalf("frontier point %d lacks simulated values", i)
		}
	}
	// Errors should be sane (paper: medians under ~10%).
	for _, v := range res.PerfErrs {
		if v < 0 || v > 1 {
			t.Fatalf("perf error %v out of range", v)
		}
	}
}

func TestBestIsEfficiencyArgmax(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "mcf", Options{DelayTargets: 10})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best
	if best.ModelEff <= 0 {
		t.Fatal("no efficiency recorded")
	}
	// Spot-check: no characterization point may beat the chosen optimum.
	for _, p := range res.Characterization {
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		if eff := metrics.BIPS3W(p.BIPS, p.Watts); eff > best.ModelEff*(1+1e-12) {
			t.Fatalf("design %d eff %v beats recorded best %v", p.Index, eff, best.ModelEff)
		}
	}
	if best.SimDelay <= 0 || best.SimPower <= 0 {
		t.Fatal("best design not simulated")
	}
}

func TestMemoryBoundPrefersBiggerL2ThanComputeBound(t *testing.T) {
	// The paper's Table 2 signature: memory-intensive mcf selects a
	// larger L2 than compute-intensive gzip.
	e := testExplorer(t)
	mcf, err := Run(e, "mcf", Options{DelayTargets: 10})
	if err != nil {
		t.Fatal(err)
	}
	gzip, err := Run(e, "gzip", Options{DelayTargets: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mcf.Best.Config.L2KB <= gzip.Best.Config.L2KB {
		t.Fatalf("mcf L2 (%d KB) should exceed gzip L2 (%d KB)",
			mcf.Best.Config.L2KB, gzip.Best.Config.L2KB)
	}
}

func TestRunSuiteAndErrorSummary(t *testing.T) {
	e := testExplorer(t)
	results, err := RunSuite(e, Options{DelayTargets: 8, SimulateFrontier: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("suite results = %d", len(results))
	}
	perfMed, powMed, ok := ErrorSummary(results)
	if !ok {
		t.Fatal("no error summary despite validation")
	}
	if perfMed < 0 || perfMed > 0.5 || powMed < 0 || powMed > 0.5 {
		t.Fatalf("medians = %v/%v look wrong", perfMed, powMed)
	}
	// Without validation no summary should be produced.
	dry, err := Run(e, "gzip", Options{DelayTargets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ErrorSummary(map[string]*Result{"gzip": dry}); ok {
		t.Fatal("summary produced without validation data")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	e := testExplorer(t)
	if _, err := Run(e, "ammp", Options{}); err == nil {
		t.Fatal("study ran for unmodeled benchmark")
	}
}
