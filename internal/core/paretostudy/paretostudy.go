// Package paretostudy implements Section 4 of the paper: exhaustive
// regression-based characterization of the design space (Figure 2),
// construction of the predicted pareto frontier in the delay-power plane
// (Figure 3), validation of frontier predictions against simulation
// (Figures 3 and 4), and identification of the bips^3/w-optimal
// architecture per benchmark (Table 2).
package paretostudy

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/stats"
)

// Options tunes the study.
type Options struct {
	// DelayTargets is the number of delay bins used to discretize the
	// frontier, per Section 4.2. Zero means 40.
	DelayTargets int
	// SimulateFrontier controls whether frontier designs are re-run in
	// the detailed simulator for validation (Figures 3-4).
	SimulateFrontier bool
}

// FrontierPoint pairs the model's view of a pareto-optimal design with
// its simulated ground truth (when validation ran).
type FrontierPoint struct {
	Index      int // flat index in the study space
	Config     arch.Config
	ModelDelay float64
	ModelPower float64
	SimDelay   float64 // zero unless validated
	SimPower   float64
}

// Optimum is one row of the paper's Table 2: the bips^3/w-maximizing
// design for a benchmark with model predictions and signed errors
// relative to simulation.
type Optimum struct {
	Benchmark  string
	Config     arch.Config
	Point      arch.Point
	ModelDelay float64
	ModelPower float64
	SimDelay   float64
	SimPower   float64
	DelayErr   float64 // (model - sim) / sim, the paper's Table 2 convention
	PowerErr   float64
	ModelEff   float64 // predicted bips^3/w
}

// Result holds the study outputs for one benchmark.
type Result struct {
	Benchmark string

	// Characterization is the full exhaustive prediction (Figure 2's
	// scatter); indices follow the study space's flat ordering.
	Characterization []core.Prediction

	// Frontier is the discretized pareto frontier (Figure 3).
	Frontier []FrontierPoint

	// PerfErrs and PowerErrs are |obs-pred|/pred at frontier points
	// (Figure 4); empty if SimulateFrontier was off.
	PerfErrs, PowerErrs []float64

	// Best is the benchmark's Table 2 row.
	Best Optimum
}

// Run executes the pareto study for one benchmark.
func Run(e *core.Explorer, bench string, opts Options) (*Result, error) {
	sp := obs.Begin("study.pareto", obs.String("bench", bench))
	defer sp.End()
	if opts.DelayTargets <= 0 {
		opts.DelayTargets = 40
	}
	preds, err := e.ExhaustivePredict(bench)
	if err != nil {
		return nil, err
	}
	space := e.StudySpace

	// Build the delay-power cloud.
	points := make([]pareto.Point, len(preds))
	for i, p := range preds {
		points[i] = pareto.Point{
			ID:    p.Index,
			Delay: metrics.Delay(p.BIPS),
			Power: p.Watts,
		}
	}
	frontier, err := pareto.DiscretizedFrontier(points, opts.DelayTargets)
	if err != nil {
		return nil, err
	}

	res := &Result{Benchmark: bench, Characterization: preds}
	for _, fp := range frontier {
		cfg := space.Config(space.PointAt(fp.ID))
		res.Frontier = append(res.Frontier, FrontierPoint{
			Index:      fp.ID,
			Config:     cfg,
			ModelDelay: fp.Delay,
			ModelPower: fp.Power,
		})
	}

	if opts.SimulateFrontier && len(res.Frontier) > 0 {
		// Validate the whole frontier as one batch: the simulations run
		// concurrently on the explorer's evaluation engine.
		reqs := make([]eval.Request, len(res.Frontier))
		for i, fp := range res.Frontier {
			reqs[i] = eval.Request{Config: fp.Config, Bench: bench}
		}
		sims, err := e.SimulateBatch(context.Background(), reqs)
		if err != nil {
			return nil, err
		}
		for i := range res.Frontier {
			fp := &res.Frontier[i]
			fp.SimDelay = metrics.Delay(sims[i].BIPS)
			fp.SimPower = sims[i].Watts
			res.PerfErrs = append(res.PerfErrs, stats.RelErr(fp.SimDelay, fp.ModelDelay))
			res.PowerErrs = append(res.PowerErrs, stats.RelErr(fp.SimPower, fp.ModelPower))
		}
	}

	best, err := findOptimum(e, bench, preds)
	if err != nil {
		return nil, err
	}
	res.Best = *best
	return res, nil
}

// findOptimum locates the predicted bips^3/w-maximizing design and
// simulates it for the Table 2 error columns.
func findOptimum(e *core.Explorer, bench string, preds []core.Prediction) (*Optimum, error) {
	space := e.StudySpace
	bestIdx, bestEff := core.BestEfficiency(preds)
	if bestIdx < 0 {
		return nil, fmt.Errorf("paretostudy: no valid predictions for %s", bench)
	}
	pt := space.PointAt(bestIdx)
	cfg := space.Config(pt)
	o := &Optimum{
		Benchmark:  bench,
		Config:     cfg,
		Point:      pt,
		ModelDelay: metrics.Delay(preds[bestIdx].BIPS),
		ModelPower: preds[bestIdx].Watts,
		ModelEff:   bestEff,
	}
	bips, watts, err := e.Simulate(cfg, bench)
	if err != nil {
		return nil, err
	}
	o.SimDelay = metrics.Delay(bips)
	o.SimPower = watts
	o.DelayErr = stats.SignedRelErr(o.SimDelay, o.ModelDelay)
	o.PowerErr = stats.SignedRelErr(o.SimPower, o.ModelPower)
	return o, nil
}

// RunSuite executes the study for every benchmark the explorer models.
func RunSuite(e *core.Explorer, opts Options) (map[string]*Result, error) {
	out := make(map[string]*Result)
	for _, bench := range e.Benchmarks() {
		r, err := Run(e, bench, opts)
		if err != nil {
			return nil, err
		}
		out[bench] = r
	}
	return out, nil
}

// ErrorSummary aggregates the frontier validation errors across
// benchmarks: the overall medians quoted in Section 4.3.
func ErrorSummary(results map[string]*Result) (perfMedian, powerMedian float64, ok bool) {
	var perf, power []float64
	for _, r := range results {
		perf = append(perf, r.PerfErrs...)
		power = append(power, r.PowerErrs...)
	}
	if len(perf) == 0 || len(power) == 0 {
		return 0, 0, false
	}
	return stats.Median(perf), stats.Median(power), true
}
