package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/arch"
	"repro/internal/ckpt"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/shard"
)

// DefaultSweepCheckpointEvery is the sweep-shard checkpoint stride when
// Options.SweepCheckpointEvery is zero: one depth block of the study
// space, so a killed sweep shard loses at most 37,500 of its points and
// checkpoint writes stay rare relative to the ~24M points/s kernel.
const DefaultSweepCheckpointEvery = 37500

// ErrShardIncomplete is returned by the merge entry points when a shard
// checkpoint exists but has not finished its range — the worker is
// still running, or died and was never resumed to completion.
var ErrShardIncomplete = errors.New("core: shard incomplete")

// sweepShardID names shard i/n of one benchmark's exhaustive sweep. The
// domain fingerprint is the study space hash, so a shard swept over a
// different space (or partition) can never be resumed or merged here.
func (e *Explorer) sweepShardID(i, n int) shard.ID {
	return shard.ID{Domain: "sweep", Space: e.StudySpace.Fingerprint(), Index: i, Count: n}
}

// datasetShardID names shard i/n of the dataset-build domain: the
// bench-major (benchmark × config-index) flat range. The fingerprint is
// the sampling space hash; the seed and sample count that pick the
// configs are already part of the base identity.
func (e *Explorer) datasetShardID(i, n int) shard.ID {
	return shard.ID{Domain: "dataset", Space: e.SampleSpace.Fingerprint(), Index: i, Count: n}
}

// Shard file paths carry Options.ShardSuffix, so a speculative backup
// attempt (suffix ".spec") writes beside the primary instead of racing
// it on the same names; PromoteShardCheckpoints adopts a winner's files.
func (e *Explorer) sweepShardPath(bench string, i, n int) string {
	return filepath.Join(e.opts.CheckpointDir,
		fmt.Sprintf("sweep-shard-%dof%d-%s.ckpt%s", i, n, bench, e.opts.ShardSuffix))
}

func (e *Explorer) datasetShardPath(i, n int) string {
	return filepath.Join(e.opts.CheckpointDir,
		fmt.Sprintf("train-shard-%dof%d.ckpt%s", i, n, e.opts.ShardSuffix))
}

func (e *Explorer) beaconPath(domain string, i, n int) string {
	return shard.BeaconPath(e.opts.CheckpointDir, domain, i, n) + e.opts.ShardSuffix
}

// beaconWriter publishes a shard worker's progress heartbeat at every
// checkpoint chunk; the coordinator's monitor reads it to tell a slow
// worker from a stuck one. The sequence number continues from whatever
// beacon is already on disk, so a restarted (resumed) attempt registers
// as progress even when its first chunk re-lands on the same cursor.
type beaconWriter struct {
	path string
	b    shard.Beacon
}

func (e *Explorer) newBeaconWriter(domain string, i, n int, r shard.Range) *beaconWriter {
	w := &beaconWriter{
		path: e.beaconPath(domain, i, n),
		b: shard.Beacon{
			Version: shard.BeaconVersion,
			Domain:  domain,
			Index:   i,
			Count:   n,
			Lo:      r.Lo,
			Hi:      r.Hi,
			Cursor:  r.Lo,
			PID:     os.Getpid(),
		},
	}
	if prev, err := shard.ReadBeacon(w.path); err == nil {
		w.b.Seq = prev.Seq
	}
	return w
}

// update publishes progress through absolute index cursor. A failed
// heartbeat fails the shard: a worker nobody can watch must be
// restarted, not trusted to run on invisibly.
func (w *beaconWriter) update(bench string, cursor int) error {
	w.b.Seq++
	w.b.Bench = bench
	w.b.Cursor = cursor
	w.b.Time = time.Now().UnixNano()
	if err := shard.WriteBeacon(w.path, w.b); err != nil {
		return fmt.Errorf("core: publishing shard beacon: %w", err)
	}
	return nil
}

// shardIdentity keys a shard checkpoint: the run identity (seed, sample
// counts, trace length, benchmarks) plus the shard ID (domain
// fingerprint, i/n). Both must match for ckpt.Load to accept the file.
func (e *Explorer) shardIdentity(id shard.ID) string {
	return e.identity() + ";" + id.String()
}

// SweepShardRange returns the flat-index range of the study space that
// sweep shard i of n owns: the arithmetic partition with boundaries
// snapped to the sweep tile size, which divides the space's depth
// blocks evenly — so shards never split a worker tile or a
// arch.Space.DepthBlock, and the sharded tiling matches what depth
// studies and full sweeps see.
func (e *Explorer) SweepShardRange(i, n int) shard.Range {
	tile := e.opts.SweepTile
	if tile <= 0 {
		tile = DefaultSweepTile
	}
	return shard.OfAligned(e.StudySpace.Size(), i, n, tile)
}

// DatasetShardRange returns the flat range of the bench-major dataset
// domain (index = bench*TrainSamples + sample) that shard i of n owns.
func (e *Explorer) DatasetShardRange(i, n int) shard.Range {
	return shard.Of(len(e.benchmarks)*e.opts.TrainSamples, i, n)
}

// sweepShardCheckpoint is one sweep shard's progress: response columns
// for the flat indices [Lo, Hi) of the study space, valid through
// absolute index Completed.
type sweepShardCheckpoint struct {
	Lo        int       `json:"lo"`
	Hi        int       `json:"hi"`
	Completed int       `json:"completed"`
	BIPS      []float64 `json:"bips"`
	Watts     []float64 `json:"watts"`
}

// datasetShardCheckpoint is one dataset shard's progress over the
// bench-major domain, same shape as sweepShardCheckpoint.
type datasetShardCheckpoint struct {
	Lo        int       `json:"lo"`
	Hi        int       `json:"hi"`
	Completed int       `json:"completed"`
	BIPS      []float64 `json:"bips"`
	Watts     []float64 `json:"watts"`
}

// loadShardCheckpoint loads and shape-checks a shard checkpoint into
// the given fields. Missing files mean "start fresh" (completed = lo);
// any other failure — identity mismatch, checksum, malformed shape — is
// an error, matching loadDatasetCheckpoint's refuse-don't-discard
// policy.
func loadShardCheckpoint(path, identity string, r shard.Range, c interface {
	bounds() (lo, hi, completed int)
}) (completed int, found bool, err error) {
	// The concrete types share a shape; callers pass a pointer to one.
	if err := ckpt.Load(path, identity, c); err != nil {
		if errors.Is(err, ckpt.ErrNotExist) {
			return r.Lo, false, nil
		}
		return 0, false, fmt.Errorf("core: resuming shard checkpoint: %w", err)
	}
	lo, hi, done := c.bounds()
	if lo != r.Lo || hi != r.Hi || done < lo || done > hi {
		return 0, false, fmt.Errorf("core: shard checkpoint %s covers [%d,%d) done=%d, want [%d,%d)",
			path, lo, hi, done, r.Lo, r.Hi)
	}
	ckptResumedCtr.Add(1)
	return done, true, nil
}

func (c *sweepShardCheckpoint) bounds() (int, int, int)   { return c.Lo, c.Hi, c.Completed }
func (c *datasetShardCheckpoint) bounds() (int, int, int) { return c.Lo, c.Hi, c.Completed }

// SweepShard computes sweep shard i of n for one benchmark: the model
// sweep over SweepShardRange(i, n), checkpointed to the shard's own
// identity-keyed file every SweepCheckpointEvery points so a killed
// worker resumes mid-shard instead of restarting it. Requires trained
// models and CheckpointDir (the checkpoint file is the shard's output).
// With Options.Resume, an existing matching checkpoint seeds the run; a
// checkpoint from a different shard, partition, space or run identity
// is refused with a typed error. The completed file holds exactly what
// a single-process sweep computes for those indices.
func (e *Explorer) SweepShard(ctx context.Context, bench string, i, n int) error {
	if _, _, err := e.Models(bench); err != nil {
		return err
	}
	if e.opts.CheckpointDir == "" {
		return fmt.Errorf("core: SweepShard requires CheckpointDir (shard output is its checkpoint)")
	}
	r := e.SweepShardRange(i, n)
	path := e.sweepShardPath(bench, i, n)
	identity := e.shardIdentity(e.sweepShardID(i, n))

	ctx, sp := obs.Start(ctx, "core.sweep.shard",
		obs.String("bench", bench), obs.String("shard", fmt.Sprintf("%d/%d", i, n)),
		obs.Int("lo", int64(r.Lo)), obs.Int("hi", int64(r.Hi)))
	defer sp.End()

	c := &sweepShardCheckpoint{
		Lo: r.Lo, Hi: r.Hi, Completed: r.Lo,
		BIPS:  make([]float64, r.Len()),
		Watts: make([]float64, r.Len()),
	}
	completed := r.Lo
	if e.opts.Resume {
		loaded := &sweepShardCheckpoint{}
		done, found, err := loadShardCheckpoint(path, identity, r, loaded)
		if err != nil {
			return err
		}
		if found {
			if len(loaded.BIPS) != r.Len() || len(loaded.Watts) != r.Len() {
				return fmt.Errorf("core: shard checkpoint %s carries %d/%d values for %d points",
					path, len(loaded.BIPS), len(loaded.Watts), r.Len())
			}
			c = loaded
			completed = done
		}
	}

	// Full-space buffer: the range kernels write at absolute indices.
	// 263k predictions is ~6 MB — cheap next to the sweep itself.
	dst := make([]Prediction, e.StudySpace.Size())
	every := e.opts.SweepCheckpointEvery
	if every <= 0 {
		every = DefaultSweepCheckpointEvery
	}
	// The opening heartbeat covers the gap between process start and the
	// first chunk (and registers a resume as a sign of life).
	beacon := e.newBeaconWriter("sweep", i, n, r)
	if err := beacon.update(bench, completed); err != nil {
		return err
	}
	for lo := completed; lo < r.Hi; lo += every {
		hi := lo + every
		if hi > r.Hi {
			hi = r.Hi
		}
		// Deterministic kill/hang site for coordinator and CI fault
		// drills: one visit per checkpoint chunk.
		if err := fault.HereCtx(ctx, "core.sweep.shard"); err != nil {
			return err
		}
		if err := e.ExhaustivePredictRange(ctx, bench, lo, hi, dst); err != nil {
			return err
		}
		for idx := lo; idx < hi; idx++ {
			c.BIPS[idx-r.Lo] = dst[idx].BIPS
			c.Watts[idx-r.Lo] = dst[idx].Watts
		}
		c.Completed = hi
		if err := ckpt.Save(path, identity, c); err != nil {
			return fmt.Errorf("core: writing sweep shard checkpoint: %w", err)
		}
		ckptWrittenCtr.Add(1)
		if err := beacon.update(bench, hi); err != nil {
			return err
		}
	}
	if completed >= r.Hi {
		// Nothing left (resume found a finished shard, or the shard is
		// empty): still persist the file so merge finds every shard.
		if err := ckpt.Save(path, identity, c); err != nil {
			return fmt.Errorf("core: writing sweep shard checkpoint: %w", err)
		}
		ckptWrittenCtr.Add(1)
	}
	return nil
}

// MergeSweepShards reassembles the n sweep shard checkpoints of every
// benchmark into the standard single-process sweep checkpoint files
// (sweep-<bench>.ckpt). Every shard must exist, match this run's
// identity and partition, and be complete (ErrShardIncomplete
// otherwise); the pieces must tile the study space exactly. The merged
// file is byte-identical to what an unsharded checkpointed sweep
// writes, because the values are bitwise equal and the payload shape is
// the same.
func (e *Explorer) MergeSweepShards(n int) error {
	if e.opts.CheckpointDir == "" {
		return fmt.Errorf("core: MergeSweepShards requires CheckpointDir")
	}
	if n <= 0 {
		return fmt.Errorf("core: MergeSweepShards needs a positive shard count, got %d", n)
	}
	size := e.StudySpace.Size()
	for _, bench := range e.benchmarks {
		pieces := make([]shard.Piece, 0, n)
		for i := 0; i < n; i++ {
			var c sweepShardCheckpoint
			path := e.sweepShardPath(bench, i, n)
			if err := ckpt.Load(path, e.shardIdentity(e.sweepShardID(i, n)), &c); err != nil {
				return fmt.Errorf("core: loading sweep shard %d/%d for %s: %w", i, n, bench, err)
			}
			r := e.SweepShardRange(i, n)
			if c.Lo != r.Lo || c.Hi != r.Hi {
				return fmt.Errorf("core: sweep shard %d/%d covers [%d,%d), partition says %v",
					i, n, c.Lo, c.Hi, r)
			}
			if c.Completed != c.Hi {
				return fmt.Errorf("%w: sweep shard %d/%d for %s at %d of [%d,%d)",
					ErrShardIncomplete, i, n, bench, c.Completed, c.Lo, c.Hi)
			}
			pieces = append(pieces, shard.Piece{Lo: c.Lo, Hi: c.Hi, BIPS: c.BIPS, Watts: c.Watts})
		}
		bips, watts, err := shard.MergeColumns(size, pieces)
		if err != nil {
			return fmt.Errorf("core: merging sweep shards for %s: %w", bench, err)
		}
		if err := ckpt.Save(e.sweepCheckpointPath(bench), e.identity(), sweepCheckpoint{
			BIPS: bips, Watts: watts,
		}); err != nil {
			return fmt.Errorf("core: writing merged sweep checkpoint: %w", err)
		}
		ckptWrittenCtr.Add(1)
	}
	return nil
}

// BuildDatasetShard simulates dataset shard i of n: the slice
// [Lo, Hi) of the bench-major (benchmark × config-index) domain, in
// CheckpointEvery-sample chunks with an identity-keyed checkpoint write
// after each, so a killed worker resumes mid-shard. Chunks may span
// benchmark boundaries; per-(config, benchmark) simulation results are
// deterministic and independent of batch composition, so the shard's
// values are bitwise what a single-process build computes for the same
// indices. Requires CheckpointDir. Training samples are drawn from the
// run seed exactly as Train does.
func (e *Explorer) BuildDatasetShard(ctx context.Context, i, n int) error {
	if e.opts.CheckpointDir == "" {
		return fmt.Errorf("core: BuildDatasetShard requires CheckpointDir (shard output is its checkpoint)")
	}
	samples := e.opts.TrainSamples
	r := e.DatasetShardRange(i, n)
	path := e.datasetShardPath(i, n)
	identity := e.shardIdentity(e.datasetShardID(i, n))

	ctx, sp := obs.Start(ctx, "core.dataset.shard",
		obs.String("shard", fmt.Sprintf("%d/%d", i, n)),
		obs.Int("lo", int64(r.Lo)), obs.Int("hi", int64(r.Hi)))
	defer sp.End()

	c := &datasetShardCheckpoint{
		Lo: r.Lo, Hi: r.Hi, Completed: r.Lo,
		BIPS:  make([]float64, r.Len()),
		Watts: make([]float64, r.Len()),
	}
	completed := r.Lo
	if e.opts.Resume {
		loaded := &datasetShardCheckpoint{}
		done, found, err := loadShardCheckpoint(path, identity, r, loaded)
		if err != nil {
			return err
		}
		if found {
			if len(loaded.BIPS) != r.Len() || len(loaded.Watts) != r.Len() {
				return fmt.Errorf("core: shard checkpoint %s carries %d/%d values for %d samples",
					path, len(loaded.BIPS), len(loaded.Watts), r.Len())
			}
			c = loaded
			completed = done
		}
	}

	points := e.SampleSpace.SampleUAR(samples, e.opts.Seed)
	configs := make([]arch.Config, len(points))
	for j, p := range points {
		configs[j] = e.SampleSpace.Config(p)
	}
	chunk := e.opts.CheckpointEvery
	if chunk <= 0 {
		chunk = DefaultCheckpointEvery
	}
	beacon := e.newBeaconWriter("dataset", i, n, r)
	if err := beacon.update("", completed); err != nil {
		return err
	}
	for lo := completed; lo < r.Hi; lo += chunk {
		hi := lo + chunk
		if hi > r.Hi {
			hi = r.Hi
		}
		// Same per-chunk kill/hang site the sweep domain has, so fault
		// drills can stall a dataset build at an exact chunk too.
		if err := fault.HereCtx(ctx, "core.dataset.shard"); err != nil {
			return err
		}
		reqs := make([]eval.Request, hi-lo)
		for idx := lo; idx < hi; idx++ {
			reqs[idx-lo] = eval.Request{
				Config: configs[idx%samples],
				Bench:  e.benchmarks[idx/samples],
			}
		}
		results, err := e.SimulateBatch(ctx, reqs)
		if err != nil {
			return err
		}
		for j, res := range results {
			c.BIPS[lo+j-r.Lo] = res.BIPS
			c.Watts[lo+j-r.Lo] = res.Watts
		}
		c.Completed = hi
		if err := ckpt.Save(path, identity, c); err != nil {
			return fmt.Errorf("core: writing dataset shard checkpoint: %w", err)
		}
		ckptWrittenCtr.Add(1)
		if err := beacon.update(e.benchmarks[(hi-1)/samples], hi); err != nil {
			return err
		}
	}
	if completed >= r.Hi {
		if err := ckpt.Save(path, identity, c); err != nil {
			return fmt.Errorf("core: writing dataset shard checkpoint: %w", err)
		}
		ckptWrittenCtr.Add(1)
	}
	return nil
}

// MergeDatasetShards reassembles the n dataset shard checkpoints into
// the standard per-benchmark training checkpoints (train-<bench>.ckpt,
// marked fully complete), byte-identical to the files an unsharded
// checkpointed Train writes. A subsequent Train with Resume loads them
// and fits models without a single simulation. Every shard must exist,
// match identity and partition, and be complete.
func (e *Explorer) MergeDatasetShards(n int) error {
	if e.opts.CheckpointDir == "" {
		return fmt.Errorf("core: MergeDatasetShards requires CheckpointDir")
	}
	if n <= 0 {
		return fmt.Errorf("core: MergeDatasetShards needs a positive shard count, got %d", n)
	}
	samples := e.opts.TrainSamples
	perBench := make(map[string][]shard.Piece, len(e.benchmarks))
	for i := 0; i < n; i++ {
		var c datasetShardCheckpoint
		path := e.datasetShardPath(i, n)
		if err := ckpt.Load(path, e.shardIdentity(e.datasetShardID(i, n)), &c); err != nil {
			return fmt.Errorf("core: loading dataset shard %d/%d: %w", i, n, err)
		}
		r := e.DatasetShardRange(i, n)
		if c.Lo != r.Lo || c.Hi != r.Hi {
			return fmt.Errorf("core: dataset shard %d/%d covers [%d,%d), partition says %v",
				i, n, c.Lo, c.Hi, r)
		}
		if c.Completed != c.Hi {
			return fmt.Errorf("%w: dataset shard %d/%d at %d of [%d,%d)",
				ErrShardIncomplete, i, n, c.Completed, c.Lo, c.Hi)
		}
		for _, seg := range shard.Segments(e.benchmarks, samples, r) {
			absLo, absHi := seg.Index*samples+seg.Lo, seg.Index*samples+seg.Hi
			perBench[seg.Group] = append(perBench[seg.Group], shard.Piece{
				Lo:    seg.Lo,
				Hi:    seg.Hi,
				BIPS:  c.BIPS[absLo-r.Lo : absHi-r.Lo],
				Watts: c.Watts[absLo-r.Lo : absHi-r.Lo],
			})
		}
	}
	for _, bench := range e.benchmarks {
		bips, watts, err := shard.MergeColumns(samples, perBench[bench])
		if err != nil {
			return fmt.Errorf("core: merging dataset shards for %s: %w", bench, err)
		}
		if err := e.saveDatasetCheckpoint(e.trainCheckpointPath(bench), samples, bips, watts); err != nil {
			return err
		}
	}
	return nil
}

// PromoteShardCheckpoints renames the suffixed shard checkpoint files
// of shard i/n over the canonical (unsuffixed) names — how a
// coordinator adopts a winning speculative attempt's output. Because
// shard values are deterministic and checkpoints identity-keyed, the
// promoted files are bitwise what the primary would have written, so
// the merge stays byte-identical to a fault-free run. Must be called
// only after both attempts' processes are reaped (no writer may be
// live). The explorer doing the promoting holds the canonical
// (suffix-free) options; the backup's leftover beacon is removed
// best-effort.
func (e *Explorer) PromoteShardCheckpoints(domain string, i, n int, suffix string) error {
	if suffix == "" {
		return fmt.Errorf("core: promoting shard checkpoints needs a non-empty suffix")
	}
	if e.opts.CheckpointDir == "" {
		return fmt.Errorf("core: PromoteShardCheckpoints requires CheckpointDir")
	}
	var canonical []string
	switch domain {
	case "sweep":
		for _, bench := range e.benchmarks {
			canonical = append(canonical, e.sweepShardPath(bench, i, n))
		}
	case "dataset":
		canonical = append(canonical, e.datasetShardPath(i, n))
	default:
		return fmt.Errorf("core: unknown shard domain %q", domain)
	}
	for _, path := range canonical {
		if err := os.Rename(path+suffix, path); err != nil {
			return fmt.Errorf("core: promoting speculative shard %d/%d: %w", i, n, err)
		}
	}
	os.Remove(e.beaconPath(domain, i, n) + suffix)
	return nil
}
