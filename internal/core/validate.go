package core

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/stats"
)

// BenchmarkErrors holds the validation error samples for one benchmark:
// the paper's |observed - predicted| / predicted metric for performance
// and power (Section 3.4).
type BenchmarkErrors struct {
	Benchmark string
	Perf      []float64
	Power     []float64
}

// ValidationReport is the data behind the paper's Figure 1: per-benchmark
// error distributions for random validation designs.
type ValidationReport struct {
	PerBenchmark []BenchmarkErrors
}

// PerfBoxplot returns the error boxplot for one benchmark's performance
// predictions.
func (r *ValidationReport) PerfBoxplot(bench string) (stats.Boxplot, error) {
	for _, b := range r.PerBenchmark {
		if b.Benchmark == bench {
			return stats.NewBoxplot(b.Perf), nil
		}
	}
	return stats.Boxplot{}, fmt.Errorf("core: no validation data for %q", bench)
}

// OverallMedians returns the suite-wide median performance and power
// errors, the headline numbers of Section 3.4 (paper: 7.2% and 5.4%).
func (r *ValidationReport) OverallMedians() (perf, power float64) {
	var allPerf, allPower []float64
	for _, b := range r.PerBenchmark {
		allPerf = append(allPerf, b.Perf...)
		allPower = append(allPower, b.Power...)
	}
	return stats.Median(allPerf), stats.Median(allPower)
}

// Validate simulates n designs sampled uniformly at random from the
// sampling space (disjoint seed from training) and reports prediction
// errors against the models. n defaults to the configured
// ValidationSamples when zero.
func (e *Explorer) Validate(n int) (*ValidationReport, error) {
	if !e.Trained() {
		return nil, fmt.Errorf("core: Validate before Train")
	}
	if n <= 0 {
		n = e.opts.ValidationSamples
	}
	if n <= 0 {
		n = 100
	}
	// A different seed stream keeps validation designs independent of
	// training samples.
	points := e.SampleSpace.SampleUAR(n, e.opts.Seed^0x76616c)
	configs := make([]arch.Config, len(points))
	for i, pt := range points {
		configs[i] = e.SampleSpace.Config(pt)
	}
	ctx, sp := obs.Start(context.Background(), "core.validate",
		obs.Int("designs", int64(n)),
		obs.Int("benchmarks", int64(len(e.benchmarks))))
	defer sp.End()
	report := &ValidationReport{}
	for _, bench := range e.benchmarks {
		reqs := eval.RequestsFor(configs, bench)
		observed, err := e.SimulateBatch(ctx, reqs)
		if err != nil {
			return nil, err
		}
		pred, err := e.PredictBatch(ctx, reqs)
		if err != nil {
			return nil, err
		}
		be := BenchmarkErrors{
			Benchmark: bench,
			Perf:      make([]float64, 0, n),
			Power:     make([]float64, 0, n),
		}
		for i := range reqs {
			be.Perf = append(be.Perf, stats.RelErr(observed[i].BIPS, pred[i].BIPS))
			be.Power = append(be.Power, stats.RelErr(observed[i].Watts, pred[i].Watts))
		}
		report.PerBenchmark = append(report.PerBenchmark, be)
	}
	return report, nil
}
