package core

import (
	"fmt"

	"repro/internal/stats"
)

// BenchmarkErrors holds the validation error samples for one benchmark:
// the paper's |observed - predicted| / predicted metric for performance
// and power (Section 3.4).
type BenchmarkErrors struct {
	Benchmark string
	Perf      []float64
	Power     []float64
}

// ValidationReport is the data behind the paper's Figure 1: per-benchmark
// error distributions for random validation designs.
type ValidationReport struct {
	PerBenchmark []BenchmarkErrors
}

// PerfBoxplot returns the error boxplot for one benchmark's performance
// predictions.
func (r *ValidationReport) PerfBoxplot(bench string) (stats.Boxplot, error) {
	for _, b := range r.PerBenchmark {
		if b.Benchmark == bench {
			return stats.NewBoxplot(b.Perf), nil
		}
	}
	return stats.Boxplot{}, fmt.Errorf("core: no validation data for %q", bench)
}

// OverallMedians returns the suite-wide median performance and power
// errors, the headline numbers of Section 3.4 (paper: 7.2% and 5.4%).
func (r *ValidationReport) OverallMedians() (perf, power float64) {
	var allPerf, allPower []float64
	for _, b := range r.PerBenchmark {
		allPerf = append(allPerf, b.Perf...)
		allPower = append(allPower, b.Power...)
	}
	return stats.Median(allPerf), stats.Median(allPower)
}

// Validate simulates n designs sampled uniformly at random from the
// sampling space (disjoint seed from training) and reports prediction
// errors against the models. n defaults to the configured
// ValidationSamples when zero.
func (e *Explorer) Validate(n int) (*ValidationReport, error) {
	if !e.Trained() {
		return nil, fmt.Errorf("core: Validate before Train")
	}
	if n <= 0 {
		n = e.opts.ValidationSamples
	}
	if n <= 0 {
		n = 100
	}
	// A different seed stream keeps validation designs independent of
	// training samples.
	points := e.SampleSpace.SampleUAR(n, e.opts.Seed^0x76616c)
	report := &ValidationReport{}
	for _, bench := range e.benchmarks {
		be := BenchmarkErrors{
			Benchmark: bench,
			Perf:      make([]float64, 0, n),
			Power:     make([]float64, 0, n),
		}
		for _, pt := range points {
			cfg := e.SampleSpace.Config(pt)
			obsB, obsW, err := e.Simulate(cfg, bench)
			if err != nil {
				return nil, err
			}
			predB, predW, err := e.Predict(cfg, bench)
			if err != nil {
				return nil, err
			}
			be.Perf = append(be.Perf, stats.RelErr(obsB, predB))
			be.Power = append(be.Power, stats.RelErr(obsW, predW))
		}
		report.PerBenchmark = append(report.PerBenchmark, be)
	}
	return report, nil
}
