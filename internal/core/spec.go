package core

import (
	"repro/internal/arch"
	"repro/internal/regression"
)

// SpecBuilder constructs a regression specification for a response column
// and transform. Different builders express the paper's model and the
// ablated variants benchmarked in bench_test.go.
type SpecBuilder func(response string, t regression.Transform) *regression.Spec

// PaperSpec is the model of Sections 3.2-3.3: restricted cubic splines
// with 4 knots for predictors strongly correlated with the response
// (pipeline depth, register file size), 3 knots for weaker ones (cache
// sizes, reservation stations), a linear width term (only three levels
// exist), and the domain-knowledge interactions — depth with cache sizes
// (deeper pipelines raise the cycle cost of misses), width with register
// file and queue sizes (wide issue needs in-flight capacity), and
// adjacent cache levels.
func PaperSpec(response string, t regression.Transform) *regression.Spec {
	return regression.NewSpec(response, t).
		Spline(arch.PredDepth, 4).
		Linear(arch.PredWidth).
		Spline(arch.PredRegs, 4).
		Spline(arch.PredResv, 3).
		Spline(arch.PredIL1, 3).
		Spline(arch.PredDL1, 3).
		Spline(arch.PredL2, 3).
		Interact(arch.PredDepth, arch.PredL2).
		Interact(arch.PredDepth, arch.PredDL1).
		Interact(arch.PredWidth, arch.PredRegs).
		Interact(arch.PredWidth, arch.PredResv).
		Interact(arch.PredDL1, arch.PredL2).
		Interact(arch.PredIL1, arch.PredL2)
}

// LinearSpec ablates the splines: every predictor enters linearly,
// interactions retained.
func LinearSpec(response string, t regression.Transform) *regression.Spec {
	s := regression.NewSpec(response, t)
	for _, name := range arch.PredictorNames() {
		s.Linear(name)
	}
	return s.
		Interact(arch.PredDepth, arch.PredL2).
		Interact(arch.PredDepth, arch.PredDL1).
		Interact(arch.PredWidth, arch.PredRegs).
		Interact(arch.PredWidth, arch.PredResv).
		Interact(arch.PredDL1, arch.PredL2).
		Interact(arch.PredIL1, arch.PredL2)
}

// NoInteractionSpec ablates the interaction terms from the paper's model.
func NoInteractionSpec(response string, t regression.Transform) *regression.Spec {
	return regression.NewSpec(response, t).
		Spline(arch.PredDepth, 4).
		Linear(arch.PredWidth).
		Spline(arch.PredRegs, 4).
		Spline(arch.PredResv, 3).
		Spline(arch.PredIL1, 3).
		Spline(arch.PredDL1, 3).
		Spline(arch.PredL2, 3)
}

// UntransformedSpec ablates the response transformations: the paper's
// terms fit on the raw response scale.
func UntransformedSpec(response string, _ regression.Transform) *regression.Spec {
	return PaperSpec(response, regression.Identity)
}
