package core

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
)

// ckptTestOptions is a small but real training configuration: enough
// samples for several checkpoint chunks, short traces so the whole test
// stays fast.
func ckptTestOptions() Options {
	opts := DefaultOptions()
	opts.TrainSamples = 40
	opts.ValidationSamples = 5
	opts.TraceLen = 2000
	opts.Benchmarks = []string{"gzip"}
	opts.Workers = 2
	opts.CheckpointEvery = 10
	return opts
}

// trainGolden runs an uninterrupted, checkpoint-free training and
// returns the explorer.
func trainGolden(t *testing.T) *Explorer {
	t.Helper()
	golden, err := New(ckptTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}
	return golden
}

// TestKillAndResumeBitIdentical is the crash-safety acceptance test: a
// training run killed mid-dataset by an injected fatal fault resumes
// from its checkpoint and produces a dataset and model fit bit-identical
// to an uninterrupted run — while re-simulating only the samples past
// the last checkpoint.
func TestKillAndResumeBitIdentical(t *testing.T) {
	if fault.Active() {
		t.Skip("test arms its own fault plan; exact eval counts need a fault-free world")
	}
	golden := trainGolden(t)

	dir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = dir

	// Kill the run at exactly the 16th simulation: chunk [0,10) has
	// checkpointed, chunk [10,20) dies mid-flight. Fatal injections are
	// not transient, so the retry layer must not absorb the kill.
	prev := fault.Current()
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "eval.invoke", Kind: fault.KindFatal, After: 15, Every: 1, Count: 1},
	}})
	killed, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	err = killed.Train()
	fault.Enable(prev)
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("killed Train returned %v, want wrapped *fault.Injected", err)
	}
	if killed.Trained() {
		t.Fatal("killed run reports trained models")
	}

	// Resume in a fresh process (a fresh Explorer): completed chunks load
	// from the checkpoint, the rest re-simulate.
	opts.Resume = true
	resumed, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Train(); err != nil {
		t.Fatalf("resumed Train: %v", err)
	}
	// One chunk (10 samples) was checkpointed before the kill, so the
	// resumed run simulates exactly the other 30.
	if got := resumed.SimStats().Evaluations; got != 30 {
		t.Errorf("resumed run simulated %d samples, want 30 (10 checkpointed)", got)
	}

	// The dataset must be bit-identical to the uninterrupted run's.
	goldenDS := golden.trainData["gzip"]
	resumedDS := resumed.trainData["gzip"]
	if goldenDS == nil || resumedDS == nil {
		t.Fatal("missing train dataset")
	}
	for _, col := range []string{ColBIPS, ColWatts} {
		g, r := goldenDS.Column(col), resumedDS.Column(col)
		if len(g) != len(r) {
			t.Fatalf("column %s lengths differ: %d vs %d", col, len(g), len(r))
		}
		for i := range g {
			if g[i] != r[i] {
				t.Fatalf("column %s row %d: golden %v, resumed %v", col, i, g[i], r[i])
			}
		}
	}

	// And so must the model fit.
	for bench, gm := range golden.perf {
		_, gc := gm.Coefficients()
		_, rc := resumed.perf[bench].Coefficients()
		if len(gc) != len(rc) {
			t.Fatalf("%s perf coefficient counts differ", bench)
		}
		for i := range gc {
			if gc[i] != rc[i] {
				t.Fatalf("%s perf coefficient %d: golden %v, resumed %v", bench, i, gc[i], rc[i])
			}
		}
	}
}

// TestResumeSkipsCompletedDatasetAndSweep checks the fully-completed
// fast path: a finished run's checkpoints let a fresh explorer retrain
// with zero simulations and reload its sweep without re-running it.
func TestResumeSkipsCompletedDatasetAndSweep(t *testing.T) {
	if fault.Active() {
		t.Skip("exact eval counts need a fault-free world")
	}
	dir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = dir

	first, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Train(); err != nil {
		t.Fatal(err)
	}
	want, err := first.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}

	opts.Resume = true
	second, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Train(); err != nil {
		t.Fatal(err)
	}
	if got := second.SimStats().Evaluations; got != 0 {
		t.Errorf("resumed run simulated %d samples, want 0 (all checkpointed)", got)
	}
	got, err := second.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if swept := second.ModelStats().SweptPoints; swept != 0 {
		t.Errorf("resumed sweep evaluated %d points, want 0 (loaded from checkpoint)", swept)
	}
	if len(got) != len(want) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep point %d: first %+v, resumed %+v", i, want[i], got[i])
		}
	}
}

// TestResumeRefusesMismatchedIdentity: a checkpoint from a run with a
// different seed must not be silently mixed into this one.
func TestResumeRefusesMismatchedIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := ckptTestOptions()
	opts.CheckpointDir = dir
	first, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Train(); err != nil {
		t.Fatal(err)
	}

	opts.Seed++
	opts.Resume = true
	second, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Train(); !errors.Is(err, ckpt.ErrIdentity) {
		t.Fatalf("mismatched resume returned %v, want ckpt.ErrIdentity", err)
	}
}

// TestSweepGuardTripsOnCorruptionAndRecovers injects bit flips into
// every compiled sweep result: the per-tile guardrail must catch the
// divergence, trip, and re-run the sweep on the interpreted path so the
// final output is still correct.
func TestSweepGuardTripsOnCorruptionAndRecovers(t *testing.T) {
	opts := ckptTestOptions()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}

	// Golden output from the interpreted path of an untouched explorer.
	interp, err := New(func() Options { o := ckptTestOptions(); o.DisableCompile = true; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Train(); err != nil {
		t.Fatal(err)
	}
	want, err := interp.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}

	prev := fault.Current()
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "core.sweep.compiled", Kind: fault.KindFlip, Every: 1},
	}})
	got, err := e.ExhaustivePredict("gzip")
	fault.Enable(prev)
	if err != nil {
		t.Fatal(err)
	}
	checks, div, degraded := e.modelsBackend.GuardStats()
	if checks == 0 || div == 0 || !degraded {
		t.Fatalf("guard stats = %d/%d/%v after corrupted sweep, want trips", checks, div, degraded)
	}
	if len(got) != len(want) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d survived corruption: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Engine stats surface the guardrail through the backend probe.
	st := e.ModelStats()
	if st.GuardChecks != checks || st.GuardDivergences != div || !st.Degraded {
		t.Fatalf("engine stats %+v do not reflect guard %d/%d", st, checks, div)
	}
	if len(got) != e.StudySpace.Size() {
		t.Fatalf("sweep covered %d of %d points", len(got), e.StudySpace.Size())
	}
}
