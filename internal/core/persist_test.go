package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	e := testExplorer(t)
	var buf bytes.Buffer
	if err := e.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh explorer with the same benchmarks but no training.
	opts := e.Options()
	fresh, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Trained() {
		t.Fatal("fresh explorer claims training")
	}
	if err := fresh.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !fresh.Trained() {
		t.Fatal("loaded explorer not trained")
	}
	// Predictions must match bit-for-bit.
	for _, bench := range e.Benchmarks() {
		for _, cfg := range []arch.Config{arch.Baseline(), e.StudySpace.Config(arch.Point{0, 0, 0, 0, 0, 0, 0})} {
			b1, w1, err := e.Predict(cfg, bench)
			if err != nil {
				t.Fatal(err)
			}
			b2, w2, err := fresh.Predict(cfg, bench)
			if err != nil {
				t.Fatal(err)
			}
			if b1 != b2 || w1 != w2 {
				t.Fatalf("%s predictions differ after reload", bench)
			}
		}
	}
}

func TestSaveModelsRequiresTraining(t *testing.T) {
	opts := DefaultOptions()
	opts.Benchmarks = []string{"gzip"}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveModels(&bytes.Buffer{}); err == nil {
		t.Fatal("SaveModels before Train succeeded")
	}
}

func TestLoadModelsRejectsMismatchedSuite(t *testing.T) {
	e := testExplorer(t) // gzip, mcf, mesa
	var buf bytes.Buffer
	if err := e.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Benchmarks = []string{"ammp"} // not in the saved set
	other, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched model set accepted")
	}
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	e := testExplorer(t)
	if err := e.LoadModels(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := e.LoadModels(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLoadModelsInvalidatesSweepCache(t *testing.T) {
	e := testExplorer(t)
	before, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if &before[0] == &after[0] {
		t.Fatal("sweep cache survived model reload")
	}
	// But values must agree: same models.
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("reloaded models predict differently")
		}
	}
}
