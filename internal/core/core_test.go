package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/regression"
	"repro/internal/stats"
)

// testExplorer trains a small but real explorer once and shares it across
// tests; training is deterministic so sharing is safe.
var sharedExplorer *Explorer

func testExplorer(t *testing.T) *Explorer {
	t.Helper()
	if sharedExplorer != nil {
		return sharedExplorer
	}
	opts := DefaultOptions()
	opts.TrainSamples = 180
	opts.ValidationSamples = 30
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mcf", "mesa"}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	sharedExplorer = e
	return e
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{TrainSamples: 0, TraceLen: 100}); err == nil {
		t.Fatal("zero TrainSamples accepted")
	}
	if _, err := New(Options{TrainSamples: 10, TraceLen: 0}); err == nil {
		t.Fatal("zero TraceLen accepted")
	}
	if _, err := New(Options{TrainSamples: 10, TraceLen: 100, Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.TrainSamples != 1000 {
		t.Errorf("TrainSamples = %d, want the paper's 1000", o.TrainSamples)
	}
	if o.ValidationSamples != 100 {
		t.Errorf("ValidationSamples = %d, want the paper's 100", o.ValidationSamples)
	}
}

func TestUntrainedExplorerRefusesPrediction(t *testing.T) {
	opts := DefaultOptions()
	opts.Benchmarks = []string{"gzip"}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trained() {
		t.Fatal("fresh explorer claims to be trained")
	}
	if _, _, err := e.Predict(arch.Baseline(), "gzip"); err == nil {
		t.Fatal("Predict before Train succeeded")
	}
	if _, err := e.Validate(5); err == nil {
		t.Fatal("Validate before Train succeeded")
	}
	if _, err := e.ExhaustivePredict("gzip"); err == nil {
		t.Fatal("ExhaustivePredict before Train succeeded")
	}
}

func TestTrainedExplorerPredicts(t *testing.T) {
	e := testExplorer(t)
	if !e.Trained() {
		t.Fatal("explorer not trained")
	}
	for _, bench := range e.Benchmarks() {
		bips, watts, err := e.Predict(arch.Baseline(), bench)
		if err != nil {
			t.Fatal(err)
		}
		if bips <= 0 || bips > 20 {
			t.Fatalf("%s predicted bips = %v", bench, bips)
		}
		if watts <= 0 || watts > 500 {
			t.Fatalf("%s predicted watts = %v", bench, watts)
		}
	}
}

func TestPredictUnknownBenchmark(t *testing.T) {
	e := testExplorer(t)
	if _, _, err := e.Predict(arch.Baseline(), "ammp"); err == nil {
		t.Fatal("prediction for unmodeled benchmark succeeded")
	}
}

func TestSimulateMemoized(t *testing.T) {
	e := testExplorer(t)
	cfg := arch.Baseline()
	b1, w1, err := e.Simulate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b2, w2, err := e.Simulate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || w1 != w2 {
		t.Fatal("memoized simulation returned different values")
	}
}

// TestSimulateConcurrentSingleflight is the regression test for the old
// check-then-act race: two goroutines that missed the cache
// simultaneously both ran the full simulation for the same key. The
// engine's singleflight de-duplication must run the simulator exactly
// once however many callers race on one key.
func TestSimulateConcurrentSingleflight(t *testing.T) {
	opts := DefaultOptions()
	opts.TrainSamples = 10
	opts.TraceLen = 5000
	opts.Benchmarks = []string{"gzip"}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Baseline()
	const callers = 16
	type outcome struct {
		bips, watts float64
		err         error
	}
	results := make([]outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, w, err := e.Simulate(cfg, "gzip")
			results[i] = outcome{b, w, err}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r != results[0] {
			t.Fatalf("caller %d got %+v, want %+v", i, r, results[0])
		}
	}
	if st := e.SimStats(); st.Evaluations != 1 {
		t.Fatalf("simulator ran %d times for one key under %d concurrent callers, want exactly 1",
			st.Evaluations, callers)
	}
}

// TestExhaustivePredictWorkerInvariance pins the determinism contract:
// the sweep must be bit-identical whatever the worker count.
func TestExhaustivePredictWorkerInvariance(t *testing.T) {
	e := testExplorer(t)
	want, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		opts := e.Options()
		opts.Workers = workers
		fresh, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.SaveModels(&buf); err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadModels(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := fresh.ExhaustivePredict("gzip")
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prediction %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestExhaustivePredictIntoValidatesLength(t *testing.T) {
	e := testExplorer(t)
	if err := e.ExhaustivePredictInto(context.Background(), "gzip", make([]Prediction, 3)); err == nil {
		t.Fatal("short destination buffer accepted")
	}
}

func TestEngineStatsExposed(t *testing.T) {
	e := testExplorer(t)
	if _, _, err := e.Simulate(arch.Baseline(), "gzip"); err != nil {
		t.Fatal(err)
	}
	sim := e.SimStats()
	if sim.Evaluations == 0 || sim.CacheMisses == 0 {
		t.Fatalf("sim stats empty after training: %+v", sim)
	}
	if sim.Workers != e.Options().Workers {
		t.Fatalf("sim workers = %d, want %d", sim.Workers, e.Options().Workers)
	}
	if _, _, err := e.Predict(arch.Baseline(), "gzip"); err != nil {
		t.Fatal(err)
	}
	if model := e.ModelStats(); model.Evaluations == 0 {
		t.Fatalf("model stats empty after prediction: %+v", model)
	}
}

func TestValidationAccuracy(t *testing.T) {
	e := testExplorer(t)
	rep, err := e.Validate(0)
	if err != nil {
		t.Fatal(err)
	}
	perfMed, powMed := rep.OverallMedians()
	// The paper reports 7.2% / 5.4% medians; our smoother substrate
	// should stay within 15% even at reduced training budget.
	if perfMed > 0.15 {
		t.Fatalf("median performance error = %v, want < 0.15", perfMed)
	}
	if powMed > 0.15 {
		t.Fatalf("median power error = %v, want < 0.15", powMed)
	}
	if len(rep.PerBenchmark) != len(e.Benchmarks()) {
		t.Fatal("validation missing benchmarks")
	}
	for _, be := range rep.PerBenchmark {
		if len(be.Perf) != 30 || len(be.Power) != 30 {
			t.Fatalf("%s has %d/%d validation errors, want 30", be.Benchmark, len(be.Perf), len(be.Power))
		}
		box, err := rep.PerfBoxplot(be.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		if box.Med < 0 {
			t.Fatal("negative error")
		}
	}
	if _, err := rep.PerfBoxplot("nope"); err == nil {
		t.Fatal("boxplot for unknown benchmark succeeded")
	}
}

func TestExhaustivePredictCoversSpace(t *testing.T) {
	e := testExplorer(t)
	preds, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != e.StudySpace.Size() {
		t.Fatalf("predictions = %d, want %d", len(preds), e.StudySpace.Size())
	}
	positive := 0
	for i, p := range preds {
		if p.Index != i {
			t.Fatalf("prediction %d has index %d", i, p.Index)
		}
		if p.BIPS > 0 && p.Watts > 0 {
			positive++
		}
	}
	if frac := float64(positive) / float64(len(preds)); frac < 0.99 {
		t.Fatalf("only %v of predictions positive", frac)
	}
}

func TestExhaustivePredictCached(t *testing.T) {
	e := testExplorer(t)
	a, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExhaustivePredict("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("sweep not cached")
	}
}

func TestPredictionMatchesModelDirectly(t *testing.T) {
	e := testExplorer(t)
	perf, pow, err := e.Models("mesa")
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Baseline()
	wantB := perf.Predict(arch.PredictorGetter(cfg))
	wantW := pow.Predict(arch.PredictorGetter(cfg))
	gotB, gotW, err := e.Predict(cfg, "mesa")
	if err != nil {
		t.Fatal(err)
	}
	if gotB != wantB || gotW != wantW {
		t.Fatal("Predict disagrees with direct model evaluation")
	}
}

func TestSpecsBuild(t *testing.T) {
	builders := map[string]SpecBuilder{
		"paper":         PaperSpec,
		"linear":        LinearSpec,
		"nointeraction": NoInteractionSpec,
		"untransformed": UntransformedSpec,
	}
	for name, b := range builders {
		spec := b(ColBIPS, regression.Sqrt)
		if spec.Response != ColBIPS {
			t.Fatalf("%s: response = %q", name, spec.Response)
		}
		if len(spec.Terms) == 0 {
			t.Fatalf("%s: no terms", name)
		}
	}
	if UntransformedSpec(ColBIPS, regression.Sqrt).Transform != regression.Identity {
		t.Fatal("UntransformedSpec kept the transform")
	}
	if LinearSpec(ColBIPS, regression.Sqrt).Transform != regression.Sqrt {
		t.Fatal("LinearSpec dropped the transform")
	}
}

func TestPaperSpecBeatsLinearOnValidation(t *testing.T) {
	// The paper's argument for splines and transforms: the full spec
	// should validate at least as well as the all-linear ablation.
	mkOpts := func(spec SpecBuilder) Options {
		o := DefaultOptions()
		o.TrainSamples = 180
		o.ValidationSamples = 40
		o.TraceLen = 20000
		o.Benchmarks = []string{"mesa"}
		o.Spec = spec
		return o
	}
	run := func(spec SpecBuilder) float64 {
		e, err := New(mkOpts(spec))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Train(); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Validate(0)
		if err != nil {
			t.Fatal(err)
		}
		perfMed, _ := rep.OverallMedians()
		return perfMed
	}
	paper := run(PaperSpec)
	linear := run(LinearSpec)
	if paper > linear*1.15 {
		t.Fatalf("paper spec error %v should not exceed linear %v by >15%%", paper, linear)
	}
}

func TestBenchmarkErrorsAggregation(t *testing.T) {
	rep := &ValidationReport{PerBenchmark: []BenchmarkErrors{
		{Benchmark: "a", Perf: []float64{0.1, 0.2}, Power: []float64{0.05, 0.07}},
		{Benchmark: "b", Perf: []float64{0.3, 0.4}, Power: []float64{0.01, 0.03}},
	}}
	perf, pow := rep.OverallMedians()
	if perf != stats.Median([]float64{0.1, 0.2, 0.3, 0.4}) {
		t.Fatalf("perf median = %v", perf)
	}
	if pow != stats.Median([]float64{0.05, 0.07, 0.01, 0.03}) {
		t.Fatalf("power median = %v", pow)
	}
}

func TestModelSummariesReadable(t *testing.T) {
	e := testExplorer(t)
	perf, _, err := e.Models("gzip")
	if err != nil {
		t.Fatal(err)
	}
	s := perf.Summary()
	for _, want := range []string{"bips", "depth", "width", "l2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("model summary missing %q:\n%s", want, s)
		}
	}
}

func TestPredictorAssociations(t *testing.T) {
	e := testExplorer(t)
	assoc, err := e.PredictorAssociations("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(assoc) != len(arch.PredictorNames()) {
		t.Fatalf("got %d associations", len(assoc))
	}
	byName := map[string]Association{}
	for _, a := range assoc {
		byName[a.Predictor] = a
		if a.PerfRho < -1 || a.PerfRho > 1 || a.PowerRho < -1 || a.PowerRho > 1 {
			t.Fatalf("correlation out of range: %+v", a)
		}
	}
	// Physics checks: deeper pipelines (larger FO4) clock slower, so
	// depth correlates negatively with bips; width correlates positively
	// with power for every benchmark.
	if byName["depth"].PerfRho >= 0 {
		t.Fatalf("depth-perf rho = %v, want negative", byName["depth"].PerfRho)
	}
	if byName["width"].PowerRho <= 0 {
		t.Fatalf("width-power rho = %v, want positive", byName["width"].PowerRho)
	}
	// mcf is memory bound: L2 size should matter more for its
	// performance than the I-cache does.
	if mathAbs(byName["l2"].PerfRho) <= mathAbs(byName["il1"].PerfRho) {
		t.Fatalf("mcf: l2 rho %v should dominate il1 rho %v",
			byName["l2"].PerfRho, byName["il1"].PerfRho)
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestPredictorAssociationsRequiresTraining(t *testing.T) {
	opts := DefaultOptions()
	opts.Benchmarks = []string{"gzip"}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PredictorAssociations("gzip"); err == nil {
		t.Fatal("associations without training succeeded")
	}
	if e.TrainingData("gzip") != nil {
		t.Fatal("training data exists before training")
	}
}
