package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/regression"
	"repro/internal/stats"
)

// Association reports how strongly one design parameter relates to the
// responses across the training sample — the paper's "association and
// correlation analysis", which informed how many spline knots each
// predictor receives (strongly correlated predictors get 4 knots, weak
// ones 3).
type Association struct {
	Predictor string
	// Spearman rank correlations with performance and power: monotone
	// association robust to the non-linearities splines later absorb.
	PerfRho  float64
	PowerRho float64
}

// PredictorAssociations computes rank correlations between each design
// parameter and the simulated responses over the benchmark's training
// sample. Requires Train to have run in this process.
func (e *Explorer) PredictorAssociations(bench string) ([]Association, error) {
	e.mu.Lock()
	ds := e.trainData[bench]
	e.mu.Unlock()
	if ds == nil {
		return nil, fmt.Errorf("core: no training data for %q (call Train)", bench)
	}
	bips := ds.Column(ColBIPS)
	watts := ds.Column(ColWatts)
	out := make([]Association, 0, len(arch.PredictorNames()))
	for _, name := range arch.PredictorNames() {
		col := ds.Column(name)
		out = append(out, Association{
			Predictor: name,
			PerfRho:   stats.Spearman(col, bips),
			PowerRho:  stats.Spearman(col, watts),
		})
	}
	return out, nil
}

// TrainingData returns the benchmark's training dataset (predictors plus
// simulated responses), or nil if Train has not run in this process.
func (e *Explorer) TrainingData(bench string) *regression.Dataset {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trainData[bench]
}
