// Package core implements the paper's end-to-end methodology: sample the
// design space uniformly at random, simulate only the samples, fit
// per-benchmark performance and power regression models, validate them on
// held-out random designs, and expose cheap exhaustive prediction over
// the exploration space for the three design-space studies.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/arch"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options configures an Explorer. The zero value is not valid; use
// DefaultOptions as a starting point.
type Options struct {
	// TrainSamples is the number of designs sampled uniformly at random
	// from the sampling space and simulated for model formulation. The
	// paper uses 1,000.
	TrainSamples int
	// ValidationSamples is the number of held-out random designs used to
	// measure predictive error (paper: 100).
	ValidationSamples int
	// TraceLen is the synthetic trace length per benchmark. Longer
	// traces exercise larger working sets; 100,000 instructions is the
	// default operating point for this repository.
	TraceLen int
	// Seed makes sampling deterministic.
	Seed uint64
	// Benchmarks to model; nil means the full nine-program suite.
	Benchmarks []string
	// Workers bounds simulation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Spec selects the regression specification; nil means PaperSpec,
	// the paper's splines + interactions + transformed responses.
	Spec SpecBuilder
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		TrainSamples:      1000,
		ValidationSamples: 100,
		TraceLen:          100000,
		Seed:              2007, // the paper's publication year
	}
}

// Response column names in training datasets.
const (
	ColBIPS  = "bips"
	ColWatts = "watts"
)

// Explorer ties the design space, the simulator and the regression models
// together.
type Explorer struct {
	opts Options

	// SampleSpace is the 375,000-point Table 1 space used for training;
	// StudySpace is the 262,500-point exploration subspace.
	SampleSpace *arch.Space
	StudySpace  *arch.Space

	benchmarks []string

	mu         sync.Mutex
	simCache   map[simKey]simVal
	sweepCache map[string][]Prediction
	trainData  map[string]*regression.Dataset

	perf map[string]*regression.Model
	pow  map[string]*regression.Model
}

type simKey struct {
	cfg   arch.Config
	bench string
}

type simVal struct {
	bips, watts float64
}

// New creates an Explorer. Call Train before predicting.
func New(opts Options) (*Explorer, error) {
	if opts.TrainSamples <= 0 {
		return nil, fmt.Errorf("core: TrainSamples must be positive")
	}
	if opts.TraceLen <= 0 {
		return nil, fmt.Errorf("core: TraceLen must be positive")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Spec == nil {
		opts.Spec = PaperSpec
	}
	benches := opts.Benchmarks
	if benches == nil {
		benches = trace.Benchmarks()
	}
	for _, b := range benches {
		if _, ok := trace.ProfileFor(b); !ok {
			return nil, fmt.Errorf("core: unknown benchmark %q", b)
		}
	}
	return &Explorer{
		opts:        opts,
		SampleSpace: arch.TableOneSpace(),
		StudySpace:  arch.ExplorationSpace(),
		benchmarks:  benches,
		simCache:    make(map[simKey]simVal),
		sweepCache:  make(map[string][]Prediction),
		trainData:   make(map[string]*regression.Dataset),
		perf:        make(map[string]*regression.Model),
		pow:         make(map[string]*regression.Model),
	}, nil
}

// Benchmarks returns the modeled benchmark names.
func (e *Explorer) Benchmarks() []string {
	return append([]string(nil), e.benchmarks...)
}

// Options returns the explorer's configuration.
func (e *Explorer) Options() Options { return e.opts }

// Simulate runs the detailed simulator for one configuration and
// benchmark, returning bips and watts. Results are memoized: studies
// revisit the same designs repeatedly.
func (e *Explorer) Simulate(cfg arch.Config, bench string) (bips, watts float64, err error) {
	key := simKey{cfg: cfg, bench: bench}
	e.mu.Lock()
	if v, ok := e.simCache[key]; ok {
		e.mu.Unlock()
		return v.bips, v.watts, nil
	}
	e.mu.Unlock()

	tr, err := trace.ForBenchmark(bench, e.opts.TraceLen)
	if err != nil {
		return 0, 0, err
	}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		return 0, 0, fmt.Errorf("core: simulating %s on %v: %w", bench, cfg, err)
	}
	w := power.Watts(res)

	e.mu.Lock()
	e.simCache[key] = simVal{bips: res.BIPS, watts: w}
	e.mu.Unlock()
	return res.BIPS, w, nil
}

// Train samples the design space, simulates every sample on every
// benchmark, and fits the performance and power models.
func (e *Explorer) Train() error {
	points := e.SampleSpace.SampleUAR(e.opts.TrainSamples, e.opts.Seed)
	configs := make([]arch.Config, len(points))
	for i, p := range points {
		configs[i] = e.SampleSpace.Config(p)
	}
	for _, bench := range e.benchmarks {
		ds, err := e.buildDataset(configs, bench)
		if err != nil {
			return err
		}
		perfModel, err := regression.Fit(e.opts.Spec(ColBIPS, regression.Sqrt), ds)
		if err != nil {
			return fmt.Errorf("core: fitting performance model for %s: %w", bench, err)
		}
		powModel, err := regression.Fit(e.opts.Spec(ColWatts, regression.Log), ds)
		if err != nil {
			return fmt.Errorf("core: fitting power model for %s: %w", bench, err)
		}
		e.perf[bench] = perfModel
		e.pow[bench] = powModel
		e.mu.Lock()
		e.trainData[bench] = ds
		e.mu.Unlock()
	}
	return nil
}

// buildDataset simulates the configurations for one benchmark and
// assembles the regression dataset (predictors + responses).
func (e *Explorer) buildDataset(configs []arch.Config, bench string) (*regression.Dataset, error) {
	n := len(configs)
	names := arch.PredictorNames()
	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	bipsCol := make([]float64, n)
	wattsCol := make([]float64, n)

	type job struct{ i int }
	type result struct {
		i           int
		bips, watts float64
		err         error
	}
	jobs := make(chan job)
	results := make(chan result)
	workers := e.opts.Workers
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				b, wt, err := e.Simulate(configs[j.i], bench)
				results <- result{i: j.i, bips: b, watts: wt, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- job{i: i}
		}
		close(jobs)
	}()
	var firstErr error
	for k := 0; k < n; k++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		bipsCol[r.i] = r.bips
		wattsCol[r.i] = r.watts
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for i, cfg := range configs {
		vals := arch.Predictors(cfg)
		for c := range names {
			cols[c][i] = vals[c]
		}
	}
	ds := regression.NewDataset(n)
	for c, name := range names {
		ds.AddColumn(name, cols[c])
	}
	ds.AddColumn(ColBIPS, bipsCol)
	ds.AddColumn(ColWatts, wattsCol)
	return ds, nil
}

// Trained reports whether models exist for all benchmarks.
func (e *Explorer) Trained() bool {
	for _, b := range e.benchmarks {
		if e.perf[b] == nil || e.pow[b] == nil {
			return false
		}
	}
	return len(e.benchmarks) > 0
}

// Models returns the fitted performance and power models for a benchmark.
func (e *Explorer) Models(bench string) (perf, pow *regression.Model, err error) {
	perf, pow = e.perf[bench], e.pow[bench]
	if perf == nil || pow == nil {
		return nil, nil, fmt.Errorf("core: no trained models for %q (call Train)", bench)
	}
	return perf, pow, nil
}

// Predict evaluates the regression models for one configuration,
// returning predicted bips and watts.
func (e *Explorer) Predict(cfg arch.Config, bench string) (bips, watts float64, err error) {
	perf, pow, err := e.Models(bench)
	if err != nil {
		return 0, 0, err
	}
	get := arch.PredictorGetter(cfg)
	return perf.Predict(get), pow.Predict(get), nil
}

// Prediction holds exhaustive model output for one design point.
type Prediction struct {
	Index int // flat index into the study space
	BIPS  float64
	Watts float64
}

// ExhaustivePredict evaluates the models over the entire study space for
// one benchmark: the paper's "comprehensive design space characterization"
// (more than 260,000 predictions in seconds rather than simulator-years).
// The sweep is cached per benchmark; the returned slice is shared, so
// callers must not mutate it.
func (e *Explorer) ExhaustivePredict(bench string) ([]Prediction, error) {
	perf, pow, err := e.Models(bench)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if cached, ok := e.sweepCache[bench]; ok {
		e.mu.Unlock()
		return cached, nil
	}
	e.mu.Unlock()
	space := e.StudySpace
	n := space.Size()
	out := make([]Prediction, n)
	// Allocation-free predictor lookup for the 262,500-point sweep.
	vals := make([]float64, len(arch.PredictorNames()))
	get := func(name string) float64 {
		idx := arch.PredictorIndex(name)
		if idx < 0 {
			panic("core: unknown predictor " + name)
		}
		return vals[idx]
	}
	for i := 0; i < n; i++ {
		cfg := space.Config(space.PointAt(i))
		arch.PredictorsInto(cfg, vals)
		out[i] = Prediction{
			Index: i,
			BIPS:  perf.Predict(get),
			Watts: pow.Predict(get),
		}
	}
	e.mu.Lock()
	e.sweepCache[bench] = out
	e.mu.Unlock()
	return out, nil
}
