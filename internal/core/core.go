// Package core implements the paper's end-to-end methodology: sample the
// design space uniformly at random, simulate only the samples, fit
// per-benchmark performance and power regression models, validate them on
// held-out random designs, and expose cheap exhaustive prediction over
// the exploration space for the three design-space studies.
//
// Every (configuration, benchmark) → (bips, watts) query — simulated or
// model-predicted — is served by eval.Engine: a batched, memoized,
// cancellable evaluation layer shared by training, validation, the
// exhaustive sweep, the studies and heuristic search.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/trace"
)

// Options configures an Explorer. The zero value is not valid; use
// DefaultOptions as a starting point.
type Options struct {
	// TrainSamples is the number of designs sampled uniformly at random
	// from the sampling space and simulated for model formulation. The
	// paper uses 1,000.
	TrainSamples int
	// ValidationSamples is the number of held-out random designs used to
	// measure predictive error (paper: 100).
	ValidationSamples int
	// TraceLen is the synthetic trace length per benchmark. Longer
	// traces exercise larger working sets; 100,000 instructions is the
	// default operating point for this repository.
	TraceLen int
	// Seed makes sampling deterministic.
	Seed uint64
	// Benchmarks to model; nil means the full nine-program suite.
	Benchmarks []string
	// Workers bounds evaluation parallelism (simulation batches and the
	// exhaustive model sweep); 0 means GOMAXPROCS.
	Workers int
	// Spec selects the regression specification; nil means PaperSpec,
	// the paper's splines + interactions + transformed responses.
	Spec SpecBuilder
	// DisableCompile forces every model prediction through the
	// interpreted regression.Model path instead of the compiled
	// level-table fast path. Output is bit-identical either way; the
	// switch exists for benchmarking and as an escape hatch.
	DisableCompile bool
	// DisableBlocked forces the compiled exhaustive sweep through the
	// scalar one-point-at-a-time kernel instead of the blocked SweepPlan
	// kernel. Output is bit-identical either way; the switch exists for
	// benchmarking and as an escape hatch. Implied by DisableCompile.
	DisableBlocked bool
	// DisableFastSim forces every simulation through the full warmup
	// walk instead of the pooled, warm-state-memoizing fast path. Output
	// is bit-identical either way; the switch exists for benchmarking
	// and as an escape hatch.
	DisableFastSim bool
	// SweepTile is the contiguous flat-index tile size handed to each
	// sweep worker; 0 means DefaultSweepTile. Output is independent of
	// the tile size; it only shapes load balance and handout contention.
	SweepTile int
	// CheckpointDir, when non-empty, enables crash-safe checkpointing:
	// dataset building writes a checksummed checkpoint every
	// CheckpointEvery samples per benchmark, and completed exhaustive
	// sweeps are saved, all via atomic temp-file+rename writes.
	CheckpointDir string
	// CheckpointEvery is the number of training samples simulated between
	// checkpoint writes; 0 means DefaultCheckpointEvery. Only meaningful
	// with CheckpointDir set.
	CheckpointEvery int
	// SweepCheckpointEvery is the number of swept points between a sweep
	// shard's checkpoint writes; 0 means DefaultSweepCheckpointEvery.
	// Only meaningful for SweepShard with CheckpointDir set.
	SweepCheckpointEvery int
	// Resume loads matching checkpoints from CheckpointDir before
	// computing: completed dataset chunks are not re-simulated and saved
	// sweeps are not re-run. A checkpoint whose identity (seed, sample
	// counts, trace length, benchmarks) does not match this run is
	// refused with ckpt.ErrIdentity rather than silently mixed in.
	// Results are bit-identical to an uninterrupted run.
	Resume bool
	// ShardSuffix is appended to this process's shard checkpoint and
	// beacon filenames. A speculative backup attempt runs with a suffix
	// (".spec") so it computes the same identity-keyed values as the
	// primary but never races it on files; when the backup wins, the
	// coordinator adopts its outputs via PromoteShardCheckpoints.
	// Identity keys are unaffected — only filenames change.
	ShardSuffix string
	// BatchTimeout bounds the wall time of each evaluation batch and
	// sweep on both engines; 0 means no deadline.
	BatchTimeout time.Duration
	// GuardInterval overrides the fast-path guardrail sampling interval
	// for both backends (one in N fast results is recomputed on the
	// reference path and compared bit-exactly). 0 keeps the backend
	// defaults; negative disables the guardrails.
	GuardInterval int64
}

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		TrainSamples:      1000,
		ValidationSamples: 100,
		TraceLen:          100000,
		Seed:              2007, // the paper's publication year
	}
}

// Response column names in training datasets.
const (
	ColBIPS  = "bips"
	ColWatts = "watts"
)

// DefaultSweepTile is the sweep tile size when Options.SweepTile is 0:
// it divides the study space's 37,500-point depth blocks evenly (70
// tiles across the 262,500-point space), so no tile straddles a depth
// boundary and depth-sliced studies see the same tiling as full sweeps.
const DefaultSweepTile = 3750

// Explorer ties the design space, the simulator and the regression models
// together.
type Explorer struct {
	opts Options

	// sweepPool recycles blocked-kernel scratch (level blocks and output
	// buffers) across sweep tiles and sweeps.
	sweepPool sync.Pool

	// SampleSpace is the 375,000-point Table 1 space used for training;
	// StudySpace is the 262,500-point exploration subspace.
	SampleSpace *arch.Space
	StudySpace  *arch.Space

	benchmarks []string

	// simEngine serves detailed simulations: memoized (studies revisit
	// the same designs repeatedly) with singleflight de-duplication so
	// concurrent callers never simulate the same key twice.
	simEngine *eval.Engine
	// modelEngine serves regression predictions: uncached, because a
	// prediction is cheaper than a cache probe; whole sweeps are cached
	// separately in sweepCache.
	modelEngine *eval.Engine
	// modelsBackend is the engine's regression backend, kept so trained
	// state changes can invalidate its per-batch resolution memo.
	modelsBackend *eval.Models

	mu         sync.Mutex
	sweepCache map[string][]Prediction
	trainData  map[string]*regression.Dataset
	// compiled holds each benchmark's fused compiled model pair, rebuilt
	// whenever the models behind it change. Empty when DisableCompile.
	compiled map[string]*eval.CompiledPair

	perf map[string]*regression.Model
	pow  map[string]*regression.Model
}

// New creates an Explorer. Call Train before predicting.
func New(opts Options) (*Explorer, error) {
	if opts.TrainSamples <= 0 {
		return nil, fmt.Errorf("core: TrainSamples must be positive")
	}
	if opts.TraceLen <= 0 {
		return nil, fmt.Errorf("core: TraceLen must be positive")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Spec == nil {
		opts.Spec = PaperSpec
	}
	benches := opts.Benchmarks
	if benches == nil {
		benches = trace.Benchmarks()
	}
	for _, b := range benches {
		if _, ok := trace.ProfileFor(b); !ok {
			return nil, fmt.Errorf("core: unknown benchmark %q", b)
		}
	}
	e := &Explorer{
		opts:        opts,
		SampleSpace: arch.TableOneSpace(),
		StudySpace:  arch.ExplorationSpace(),
		benchmarks:  benches,
		sweepCache:  make(map[string][]Prediction),
		trainData:   make(map[string]*regression.Dataset),
		compiled:    make(map[string]*eval.CompiledPair),
		perf:        make(map[string]*regression.Model),
		pow:         make(map[string]*regression.Model),
	}
	simBackend := eval.NewSimulator(opts.TraceLen)
	simBackend.DisableFastSim = opts.DisableFastSim
	if opts.GuardInterval != 0 {
		simBackend.SetGuardInterval(opts.GuardInterval)
	}
	e.simEngine = eval.NewEngine(
		simBackend,
		eval.Options{Workers: opts.Workers, Name: "sim", BatchTimeout: opts.BatchTimeout},
	)
	e.modelsBackend = eval.NewModels(e.Models)
	e.modelsBackend.LookupCompiled = e.compiledPair
	if opts.GuardInterval != 0 {
		e.modelsBackend.SetGuardInterval(opts.GuardInterval)
	}
	tile := opts.SweepTile
	if tile == 0 {
		tile = DefaultSweepTile
	}
	e.modelEngine = eval.NewEngine(
		e.modelsBackend,
		eval.Options{Workers: opts.Workers, NoCache: true, Name: "model", BatchTimeout: opts.BatchTimeout, Tile: tile},
	)
	return e, nil
}

// Benchmarks returns the modeled benchmark names.
func (e *Explorer) Benchmarks() []string {
	return append([]string(nil), e.benchmarks...)
}

// Options returns the explorer's configuration.
func (e *Explorer) Options() Options { return e.opts }

// SimStats returns the simulation engine's counters: detailed
// simulations run, cache hits and misses, in-flight work.
func (e *Explorer) SimStats() eval.EngineStats { return e.simEngine.Stats() }

// ModelStats returns the model engine's counters.
func (e *Explorer) ModelStats() eval.EngineStats { return e.modelEngine.Stats() }

// StatsEpoch returns both engines' counter deltas since the previous
// epoch and advances the baselines. Sequential phases in one process
// (train, then validate, then each study) call this between phases so
// per-phase accounting does not double-count earlier work.
func (e *Explorer) StatsEpoch() (sim, model eval.EngineStats) {
	return e.simEngine.StatsEpoch(), e.modelEngine.StatsEpoch()
}

// Simulate runs the detailed simulator for one configuration and
// benchmark, returning bips and watts. Results are memoized (studies
// revisit the same designs repeatedly) and concurrent callers of the
// same key share a single simulation.
func (e *Explorer) Simulate(cfg arch.Config, bench string) (bips, watts float64, err error) {
	r, err := e.simEngine.Evaluate(context.Background(), eval.Request{Config: cfg, Bench: bench})
	if err != nil {
		return 0, 0, err
	}
	return r.BIPS, r.Watts, nil
}

// SimulateBatch runs the detailed simulator for every request with
// bounded parallelism, returning results in request order. The first
// simulation error cancels outstanding work and is returned promptly.
func (e *Explorer) SimulateBatch(ctx context.Context, reqs []eval.Request) ([]eval.Result, error) {
	return e.simEngine.EvaluateBatch(ctx, reqs)
}

// Train samples the design space, simulates every sample on every
// benchmark, and fits the performance and power models.
func (e *Explorer) Train() error { return e.TrainContext(context.Background()) }

// TrainContext is Train under a caller-controlled context: cancellation
// stops the simulation batches between evaluations, and — with
// checkpointing enabled — a killed run resumes from its last checkpoint
// with bit-identical datasets and model fits.
func (e *Explorer) TrainContext(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "core.train",
		obs.Int("samples", int64(e.opts.TrainSamples)),
		obs.Int("benchmarks", int64(len(e.benchmarks))))
	defer sp.End()
	points := e.SampleSpace.SampleUAR(e.opts.TrainSamples, e.opts.Seed)
	configs := make([]arch.Config, len(points))
	for i, p := range points {
		configs[i] = e.SampleSpace.Config(p)
	}
	for _, bench := range e.benchmarks {
		ds, err := e.buildDataset(ctx, configs, bench)
		if err != nil {
			return err
		}
		perfModel, err := regression.Fit(e.opts.Spec(ColBIPS, regression.Sqrt), ds)
		if err != nil {
			return fmt.Errorf("core: fitting performance model for %s: %w", bench, err)
		}
		powModel, err := regression.Fit(e.opts.Spec(ColWatts, regression.Log), ds)
		if err != nil {
			return fmt.Errorf("core: fitting power model for %s: %w", bench, err)
		}
		e.perf[bench] = perfModel
		e.pow[bench] = powModel
		if err := e.compileBench(bench, perfModel, powModel); err != nil {
			return err
		}
		e.mu.Lock()
		e.trainData[bench] = ds
		e.mu.Unlock()
	}
	e.modelsBackend.Reset()
	return nil
}

// compileBench lowers a benchmark's freshly-fitted models into the fused
// compiled pair (a no-op under DisableCompile). Callers must follow up
// with modelsBackend.Reset() once the batch of model swaps is complete.
func (e *Explorer) compileBench(bench string, perf, pow *regression.Model) error {
	if e.opts.DisableCompile {
		return nil
	}
	pair, err := eval.CompilePair(perf, pow, e.StudySpace)
	if err != nil {
		return fmt.Errorf("core: compiling models for %s: %w", bench, err)
	}
	e.mu.Lock()
	e.compiled[bench] = pair
	e.mu.Unlock()
	return nil
}

// compiledPair resolves a benchmark's compiled pair for the model
// backend; (nil, nil) routes the benchmark to the interpreted models.
func (e *Explorer) compiledPair(bench string) (*eval.CompiledPair, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compiled[bench], nil
}

// buildDataset simulates the configurations for one benchmark and
// assembles the regression dataset (predictors + responses). With
// checkpointing enabled the simulations run in CheckpointEvery-sample
// chunks, each followed by an atomic checksummed checkpoint write; on
// resume, completed chunks load from the checkpoint instead of
// re-simulating. Per-(config, benchmark) results are deterministic and
// independent of batch composition, so a resumed dataset is
// bit-identical to an uninterrupted one.
func (e *Explorer) buildDataset(ctx context.Context, configs []arch.Config, bench string) (*regression.Dataset, error) {
	n := len(configs)
	ctx, sp := obs.Start(ctx, "core.dataset", obs.String("bench", bench))
	defer sp.End()
	bipsCol := make([]float64, n)
	wattsCol := make([]float64, n)

	completed := 0
	ckptPath := ""
	if e.opts.CheckpointDir != "" {
		ckptPath = e.trainCheckpointPath(bench)
		if e.opts.Resume {
			c, err := e.loadDatasetCheckpoint(ckptPath, n)
			if err != nil {
				return nil, err
			}
			if c != nil {
				copy(bipsCol, c.BIPS)
				copy(wattsCol, c.Watts)
				completed = c.Completed
			}
		}
	}
	chunk := n
	if ckptPath != "" {
		chunk = e.opts.CheckpointEvery
		if chunk <= 0 {
			chunk = DefaultCheckpointEvery
		}
	}
	for lo := completed; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		results, err := e.SimulateBatch(ctx, eval.RequestsFor(configs[lo:hi], bench))
		if err != nil {
			return nil, err
		}
		for i, r := range results {
			bipsCol[lo+i] = r.BIPS
			wattsCol[lo+i] = r.Watts
		}
		if ckptPath != "" {
			if err := e.saveDatasetCheckpoint(ckptPath, hi, bipsCol, wattsCol); err != nil {
				return nil, err
			}
		}
	}

	names := arch.PredictorNames()
	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for i, cfg := range configs {
		vals := arch.Predictors(cfg)
		for c := range names {
			cols[c][i] = vals[c]
		}
	}
	ds := regression.NewDataset(n)
	for c, name := range names {
		ds.AddColumn(name, cols[c])
	}
	ds.AddColumn(ColBIPS, bipsCol)
	ds.AddColumn(ColWatts, wattsCol)
	return ds, nil
}

// Trained reports whether models exist for all benchmarks.
func (e *Explorer) Trained() bool {
	for _, b := range e.benchmarks {
		if e.perf[b] == nil || e.pow[b] == nil {
			return false
		}
	}
	return len(e.benchmarks) > 0
}

// Models returns the fitted performance and power models for a benchmark.
func (e *Explorer) Models(bench string) (perf, pow *regression.Model, err error) {
	perf, pow = e.perf[bench], e.pow[bench]
	if perf == nil || pow == nil {
		return nil, nil, fmt.Errorf("core: no trained models for %q (call Train)", bench)
	}
	return perf, pow, nil
}

// Predict evaluates the regression models for one configuration,
// returning predicted bips and watts.
func (e *Explorer) Predict(cfg arch.Config, bench string) (bips, watts float64, err error) {
	r, err := e.modelEngine.Evaluate(context.Background(), eval.Request{Config: cfg, Bench: bench})
	if err != nil {
		return 0, 0, err
	}
	return r.BIPS, r.Watts, nil
}

// PredictBatch evaluates the regression models for every request with
// bounded parallelism, returning results in request order.
func (e *Explorer) PredictBatch(ctx context.Context, reqs []eval.Request) ([]eval.Result, error) {
	return e.modelEngine.EvaluateBatch(ctx, reqs)
}

// Prediction holds exhaustive model output for one design point.
type Prediction struct {
	Index int // flat index into the study space
	BIPS  float64
	Watts float64
}

// ExhaustivePredict evaluates the models over the entire study space for
// one benchmark: the paper's "comprehensive design space characterization"
// (more than 260,000 predictions in seconds rather than simulator-years).
// The sweep runs as chunked parallel batches on the model engine and is
// cached per benchmark; the returned slice is shared, so callers must
// not mutate it.
func (e *Explorer) ExhaustivePredict(bench string) ([]Prediction, error) {
	if _, _, err := e.Models(bench); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if cached, ok := e.sweepCache[bench]; ok {
		e.mu.Unlock()
		return cached, nil
	}
	e.mu.Unlock()
	out := make([]Prediction, e.StudySpace.Size())
	if e.opts.CheckpointDir != "" && e.opts.Resume {
		if ok, err := e.loadSweepCheckpoint(bench, out); err != nil {
			return nil, err
		} else if ok {
			e.mu.Lock()
			e.sweepCache[bench] = out
			e.mu.Unlock()
			return out, nil
		}
	}
	if err := e.ExhaustivePredictInto(context.Background(), bench, out); err != nil {
		return nil, err
	}
	if e.opts.CheckpointDir != "" {
		if err := e.saveSweepCheckpoint(bench, out); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.sweepCache[bench] = out
	e.mu.Unlock()
	return out, nil
}

// sweepChunk is the number of design points assembled and evaluated per
// blocked-kernel call: large enough to amortize the odometer and the
// guardrail tick, small enough that the level block plus both output
// slices stay far inside L1.
const sweepChunk = 512

// sweepScratch is one worker's reusable blocked-kernel buffers: a flat
// arena of level indices pre-sliced into per-point vectors, and the two
// output blocks. Pooled so tiles allocate nothing in steady state.
type sweepScratch struct {
	lev    [][]int
	bips   []float64
	watts  []float64
	points []arch.Point // backing store for lev, one Point per slot
}

func newSweepScratch() *sweepScratch {
	s := &sweepScratch{
		lev:    make([][]int, sweepChunk),
		bips:   make([]float64, sweepChunk),
		watts:  make([]float64, sweepChunk),
		points: make([]arch.Point, sweepChunk),
	}
	for i := range s.lev {
		s.lev[i] = s.points[i][:]
	}
	return s
}

// ExhaustivePredictInto runs the exhaustive sweep for one benchmark into
// dst (which must have StudySpace.Size() elements), bypassing the sweep
// cache. Results are deterministic and independent of the worker count
// and kernel: dst[i] always holds the prediction for flat index i.
//
// With compiled models (the default) the sweep runs as a blocked
// structure-of-arrays kernel: the engine hands each worker contiguous
// flat-index tiles sized to divide the space's depth blocks, and each
// tile walks a mixed-radix level odometer to assemble sweepChunk level
// vectors at a time — shared by the performance and power plans — which
// eval.PairPlan.EvalBlock evaluates eight points per unrolled step from
// coefficient-premultiplied tables. DisableBlocked falls back to the
// scalar one-point-at-a-time compiled kernel, and DisableCompile to the
// interpreted per-request path; all three produce bit-identical output.
func (e *Explorer) ExhaustivePredictInto(ctx context.Context, bench string, dst []Prediction) error {
	return e.ExhaustivePredictRange(ctx, bench, 0, e.StudySpace.Size(), dst)
}

// ExhaustivePredictRange runs the sweep for the flat-index sub-range
// [from, to) of the study space only — the unit of work a sweep shard
// computes. dst must still have StudySpace.Size() elements; predictions
// land at their absolute indices (dst[i] for i in [from, to)) and
// slots outside the range are untouched, so a set of range sweeps that
// tile the space assembles exactly the full-sweep output. Progress and
// SweptPoints account the sub-range only. The same kernel ladder
// (blocked, scalar compiled, interpreted) and guardrail contract apply;
// a guardrail trip re-runs just this range on the interpreted path.
func (e *Explorer) ExhaustivePredictRange(ctx context.Context, bench string, from, to int, dst []Prediction) error {
	if _, _, err := e.Models(bench); err != nil {
		return err
	}
	space := e.StudySpace
	n := space.Size()
	if len(dst) != n {
		return fmt.Errorf("core: sweep buffer has %d slots, space has %d", len(dst), n)
	}
	if from < 0 || to > n || from > to {
		return fmt.Errorf("core: sweep range [%d,%d) outside space of %d points", from, to, n)
	}
	if from == to {
		return nil
	}
	ctx, sp := obs.Start(ctx, "core.sweep",
		obs.String("bench", bench), obs.Int("from", int64(from)), obs.Int("to", int64(to)))
	defer sp.End()
	guard := e.modelsBackend.Guard()
	if pair, _ := e.compiledPair(bench); pair != nil && pair.Leveled() && !guard.Degraded() {
		var err error
		if plan := pair.Plan(); plan != nil && !e.opts.DisableBlocked {
			err = e.sweepBlocked(ctx, bench, plan, guard, from, to, dst)
		} else {
			err = e.sweepCompiledScalar(ctx, bench, pair, guard, from, to, dst)
		}
		if err != nil {
			return err
		}
		if !guard.Degraded() {
			return nil
		}
		// The guardrail tripped mid-sweep: some compiled result diverged
		// from the interpreted reference, and the corruption could have
		// landed anywhere in the range. Fall through and re-run the whole
		// range on the interpreted path (which the degraded backend now
		// routes everything to), guaranteeing correct output.
	}
	results, err := e.modelEngine.EvaluateIndexed(ctx, to-from, func(i int) eval.Request {
		return eval.Request{Config: space.Config(space.PointAt(from + i)), Bench: bench}
	})
	if err != nil {
		return err
	}
	for i, r := range results {
		dst[from+i] = Prediction{Index: from + i, BIPS: r.BIPS, Watts: r.Watts}
	}
	return nil
}

// sweepBlocked is the default compiled sweep: tiles of the flat index
// range, each walked chunk-by-chunk — odometer-assemble sweepChunk
// level vectors, evaluate both models' SweepPlans over the block, store
// straight into dst. The guardrail counts every point (TickCount per
// chunk) and cross-checks one evenly-spaced representative per crossed
// boundary against the interpreted models, so guard coverage matches
// the configured one-in-interval rate however tiles and chunks divide
// the space.
func (e *Explorer) sweepBlocked(ctx context.Context, bench string, plan *eval.PairPlan, guard *eval.Guardrail, from, to int, dst []Prediction) error {
	space := e.StudySpace
	levels := space.Levels()
	return e.modelEngine.SweepRange(ctx, from, to, func(lo, hi int) error {
		// Hoisted per tile so the per-point loop stays free of atomic
		// traffic when no fault plan is armed (the common case).
		faultActive := fault.Active()
		s, _ := e.sweepPool.Get().(*sweepScratch)
		if s == nil {
			s = newSweepScratch()
		}
		defer e.sweepPool.Put(s)
		pt := space.PointAt(lo) // decode once; the odometer does the rest
		for base := lo; base < hi; base += sweepChunk {
			k := hi - base
			if k > sweepChunk {
				k = sweepChunk
			}
			for i := 0; i < k; i++ {
				s.points[i] = pt
				for a := arch.NumAxes - 1; a >= 0; a-- {
					pt[a]++
					if pt[a] < levels[a] {
						break
					}
					pt[a] = 0
				}
			}
			plan.EvalBlock(s.lev[:k], s.bips[:k], s.watts[:k])
			if faultActive {
				for i := 0; i < k; i++ {
					s.bips[i] = fault.Flip("core.sweep.compiled", s.bips[i])
					s.watts[i] = fault.Flip("core.sweep.compiled", s.watts[i])
				}
			}
			for i := 0; i < k; i++ {
				dst[base+i] = Prediction{Index: base + i, BIPS: s.bips[i], Watts: s.watts[i]}
			}
			if checks := guard.TickCount(int64(k)); checks > 0 {
				step := k / int(checks)
				for c := int64(0); c < checks; c++ {
					idx := base + int(c)*step
					refB, refW, err := e.interpretedPredict(bench, idx)
					if err != nil {
						return err
					}
					guard.Record(dst[idx].BIPS != refB || dst[idx].Watts != refW)
				}
			}
		}
		return nil
	})
}

// sweepCompiledScalar is the pre-plan compiled kernel, kept as the
// DisableBlocked escape hatch and as the middle rung of the golden
// equivalence ladder: one point at a time through CompiledPair's
// level-table path. Guard sampling follows the same per-point TickCount
// contract as the blocked kernel.
func (e *Explorer) sweepCompiledScalar(ctx context.Context, bench string, pair *eval.CompiledPair, guard *eval.Guardrail, from, to int, dst []Prediction) error {
	space := e.StudySpace
	levels := space.Levels()
	return e.modelEngine.SweepRange(ctx, from, to, func(lo, hi int) error {
		faultActive := fault.Active()
		var scratch eval.PairScratch
		pt := space.PointAt(lo)
		lev := pt[:]
		for i := lo; i < hi; i++ {
			bips, watts := pair.EvalLevels(lev, &scratch)
			if faultActive {
				bips = fault.Flip("core.sweep.compiled", bips)
				watts = fault.Flip("core.sweep.compiled", watts)
			}
			dst[i] = Prediction{Index: i, BIPS: bips, Watts: watts}
			for a := arch.NumAxes - 1; a >= 0; a-- {
				lev[a]++
				if lev[a] < levels[a] {
					break
				}
				lev[a] = 0
			}
		}
		if checks := guard.TickCount(int64(hi - lo)); checks > 0 {
			step := (hi - lo) / int(checks)
			for c := int64(0); c < checks; c++ {
				idx := lo + int(c)*step
				refB, refW, err := e.interpretedPredict(bench, idx)
				if err != nil {
					return err
				}
				guard.Record(dst[idx].BIPS != refB || dst[idx].Watts != refW)
			}
		}
		return nil
	})
}

// interpretedPredict evaluates the interpreted regression models for
// one flat study-space index — the compiled sweep's reference path.
func (e *Explorer) interpretedPredict(bench string, index int) (bips, watts float64, err error) {
	perf, pow, err := e.Models(bench)
	if err != nil {
		return 0, 0, err
	}
	get := arch.PredictorGetter(e.StudySpace.Config(e.StudySpace.PointAt(index)))
	return perf.Predict(get), pow.Predict(get), nil
}

// BestEfficiency scans predictions for the bips^3/w-maximizing design,
// skipping non-positive (unphysical) predictions. It returns the flat
// index and efficiency of the best design, or (-1, -Inf) when no
// prediction is valid. Both the pareto and heterogeneity studies rank
// designs this way.
func BestEfficiency(preds []Prediction) (index int, eff float64) {
	index, eff = -1, math.Inf(-1)
	for _, p := range preds {
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		if v := metrics.BIPS3W(p.BIPS, p.Watts); v > eff {
			eff, index = v, p.Index
		}
	}
	return index, eff
}
