package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// DefaultCheckpointEvery is the dataset-building checkpoint stride when
// Options.CheckpointEvery is zero: with the paper's 1,000 training
// samples it bounds lost work to a quarter of one benchmark's
// simulations.
const DefaultCheckpointEvery = 250

// Checkpoint observability instruments; they flow into run manifests
// like every obs counter.
var (
	ckptWrittenCtr = obs.DefaultRegistry.Counter("ckpt.written")
	ckptResumedCtr = obs.DefaultRegistry.Counter("ckpt.resumed")
)

// identity is the key a checkpoint must match to be resumed: every
// option that changes what the simulations or sweeps would produce.
// TraceLen changes every simulated result; Seed and TrainSamples change
// which designs are simulated; the benchmark list changes which files
// exist.
func (e *Explorer) identity() string {
	return fmt.Sprintf("seed=%d;train=%d;val=%d;tracelen=%d;benches=%s",
		e.opts.Seed, e.opts.TrainSamples, e.opts.ValidationSamples,
		e.opts.TraceLen, strings.Join(e.benchmarks, ","))
}

func (e *Explorer) trainCheckpointPath(bench string) string {
	return filepath.Join(e.opts.CheckpointDir, "train-"+bench+".ckpt")
}

func (e *Explorer) sweepCheckpointPath(bench string) string {
	return filepath.Join(e.opts.CheckpointDir, "sweep-"+bench+".ckpt")
}

// datasetCheckpoint is one benchmark's dataset-building progress: the
// response columns, valid through index Completed. Predictors are not
// stored — they are recomputed from the run's seed, which the identity
// key pins.
type datasetCheckpoint struct {
	Completed int       `json:"completed"`
	BIPS      []float64 `json:"bips"`
	Watts     []float64 `json:"watts"`
}

// loadDatasetCheckpoint loads a benchmark's dataset checkpoint, if one
// exists. A missing checkpoint returns (nil, nil) — start fresh; a
// checkpoint with a mismatched identity, bad checksum or inconsistent
// shape is refused with an error, never silently discarded: the
// operator asked to resume, and resuming nothing when a checkpoint
// exists would quietly throw work away (or worse, mix experiments).
func (e *Explorer) loadDatasetCheckpoint(path string, n int) (*datasetCheckpoint, error) {
	var c datasetCheckpoint
	err := ckpt.Load(path, e.identity(), &c)
	if errors.Is(err, ckpt.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: resuming dataset checkpoint: %w", err)
	}
	if c.Completed < 0 || c.Completed > n || len(c.BIPS) != n || len(c.Watts) != n {
		return nil, fmt.Errorf("core: dataset checkpoint %s has %d/%d/%d entries for %d samples",
			path, c.Completed, len(c.BIPS), len(c.Watts), n)
	}
	ckptResumedCtr.Add(1)
	return &c, nil
}

// saveDatasetCheckpoint atomically writes a benchmark's dataset
// progress.
func (e *Explorer) saveDatasetCheckpoint(path string, completed int, bips, watts []float64) error {
	err := ckpt.Save(path, e.identity(), datasetCheckpoint{
		Completed: completed, BIPS: bips, Watts: watts,
	})
	if err != nil {
		return fmt.Errorf("core: writing dataset checkpoint: %w", err)
	}
	ckptWrittenCtr.Add(1)
	return nil
}

// sweepCheckpoint is one benchmark's completed exhaustive sweep, stored
// as parallel response columns (the flat index is implicit).
type sweepCheckpoint struct {
	BIPS  []float64 `json:"bips"`
	Watts []float64 `json:"watts"`
}

// loadSweepCheckpoint loads a completed sweep for the benchmark into
// dst. It returns false with no error when no checkpoint exists.
func (e *Explorer) loadSweepCheckpoint(bench string, dst []Prediction) (bool, error) {
	var c sweepCheckpoint
	err := ckpt.Load(e.sweepCheckpointPath(bench), e.identity(), &c)
	if errors.Is(err, ckpt.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("core: resuming sweep checkpoint: %w", err)
	}
	if len(c.BIPS) != len(dst) || len(c.Watts) != len(dst) {
		return false, fmt.Errorf("core: sweep checkpoint for %s has %d/%d entries for %d points",
			bench, len(c.BIPS), len(c.Watts), len(dst))
	}
	for i := range dst {
		dst[i] = Prediction{Index: i, BIPS: c.BIPS[i], Watts: c.Watts[i]}
	}
	ckptResumedCtr.Add(1)
	return true, nil
}

// saveSweepCheckpoint atomically writes a benchmark's completed sweep.
func (e *Explorer) saveSweepCheckpoint(bench string, preds []Prediction) error {
	c := sweepCheckpoint{
		BIPS:  make([]float64, len(preds)),
		Watts: make([]float64, len(preds)),
	}
	for i, p := range preds {
		c.BIPS[i] = p.BIPS
		c.Watts[i] = p.Watts
	}
	if err := ckpt.Save(e.sweepCheckpointPath(bench), e.identity(), c); err != nil {
		return fmt.Errorf("core: writing sweep checkpoint: %w", err)
	}
	ckptWrittenCtr.Add(1)
	return nil
}
