package heterostudy

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

var shared *core.Explorer

func testExplorer(t *testing.T) *core.Explorer {
	t.Helper()
	if shared != nil {
		return shared
	}
	opts := core.DefaultOptions()
	opts.TrainSamples = 180
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mcf", "mesa", "jbb"}
	e, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	shared = e
	return e
}

func TestFindOptimaReturnsValidConfigs(t *testing.T) {
	e := testExplorer(t)
	optima, err := FindOptima(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(optima) != 4 {
		t.Fatalf("optima for %d benchmarks, want 4", len(optima))
	}
	for b, cfg := range optima {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s optimum invalid: %v", b, err)
		}
	}
}

func TestRunLevels(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, nil, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 4 {
		t.Fatalf("levels = %d, want 4 (one per K)", len(res.Levels))
	}
	for i, lvl := range res.Levels {
		if lvl.K != i+1 {
			t.Fatalf("level %d has K=%d", i, lvl.K)
		}
		if len(lvl.Compromises) == 0 || len(lvl.Compromises) > lvl.K {
			t.Fatalf("K=%d has %d compromises", lvl.K, len(lvl.Compromises))
		}
		// Every benchmark must be assigned to a compromise with a gain.
		for _, b := range e.Benchmarks() {
			if _, ok := lvl.Assign[b]; !ok {
				t.Fatalf("K=%d missing assignment for %s", lvl.K, b)
			}
			if g, ok := lvl.ModelGain[b]; !ok || g <= 0 {
				t.Fatalf("K=%d missing model gain for %s", lvl.K, b)
			}
		}
		if lvl.AvgModelGain <= 0 {
			t.Fatalf("K=%d avg gain %v", lvl.K, lvl.AvgModelGain)
		}
	}
}

func TestMaxHeterogeneityRunsEachBenchmarkOnItsOptimum(t *testing.T) {
	e := testExplorer(t)
	optima, err := FindOptima(e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, optima, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full := res.Levels[len(res.Levels)-1]
	if full.K != len(e.Benchmarks()) {
		t.Fatalf("last level K = %d", full.K)
	}
	// With K = #benchmarks, every cluster should be a singleton and the
	// average gain equals the theoretical upper bound of heterogeneity.
	for _, c := range full.Compromises {
		if len(c.Benchmarks) != 1 {
			t.Fatalf("K=max cluster serves %v", c.Benchmarks)
		}
	}
	// The upper bound must dominate every smaller K (within k-means
	// snapping tolerance).
	for _, lvl := range res.Levels[:len(res.Levels)-1] {
		if lvl.AvgModelGain > full.AvgModelGain*1.02 {
			t.Fatalf("K=%d gain %v exceeds the K=max bound %v",
				lvl.K, lvl.AvgModelGain, full.AvgModelGain)
		}
	}
}

func TestGainsOrderedOverall(t *testing.T) {
	// Heterogeneity cannot hurt on average in model space: the K=max
	// average gain is the best achievable, K=1 the worst of the sweep
	// (modulo k-means snapping noise).
	e := testExplorer(t)
	res, err := Run(e, nil, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Levels[0].AvgModelGain
	last := res.Levels[len(res.Levels)-1].AvgModelGain
	if last < first*0.98 {
		t.Fatalf("K=max gain %v below K=1 gain %v", last, first)
	}
}

func TestSimValidationPopulated(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, nil, Options{Seed: 3, SimulateValidation: true, MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	for _, lvl := range res.Levels {
		if lvl.AvgSimGain <= 0 {
			t.Fatalf("K=%d missing simulated gain", lvl.K)
		}
		for _, b := range e.Benchmarks() {
			if g, ok := lvl.SimGain[b]; !ok || g <= 0 {
				t.Fatalf("K=%d missing sim gain for %s", lvl.K, b)
			}
		}
	}
	for _, b := range e.Benchmarks() {
		if res.BaselineSimEff[b] <= 0 {
			t.Fatalf("missing baseline sim efficiency for %s", b)
		}
	}
}

func TestCompromiseMembersPartitionSuite(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, nil, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range res.Levels {
		seen := map[string]bool{}
		for _, c := range lvl.Compromises {
			if err := c.Config.Validate(); err != nil {
				t.Fatalf("invalid compromise: %v", err)
			}
			if c.AvgDelay <= 0 || c.AvgPower <= 0 {
				t.Fatal("compromise missing averages")
			}
			for _, b := range c.Benchmarks {
				if seen[b] {
					t.Fatalf("benchmark %s in two clusters at K=%d", b, lvl.K)
				}
				seen[b] = true
			}
		}
		if len(seen) != len(e.Benchmarks()) {
			t.Fatalf("K=%d clusters cover %d benchmarks", lvl.K, len(seen))
		}
	}
}

func TestRunMissingOptimumRejected(t *testing.T) {
	e := testExplorer(t)
	partial := map[string]arch.Config{"gzip": arch.Baseline()}
	if _, err := Run(e, partial, Options{}); err == nil {
		t.Fatal("partial optima accepted")
	}
}

func TestSnapToSpaceGridValues(t *testing.T) {
	e := testExplorer(t)
	space := e.StudySpace
	cfg := snapToSpace(space, []float64{19.4, 5.1, 84, 13.2, 5.6, 4.9, 10.4})
	if cfg.DepthFO4 != 18 {
		t.Fatalf("depth snapped to %d, want 18", cfg.DepthFO4)
	}
	if cfg.Width != 4 {
		t.Fatalf("width snapped to %d, want 4", cfg.Width)
	}
	if cfg.GPR != 80 {
		t.Fatalf("GPR snapped to %d, want 80", cfg.GPR)
	}
	if cfg.IL1KB != 64 || cfg.DL1KB != 32 || cfg.L2KB != 1024 {
		t.Fatalf("caches snapped to %d/%d/%d", cfg.IL1KB, cfg.DL1KB, cfg.L2KB)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouettePopulated(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, nil, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[0].Silhouette != 0 {
		t.Fatal("K=1 silhouette should be zero (undefined)")
	}
	sawNonZero := false
	for _, lvl := range res.Levels[1:] {
		if lvl.Silhouette < -1 || lvl.Silhouette > 1 {
			t.Fatalf("K=%d silhouette %v out of [-1,1]", lvl.K, lvl.Silhouette)
		}
		if lvl.Silhouette != 0 {
			sawNonZero = true
		}
	}
	if !sawNonZero {
		t.Fatal("no clustering produced a silhouette")
	}
}
