// Package heterostudy implements Section 6 of the paper: per-benchmark
// bips^3/w-optimal architectures are clustered with K-means in the
// design-parameter space; each centroid becomes a compromise core, and
// the efficiency gain over the POWER4-like baseline is evaluated as the
// number of clusters (the degree of heterogeneity) grows from 0 (the
// baseline itself) to the number of benchmarks (fully per-benchmark
// cores). It produces Table 4 and Figures 8 and 9.
package heterostudy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Options tunes the study.
type Options struct {
	// MaxClusters bounds the heterogeneity sweep; zero means the number
	// of benchmarks (the theoretical upper bound).
	MaxClusters int
	// SimulateValidation evaluates compromise assignments in the
	// detailed simulator as well (Figure 9b).
	SimulateValidation bool
	// Seed feeds K-means' deterministic seeding.
	Seed uint64
}

// Compromise is one compromise core: a centroid snapped to the nearest
// grid design, with the benchmarks it serves (a Table 4 row).
type Compromise struct {
	Config     arch.Config
	Benchmarks []string
	// AvgDelay/AvgPower are the model-predicted averages over the
	// member benchmarks (the paper's Table 4 columns).
	AvgDelay float64
	AvgPower float64
}

// ClusterLevel is the outcome for one degree of heterogeneity K.
type ClusterLevel struct {
	K           int
	Compromises []Compromise
	// Assign maps benchmark -> index into Compromises.
	Assign map[string]int
	// ModelGain and SimGain are per-benchmark bips^3/w gains relative to
	// the baseline core (Figure 9a / 9b).
	ModelGain map[string]float64
	SimGain   map[string]float64 // nil unless validated
	// AvgModelGain / AvgSimGain aggregate over benchmarks.
	AvgModelGain float64
	AvgSimGain   float64
	// Silhouette is the mean silhouette coefficient of the clustering in
	// the normalized parameter space (zero for K=1, where it is
	// undefined): a compactness measure for choosing the degree of
	// heterogeneity.
	Silhouette float64
}

// Result is the full heterogeneity study.
type Result struct {
	// Optima are the per-benchmark best designs (Table 2) the clustering
	// consumes, with their model-predicted delay and power (Figure 8's
	// radial points).
	Optima map[string]OptimumPoint
	// Levels[k-1] is the K=k clustering (K from 1 to MaxClusters).
	Levels []ClusterLevel
	// BaselineModel/BaselineSim hold per-benchmark baseline efficiency
	// (cluster count 0 in Figure 9).
	BaselineModelEff map[string]float64
	BaselineSimEff   map[string]float64
}

// OptimumPoint is a benchmark's optimal design and its delay-power
// coordinates.
type OptimumPoint struct {
	Config arch.Config
	Delay  float64
	Power  float64
	Eff    float64
}

// Run executes the heterogeneity study. The per-benchmark optima can be
// supplied (e.g. from the pareto study) or discovered internally when nil.
func Run(e *core.Explorer, optima map[string]arch.Config, opts Options) (*Result, error) {
	sp := obs.Begin("study.hetero", obs.Int("benchmarks", int64(len(e.Benchmarks()))))
	defer sp.End()
	benches := e.Benchmarks()
	if opts.MaxClusters <= 0 || opts.MaxClusters > len(benches) {
		opts.MaxClusters = len(benches)
	}
	if optima == nil {
		var err error
		optima, err = FindOptima(e)
		if err != nil {
			return nil, err
		}
	}
	for _, b := range benches {
		if _, ok := optima[b]; !ok {
			return nil, fmt.Errorf("heterostudy: missing optimum for %q", b)
		}
	}

	res := &Result{
		Optima:           make(map[string]OptimumPoint, len(benches)),
		BaselineModelEff: make(map[string]float64, len(benches)),
		BaselineSimEff:   make(map[string]float64, len(benches)),
	}

	ctx := context.Background()

	// Baseline efficiencies (cluster count 0), one batch per backend.
	base := arch.Baseline()
	baseReqs := make([]eval.Request, len(benches))
	for i, b := range benches {
		baseReqs[i] = eval.Request{Config: base, Bench: b}
	}
	basePreds, err := e.PredictBatch(ctx, baseReqs)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		res.BaselineModelEff[b] = metrics.BIPS3W(basePreds[i].BIPS, basePreds[i].Watts)
	}
	if opts.SimulateValidation {
		baseSims, err := e.SimulateBatch(ctx, baseReqs)
		if err != nil {
			return nil, err
		}
		for i, b := range benches {
			res.BaselineSimEff[b] = metrics.BIPS3W(baseSims[i].BIPS, baseSims[i].Watts)
		}
	}

	// Optima coordinates (Figure 8 radial points) in model space.
	optReqs := make([]eval.Request, len(benches))
	for i, b := range benches {
		optReqs[i] = eval.Request{Config: optima[b], Bench: b}
	}
	optPreds, err := e.PredictBatch(ctx, optReqs)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		res.Optima[b] = OptimumPoint{
			Config: optima[b],
			Delay:  metrics.Delay(optPreds[i].BIPS),
			Power:  optPreds[i].Watts,
			Eff:    metrics.BIPS3W(optPreds[i].BIPS, optPreds[i].Watts),
		}
	}

	// Clustering space: the architectures' predictor vectors, normalized
	// per dimension (the paper clusters "normalized and weighted vectors
	// of parameter values" in the p-dimensional design space).
	points := make([][]float64, len(benches))
	for i, b := range benches {
		points[i] = arch.Predictors(optima[b])
	}

	for k := 1; k <= opts.MaxClusters; k++ {
		km, err := cluster.KMeans(points, k, cluster.Options{
			Normalize: true,
			Seed:      opts.Seed + uint64(k),
			Restarts:  16,
		})
		if err != nil {
			return nil, err
		}
		level := ClusterLevel{
			K:         k,
			Assign:    make(map[string]int, len(benches)),
			ModelGain: make(map[string]float64, len(benches)),
		}
		if opts.SimulateValidation {
			level.SimGain = make(map[string]float64, len(benches))
		}
		// First pass: snap centroids, build the compromise layout, and
		// collect one (compromise config, member benchmark) request per
		// assignment for batched evaluation.
		type memberRef struct {
			comp  int
			bench string
		}
		var reqs []eval.Request
		var refs []memberRef
		for c := 0; c < k; c++ {
			members := km.Members(c)
			if len(members) == 0 {
				continue
			}
			cfg := snapToSpace(e.StudySpace, km.Centroids[c])
			compIdx := len(level.Compromises)
			comp := Compromise{Config: cfg}
			for _, m := range members {
				b := benches[m]
				comp.Benchmarks = append(comp.Benchmarks, b)
				level.Assign[b] = compIdx
				reqs = append(reqs, eval.Request{Config: cfg, Bench: b})
				refs = append(refs, memberRef{comp: compIdx, bench: b})
			}
			sort.Strings(comp.Benchmarks)
			level.Compromises = append(level.Compromises, comp)
		}
		preds, err := e.PredictBatch(ctx, reqs)
		if err != nil {
			return nil, err
		}
		var sims []eval.Result
		if opts.SimulateValidation {
			if sims, err = e.SimulateBatch(ctx, reqs); err != nil {
				return nil, err
			}
		}
		// Second pass: fold batched results back into per-compromise
		// averages and per-benchmark gains.
		delays := make([][]float64, len(level.Compromises))
		powers := make([][]float64, len(level.Compromises))
		for i, ref := range refs {
			pb, pw := preds[i].BIPS, preds[i].Watts
			delays[ref.comp] = append(delays[ref.comp], metrics.Delay(pb))
			powers[ref.comp] = append(powers[ref.comp], pw)
			level.ModelGain[ref.bench] = metrics.BIPS3W(pb, pw) / res.BaselineModelEff[ref.bench]
			if sims != nil {
				level.SimGain[ref.bench] = metrics.BIPS3W(sims[i].BIPS, sims[i].Watts) / res.BaselineSimEff[ref.bench]
			}
		}
		for ci := range level.Compromises {
			level.Compromises[ci].AvgDelay = stats.Mean(delays[ci])
			level.Compromises[ci].AvgPower = stats.Mean(powers[ci])
		}
		level.AvgModelGain = avgGain(level.ModelGain, benches)
		if opts.SimulateValidation {
			level.AvgSimGain = avgGain(level.SimGain, benches)
		}
		if k >= 2 {
			if sil, err := cluster.Silhouette(normalizedPoints(points), km.Assign, k); err == nil {
				level.Silhouette = sil
			}
		}
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}

// normalizedPoints min/max-rescales each dimension, matching the space
// K-means clusters in, so silhouettes measure the same geometry.
func normalizedPoints(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	lo := append([]float64(nil), points[0]...)
	hi := append([]float64(nil), points[0]...)
	for _, p := range points {
		for d, v := range p {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		row := make([]float64, dim)
		for d, v := range p {
			if hi[d] > lo[d] {
				row[d] = (v - lo[d]) / (hi[d] - lo[d])
			}
		}
		out[i] = row
	}
	return out
}

// avgGain averages per-benchmark multiplicative gains geometrically.
func avgGain(gains map[string]float64, benches []string) float64 {
	vals := make([]float64, 0, len(benches))
	for _, b := range benches {
		if g, ok := gains[b]; ok {
			vals = append(vals, g)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return stats.GeoMean(vals)
}

// FindOptima locates each benchmark's predicted bips^3/w-maximizing
// design over the study space.
func FindOptima(e *core.Explorer) (map[string]arch.Config, error) {
	out := make(map[string]arch.Config)
	space := e.StudySpace
	for _, bench := range e.Benchmarks() {
		preds, err := e.ExhaustivePredict(bench)
		if err != nil {
			return nil, err
		}
		bestIdx, _ := core.BestEfficiency(preds)
		if bestIdx < 0 {
			return nil, fmt.Errorf("heterostudy: no valid predictions for %s", bench)
		}
		out[bench] = space.Config(space.PointAt(bestIdx))
	}
	return out, nil
}

// snapToSpace maps a centroid in predictor coordinates (depth, width,
// regs, resv, log2 cache sizes) to the nearest design in the space: each
// axis snaps to the closest level.
func snapToSpace(space *arch.Space, centroid []float64) arch.Config {
	var pt arch.Point
	pt[arch.AxisDepth] = nearestIndex(centroid[0], depthValues(space))
	pt[arch.AxisWidth] = nearestIndex(centroid[1], []float64{2, 4, 8})
	pt[arch.AxisRegs] = nearestIndex(centroid[2], linspace(40, 10, 10))
	pt[arch.AxisResv] = nearestIndex(centroid[3], linspace(10, 2, 10))
	pt[arch.AxisIL1] = nearestIndex(centroid[4], []float64{4, 5, 6, 7, 8})   // log2 KB
	pt[arch.AxisDL1] = nearestIndex(centroid[5], []float64{3, 4, 5, 6, 7})   // log2 KB
	pt[arch.AxisL2] = nearestIndex(centroid[6], []float64{8, 9, 10, 11, 12}) // log2 KB
	return space.Config(pt)
}

func depthValues(space *arch.Space) []float64 {
	levels := space.DepthLevels()
	out := make([]float64, len(levels))
	for i, d := range levels {
		out[i] = float64(d)
	}
	return out
}

func linspace(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + step*float64(i)
	}
	return out
}

func nearestIndex(v float64, levels []float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, l := range levels {
		if d := math.Abs(v - l); d < bestDist {
			bestDist, best = d, i
		}
	}
	return best
}
