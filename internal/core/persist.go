package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/eval"
	"repro/internal/regression"
)

// modelSetJSON is the on-disk form of a trained explorer's models: one
// performance and one power model per benchmark, plus enough metadata to
// detect mismatched reuse.
type modelSetJSON struct {
	Version      int                          `json:"version"`
	TrainSamples int                          `json:"train_samples"`
	TraceLen     int                          `json:"trace_len"`
	Seed         uint64                       `json:"seed"`
	Performance  map[string]*regression.Model `json:"performance"`
	Power        map[string]*regression.Model `json:"power"`
}

const modelSetVersion = 1

// SaveModels writes the trained models as JSON. Training (the expensive
// part: a thousand simulations per benchmark) can then be done once and
// the models reused across studies, as the paper advocates.
func (e *Explorer) SaveModels(w io.Writer) error {
	if !e.Trained() {
		return fmt.Errorf("core: SaveModels before Train")
	}
	set := modelSetJSON{
		Version:      modelSetVersion,
		TrainSamples: e.opts.TrainSamples,
		TraceLen:     e.opts.TraceLen,
		Seed:         e.opts.Seed,
		Performance:  e.perf,
		Power:        e.pow,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(set)
}

// LoadModels restores models saved by SaveModels, replacing any trained
// state. The explorer's benchmark list must be covered by the saved set.
func (e *Explorer) LoadModels(r io.Reader) error {
	var set modelSetJSON
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return fmt.Errorf("core: decoding models: %w", err)
	}
	if set.Version != modelSetVersion {
		return fmt.Errorf("core: model set version %d, want %d", set.Version, modelSetVersion)
	}
	for _, b := range e.benchmarks {
		if set.Performance[b] == nil || set.Power[b] == nil {
			return fmt.Errorf("core: saved models missing benchmark %q", b)
		}
	}
	e.mu.Lock()
	e.perf = set.Performance
	e.pow = set.Power
	// Cached sweeps and compiled pairs belong to the previous models.
	e.sweepCache = make(map[string][]Prediction)
	e.compiled = make(map[string]*eval.CompiledPair)
	e.mu.Unlock()
	for _, b := range e.benchmarks {
		if err := e.compileBench(b, set.Performance[b], set.Power[b]); err != nil {
			return err
		}
	}
	e.modelsBackend.Reset()
	return nil
}
