package depthstudy

import (
	"math"
	"testing"

	"repro/internal/core"
)

var shared *core.Explorer

func testExplorer(t *testing.T) *core.Explorer {
	t.Helper()
	if shared != nil {
		return shared
	}
	opts := core.DefaultOptions()
	opts.TrainSamples = 180
	opts.TraceLen = 20000
	opts.Benchmarks = []string{"gzip", "mesa"}
	e, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	shared = e
	return e
}

func TestRunStructure(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "gzip", Options{})
	if err != nil {
		t.Fatal(err)
	}
	depths := e.StudySpace.DepthLevels()
	if len(res.Rows) != len(depths) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(depths))
	}
	for i, row := range res.Rows {
		if row.DepthFO4 != depths[i] {
			t.Fatalf("row %d depth = %d, want %d", i, row.DepthFO4, depths[i])
		}
		if row.EffBox.N != 37500 {
			t.Fatalf("boxplot population = %d, want 37500", row.EffBox.N)
		}
		if row.OriginalModelEff <= 0 || row.BoundModelEff <= 0 {
			t.Fatal("non-positive efficiency")
		}
		if row.FracBeatsBaseline < 0 || row.FracBeatsBaseline > 1 {
			t.Fatalf("FracBeatsBaseline = %v", row.FracBeatsBaseline)
		}
	}
}

func TestOriginalOptimumInterior(t *testing.T) {
	// The paper's central depth finding: the bips^3/w-optimal depth is
	// interior (18 FO4 there), a plateau rather than an endpoint.
	e := testExplorer(t)
	res, err := Run(e, "mesa", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalBestDepth == 12 || res.OriginalBestDepth == 30 {
		t.Fatalf("optimal depth %d is at the boundary", res.OriginalBestDepth)
	}
}

func TestBoundBeatsOriginal(t *testing.T) {
	// The enhanced analysis' per-depth best design must be at least as
	// efficient as the constrained original design at that depth: the
	// original configuration is inside the searched set.
	e := testExplorer(t)
	res, err := Run(e, "gzip", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Allow a sliver of slack: the baseline's depth 19 is off-grid,
		// but per-depth rows share the same grid so Bound >= Original
		// should hold outright.
		if row.BoundModelEff < row.OriginalModelEff*0.999 {
			t.Fatalf("at %d FO4 bound eff %v below original %v",
				row.DepthFO4, row.BoundModelEff, row.OriginalModelEff)
		}
	}
}

func TestDL1HistogramNormalized(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "mesa", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := e.StudySpace.DL1Levels()
	for _, row := range res.Rows {
		var sum float64
		for kb, frac := range row.DL1Histogram {
			if frac < 0 || frac > 1 {
				t.Fatalf("fraction %v out of range", frac)
			}
			found := false
			for _, s := range sizes {
				if s == kb {
					found = true
				}
			}
			if !found {
				t.Fatalf("histogram key %d KB not a D-L1 level", kb)
			}
			sum += frac
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram sums to %v", sum)
		}
	}
}

func TestValidationPopulatesSimulatedRows(t *testing.T) {
	e := testExplorer(t)
	res, err := Run(e, "gzip", Options{SimulateValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.OriginalSimEff <= 0 || row.BoundSimEff <= 0 {
			t.Fatalf("missing simulated efficiency at %d FO4", row.DepthFO4)
		}
		if row.OriginalSimBIPS <= 0 || row.BoundSimWatts <= 0 {
			t.Fatal("missing simulated components")
		}
	}
}

func TestTopPercentileValidation(t *testing.T) {
	e := testExplorer(t)
	if _, err := Run(e, "gzip", Options{TopPercentile: 1.5}); err == nil {
		t.Fatal("TopPercentile > 1 accepted")
	}
	if _, err := Run(e, "gzip", Options{TopPercentile: -0.1}); err == nil {
		t.Fatal("negative TopPercentile accepted")
	}
}

func TestAverageAggregation(t *testing.T) {
	e := testExplorer(t)
	results, err := RunSuite(e, Options{SimulateValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Average(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg.Depths) != 7 {
		t.Fatalf("depth axis = %v", avg.Depths)
	}
	// The original curve is normalized: its max must be ~1.
	maxOrig := 0.0
	for _, v := range avg.OriginalRel {
		if v <= 0 || v > 1+1e-9 {
			t.Fatalf("OriginalRel value %v out of (0,1]", v)
		}
		if v > maxOrig {
			maxOrig = v
		}
	}
	if math.Abs(maxOrig-1) > 1e-9 {
		t.Fatalf("OriginalRel max = %v, want 1", maxOrig)
	}
	// Simulated curves present and normalized.
	maxSim := 0.0
	for _, v := range avg.OriginalSimRel {
		if v > maxSim {
			maxSim = v
		}
	}
	if math.Abs(maxSim-1) > 1e-9 {
		t.Fatalf("OriginalSimRel max = %v, want 1", maxSim)
	}
	// Best depths must be levels of the axis.
	onAxis := func(d int) bool {
		for _, v := range avg.Depths {
			if v == d {
				return true
			}
		}
		return false
	}
	if !onAxis(avg.BestOriginalDepth) || !onAxis(avg.BestBoundDepth) {
		t.Fatalf("best depths %d/%d not on axis", avg.BestOriginalDepth, avg.BestBoundDepth)
	}
}

func TestAverageEmpty(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Fatal("Average of nothing succeeded")
	}
}

func TestModelFindsSimulatorOptimumWithin3FO4(t *testing.T) {
	// Figure 6's headline: "the models correctly identify the most
	// efficient depths to within 3 FO4".
	e := testExplorer(t)
	results, err := RunSuite(e, Options{SimulateValidation: true})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Average(results)
	if err != nil {
		t.Fatal(err)
	}
	simBest, simVal := 0, -1.0
	for i, v := range avg.OriginalSimRel {
		if v > simVal {
			simVal, simBest = v, avg.Depths[i]
		}
	}
	if d := avg.BestOriginalDepth - simBest; d < -3 || d > 3 {
		t.Fatalf("model optimum %d vs simulated %d differ by more than 3 FO4",
			avg.BestOriginalDepth, simBest)
	}
}
