// Package depthstudy implements Section 5 of the paper: the constrained
// "original" pipeline-depth analysis (all non-depth parameters held at
// the POWER4-like baseline) versus the "enhanced" analysis in which the
// regression models evaluate all 37,500 designs at each of the seven
// depths. It produces the data behind Figures 5(a), 5(b), 6 and 7.
package depthstudy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Options tunes the study.
type Options struct {
	// SimulateValidation re-runs the original sweep and each depth's
	// predicted-best design in the detailed simulator (Figures 6-7).
	SimulateValidation bool
	// TopPercentile is the quantile cut for the cache-distribution
	// analysis of Figure 5(b); zero means 0.95 (the paper's 95th
	// percentile).
	TopPercentile float64
}

// DepthRow summarizes one pipeline depth.
type DepthRow struct {
	DepthFO4 int

	// Original analysis: the baseline design at this depth.
	OriginalModelBIPS  float64
	OriginalModelWatts float64
	OriginalModelEff   float64 // bips^3/w
	OriginalSimEff     float64 // zero unless validated
	OriginalSimBIPS    float64
	OriginalSimWatts   float64

	// Enhanced analysis: the distribution of predicted bips^3/w over all
	// 37,500 designs at this depth, expressed relative to the original
	// analysis' best depth (the paper's Figure 5a normalization).
	EffBox stats.Boxplot

	// Bound architecture: the design predicted most efficient at this
	// depth (the boxplot maximum).
	BoundConfig     arch.Config
	BoundModelEff   float64
	BoundSimEff     float64 // zero unless validated
	BoundSimBIPS    float64
	BoundSimWatts   float64
	BoundModelBIPS  float64
	BoundModelWatts float64

	// FracBeatsBaseline is the fraction of designs at this depth
	// predicted more efficient than the original bips^3/w optimum.
	FracBeatsBaseline float64

	// DL1Histogram counts D-L1 cache sizes among the top designs at this
	// depth (Figure 5b): DL1Histogram[sizeKB] = fraction of top designs.
	DL1Histogram map[int]float64
}

// Result is the full study output for one benchmark (or the suite
// average; see RunAverage).
type Result struct {
	Benchmark string
	Rows      []DepthRow // ascending FO4 (deepest pipeline first)

	// OriginalBestDepth is the FO4 with maximal original-analysis
	// predicted efficiency; all relative numbers are normalized to it.
	OriginalBestDepth int
	OriginalBestEff   float64

	// BoundBestDepth is the FO4 whose bound architecture is predicted
	// most efficient.
	BoundBestDepth int
}

// Run executes the depth study for one benchmark.
func Run(e *core.Explorer, bench string, opts Options) (*Result, error) {
	sp := obs.Begin("study.depth", obs.String("bench", bench))
	defer sp.End()
	if opts.TopPercentile == 0 {
		opts.TopPercentile = 0.95
	}
	if opts.TopPercentile <= 0 || opts.TopPercentile >= 1 {
		return nil, fmt.Errorf("depthstudy: TopPercentile %v out of (0,1)", opts.TopPercentile)
	}
	space := e.StudySpace
	depths := space.DepthLevels()

	// --- Original analysis: baseline parameters, sweep depth. ---
	baseCfgs := make([]arch.Config, len(depths))
	origEff := make([]float64, len(depths))
	origBIPS := make([]float64, len(depths))
	origWatts := make([]float64, len(depths))
	base := arch.Baseline()
	for i, d := range depths {
		cfg := base
		cfg.DepthFO4 = d
		baseCfgs[i] = cfg
	}
	origPreds, err := e.PredictBatch(context.Background(), eval.RequestsFor(baseCfgs, bench))
	if err != nil {
		return nil, err
	}
	for i, d := range depths {
		b, w := origPreds[i].BIPS, origPreds[i].Watts
		if b <= 0 || w <= 0 {
			return nil, fmt.Errorf("depthstudy: non-positive prediction at %d FO4", d)
		}
		origBIPS[i], origWatts[i] = b, w
		origEff[i] = metrics.BIPS3W(b, w)
	}
	bestIdx := argmax(origEff)
	res := &Result{
		Benchmark:         bench,
		OriginalBestDepth: depths[bestIdx],
		OriginalBestEff:   origEff[bestIdx],
	}

	// --- Enhanced analysis: full space grouped by depth. ---
	preds, err := e.ExhaustivePredict(bench)
	if err != nil {
		return nil, err
	}
	for di, d := range depths {
		// Depth is the most significant axis of the flat order, so each
		// depth's designs occupy one contiguous block of the sweep — walk
		// it directly instead of decoding points.
		lo, hi := space.DepthBlock(di)
		effs := make([]float64, 0, hi-lo)
		type scored struct {
			idx int
			eff float64
		}
		all := make([]scored, 0, hi-lo)
		bound := scored{idx: -1, eff: math.Inf(-1)}
		beats := 0
		for flat := lo; flat < hi; flat++ {
			p := preds[flat]
			if p.BIPS <= 0 || p.Watts <= 0 {
				continue
			}
			eff := metrics.BIPS3W(p.BIPS, p.Watts)
			rel := eff / res.OriginalBestEff
			effs = append(effs, rel)
			all = append(all, scored{idx: flat, eff: eff})
			if eff > bound.eff {
				bound = scored{idx: flat, eff: eff}
			}
			if eff > res.OriginalBestEff {
				beats++
			}
		}
		if bound.idx < 0 {
			return nil, fmt.Errorf("depthstudy: no valid designs at %d FO4", d)
		}
		row := DepthRow{
			DepthFO4:           d,
			OriginalModelBIPS:  origBIPS[di],
			OriginalModelWatts: origWatts[di],
			OriginalModelEff:   origEff[di],
			EffBox:             stats.NewBoxplot(effs),
			BoundConfig:        space.Config(space.PointAt(bound.idx)),
			BoundModelEff:      bound.eff,
			BoundModelBIPS:     preds[bound.idx].BIPS,
			BoundModelWatts:    preds[bound.idx].Watts,
			FracBeatsBaseline:  float64(beats) / float64(len(all)),
		}

		// Figure 5(b): D-L1 size distribution among the top designs.
		sort.Slice(all, func(a, b int) bool { return all[a].eff < all[b].eff })
		cut := int(float64(len(all)) * opts.TopPercentile)
		top := all[cut:]
		hist := make(map[int]float64)
		for _, s := range top {
			cfg := space.Config(space.PointAt(s.idx))
			hist[cfg.DL1KB]++
		}
		for k := range hist {
			hist[k] /= float64(len(top))
		}
		row.DL1Histogram = hist

		res.Rows = append(res.Rows, row)
	}

	// Bound-architecture optimum across depths.
	bi := 0
	for i, r := range res.Rows {
		if r.BoundModelEff > res.Rows[bi].BoundModelEff {
			bi = i
		}
		_ = i
	}
	res.BoundBestDepth = res.Rows[bi].DepthFO4

	// --- Validation by simulation (Figures 6-7). ---
	if opts.SimulateValidation {
		// One batch covers every depth's baseline and bound design; the
		// engine runs them concurrently and keeps results in order.
		reqs := make([]eval.Request, 0, 2*len(res.Rows))
		for i := range res.Rows {
			reqs = append(reqs,
				eval.Request{Config: baseCfgs[i], Bench: bench},
				eval.Request{Config: res.Rows[i].BoundConfig, Bench: bench})
		}
		sims, err := e.SimulateBatch(context.Background(), reqs)
		if err != nil {
			return nil, err
		}
		for i := range res.Rows {
			row := &res.Rows[i]
			orig, bound := sims[2*i], sims[2*i+1]
			row.OriginalSimBIPS, row.OriginalSimWatts = orig.BIPS, orig.Watts
			row.OriginalSimEff = metrics.BIPS3W(orig.BIPS, orig.Watts)
			row.BoundSimBIPS, row.BoundSimWatts = bound.BIPS, bound.Watts
			row.BoundSimEff = metrics.BIPS3W(bound.BIPS, bound.Watts)
		}
	}
	return res, nil
}

// SuiteAverage combines per-benchmark results into the benchmark-average
// view the paper's figures plot: efficiencies are averaged geometrically
// across benchmarks at each depth (ratios compose multiplicatively).
type SuiteAverage struct {
	Depths []int
	// OriginalRel[i] is the original analysis' relative efficiency at
	// Depths[i], normalized to the best original depth (line plot of
	// Figure 5a).
	OriginalRel []float64
	// BoundRel[i] is the bound architectures' relative efficiency,
	// normalized to the best bound depth (the numbers above Figure 5a's
	// boxplots).
	BoundRel []float64
	// MedianRel[i] is the median enhanced-analysis efficiency relative
	// to the original optimum; Q1Rel/Q3Rel are the quartiles (the
	// boxplot boxes of Figure 5a).
	MedianRel []float64
	Q1Rel     []float64
	Q3Rel     []float64
	// MaxRel[i] is the boxplot maximum: the bound architecture's
	// efficiency relative to the original optimum.
	MaxRel []float64
	// FracBeatsBaseline[i] averages the per-benchmark fractions.
	FracBeatsBaseline []float64
	// Simulated counterparts (zero slices when validation was off).
	OriginalSimRel []float64
	BoundSimRel    []float64

	BestOriginalDepth int
	BestBoundDepth    int
}

// Average aggregates per-benchmark depth studies.
func Average(results map[string]*Result) (*SuiteAverage, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("depthstudy: no results to average")
	}
	var depths []int
	for _, r := range results {
		depths = r.depthList()
		break
	}
	nd := len(depths)
	avg := &SuiteAverage{
		Depths:            depths,
		OriginalRel:       make([]float64, nd),
		BoundRel:          make([]float64, nd),
		MedianRel:         make([]float64, nd),
		Q1Rel:             make([]float64, nd),
		Q3Rel:             make([]float64, nd),
		MaxRel:            make([]float64, nd),
		FracBeatsBaseline: make([]float64, nd),
		OriginalSimRel:    make([]float64, nd),
		BoundSimRel:       make([]float64, nd),
	}
	simulated := true
	for di := 0; di < nd; di++ {
		var orig, bound, med, q1, q3, maxRel, frac, origSim, boundSim []float64
		for _, r := range results {
			if len(r.Rows) != nd {
				return nil, fmt.Errorf("depthstudy: inconsistent depth axes")
			}
			row := r.Rows[di]
			orig = append(orig, row.OriginalModelEff/r.OriginalBestEff)
			boundBest := r.boundBestEff()
			bound = append(bound, row.BoundModelEff/boundBest)
			med = append(med, row.EffBox.Med)
			q1 = append(q1, row.EffBox.Q1)
			q3 = append(q3, row.EffBox.Q3)
			maxRel = append(maxRel, row.EffBox.Max)
			frac = append(frac, row.FracBeatsBaseline)
			if row.OriginalSimEff > 0 && row.BoundSimEff > 0 {
				origSim = append(origSim, row.OriginalSimEff)
				boundSim = append(boundSim, row.BoundSimEff)
			} else {
				simulated = false
			}
		}
		avg.OriginalRel[di] = stats.GeoMean(orig)
		avg.BoundRel[di] = stats.GeoMean(bound)
		avg.MedianRel[di] = stats.GeoMean(med)
		avg.Q1Rel[di] = stats.GeoMean(q1)
		avg.Q3Rel[di] = stats.GeoMean(q3)
		avg.MaxRel[di] = stats.GeoMean(maxRel)
		avg.FracBeatsBaseline[di] = stats.Mean(frac)
		if simulated && len(origSim) > 0 {
			avg.OriginalSimRel[di] = stats.GeoMean(origSim)
			avg.BoundSimRel[di] = stats.GeoMean(boundSim)
		}
	}
	// Normalize simulated curves to their own maxima for comparability.
	normalizeToMax(avg.OriginalSimRel)
	normalizeToMax(avg.BoundSimRel)

	avg.BestOriginalDepth = depths[argmax(avg.OriginalRel)]
	avg.BestBoundDepth = depths[argmax(avg.BoundRel)]
	return avg, nil
}

func (r *Result) depthList() []int {
	out := make([]int, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.DepthFO4
	}
	return out
}

func (r *Result) boundBestEff() float64 {
	best := math.Inf(-1)
	for _, row := range r.Rows {
		if row.BoundModelEff > best {
			best = row.BoundModelEff
		}
	}
	return best
}

func normalizeToMax(v []float64) {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if m <= 0 {
		return
	}
	for i := range v {
		v[i] /= m
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// RunSuite executes the depth study for every modeled benchmark.
func RunSuite(e *core.Explorer, opts Options) (map[string]*Result, error) {
	out := make(map[string]*Result)
	for _, bench := range e.Benchmarks() {
		r, err := Run(e, bench, opts)
		if err != nil {
			return nil, err
		}
		out[bench] = r
	}
	return out, nil
}
