package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTraceFileRoundTrip(t *testing.T) {
	orig, err := ForBenchmark("gcc", 8000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	wantSize := int64(4 + 8 + len(orig.Name) + recordBytes*orig.Len())
	if n != wantSize {
		t.Fatalf("file size %d, want %d", n, wantSize)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Len() != orig.Len() {
		t.Fatalf("metadata mismatch: %q/%d vs %q/%d", got.Name, got.Len(), orig.Name, orig.Len())
	}
	for i := range orig.Insts {
		if got.Insts[i] != orig.Insts[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, got.Insts[i], orig.Insts[i])
		}
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	orig, err := ForBenchmark("gzip", 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), full[4:]...),
		"truncated":   full[:len(full)-7],
		"no records":  full[:12],
		"bad version": append(append([]byte{}, full[:4]...), append([]byte{9, 9}, full[6:]...)...),
	}
	for name, data := range cases {
		if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadTraceRejectsBadSemantics(t *testing.T) {
	// Hand-craft a file whose single record has a bad kind.
	tr := &Trace{Name: "x", Insts: []Inst{{Kind: OpInt}}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-2] = 200 // kind byte
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("unknown kind accepted")
	}

	// And one whose dependency points beyond the trace start.
	tr2 := &Trace{Name: "x", Insts: []Inst{{Kind: OpInt}}}
	buf.Reset()
	if _, err := tr2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data = buf.Bytes()
	data[len(data)-6] = 5 // dep1 low byte of instruction 0
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range dependency accepted")
	}
}

func TestTraceFileEmptyRejected(t *testing.T) {
	tr := &Trace{Name: "empty"}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("zero-instruction file accepted")
	}
}

// Property: round trip preserves arbitrary valid traces.
func TestQuickTraceFileRoundTrip(t *testing.T) {
	f := func(seedRaw uint8, lenRaw uint16) bool {
		names := Benchmarks()
		name := names[int(seedRaw)%len(names)]
		n := 50 + int(lenRaw)%500
		orig, err := ForBenchmark(name, n)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || got.Name != orig.Name || got.Len() != orig.Len() {
			return false
		}
		for i := range orig.Insts {
			if got.Insts[i] != orig.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
