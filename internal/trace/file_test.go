package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestTraceFileRoundTrip(t *testing.T) {
	orig, err := ForBenchmark("gcc", 8000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	wantSize := int64(4 + 8 + len(orig.Name) + recordBytes*orig.Len() + checksumBytes)
	if n != wantSize {
		t.Fatalf("file size %d, want %d", n, wantSize)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Len() != orig.Len() {
		t.Fatalf("metadata mismatch: %q/%d vs %q/%d", got.Name, got.Len(), orig.Name, orig.Len())
	}
	for i := range orig.Insts {
		if got.Insts[i] != orig.Insts[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, got.Insts[i], orig.Insts[i])
		}
	}
}

// reseal recomputes the trailing CRC32 over everything after the magic,
// so tests can tamper with payload bytes and still exercise the
// validation layer behind the checksum.
func reseal(data []byte) []byte {
	out := append([]byte{}, data...)
	body := out[4 : len(out)-checksumBytes]
	binary.LittleEndian.PutUint32(out[len(out)-checksumBytes:], crc32.ChecksumIEEE(body))
	return out
}

// asV1 rewrites a v2 file as a legacy v1 file: version field set to 1,
// trailing checksum dropped.
func asV1(data []byte) []byte {
	out := append([]byte{}, data[:len(data)-checksumBytes]...)
	binary.LittleEndian.PutUint16(out[4:6], 1)
	return out
}

// TestReadTraceMalformed is the malformed-input table: every damaged
// file is refused with the matching typed sentinel, never a panic or a
// silently wrong trace.
func TestReadTraceMalformed(t *testing.T) {
	orig, err := ForBenchmark("gzip", 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	mut := func(off int, b byte) []byte {
		out := append([]byte{}, full...)
		out[off] = b
		return out
	}
	countOff := 4 + 4 // count field low byte (after magic + version + nameLen)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrTruncated},
		{"bad magic", append([]byte("NOPE"), full[4:]...), ErrBadMagic},
		{"version zero", reseal(mut(4, 0)), ErrBadVersion},
		{"future version", reseal(mut(4, 9)), ErrBadVersion},
		{"truncated header", full[:9], ErrTruncated},
		{"truncated records", full[:len(full)-checksumBytes-7], ErrTruncated},
		{"missing checksum", full[:len(full)-2], ErrTruncated},
		{"zero instructions", reseal(append(append([]byte{}, full[:countOff]...),
			append([]byte{0, 0, 0, 0}, full[countOff+4:]...)...)), ErrEmpty},
		{"absurd count", reseal(append(append([]byte{}, full[:countOff]...),
			append([]byte{0xff, 0xff, 0xff, 0xff}, full[countOff+4:]...)...)), ErrTooLarge},
		{"flipped payload bit", mut(4+8+len(orig.Name)+3, full[4+8+len(orig.Name)+3]^0x10), ErrChecksum},
		{"unknown kind", reseal(mut(len(full)-checksumBytes-2, 200)), ErrBadRecord},
		{"dep beyond start", reseal(mut(4+8+len(orig.Name)+8, 0xff)), ErrBadRecord},
	}
	for _, tc := range cases {
		_, err := ReadTrace(bytes.NewReader(tc.data))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want errors.Is %v", tc.name, err, tc.want)
		}
	}
}

// TestReadTraceAcceptsLegacyV1: files written before the checksum was
// introduced (version 1, no trailing CRC) still load.
func TestReadTraceAcceptsLegacyV1(t *testing.T) {
	orig, err := ForBenchmark("mesa", 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(asV1(buf.Bytes())))
	if err != nil {
		t.Fatalf("legacy v1 file rejected: %v", err)
	}
	if got.Name != orig.Name || got.Len() != orig.Len() {
		t.Fatalf("legacy round trip mismatch: %q/%d vs %q/%d", got.Name, got.Len(), orig.Name, orig.Len())
	}
	for i := range orig.Insts {
		if got.Insts[i] != orig.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestTraceFileEmptyRejected(t *testing.T) {
	tr := &Trace{Name: "empty"}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); !errors.Is(err, ErrEmpty) {
		t.Fatalf("zero-instruction file: got %v, want ErrEmpty", err)
	}
}

// Property: round trip preserves arbitrary valid traces.
func TestQuickTraceFileRoundTrip(t *testing.T) {
	f := func(seedRaw uint8, lenRaw uint16) bool {
		names := Benchmarks()
		name := names[int(seedRaw)%len(names)]
		n := 50 + int(lenRaw)%500
		orig, err := ForBenchmark(name, n)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || got.Name != orig.Name || got.Len() != orig.Len() {
			return false
		}
		for i := range orig.Insts {
			if got.Insts[i] != orig.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
