package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace file format. Trace-driven simulation traditionally pays
// "non-trivial storage costs" (paper Section 1); this compact fixed-record
// format makes the synthesized traces storable and exchangeable like the
// PowerPC traces the paper's infrastructure consumed.
//
// Layout (little endian):
//
//	magic   [4]byte  "UTRC"
//	version uint16
//	nameLen uint16
//	name    [nameLen]byte
//	count   uint32
//	records [count] x 14 bytes:
//	  pc    uint32
//	  addr  uint32
//	  dep1  uint16
//	  dep2  uint16
//	  kind  uint8
//	  flags uint8   (bit 0: branch taken)
const (
	fileVersion = 1
	recordBytes = 14
)

var fileMagic = [4]byte{'U', 'T', 'R', 'C'}

// WriteTo serializes the trace. It returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if len(t.Name) > 0xffff {
		return 0, fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if len(t.Insts) > 0xffffffff {
		return 0, fmt.Errorf("trace: too many instructions (%d)", len(t.Insts))
	}
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(fileMagic[:])); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(t.Name)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(t.Insts)))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	if err := count(io.WriteString(bw, t.Name)); err != nil {
		return n, err
	}
	var rec [recordBytes]byte
	for i := range t.Insts {
		in := &t.Insts[i]
		binary.LittleEndian.PutUint32(rec[0:4], in.PC)
		binary.LittleEndian.PutUint32(rec[4:8], in.Addr)
		binary.LittleEndian.PutUint16(rec[8:10], in.Dep1)
		binary.LittleEndian.PutUint16(rec[10:12], in.Dep2)
		rec[12] = uint8(in.Kind)
		rec[13] = 0
		if in.Taken {
			rec[13] = 1
		}
		if err := count(bw.Write(rec[:])); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo. It validates the
// header, record structure, and semantic invariants (dependency distances
// within the trace, known instruction kinds).
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint16(hdr[0:2])
	if version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if n == 0 {
		return nil, fmt.Errorf("trace: empty trace file")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	insts := make([]Inst, n)
	var rec [recordBytes]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d of %d: %w", i, n, err)
		}
		in := Inst{
			PC:    binary.LittleEndian.Uint32(rec[0:4]),
			Addr:  binary.LittleEndian.Uint32(rec[4:8]),
			Dep1:  binary.LittleEndian.Uint16(rec[8:10]),
			Dep2:  binary.LittleEndian.Uint16(rec[10:12]),
			Kind:  OpKind(rec[12]),
			Taken: rec[13]&1 != 0,
		}
		if in.Kind >= numOpKinds {
			return nil, fmt.Errorf("trace: record %d has unknown kind %d", i, rec[12])
		}
		if int(in.Dep1) > i || int(in.Dep2) > i {
			return nil, fmt.Errorf("trace: record %d has dependency beyond trace start", i)
		}
		insts[i] = in
	}
	return &Trace{Name: string(name), Insts: insts}, nil
}
