package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/fault"
)

// Binary trace file format. Trace-driven simulation traditionally pays
// "non-trivial storage costs" (paper Section 1); this compact fixed-record
// format makes the synthesized traces storable and exchangeable like the
// PowerPC traces the paper's infrastructure consumed.
//
// Layout (little endian):
//
//	magic   [4]byte  "UTRC"
//	version uint16
//	nameLen uint16
//	name    [nameLen]byte
//	count   uint32
//	records [count] x 14 bytes:
//	  pc    uint32
//	  addr  uint32
//	  dep1  uint16
//	  dep2  uint16
//	  kind  uint8
//	  flags uint8   (bit 0: branch taken)
//	crc32   uint32  (version >= 2: IEEE CRC of every byte after the magic)
//
// Version 2 appends a trailing CRC32 so a bit-rotted trace is detected
// at load instead of silently skewing a simulation; version 1 files (no
// checksum) are still accepted.
const (
	fileVersion      = 2
	minFileVersion   = 1 // oldest version ReadTrace still accepts
	recordBytes      = 14
	checksumBytes    = 4
	headerAfterMagic = 8
	// MaxFileInsts caps the instruction count a trace file may declare.
	// It is a sanity bound far above any real study that stops a corrupt
	// or adversarial header from driving a huge allocation.
	MaxFileInsts = 1 << 27
)

var fileMagic = [4]byte{'U', 'T', 'R', 'C'}

// Typed load failures, wrapped with positional context by ReadTrace so
// callers can branch with errors.Is while logs stay specific.
var (
	// ErrBadMagic reports a file that is not a trace file at all.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion reports a trace written by an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported version")
	// ErrTruncated reports a file that ends before its declared contents.
	ErrTruncated = errors.New("trace: truncated file")
	// ErrChecksum reports payload corruption detected by the trailing CRC.
	ErrChecksum = errors.New("trace: checksum mismatch")
	// ErrEmpty reports a file declaring zero instructions.
	ErrEmpty = errors.New("trace: empty trace file")
	// ErrTooLarge reports an instruction count beyond MaxFileInsts.
	ErrTooLarge = errors.New("trace: instruction count exceeds sanity cap")
	// ErrBadRecord reports a structurally valid record with impossible
	// semantics (unknown kind, dependency before the trace start).
	ErrBadRecord = errors.New("trace: malformed record")
)

// WriteTo serializes the trace. It returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	if len(t.Name) > 0xffff {
		return 0, fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	if len(t.Insts) > MaxFileInsts {
		return 0, fmt.Errorf("trace: too many instructions (%d): %w", len(t.Insts), ErrTooLarge)
	}
	bw := bufio.NewWriter(w)
	sum := crc32.NewIEEE()
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.Write(fileMagic[:])); err != nil {
		return n, err
	}
	var hdr [headerAfterMagic]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(t.Name)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(t.Insts)))
	sum.Write(hdr[:])
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	sum.Write([]byte(t.Name))
	if err := count(io.WriteString(bw, t.Name)); err != nil {
		return n, err
	}
	var rec [recordBytes]byte
	for i := range t.Insts {
		in := &t.Insts[i]
		binary.LittleEndian.PutUint32(rec[0:4], in.PC)
		binary.LittleEndian.PutUint32(rec[4:8], in.Addr)
		binary.LittleEndian.PutUint16(rec[8:10], in.Dep1)
		binary.LittleEndian.PutUint16(rec[10:12], in.Dep2)
		rec[12] = uint8(in.Kind)
		rec[13] = 0
		if in.Taken {
			rec[13] = 1
		}
		sum.Write(rec[:])
		if err := count(bw.Write(rec[:])); err != nil {
			return n, err
		}
	}
	var tail [checksumBytes]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if err := count(bw.Write(tail[:])); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// readFull reads into buf, feeding sum when non-nil and folding short
// reads into ErrTruncated so a file that ends mid-structure yields one
// typed error everywhere.
func readFull(br *bufio.Reader, sum hash.Hash32, buf []byte, what string) error {
	if _, err := io.ReadFull(br, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: reading %s: %w", what, ErrTruncated)
		}
		return fmt.Errorf("trace: reading %s: %w", what, err)
	}
	if sum != nil {
		sum.Write(buf)
	}
	return nil
}

// ReadTrace deserializes a trace written by WriteTo. It validates the
// header, the trailing checksum (version >= 2), record structure, and
// semantic invariants (dependency distances within the trace, known
// instruction kinds). Failures carry the typed sentinels above via
// errors.Is.
func ReadTrace(r io.Reader) (*Trace, error) {
	// Resilience-test injection point for corrupt or unreadable trace media.
	if err := fault.Here("trace.read"); err != nil {
		return nil, fmt.Errorf("trace: reading trace: %w", err)
	}
	br := bufio.NewReader(r)
	var magic [4]byte
	if err := readFull(br, nil, magic[:], "magic"); err != nil {
		return nil, err
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: magic %q: %w", magic[:], ErrBadMagic)
	}
	sum := crc32.NewIEEE()
	var hdr [headerAfterMagic]byte
	if err := readFull(br, sum, hdr[:], "header"); err != nil {
		return nil, err
	}
	version := binary.LittleEndian.Uint16(hdr[0:2])
	if version < minFileVersion || version > fileVersion {
		return nil, fmt.Errorf("trace: version %d (supported %d..%d): %w",
			version, minFileVersion, fileVersion, ErrBadVersion)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if n == 0 {
		return nil, ErrEmpty
	}
	if n > MaxFileInsts {
		return nil, fmt.Errorf("trace: header declares %d instructions (cap %d): %w",
			n, MaxFileInsts, ErrTooLarge)
	}
	name := make([]byte, nameLen)
	if err := readFull(br, sum, name, "name"); err != nil {
		return nil, err
	}
	// Grow the slice as records arrive instead of trusting the header
	// count for one huge up-front allocation.
	insts := make([]Inst, 0, min(n, 1<<16))
	var rec [recordBytes]byte
	for i := 0; i < n; i++ {
		if err := readFull(br, sum, rec[:], fmt.Sprintf("record %d of %d", i, n)); err != nil {
			return nil, err
		}
		in := Inst{
			PC:    binary.LittleEndian.Uint32(rec[0:4]),
			Addr:  binary.LittleEndian.Uint32(rec[4:8]),
			Dep1:  binary.LittleEndian.Uint16(rec[8:10]),
			Dep2:  binary.LittleEndian.Uint16(rec[10:12]),
			Kind:  OpKind(rec[12]),
			Taken: rec[13]&1 != 0,
		}
		if in.Kind >= numOpKinds {
			return nil, fmt.Errorf("trace: record %d has unknown kind %d: %w", i, rec[12], ErrBadRecord)
		}
		if int(in.Dep1) > i || int(in.Dep2) > i {
			return nil, fmt.Errorf("trace: record %d has dependency beyond trace start: %w", i, ErrBadRecord)
		}
		insts = append(insts, in)
	}
	if version >= 2 {
		var tail [checksumBytes]byte
		if err := readFull(br, nil, tail[:], "checksum"); err != nil {
			return nil, err
		}
		if got, want := sum.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
			return nil, fmt.Errorf("trace: payload crc %08x, file says %08x: %w", got, want, ErrChecksum)
		}
	}
	return &Trace{Name: string(name), Insts: insts}, nil
}
