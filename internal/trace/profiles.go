package trace

import "math"

// Benchmarks lists the paper's nine-workload suite (Section 2.2): SPECjbb
// plus eight SPEC2000 programs, in the order the paper's tables use.
func Benchmarks() []string {
	return []string{"ammp", "applu", "equake", "gcc", "gzip", "jbb", "mcf", "mesa", "twolf"}
}

// ProfileFor returns the built-in profile for a benchmark name.
func ProfileFor(name string) (Profile, bool) {
	p, ok := builtinProfiles[name]
	return p, ok
}

// ln is a readability helper for lognormal location parameters expressed
// as "typical distance in blocks".
func ln(blocks float64) float64 { return math.Log(blocks) }

// The profiles below are calibrated to the published qualitative character
// of each benchmark so the paper's per-benchmark conclusions can emerge
// from simulation rather than being hard-coded:
//
//   - mcf: memory bound, pointer chasing, enormous data footprint — wants
//     the largest L2 and tolerates a shallow, narrow pipeline.
//   - gzip/gcc: compute-bound integer codes with modest footprints and
//     branchy control flow — small caches suffice.
//   - ammp/applu/equake: floating-point codes with high ILP; applu and
//     equake stream through memory (cache size barely matters), ammp's
//     set fits in modest caches.
//   - jbb/mesa: wide-issue friendly workloads with large instruction
//     footprints (Java server / rendering pipelines).
//   - twolf: integer place-and-route with a mid-size working set and
//     high register pressure.
//
// Distances are in 128-byte blocks: an 8 KB D-L1 holds 64 blocks, a 4 MB
// L2 holds 32768; a 16 KB I-L1 holds 128 blocks, 256 KB holds 2048.
var builtinProfiles = map[string]Profile{
	"ammp": {
		Name:    "ammp",
		FracInt: 0.30, FracFP: 0.35, FracLoad: 0.22, FracStore: 0.08, FracBranch: 0.05,
		MeanDepDist:    24, // high ILP
		LoadChainProb:  0.03,
		Data:           stackDist{hotMean: 60, coldMu: ln(1200), coldSigma: 0.8, coldFrac: 0.22},
		CodeBlocks:     120,
		CodeJump:       stackDist{hotMean: 6, coldMu: ln(120), coldSigma: 0.7, coldFrac: 0.15},
		HardBranchFrac: 0.10, EasyBias: 0.97, HardBias: 0.65,
		IPCScale: 1.0,
	},
	"applu": {
		Name:    "applu",
		FracInt: 0.25, FracFP: 0.42, FracLoad: 0.25, FracStore: 0.07, FracBranch: 0.01,
		MeanDepDist:   28, // long vectorizable chains
		LoadChainProb: 0.01,
		// Streaming: the cold tail is far beyond any cache in the space,
		// so cache size buys little.
		Data:           stackDist{hotMean: 25, coldMu: ln(300000), coldSigma: 0.5, coldFrac: 0.25},
		CodeBlocks:     180,
		CodeJump:       stackDist{hotMean: 4, coldMu: ln(150), coldSigma: 0.6, coldFrac: 0.10},
		HardBranchFrac: 0.05, EasyBias: 0.98, HardBias: 0.7,
		IPCScale: 1.0,
	},
	"equake": {
		Name:    "equake",
		FracInt: 0.30, FracFP: 0.30, FracLoad: 0.28, FracStore: 0.08, FracBranch: 0.04,
		MeanDepDist:    20,
		LoadChainProb:  0.04,
		Data:           stackDist{hotMean: 30, coldMu: ln(200000), coldSigma: 0.6, coldFrac: 0.20},
		CodeBlocks:     150,
		CodeJump:       stackDist{hotMean: 5, coldMu: ln(90), coldSigma: 0.6, coldFrac: 0.12},
		HardBranchFrac: 0.08, EasyBias: 0.97, HardBias: 0.68,
		IPCScale: 1.0,
	},
	"gcc": {
		Name:    "gcc",
		FracInt: 0.40, FracFP: 0.02, FracLoad: 0.26, FracStore: 0.12, FracBranch: 0.20,
		MeanDepDist:    8, // branchy, short dependence chains
		LoadChainProb:  0.08,
		Data:           stackDist{hotMean: 70, coldMu: ln(4000), coldSigma: 1.0, coldFrac: 0.18},
		CodeBlocks:     700, // large code footprint
		CodeJump:       stackDist{hotMean: 15, coldMu: ln(1500), coldSigma: 1.0, coldFrac: 0.30},
		HardBranchFrac: 0.30, EasyBias: 0.96, HardBias: 0.60,
		IPCScale: 1.0,
	},
	"gzip": {
		Name:    "gzip",
		FracInt: 0.45, FracFP: 0.01, FracLoad: 0.27, FracStore: 0.10, FracBranch: 0.17,
		MeanDepDist:    9,
		LoadChainProb:  0.05,
		Data:           stackDist{hotMean: 40, coldMu: ln(700), coldSigma: 0.7, coldFrac: 0.12},
		CodeBlocks:     80, // tiny kernel
		CodeJump:       stackDist{hotMean: 4, coldMu: ln(40), coldSigma: 0.5, coldFrac: 0.10},
		HardBranchFrac: 0.25, EasyBias: 0.97, HardBias: 0.62,
		IPCScale: 1.0,
	},
	"jbb": {
		Name:    "jbb",
		FracInt: 0.40, FracFP: 0.02, FracLoad: 0.30, FracStore: 0.12, FracBranch: 0.16,
		MeanDepDist:    14,
		LoadChainProb:  0.05,
		Data:           stackDist{hotMean: 250, coldMu: ln(5000), coldSigma: 1.1, coldFrac: 0.18},
		CodeBlocks:     550, // large Java code footprint
		CodeJump:       stackDist{hotMean: 20, coldMu: ln(1200), coldSigma: 1.0, coldFrac: 0.25},
		HardBranchFrac: 0.15, EasyBias: 0.97, HardBias: 0.66,
		IPCScale: 1.0,
	},
	"mcf": {
		Name:    "mcf",
		FracInt: 0.35, FracFP: 0.02, FracLoad: 0.35, FracStore: 0.09, FracBranch: 0.19,
		MeanDepDist:    4,    // pointer chasing: little ILP
		LoadChainProb:  0.35, // serialized dependent misses
		Data:           stackDist{hotMean: 30, coldMu: ln(9000), coldSigma: 1.2, coldFrac: 0.45},
		CodeBlocks:     60,
		CodeJump:       stackDist{hotMean: 3, coldMu: ln(30), coldSigma: 0.5, coldFrac: 0.10},
		HardBranchFrac: 0.35, EasyBias: 0.96, HardBias: 0.62,
		IPCScale: 1.0,
	},
	"mesa": {
		Name:    "mesa",
		FracInt: 0.40, FracFP: 0.18, FracLoad: 0.26, FracStore: 0.09, FracBranch: 0.07,
		MeanDepDist:    24,
		LoadChainProb:  0.02,
		Data:           stackDist{hotMean: 100, coldMu: ln(900), coldSigma: 0.8, coldFrac: 0.10},
		CodeBlocks:     400, // big rendering pipeline code
		CodeJump:       stackDist{hotMean: 12, coldMu: ln(900), coldSigma: 0.9, coldFrac: 0.22},
		HardBranchFrac: 0.08, EasyBias: 0.98, HardBias: 0.7,
		IPCScale: 1.0,
	},
	"twolf": {
		Name:    "twolf",
		FracInt: 0.42, FracFP: 0.05, FracLoad: 0.28, FracStore: 0.10, FracBranch: 0.15,
		MeanDepDist:    12,
		LoadChainProb:  0.06,
		Data:           stackDist{hotMean: 300, coldMu: ln(4500), coldSigma: 1.0, coldFrac: 0.20},
		CodeBlocks:     300,
		CodeJump:       stackDist{hotMean: 8, coldMu: ln(250), coldSigma: 0.8, coldFrac: 0.18},
		HardBranchFrac: 0.20, EasyBias: 0.97, HardBias: 0.64,
		IPCScale: 1.0,
	},
}
