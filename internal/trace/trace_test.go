package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBenchmarksListed(t *testing.T) {
	bm := Benchmarks()
	if len(bm) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(bm))
	}
	for _, name := range bm {
		p, ok := ProfileFor(name)
		if !ok {
			t.Fatalf("no profile for %q", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, ok := ProfileFor("notabenchmark"); ok {
		t.Fatal("unknown benchmark returned a profile")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, _ := ProfileFor("gzip")
	a, err := Synthesize(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("traces diverge at instruction %d", i)
		}
	}
}

func TestSynthesizeLength(t *testing.T) {
	p, _ := ProfileFor("mcf")
	tr, err := Synthesize(p, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1234 {
		t.Fatalf("Len = %d, want 1234", tr.Len())
	}
}

func TestSynthesizeRejectsBadInput(t *testing.T) {
	p, _ := ProfileFor("mcf")
	if _, err := Synthesize(p, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	bad := p
	bad.FracInt = 0.9 // mix no longer sums to 1
	if _, err := Synthesize(bad, 100); err == nil {
		t.Fatal("bad mix accepted")
	}
	bad = p
	bad.MeanDepDist = 0
	if _, err := Synthesize(bad, 100); err == nil {
		t.Fatal("bad dep distance accepted")
	}
	bad = p
	bad.IPCScale = 0
	if _, err := Synthesize(bad, 100); err == nil {
		t.Fatal("bad IPCScale accepted")
	}
	bad = p
	bad.CodeBlocks = 0
	if _, err := Synthesize(bad, 100); err == nil {
		t.Fatal("bad CodeBlocks accepted")
	}
	bad = p
	bad.EasyBias = 1.5
	if _, err := Synthesize(bad, 100); err == nil {
		t.Fatal("bad bias accepted")
	}
}

func TestMixMatchesProfile(t *testing.T) {
	for _, name := range Benchmarks() {
		p, _ := ProfileFor(name)
		tr, err := Synthesize(p, 40000)
		if err != nil {
			t.Fatal(err)
		}
		mix := tr.Mix()
		checks := []struct {
			kind OpKind
			want float64
		}{
			{OpInt, p.FracInt}, {OpFP, p.FracFP}, {OpLoad, p.FracLoad},
			{OpStore, p.FracStore}, {OpBranch, p.FracBranch},
		}
		for _, c := range checks {
			// Kinds are static per PC, so the dynamic mix carries the
			// sampling variance of the visited code footprint; allow a
			// wider tolerance than a per-instruction draw would need.
			if math.Abs(mix[c.kind]-c.want) > 0.05 {
				t.Errorf("%s: %v fraction = %.3f, want %.3f", name, c.kind, mix[c.kind], c.want)
			}
		}
	}
}

func TestMemoryOpsHaveAddresses(t *testing.T) {
	p, _ := ProfileFor("gcc")
	tr, err := Synthesize(p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range tr.Insts {
		isMem := in.Kind == OpLoad || in.Kind == OpStore
		if isMem && in.Addr == 0 {
			t.Fatalf("instruction %d (%v) has no address", i, in.Kind)
		}
		if !isMem && in.Addr != 0 {
			t.Fatalf("instruction %d (%v) has spurious address", i, in.Kind)
		}
		if in.Addr%BlockBytes != 0 {
			t.Fatalf("instruction %d address %d not block aligned", i, in.Addr)
		}
	}
}

func TestDependencyDistancesValid(t *testing.T) {
	p, _ := ProfileFor("ammp")
	tr, err := Synthesize(p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range tr.Insts {
		if int(in.Dep1) > i || int(in.Dep2) > i {
			t.Fatalf("instruction %d dependency beyond trace start: %d/%d", i, in.Dep1, in.Dep2)
		}
	}
}

func TestDependencyDistanceMeansDiffer(t *testing.T) {
	// mcf (pointer chasing) must have visibly shorter dependence
	// distances than applu (high ILP floating point).
	mean := func(name string) float64 {
		p, _ := ProfileFor(name)
		tr, err := Synthesize(p, 30000)
		if err != nil {
			t.Fatal(err)
		}
		var sum, n float64
		for _, in := range tr.Insts {
			if in.Dep1 > 0 {
				sum += float64(in.Dep1)
				n++
			}
		}
		return sum / n
	}
	if m, a := mean("mcf"), mean("applu"); m >= a {
		t.Fatalf("mcf mean dep %v should be < applu %v", m, a)
	}
}

func TestCodeFootprintRespected(t *testing.T) {
	for _, name := range []string{"gzip", "gcc"} {
		p, _ := ProfileFor(name)
		tr, err := Synthesize(p, 50000)
		if err != nil {
			t.Fatal(err)
		}
		blocks := map[uint32]bool{}
		for _, in := range tr.Insts {
			blocks[in.PC/BlockBytes] = true
		}
		// gzip's tiny kernel must touch far fewer blocks than gcc.
		if name == "gzip" && len(blocks) > 2*p.CodeBlocks {
			t.Fatalf("gzip touched %d code blocks, footprint %d", len(blocks), p.CodeBlocks)
		}
		if name == "gcc" && len(blocks) < 200 {
			t.Fatalf("gcc touched only %d code blocks", len(blocks))
		}
	}
}

func TestDataFootprintsDiffer(t *testing.T) {
	distinct := func(name string) int {
		p, _ := ProfileFor(name)
		tr, err := Synthesize(p, 50000)
		if err != nil {
			t.Fatal(err)
		}
		blocks := map[uint32]bool{}
		for _, in := range tr.Insts {
			if in.Addr != 0 {
				blocks[in.Addr/BlockBytes] = true
			}
		}
		return len(blocks)
	}
	mcf := distinct("mcf")
	gzip := distinct("gzip")
	if mcf < 3*gzip {
		t.Fatalf("mcf data footprint (%d blocks) should dwarf gzip's (%d)", mcf, gzip)
	}
}

func TestBranchTakenRates(t *testing.T) {
	p, _ := ProfileFor("applu")
	tr, err := Synthesize(p, 40000)
	if err != nil {
		t.Fatal(err)
	}
	var taken, total float64
	for _, in := range tr.Insts {
		if in.Kind == OpBranch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	rate := taken / total
	// applu branches are mostly easy loop branches: predominantly taken,
	// with a minority of mostly-not-taken checks.
	if rate < 0.65 || rate > 0.98 {
		t.Fatalf("applu taken rate = %v, want in (0.65, 0.98)", rate)
	}
}

func TestForBenchmarkCaches(t *testing.T) {
	a, err := ForBenchmark("twolf", 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForBenchmark("twolf", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned distinct trace objects for identical key")
	}
	if _, err := ForBenchmark("nope", 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpInt: "int", OpFP: "fp", OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestLRUStackSemantics(t *testing.T) {
	s := newLRUStack()
	if got := s.touchAt(0); got != 0 {
		t.Fatalf("empty stack touchAt = %d", got)
	}
	s.touchNew(1)
	s.touchNew(2)
	s.touchNew(3) // stack (MRU first): 3 2 1
	if got := s.touchAt(2); got != 1 {
		t.Fatalf("touchAt(2) = %d, want 1", got)
	}
	// now: 1 3 2
	if got := s.touchAt(0); got != 1 {
		t.Fatalf("touchAt(0) = %d, want 1", got)
	}
	if got := s.touchSpecific(2); got != 2 {
		t.Fatalf("touchSpecific(2) = %d", got)
	}
	// now: 2 1 3
	if got := s.touchAt(1); got != 1 {
		t.Fatalf("touchAt(1) = %d, want 1", got)
	}
	if got := s.touchSpecific(42); got != 0 {
		t.Fatalf("touchSpecific(absent) = %d, want 0", got)
	}
}

// Property: the stack never returns a block it was not given and always
// keeps exactly the set of pushed blocks.
func TestQuickLRUStackConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := newLRUStack()
		pushed := map[uint32]bool{}
		next := uint32(1)
		for op := 0; op < 300; op++ {
			switch r.Intn(3) {
			case 0:
				s.touchNew(next)
				pushed[next] = true
				next++
			case 1:
				d := r.Intn(len(pushed) + 2)
				b := s.touchAt(d)
				if b != 0 && !pushed[b] {
					return false
				}
				if d < len(pushed) && b == 0 {
					return false // in-range distance must hit
				}
			case 2:
				target := uint32(r.Intn(int(next)) + 1)
				b := s.touchSpecific(target)
				if pushed[target] != (b == target) {
					return false
				}
			}
		}
		return len(s.blocks) == len(pushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: synthesized traces are structurally valid for any suite
// benchmark and modest length.
func TestQuickTraceStructure(t *testing.T) {
	names := Benchmarks()
	f := func(pick uint8, lenRaw uint16) bool {
		name := names[int(pick)%len(names)]
		n := 100 + int(lenRaw)%2000
		p, _ := ProfileFor(name)
		tr, err := Synthesize(p, n)
		if err != nil {
			return false
		}
		if tr.Len() != n {
			return false
		}
		for i, in := range tr.Insts {
			if int(in.Dep1) > i || int(in.Dep2) > i {
				return false
			}
			if in.Kind > OpBranch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSynthesize100k(b *testing.B) {
	p, _ := ProfileFor("gcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(p, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
