package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at the trace loader. The
// invariants: ReadTrace never panics, never allocates beyond the sanity
// cap, and anything it accepts survives a write/read round trip
// bit-identically (so a parse can never invent a trace it would not
// itself produce).
func FuzzReadTrace(f *testing.F) {
	// Seed with real files (v2 and legacy v1) plus targeted damage, so
	// the fuzzer starts at the format's interesting edges.
	for _, bench := range []string{"gzip", "gcc"} {
		tr, err := ForBenchmark(bench, 200)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(full)
		f.Add(asV1(full))
		f.Add(full[:len(full)/2])
		tampered := append([]byte{}, full...)
		tampered[len(tampered)/2] ^= 0x40
		f.Add(tampered)
	}
	f.Add([]byte{})
	f.Add([]byte("UTRC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.Len() == 0 || tr.Len() > MaxFileInsts {
			t.Fatalf("accepted trace with %d instructions", tr.Len())
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing accepted trace: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-reading re-serialized trace: %v", err)
		}
		if again.Name != tr.Name || again.Len() != tr.Len() {
			t.Fatalf("round trip changed metadata: %q/%d vs %q/%d",
				again.Name, again.Len(), tr.Name, tr.Len())
		}
		for i := range tr.Insts {
			if again.Insts[i] != tr.Insts[i] {
				t.Fatalf("round trip changed instruction %d", i)
			}
		}
	})
}
