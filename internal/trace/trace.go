// Package trace synthesizes the workload traces that drive the timing and
// power simulator. The paper uses proprietary PowerPC traces of SPECjbb
// and eight SPEC2000 benchmarks; this package substitutes statistically
// synthesized traces in the spirit of the statistical-simulation
// literature the paper cites (Eeckhout et al., Nussbaum & Smith): each
// benchmark is described by a profile — instruction mix, operand
// dependency distances (ILP), branch bias population (predictability) and
// LRU stack-distance distributions for the data and instruction streams
// (cache behaviour) — from which a concrete instruction trace is generated
// deterministically.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// OpKind classifies an instruction for the timing model.
type OpKind uint8

const (
	OpInt OpKind = iota // fixed-point ALU
	OpFP                // floating-point
	OpLoad
	OpStore
	OpBranch
	numOpKinds
)

// NumOpKinds is the number of distinct instruction kinds, for callers
// that build kind-indexed dispatch tables.
const NumOpKinds = int(numOpKinds)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpInt:
		return "int"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// BlockBytes is the cache block size shared by the whole memory hierarchy
// (Table 3: 128-byte blocks at every level).
const BlockBytes = 128

// Inst is one synthesized instruction. Addresses are block-aligned byte
// addresses. Dependency distances count instructions backwards in the
// trace; zero means no register dependency through that operand.
type Inst struct {
	PC    uint32 // instruction address (for I-cache and branch predictor)
	Addr  uint32 // data address for loads/stores, else 0
	Dep1  uint16 // distance to first producer, 0 = none
	Dep2  uint16 // distance to second producer, 0 = none
	Kind  OpKind
	Taken bool // branches only
}

// Trace is an immutable synthesized instruction stream.
type Trace struct {
	Name  string
	Insts []Inst
}

// Len returns the number of instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Mix returns the fraction of instructions of each kind.
func (t *Trace) Mix() map[OpKind]float64 {
	counts := make(map[OpKind]float64, int(numOpKinds))
	for _, in := range t.Insts {
		counts[in.Kind]++
	}
	n := float64(len(t.Insts))
	for k := range counts {
		counts[k] /= n
	}
	return counts
}

// stackDist describes an LRU stack-distance distribution as a mixture of
// a "hot" short-distance component and a "cold" long-distance lognormal
// tail. Distances are in cache blocks.
type stackDist struct {
	hotMean   float64 // mean of the exponential hot component
	coldMu    float64 // lognormal location of the cold component (log blocks)
	coldSigma float64 // lognormal scale
	coldFrac  float64 // probability of drawing from the cold tail
}

func (d stackDist) sample(r *rng.Source) int {
	if r.Bool(d.coldFrac) {
		return int(r.LogNormal(d.coldMu, d.coldSigma))
	}
	return int(r.Exponential(d.hotMean))
}

// Profile is the statistical description of one benchmark.
type Profile struct {
	Name string

	// Instruction mix; fractions must sum to ~1.
	FracInt, FracFP, FracLoad, FracStore, FracBranch float64

	// Dependency structure. Mean operand dependency distance: larger
	// values expose more instruction-level parallelism. Distances are
	// 1 + Geometric with this mean.
	MeanDepDist float64
	// Probability that a load's address depends on a recent load
	// (pointer chasing); serializes misses in the timing model.
	LoadChainProb float64

	// Data reference locality.
	Data stackDist

	// Instruction stream: static code footprint in blocks, and the
	// stack-distance distribution of branch targets over that footprint
	// (loop locality).
	CodeBlocks int
	CodeJump   stackDist

	// Branch predictability: fraction of dynamic branches from "hard"
	// static branches and the taken-probability of easy/hard branches.
	HardBranchFrac float64
	EasyBias       float64 // taken probability of easy branches (~1)
	HardBias       float64 // taken probability of hard branches (~0.5-0.7)

	// IPCScale adjusts a benchmark's intrinsic instruction throughput
	// beyond what the mix implies (e.g. value-dependent stalls). 1.0 is
	// neutral; values are small calibration nudges.
	IPCScale float64
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	sum := p.FracInt + p.FracFP + p.FracLoad + p.FracStore + p.FracBranch
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("trace: %s instruction mix sums to %v, want 1", p.Name, sum)
	}
	if p.MeanDepDist < 1 {
		return fmt.Errorf("trace: %s MeanDepDist %v < 1", p.Name, p.MeanDepDist)
	}
	if p.CodeBlocks < 1 {
		return fmt.Errorf("trace: %s CodeBlocks %d < 1", p.Name, p.CodeBlocks)
	}
	if p.EasyBias < 0 || p.EasyBias > 1 || p.HardBias < 0 || p.HardBias > 1 {
		return fmt.Errorf("trace: %s branch biases out of [0,1]", p.Name)
	}
	if p.IPCScale <= 0 {
		return fmt.Errorf("trace: %s IPCScale must be positive", p.Name)
	}
	return nil
}

// Synthesize generates a deterministic trace of n instructions from the
// profile. The same profile and n always produce the identical trace.
func Synthesize(p Profile, n int) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: length %d must be positive", n)
	}
	r := rng.NewFromString("trace:" + p.Name)

	insts := make([]Inst, n)

	// LRU stack of data blocks. The address stream is reconstructed from
	// sampled stack distances: distance d touches the d-th most recently
	// used block, larger distances allocate fresh blocks. This yields a
	// real address stream whose temporal locality matches the profile.
	dataLRU := newLRUStack()
	var nextDataBlock uint32 = 1

	// Instruction stream state: sequential fetch within the current code
	// block, jumps on taken branches with loop locality over the code
	// footprint. Code is static, so the whole footprint exists up front
	// (pre-populated oldest-first): jump distances always resolve to a
	// real block and the reference stream is stationary from the start.
	codeLRU := newLRUStack()
	for b := p.CodeBlocks; b >= 1; b-- {
		codeLRU.touchNew(uint32(b))
	}
	curCode := uint32(1)
	pcOffset := uint32(0)
	const instBytes = 4
	instsPerBlock := uint32(BlockBytes / instBytes)

	// Static branch population: hard branches are assigned round-robin
	// over a small id space so the BHT sees realistic aliasing.
	geoP := 1 / p.MeanDepDist // mean of 1+Geometric((1-p)/p)... see depDist

	lastLoad := -1
	for i := range insts {
		// PC: advance within the current block; spill to a sequential
		// block at the boundary.
		pc := curCode*uint32(BlockBytes) + (pcOffset%instsPerBlock)*instBytes
		// Code is static: the instruction kind at a given PC never
		// changes, so re-executed loop bodies present the branch
		// predictor and caches with coherent, learnable behaviour.
		kind := kindForPC(p, pc)
		in := Inst{Kind: kind, PC: pc}
		pcOffset++
		if pcOffset%instsPerBlock == 0 {
			// Fall through to the next sequential block, wrapping at the
			// end of the code segment.
			next := curCode + 1
			if int(next) > p.CodeBlocks {
				next = 1
			}
			curCode = codeLRU.touchSpecific(next)
			if curCode == 0 {
				panic("trace: sequential code block missing from pre-populated footprint")
			}
		}

		// Register dependencies. A second source operand exists for a
		// minority of instructions; most second operands are immediates
		// or long-dead values in real code, and over-constraining the
		// dataflow graph would understate achievable ILP.
		in.Dep1 = depDist(r, geoP, i)
		if kind != OpBranch && r.Bool(0.3) {
			in.Dep2 = depDist(r, geoP, i)
		}

		switch kind {
		case OpLoad, OpStore:
			d := p.Data.sample(r)
			block := dataLRU.touchAt(d)
			if block == 0 {
				block = dataLRU.touchNew(nextDataBlock)
				nextDataBlock++
			}
			in.Addr = block * uint32(BlockBytes)
			if kind == OpLoad {
				// Pointer chasing: the address depends on a recent load.
				if lastLoad >= 0 && r.Bool(p.LoadChainProb) {
					dist := i - lastLoad
					if dist >= 1 && dist <= 65535 {
						in.Dep1 = uint16(dist)
					}
				}
				lastLoad = i
			}
		case OpBranch:
			// A real program's branch at a fixed PC is a static entity
			// with a stable bias; derive the bias deterministically from
			// the PC so the branch history table sees coherent outcome
			// streams (otherwise every dynamic branch looks random and
			// no predictor can learn).
			bias := staticBranchBias(p, in.PC)
			in.Taken = r.Bool(bias)
			if in.Taken {
				// Jump: pick a target block with loop locality over the
				// code footprint.
				d := p.CodeJump.sample(r)
				if d >= p.CodeBlocks {
					d = d % p.CodeBlocks
				}
				target := codeLRU.touchAt(d)
				if target == 0 {
					panic("trace: jump target missing from pre-populated footprint")
				}
				curCode = target
				pcOffset = 0
			}
		}
		insts[i] = in
	}
	return &Trace{Name: p.Name, Insts: insts}, nil
}

// pcHash deterministically mixes a PC with the benchmark name and a salt;
// it is the source of all static per-instruction properties.
func pcHash(name string, pc, salt uint32) uint32 {
	h := (pc ^ salt) * 2654435761
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	h ^= h >> 16
	h *= 2246822519
	h ^= h >> 13
	return h
}

// kindForPC assigns a static instruction kind to each PC such that the
// expected dynamic mix matches the profile.
func kindForPC(p Profile, pc uint32) OpKind {
	u := float64(pcHash(p.Name, pc, 0xabcd)) / float64(1<<32)
	switch {
	case u < p.FracInt:
		return OpInt
	case u < p.FracInt+p.FracFP:
		return OpFP
	case u < p.FracInt+p.FracFP+p.FracLoad:
		return OpLoad
	case u < p.FracInt+p.FracFP+p.FracLoad+p.FracStore:
		return OpStore
	default:
		return OpBranch
	}
}

// staticBranchBias maps a branch PC to its taken probability: a
// deterministic hash classifies the static branch as hard or easy per the
// profile's HardBranchFrac, and hard branches get a per-branch bias spread
// around HardBias so the population is heterogeneous.
func staticBranchBias(p Profile, pc uint32) float64 {
	h := pcHash(p.Name, pc, 0x51a7)
	u1 := float64(h&0xffff) / 65536 // classification draw
	u2 := float64(h>>16) / 65536    // bias spread draw
	if u1 < p.HardBranchFrac {
		// Hard branches: bias spread +/- 0.15 around HardBias, clamped.
		b := p.HardBias + 0.3*(u2-0.5)
		if b < 0.05 {
			b = 0.05
		}
		if b > 0.95 {
			b = 0.95
		}
		return b
	}
	// Easy branches: mostly-taken loop back edges and a few mostly-not-
	// taken error checks.
	if u2 < 0.8 {
		return p.EasyBias
	}
	return 1 - p.EasyBias
}

// depDist samples a dependency distance 1+Geometric clipped to the
// instructions available and the uint16 range; returns 0 (no dependency)
// for the first instruction.
func depDist(r *rng.Source, geoP float64, i int) uint16 {
	if i == 0 {
		return 0
	}
	d := 1 + r.Geometric(clampP(geoP))
	if d > i {
		d = i
	}
	if d > 65535 {
		d = 65535
	}
	return uint16(d)
}

func clampP(p float64) float64 {
	if p < 1e-6 {
		return 1e-6
	}
	if p > 1 {
		return 1
	}
	return p
}

// lruStack reconstructs addresses from stack distances. Blocks are kept
// most-recently-used LAST so pushing a new block is O(1); touching at
// distance d costs O(d), which matches the locality of the workloads
// (small distances are frequent, large ones rare). Block id 0 is the
// "not found" sentinel; real blocks are numbered from 1.
type lruStack struct {
	blocks []uint32 // most recent last
}

func newLRUStack() *lruStack { return &lruStack{} }

// touchAt touches the block at stack distance d (0 = most recent) and
// moves it to the MRU position, returning its id, or 0 if d is beyond the
// current stack depth.
func (s *lruStack) touchAt(d int) uint32 {
	n := len(s.blocks)
	if d < 0 || d >= n {
		return 0
	}
	i := n - 1 - d
	b := s.blocks[i]
	copy(s.blocks[i:], s.blocks[i+1:])
	s.blocks[n-1] = b
	return b
}

// touchNew pushes a brand-new block at the MRU position and returns it.
func (s *lruStack) touchNew(b uint32) uint32 {
	s.blocks = append(s.blocks, b)
	return b
}

// touchSpecific moves the given block to the MRU position if present,
// returning it, or 0 if the block has never been touched. The scan runs
// newest-to-oldest because callers ask about recently used blocks.
func (s *lruStack) touchSpecific(b uint32) uint32 {
	for i := len(s.blocks) - 1; i >= 0; i-- {
		if s.blocks[i] == b {
			copy(s.blocks[i:], s.blocks[i+1:])
			s.blocks[len(s.blocks)-1] = b
			return b
		}
	}
	return 0
}

// cache of synthesized traces: generation is deterministic, so sharing is
// safe, and the simulator replays one trace across thousands of designs.
var (
	cacheMu sync.Mutex
	cache   = make(map[string]*Trace)
)

// ForBenchmark synthesizes (or returns a cached) trace of n instructions
// for a named benchmark from the built-in suite.
func ForBenchmark(name string, n int) (*Trace, error) {
	p, ok := ProfileFor(name)
	if !ok {
		return nil, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	key := fmt.Sprintf("%s/%d", name, n)
	cacheMu.Lock()
	t, hit := cache[key]
	cacheMu.Unlock()
	if hit {
		return t, nil
	}
	t, err := Synthesize(p, n)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cache[key] = t
	cacheMu.Unlock()
	return t, nil
}
