package regression

import (
	"fmt"

	"repro/internal/stats"
)

// harrellQuantiles gives the default knot placement quantiles recommended
// by Harrell ("Regression Modeling Strategies", the reference the paper
// uses for its spline methodology). Knots at fixed quantiles of the
// predictor's distribution "ensure a sufficient number of points in each
// interval" (paper Section 3.3).
func harrellQuantiles(k int) []float64 {
	switch k {
	case 3:
		return []float64{0.10, 0.50, 0.90}
	case 4:
		return []float64{0.05, 0.35, 0.65, 0.95}
	case 5:
		return []float64{0.05, 0.275, 0.50, 0.725, 0.95}
	case 6:
		return []float64{0.05, 0.23, 0.41, 0.59, 0.77, 0.95}
	case 7:
		return []float64{0.025, 0.1833, 0.3417, 0.50, 0.6583, 0.8167, 0.975}
	default:
		panic(fmt.Sprintf("regression: unsupported knot count %d (want 3..7)", k))
	}
}

// Knots places k knots at Harrell's default quantiles of the data. If the
// data has fewer distinct values than requested knots, the knot count is
// reduced; below three distinct values no spline is possible and Knots
// returns nil (the caller should fall back to a linear term). Duplicate
// knot positions (possible with heavily tied data) are also resolved by
// reducing the knot count.
func Knots(data []float64, k int) []float64 {
	if k < 3 {
		panic(fmt.Sprintf("regression: Knots with k=%d < 3", k))
	}
	if k > 7 {
		k = 7
	}
	distinct := distinctSorted(data)
	if len(distinct) < 3 {
		return nil
	}
	for k >= 3 {
		if len(distinct) < k {
			k--
			continue
		}
		var knots []float64
		if len(distinct) == k {
			// Exactly k levels: put a knot on each level.
			knots = append([]float64(nil), distinct...)
		} else {
			qs := harrellQuantiles(k)
			knots = make([]float64, k)
			for i, q := range qs {
				knots[i] = stats.Quantile(data, q)
			}
		}
		if strictlyIncreasing(knots) {
			return knots
		}
		k--
	}
	return nil
}

func strictlyIncreasing(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			return false
		}
	}
	return true
}

// SplineBasis evaluates the restricted (natural) cubic spline basis for a
// value x given knots t[0] < ... < t[k-1]. The basis has k-1 columns: the
// first is x itself, and the remaining k-2 are the truncated-cubic terms
// constrained to be linear beyond the boundary knots, normalized by
// (t[k-1]-t[0])^2 as in Harrell's rcs so coefficients stay on comparable
// scales. Restricted cubic splines are the paper's non-linear predictor
// transformation of choice (Section 3.3).
func SplineBasis(x float64, knots []float64) []float64 {
	out := make([]float64, len(knots)-1)
	AppendSplineBasis(out[:0], x, knots)
	return out
}

// AppendSplineBasis appends the spline basis columns for x to dst and
// returns the extended slice. It is the allocation-free form used in the
// hot prediction path.
func AppendSplineBasis(dst []float64, x float64, knots []float64) []float64 {
	k := len(knots)
	if k < 3 {
		panic(fmt.Sprintf("regression: spline basis with %d knots (want >= 3)", k))
	}
	dst = append(dst, x)
	tk := knots[k-1]
	tk1 := knots[k-2]
	norm := tk - knots[0]
	norm = norm * norm
	for j := 0; j < k-2; j++ {
		tj := knots[j]
		term := cube(x-tj) -
			cube(x-tk1)*(tk-tj)/(tk-tk1) +
			cube(x-tk)*(tk1-tj)/(tk-tk1)
		dst = append(dst, term/norm)
	}
	return dst
}

// cube returns max(v,0)^3, the truncated cubic.
func cube(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * v * v
}

// splineSecondDiff numerically estimates the second derivative of the sum
// of the nonlinear basis columns at x. A restricted cubic spline has zero
// second derivative beyond the boundary knots; the test suite uses this to
// verify the "restricted" property.
func splineSecondDiff(x float64, knots []float64, h float64) float64 {
	f := func(v float64) float64 {
		b := SplineBasis(v, knots)
		var s float64
		for _, c := range b[1:] {
			s += c
		}
		return s
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}
