package regression

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// CompiledModel is a fitted Model lowered for the prediction hot path.
// Compilation resolves every term's predictor name to a dense index once
// and, for predictors that take discrete sweep levels, precomputes the
// spline-basis columns of every level into flat lookup tables. Evaluation
// assembles exactly the design row Model.Predict builds — the same basis
// values in the same column order — and finishes with the same
// linalg.Dot against the same coefficients through the same response
// inverse, so compiled predictions are bit-identical to the
// interpreter's: no string lookups, no closures, and (on the level path)
// no truncated-cubic evaluation remain.
//
// A CompiledModel is immutable and safe for concurrent use; callers
// provide the row scratch.
type CompiledModel struct {
	transform Transform
	beta      []float64
	ops       []compiledOp
	width     int // design-row width including the intercept
	nPred     int
	// levelVals[p][l] is predictor p's value at sweep level l; nil when
	// the model was compiled without levels for p.
	levelVals [][]float64
	leveled   bool // every referenced predictor has levels
}

// compiledOp is one model term lowered against the predictor layout.
type compiledOp struct {
	kind  TermKind
	p, q  int       // resolved predictor indices (q: interactions only)
	knots []float64 // non-nil for an effective (non-degraded) spline
	width int       // design columns the term contributes
	// table holds the term's precomputed design columns for every level
	// of predictor p, level-major: table[l*width : (l+1)*width]. Nil when
	// p has no levels (interactions multiply level values directly).
	table []float64
}

// Compile lowers the model against a predictor layout: names[i] is the
// predictor served at index i of the value vectors passed to AppendRow,
// and levels[i] — optional; levels may be nil entirely or per predictor —
// lists the discrete values predictor i takes in a sweep. Every
// predictor the model references must appear in names; the level path
// (AppendRowLevels, PredictLevels) additionally requires levels for
// every referenced predictor.
func (m *Model) Compile(names []string, levels [][]float64) (*CompiledModel, error) {
	sp := obs.Begin("regression.compile",
		obs.String("response", m.spec.Response), obs.Int("predictors", int64(len(names))))
	defer sp.End()
	if levels != nil && len(levels) != len(names) {
		return nil, fmt.Errorf("regression: %d level sets for %d predictors", len(levels), len(names))
	}
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	resolve := func(name string) (int, error) {
		i, ok := index[name]
		if !ok {
			return 0, fmt.Errorf("regression: compiling %q: predictor %q not in layout", m.spec.Response, name)
		}
		return i, nil
	}
	c := &CompiledModel{
		transform: m.spec.Transform,
		beta:      m.beta,
		width:     1,
		nPred:     len(names),
		levelVals: levels,
		leveled:   levels != nil,
	}
	for _, t := range m.terms {
		op := compiledOp{kind: t.spec.Kind}
		p, err := resolve(t.spec.Var)
		if err != nil {
			return nil, err
		}
		op.p = p
		switch t.spec.Kind {
		case TermLinear:
			op.width = 1
		case TermSpline:
			op.knots = t.knots // nil when degraded to linear
			if op.knots == nil {
				op.width = 1
			} else {
				op.width = len(op.knots) - 1
			}
		case TermInteraction:
			q, err := resolve(t.spec.Var2)
			if err != nil {
				return nil, err
			}
			op.q, op.width = q, 1
			if levels == nil || levels[p] == nil || levels[q] == nil {
				c.leveled = false
			}
		default:
			return nil, fmt.Errorf("regression: compiling %q: unknown term kind %d", m.spec.Response, t.spec.Kind)
		}
		// Precompute the per-level design columns with the same basis
		// function the interpreter calls, so table entries carry the
		// interpreter's exact bits.
		if op.kind != TermInteraction {
			if levels != nil && levels[p] != nil {
				op.table = make([]float64, 0, len(levels[p])*op.width)
				for _, v := range levels[p] {
					if op.knots != nil {
						op.table = AppendSplineBasis(op.table, v, op.knots)
					} else {
						op.table = append(op.table, v)
					}
				}
			} else {
				c.leveled = false
			}
		}
		c.width += op.width
		c.ops = append(c.ops, op)
	}
	if c.width != len(m.beta) {
		return nil, fmt.Errorf("regression: compiling %q: row width %d does not match %d coefficients",
			m.spec.Response, c.width, len(m.beta))
	}
	return c, nil
}

// RowWidth returns the design-row width including the intercept (the
// number of coefficients).
func (c *CompiledModel) RowWidth() int { return c.width }

// NumPredictors returns the predictor-vector length the compiled model
// was laid out against.
func (c *CompiledModel) NumPredictors() int { return c.nPred }

// Leveled reports whether the level-indexed path is available: the model
// was compiled with discrete levels for every predictor it references.
func (c *CompiledModel) Leveled() bool { return c.leveled }

// AppendRow appends the model's design row (intercept first) for the
// predictor value vector vals, indexed per the compile-time layout, and
// returns the extended slice. It is the value path: spline bases are
// evaluated directly, so vals need not lie on sweep levels.
func (c *CompiledModel) AppendRow(dst []float64, vals []float64) []float64 {
	dst = append(dst, 1)
	for i := range c.ops {
		op := &c.ops[i]
		switch {
		case op.kind == TermInteraction:
			dst = append(dst, vals[op.p]*vals[op.q])
		case op.knots != nil:
			dst = AppendSplineBasis(dst, vals[op.p], op.knots)
		default:
			dst = append(dst, vals[op.p])
		}
	}
	return dst
}

// AppendRowLevels appends the design row for the point whose predictor p
// sits at sweep level lev[p]: every spline and linear column is a table
// copy and every interaction a single multiply. The model must be
// Leveled; level indices must be in range (unchecked, as in the sweep
// kernel the space enumerates them).
func (c *CompiledModel) AppendRowLevels(dst []float64, lev []int) []float64 {
	if !c.leveled {
		panic("regression: AppendRowLevels on a model compiled without full levels")
	}
	dst = append(dst, 1)
	for i := range c.ops {
		op := &c.ops[i]
		if op.kind == TermInteraction {
			dst = append(dst, c.levelVals[op.p][lev[op.p]]*c.levelVals[op.q][lev[op.q]])
			continue
		}
		base := lev[op.p] * op.width
		dst = append(dst, op.table[base:base+op.width]...)
	}
	return dst
}

// PredictRow maps an assembled design row to the response scale: the
// same dot product and inverse transform the interpreter applies.
func (c *CompiledModel) PredictRow(row []float64) float64 {
	return c.transform.Inverse(linalg.Dot(row, c.beta))
}

// PredictValues evaluates the model for a predictor value vector laid
// out per compile-time names. Bit-identical to Model.Predict.
func (c *CompiledModel) PredictValues(vals []float64) float64 {
	var buf [64]float64
	return c.PredictRow(c.AppendRow(buf[:0], vals))
}

// PredictLevels evaluates the model for a point given as per-predictor
// sweep level indices, entirely from the precomputed tables.
func (c *CompiledModel) PredictLevels(lev []int) float64 {
	var buf [64]float64
	return c.PredictRow(c.AppendRowLevels(buf[:0], lev))
}
