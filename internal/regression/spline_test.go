package regression

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestKnotsQuantilePlacement(t *testing.T) {
	data := make([]float64, 101)
	for i := range data {
		data[i] = float64(i)
	}
	knots := Knots(data, 3)
	want := []float64{10, 50, 90}
	if len(knots) != 3 {
		t.Fatalf("got %d knots", len(knots))
	}
	for i := range want {
		if math.Abs(knots[i]-want[i]) > 1e-9 {
			t.Fatalf("knots = %v, want %v", knots, want)
		}
	}
}

func TestKnotsDegradeOnFewLevels(t *testing.T) {
	// Two distinct values: spline impossible.
	if k := Knots([]float64{1, 1, 2, 2}, 4); k != nil {
		t.Fatalf("got knots %v for 2-level data, want nil", k)
	}
	// Exactly three levels: knots on the levels even if 4 requested.
	k := Knots([]float64{1, 1, 2, 2, 3, 3}, 4)
	if len(k) != 3 || k[0] != 1 || k[1] != 2 || k[2] != 3 {
		t.Fatalf("knots = %v, want [1 2 3]", k)
	}
}

func TestKnotsSkewedDataStillIncreasing(t *testing.T) {
	// Heavily tied data where quantiles could coincide.
	data := append(make([]float64, 0, 100), 5)
	for i := 0; i < 95; i++ {
		data = append(data, 1)
	}
	for i := 0; i < 4; i++ {
		data = append(data, float64(2+i))
	}
	k := Knots(data, 5)
	for i := 1; i < len(k); i++ {
		if k[i] <= k[i-1] {
			t.Fatalf("knots not strictly increasing: %v", k)
		}
	}
}

func TestKnotsPanicsBelowThree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Knots(k=2) did not panic")
		}
	}()
	Knots([]float64{1, 2, 3}, 2)
}

func TestSplineBasisWidth(t *testing.T) {
	knots := []float64{0, 1, 2, 3}
	b := SplineBasis(0.5, knots)
	if len(b) != 3 { // k-1 columns
		t.Fatalf("basis width = %d, want 3", len(b))
	}
	if b[0] != 0.5 {
		t.Fatalf("first column should be x; got %v", b[0])
	}
}

func TestSplineBasisZeroBelowFirstKnot(t *testing.T) {
	knots := []float64{1, 2, 3, 4}
	b := SplineBasis(0.5, knots)
	for i, v := range b[1:] {
		if v != 0 {
			t.Fatalf("nonlinear column %d = %v below first knot, want 0", i+1, v)
		}
	}
}

func TestSplineBasisContinuity(t *testing.T) {
	knots := []float64{0, 1, 2, 4}
	for _, kx := range knots {
		lo := SplineBasis(kx-1e-9, knots)
		hi := SplineBasis(kx+1e-9, knots)
		for i := range lo {
			if math.Abs(lo[i]-hi[i]) > 1e-6 {
				t.Fatalf("basis discontinuous at knot %v col %d: %v vs %v", kx, i, lo[i], hi[i])
			}
		}
	}
}

func TestSplineRestrictedLinearityBeyondBoundary(t *testing.T) {
	knots := []float64{0, 1, 2, 3}
	// Second derivative must vanish beyond the boundary knots.
	for _, x := range []float64{-5, -2, 6, 10} {
		if d2 := splineSecondDiff(x, knots, 0.01); math.Abs(d2) > 1e-4 {
			t.Fatalf("second derivative at %v = %v, want ~0", x, d2)
		}
	}
	// And it should generally NOT vanish strictly inside.
	if d2 := splineSecondDiff(1.5, knots, 0.01); math.Abs(d2) < 1e-6 {
		t.Fatalf("interior second derivative unexpectedly zero")
	}
}

func TestSplineBasisPanicsOnShortKnots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2 knots")
		}
	}()
	SplineBasis(1, []float64{0, 1})
}

// Property: basis columns are finite and the first equals x for any knot
// layout derived from random data.
func TestQuickSplineBasisFinite(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		data := make([]float64, 60)
		for i := range data {
			data[i] = r.Float64() * 100
		}
		knots := Knots(data, 4)
		if knots == nil {
			return true
		}
		for i := 0; i < 20; i++ {
			x := r.Float64()*200 - 50
			b := SplineBasis(x, knots)
			if b[0] != x {
				return false
			}
			for _, v := range b {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: knots are always strictly increasing and within data range.
func TestQuickKnotsOrdered(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		k := 3 + int(kRaw%5) // 3..7
		data := make([]float64, 50)
		for i := range data {
			data[i] = math.Floor(r.Float64() * 20) // ties likely
		}
		knots := Knots(data, k)
		if knots == nil {
			return true
		}
		lo, hi := data[0], data[0]
		for _, v := range data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		prev := math.Inf(-1)
		for _, kn := range knots {
			if kn <= prev || kn < lo || kn > hi {
				return false
			}
			prev = kn
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
