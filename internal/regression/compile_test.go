package regression

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// compileFixture fits a model exercising every term kind — an effective
// spline, a linear term, a spline degraded to linear (the predictor has
// only two distinct values), and interactions — on a deterministic
// synthetic dataset whose predictors live on discrete levels.
func compileFixture(t testing.TB, transform Transform) (*Model, []string, [][]float64) {
	t.Helper()
	names := []string{"a", "b", "c"}
	levels := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{10, 20, 30},
		{0, 1}, // two distinct values: spline on c must degrade
	}
	const n = 400
	r := rng.New(99)
	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := levels[0][r.Intn(len(levels[0]))]
		b := levels[1][r.Intn(len(levels[1]))]
		c := levels[2][r.Intn(len(levels[2]))]
		cols[0][i], cols[1][i], cols[2][i] = a, b, c
		y[i] = 5 + 0.3*a*a - 0.02*a*a*a + 0.1*b + 0.7*c + 0.01*a*b + float64(r.Intn(100))/1000
	}
	ds := NewDataset(n)
	for i, name := range names {
		ds.AddColumn(name, cols[i])
	}
	ds.AddColumn("y", y)
	spec := NewSpec("y", transform).
		Spline("a", 4).
		Linear("b").
		Spline("c", 3).
		Interact("a", "b").
		Interact("b", "c")
	m, err := Fit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	return m, names, levels
}

func TestCompileBitIdenticalToPredict(t *testing.T) {
	for _, tr := range []Transform{Identity, Sqrt, Log} {
		m, names, levels := compileFixture(t, tr)
		c, err := m.Compile(names, levels)
		if err != nil {
			t.Fatal(err)
		}
		if c.RowWidth() != m.NumCoefficients() {
			t.Fatalf("RowWidth = %d, want %d", c.RowWidth(), m.NumCoefficients())
		}
		if c.NumPredictors() != len(names) {
			t.Fatalf("NumPredictors = %d, want %d", c.NumPredictors(), len(names))
		}
		if !c.Leveled() {
			t.Fatal("fully-leveled layout not detected")
		}
		r := rng.New(7)
		for trial := 0; trial < 2000; trial++ {
			// Arbitrary (off-level) values: the value path must agree with
			// the interpreter everywhere, not just on the grid.
			vals := []float64{
				1 + 7*float64(r.Intn(1000))/999,
				10 + 20*float64(r.Intn(1000))/999,
				float64(r.Intn(2)),
			}
			get := func(name string) float64 {
				switch name {
				case "a":
					return vals[0]
				case "b":
					return vals[1]
				case "c":
					return vals[2]
				}
				t.Fatalf("unexpected predictor %q", name)
				return 0
			}
			want := m.Predict(get)
			if got := c.PredictValues(vals); got != want {
				t.Fatalf("trial %d: PredictValues = %v, Predict = %v (diff %v)",
					trial, got, want, got-want)
			}
		}
	}
}

func TestCompileLevelPathBitIdentical(t *testing.T) {
	m, names, levels := compileFixture(t, Sqrt)
	c, err := m.Compile(names, levels)
	if err != nil {
		t.Fatal(err)
	}
	lev := make([]int, len(levels))
	var walk func(p int)
	walk = func(p int) {
		if p == len(levels) {
			vals := make([]float64, len(levels))
			for i, l := range lev {
				vals[i] = levels[i][l]
			}
			want := c.PredictValues(vals) // already pinned to Predict above
			if got := c.PredictLevels(lev); got != want {
				t.Fatalf("levels %v: PredictLevels = %v, PredictValues = %v", lev, got, want)
			}
			return
		}
		for l := range levels[p] {
			lev[p] = l
			walk(p + 1)
		}
	}
	walk(0) // all 8*3*2 grid points
}

func TestCompileWithoutLevels(t *testing.T) {
	m, names, _ := compileFixture(t, Log)
	c, err := m.Compile(names, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Leveled() {
		t.Fatal("level path claimed without level tables")
	}
	vals := []float64{3.5, 20, 1}
	want := m.Predict(func(name string) float64 {
		return map[string]float64{"a": 3.5, "b": 20, "c": 1}[name]
	})
	if got := c.PredictValues(vals); got != want {
		t.Fatalf("PredictValues = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRowLevels without levels did not panic")
		}
	}()
	c.PredictLevels([]int{0, 0, 0})
}

func TestCompilePartialLevels(t *testing.T) {
	m, names, levels := compileFixture(t, Identity)
	partial := [][]float64{levels[0], nil, levels[2]} // b continuous
	c, err := m.Compile(names, partial)
	if err != nil {
		t.Fatal(err)
	}
	if c.Leveled() {
		t.Fatal("partial levels must disable the level path")
	}
}

func TestCompileRejectsBadLayout(t *testing.T) {
	m, names, levels := compileFixture(t, Identity)
	if _, err := m.Compile([]string{"a", "b"}, nil); err == nil {
		t.Fatal("missing predictor accepted")
	}
	if _, err := m.Compile(names, levels[:2]); err == nil {
		t.Fatal("mismatched level-set count accepted")
	}
}

func TestCompileRestoredModel(t *testing.T) {
	// A model restored from JSON must compile and predict identically to
	// the original's compiled form.
	m, names, levels := compileFixture(t, Log)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	c0, err := m.Compile(names, levels)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := restored.Compile(names, levels)
	if err != nil {
		t.Fatal(err)
	}
	for l0 := range levels[0] {
		lev := []int{l0, l0 % len(levels[1]), l0 % len(levels[2])}
		if a, b := c0.PredictLevels(lev), c1.PredictLevels(lev); a != b {
			t.Fatalf("levels %v: original %v, restored %v", lev, a, b)
		}
	}
	if math.IsNaN(c0.PredictLevels([]int{0, 0, 0})) {
		t.Fatal("NaN prediction")
	}
}
