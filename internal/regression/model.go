package regression

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/stats"
)

// TermKind distinguishes the three term flavors of the paper's models.
type TermKind int

const (
	// TermLinear enters a predictor untransformed: beta * x.
	TermLinear TermKind = iota
	// TermSpline enters a predictor through a restricted cubic spline
	// basis (paper Section 3.3). If the training data cannot support the
	// requested knot count the term degrades gracefully toward linear.
	TermSpline
	// TermInteraction enters the product of two predictors (paper
	// Section 3.2): beta * x1 * x2.
	TermInteraction
)

// TermSpec describes one model term before fitting.
type TermSpec struct {
	Kind  TermKind
	Var   string // predictor name (Linear, Spline)
	Var2  string // second predictor (Interaction)
	Knots int    // requested knots (Spline)
}

// Spec describes a regression model: the response variable, its transform,
// and the predictor terms. Build one with NewSpec and the fluent helpers,
// then call Fit.
type Spec struct {
	Response  string
	Transform Transform
	Terms     []TermSpec
}

// NewSpec starts a model specification for the given response column.
func NewSpec(response string, t Transform) *Spec {
	return &Spec{Response: response, Transform: t}
}

// Linear adds an untransformed predictor term.
func (s *Spec) Linear(name string) *Spec {
	s.Terms = append(s.Terms, TermSpec{Kind: TermLinear, Var: name})
	return s
}

// Spline adds a restricted-cubic-spline predictor with the requested
// number of knots. The paper uses 4 knots for predictors strongly
// correlated with the response and 3 for weaker ones.
func (s *Spec) Spline(name string, knots int) *Spec {
	s.Terms = append(s.Terms, TermSpec{Kind: TermSpline, Var: name, Knots: knots})
	return s
}

// Interact adds a product interaction term between two predictors.
func (s *Spec) Interact(a, b string) *Spec {
	s.Terms = append(s.Terms, TermSpec{Kind: TermInteraction, Var: a, Var2: b})
	return s
}

// fittedTerm is a term resolved against training data (knots placed).
type fittedTerm struct {
	spec  TermSpec
	knots []float64 // non-nil only for an effective spline
	names []string  // design-matrix column names contributed
}

// appendColumns appends the term's design columns for one observation.
// get fetches a predictor value by name.
func (t *fittedTerm) appendColumns(dst []float64, get func(string) float64) []float64 {
	switch t.spec.Kind {
	case TermLinear:
		return append(dst, get(t.spec.Var))
	case TermSpline:
		if t.knots == nil {
			return append(dst, get(t.spec.Var)) // degraded to linear
		}
		return AppendSplineBasis(dst, get(t.spec.Var), t.knots)
	case TermInteraction:
		return append(dst, get(t.spec.Var)*get(t.spec.Var2))
	default:
		panic(fmt.Sprintf("regression: unknown term kind %d", t.spec.Kind))
	}
}

// Model is a fitted regression model. It is immutable and safe for
// concurrent prediction.
type Model struct {
	spec     Spec
	terms    []fittedTerm
	colNames []string  // design-matrix columns incl. intercept
	beta     []float64 // coefficients, beta[0] = intercept

	// Training diagnostics.
	n         int
	r2, adjR2 float64
	rse       float64 // residual standard error on the transformed scale
	cond      float64 // QR condition estimate

	// Inference artifacts; populated by Fit, absent on models restored
	// from JSON (they require the training design matrix).
	gramDiag  []float64 // diagonal of (X'X)^{-1}
	residuals []float64 // transformed-scale residuals
	fitted    []float64 // transformed-scale fitted values
}

// Fit resolves the spec against the dataset and estimates coefficients by
// least squares. It returns an error if a referenced column is missing,
// the system is rank deficient, or there are more columns than rows.
func Fit(spec *Spec, data *Dataset) (*Model, error) {
	sp := obs.Begin("regression.fit",
		obs.String("response", spec.Response), obs.Int("n", int64(data.N())))
	defer sp.End()
	if !data.HasColumn(spec.Response) {
		return nil, fmt.Errorf("regression: response column %q not in dataset", spec.Response)
	}
	if len(spec.Terms) == 0 {
		return nil, fmt.Errorf("regression: spec has no terms")
	}
	// Resolve terms: place spline knots from the training distribution.
	terms := make([]fittedTerm, 0, len(spec.Terms))
	for _, ts := range spec.Terms {
		for _, v := range []string{ts.Var, ts.Var2} {
			if v != "" && !data.HasColumn(v) {
				return nil, fmt.Errorf("regression: predictor column %q not in dataset", v)
			}
		}
		ft := fittedTerm{spec: ts}
		switch ts.Kind {
		case TermLinear:
			ft.names = []string{ts.Var}
		case TermSpline:
			ft.knots = Knots(data.Column(ts.Var), ts.Knots)
			if ft.knots == nil {
				ft.names = []string{ts.Var} // degraded
			} else {
				ft.names = splineColumnNames(ts.Var, len(ft.knots))
			}
		case TermInteraction:
			ft.names = []string{ts.Var + ":" + ts.Var2}
		default:
			return nil, fmt.Errorf("regression: unknown term kind %d", ts.Kind)
		}
		terms = append(terms, ft)
	}

	colNames := []string{"(intercept)"}
	for i := range terms {
		colNames = append(colNames, terms[i].names...)
	}
	p := len(colNames)
	n := data.N()
	if n < p {
		return nil, fmt.Errorf("regression: %d observations cannot identify %d coefficients", n, p)
	}

	// Build the design matrix and transformed response.
	x := linalg.NewMatrix(n, p)
	y := make([]float64, n)
	resp := data.Column(spec.Response)
	for i := 0; i < n; i++ {
		get := func(name string) float64 { return data.Column(name)[i] }
		row := x.Row(i)[:0]
		row = append(row, 1)
		for t := range terms {
			row = terms[t].appendColumns(row, get)
		}
		if len(row) != p {
			panic("regression: design row width mismatch")
		}
		y[i] = spec.Transform.Apply(resp[i])
	}

	qr, err := linalg.Factor(x)
	if err != nil {
		return nil, err
	}
	beta, err := qr.Solve(y)
	if err != nil {
		return nil, fmt.Errorf("regression: fitting %q: %w", spec.Response, err)
	}

	m := &Model{
		spec:     *spec,
		terms:    terms,
		colNames: colNames,
		beta:     beta,
		n:        n,
		cond:     qr.ConditionEstimate(),
	}

	// Diagnostics on the transformed scale.
	fitted := x.MulVec(beta)
	resid := make([]float64, n)
	ybar := stats.Mean(y)
	var ssTot, ssRes float64
	for i := range y {
		dt := y[i] - ybar
		dr := y[i] - fitted[i]
		resid[i] = dr
		ssTot += dt * dt
		ssRes += dr * dr
	}
	m.fitted = fitted
	m.residuals = resid
	if gd, err := qr.GramInverseDiag(); err == nil {
		m.gramDiag = gd
	}
	if ssTot > 0 {
		m.r2 = 1 - ssRes/ssTot
		if n > p {
			m.adjR2 = 1 - (ssRes/float64(n-p))/(ssTot/float64(n-1))
		}
	}
	if n > p {
		m.rse = math.Sqrt(ssRes / float64(n-p))
	}
	return m, nil
}

func splineColumnNames(base string, knots int) []string {
	names := []string{base}
	for j := 1; j <= knots-2; j++ {
		names = append(names, fmt.Sprintf("%s'%d", base, j))
	}
	return names
}

// Predictors returns the distinct predictor variable names the model
// needs, in first-use order.
func (m *Model) Predictors() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, t := range m.terms {
		add(t.spec.Var)
		add(t.spec.Var2)
	}
	return out
}

// Response returns the name of the modeled response variable.
func (m *Model) Response() string { return m.spec.Response }

// Coefficients returns the design-matrix column names and the fitted
// coefficients, intercept first. The slices are copies.
func (m *Model) Coefficients() ([]string, []float64) {
	return append([]string(nil), m.colNames...), append([]float64(nil), m.beta...)
}

// R2 returns the coefficient of determination on the transformed scale.
func (m *Model) R2() float64 { return m.r2 }

// AdjR2 returns the adjusted R-squared.
func (m *Model) AdjR2() float64 { return m.adjR2 }

// RSE returns the residual standard error on the transformed scale.
func (m *Model) RSE() float64 { return m.rse }

// ConditionEstimate returns the design-matrix conditioning estimate from
// the QR factorization.
func (m *Model) ConditionEstimate() float64 { return m.cond }

// NumCoefficients returns the number of fitted coefficients including the
// intercept.
func (m *Model) NumCoefficients() int { return len(m.beta) }

// Predict evaluates the model for predictor values supplied by get and
// returns the prediction on the original response scale. get must return a
// value for every name in Predictors().
func (m *Model) Predict(get func(string) float64) float64 {
	// Stack-allocate the design row for typical model sizes.
	var buf [64]float64
	row := buf[:0]
	row = append(row, 1)
	for t := range m.terms {
		row = m.terms[t].appendColumns(row, get)
	}
	return m.spec.Transform.Inverse(linalg.Dot(row, m.beta))
}

// PredictMap is a convenience wrapper over Predict for map inputs.
func (m *Model) PredictMap(vals map[string]float64) float64 {
	return m.Predict(func(name string) float64 {
		v, ok := vals[name]
		if !ok {
			panic(fmt.Sprintf("regression: predictor %q missing from input", name))
		}
		return v
	})
}

// Summary renders a human-readable coefficient table with diagnostics.
// For freshly fitted models the table includes standard errors, t
// statistics and p-values; restored models show estimates only.
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "response: %s (%s transform), n=%d, p=%d\n",
		m.spec.Response, m.spec.Transform, m.n, len(m.beta))
	fmt.Fprintf(&b, "R2=%.4f adjR2=%.4f RSE=%.4g cond~%.3g", m.r2, m.adjR2, m.rse, m.cond)
	if f, p, err := m.FStat(); err == nil && !mathIsInf(f) {
		fmt.Fprintf(&b, " F=%.1f (p=%.2g)", f, p)
	}
	b.WriteByte('\n')
	if sig, err := m.Significance(); err == nil {
		fmt.Fprintf(&b, "  %-24s %12s %10s %8s %8s\n", "term", "estimate", "stderr", "t", "p")
		for _, cs := range sig {
			fmt.Fprintf(&b, "  %-24s % 12.5g %10.3g %8.2f %8.2g\n",
				cs.Name, cs.Estimate, cs.StdErr, cs.T, cs.P)
		}
	} else {
		for i, name := range m.colNames {
			fmt.Fprintf(&b, "  %-24s % .6g\n", name, m.beta[i])
		}
	}
	return b.String()
}

func mathIsInf(v float64) bool { return math.IsInf(v, 0) }
