package regression

import (
	"fmt"
	"math"
)

// Transform is an invertible response transformation f applied before
// fitting, per Equation (1) of the paper: f(y) = Xβ + e. Predictions are
// mapped back through the inverse.
type Transform int

const (
	// Identity leaves the response unchanged.
	Identity Transform = iota
	// Sqrt fits sqrt(y); the paper found it "particularly effective for
	// reducing error variance in our performance models".
	Sqrt
	// Log fits log(y); the paper's choice for power, which "more
	// effectively captures exponential trends".
	Log
)

// Apply maps a raw response to model space. Sqrt and Log panic on inputs
// outside their domains, which would indicate corrupt simulator output.
func (t Transform) Apply(y float64) float64 {
	switch t {
	case Identity:
		return y
	case Sqrt:
		if y < 0 {
			panic(fmt.Sprintf("regression: sqrt transform of negative response %v", y))
		}
		return math.Sqrt(y)
	case Log:
		if y <= 0 {
			panic(fmt.Sprintf("regression: log transform of non-positive response %v", y))
		}
		return math.Log(y)
	default:
		panic(fmt.Sprintf("regression: unknown transform %d", t))
	}
}

// Inverse maps a model-space prediction back to the response scale.
func (t Transform) Inverse(fy float64) float64 {
	switch t {
	case Identity:
		return fy
	case Sqrt:
		return fy * fy
	case Log:
		return math.Exp(fy)
	default:
		panic(fmt.Sprintf("regression: unknown transform %d", t))
	}
}

// String names the transform.
func (t Transform) String() string {
	switch t {
	case Identity:
		return "identity"
	case Sqrt:
		return "sqrt"
	case Log:
		return "log"
	default:
		return fmt.Sprintf("transform(%d)", int(t))
	}
}
