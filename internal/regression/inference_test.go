package regression

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// fitWithNoise builds y = 2 + 3a + 0b + noise: 'a' strongly significant,
// 'b' pure noise.
func fitWithNoise(t *testing.T, n int) *Model {
	t.Helper()
	r := rng.New(61)
	a := make([]float64, n)
	bcol := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		bcol[i] = r.Float64() * 10
		y[i] = 2 + 3*a[i] + r.NormFloat64()
	}
	d := NewDataset(n)
	d.AddColumn("a", a)
	d.AddColumn("b", bcol)
	d.AddColumn("y", y)
	m, err := Fit(NewSpec("y", Identity).Linear("a").Linear("b"), d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSignificanceSeparatesSignalFromNoise(t *testing.T) {
	m := fitWithNoise(t, 120)
	sig, err := m.Significance()
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 3 {
		t.Fatalf("got %d rows", len(sig))
	}
	byName := map[string]CoefStat{}
	for _, cs := range sig {
		byName[cs.Name] = cs
	}
	if byName["a"].P > 1e-10 {
		t.Fatalf("true predictor p-value = %v, want ~0", byName["a"].P)
	}
	if byName["b"].P < 0.01 {
		t.Fatalf("noise predictor p-value = %v, should not be significant", byName["b"].P)
	}
	if byName["a"].StdErr <= 0 {
		t.Fatal("non-positive standard error")
	}
	if got := byName["a"].T; math.Abs(got-byName["a"].Estimate/byName["a"].StdErr) > 1e-12 {
		t.Fatal("t statistic inconsistent with estimate/stderr")
	}
}

func TestSignificanceStdErrShrinksWithN(t *testing.T) {
	small := fitWithNoise(t, 40)
	large := fitWithNoise(t, 400)
	sigS, err := small.Significance()
	if err != nil {
		t.Fatal(err)
	}
	sigL, err := large.Significance()
	if err != nil {
		t.Fatal(err)
	}
	if sigL[1].StdErr >= sigS[1].StdErr {
		t.Fatalf("stderr should shrink with n: %v -> %v", sigS[1].StdErr, sigL[1].StdErr)
	}
}

func TestFStat(t *testing.T) {
	m := fitWithNoise(t, 100)
	f, p, err := m.FStat()
	if err != nil {
		t.Fatal(err)
	}
	if f <= 10 {
		t.Fatalf("F = %v, expected a strongly significant regression", f)
	}
	if p > 1e-10 {
		t.Fatalf("F p-value = %v", p)
	}
}

func TestResidualsAndFitted(t *testing.T) {
	m := fitWithNoise(t, 80)
	res := m.Residuals()
	fit := m.Fitted()
	if len(res) != 80 || len(fit) != 80 {
		t.Fatalf("lengths %d/%d", len(res), len(fit))
	}
	// Residuals are fresh copies: mutating must not affect the model.
	res[0] = 1e9
	if m.Residuals()[0] == 1e9 {
		t.Fatal("Residuals returned internal slice")
	}
	var sum float64
	for _, r := range m.Residuals() {
		sum += r
	}
	if math.Abs(sum)/80 > 1e-9 {
		t.Fatalf("residual mean = %v, want ~0", sum/80)
	}
}

func TestResidualDiagnosticsWellSpecified(t *testing.T) {
	m := fitWithNoise(t, 300)
	d, err := m.ResidualDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 300 {
		t.Fatalf("N = %d", d.N)
	}
	if math.Abs(d.Mean) > 1e-9 {
		t.Fatalf("residual mean = %v", d.Mean)
	}
	// Gaussian noise: modest skewness and kurtosis; no fitted trend.
	if math.Abs(d.Skewness) > 0.5 {
		t.Fatalf("skewness = %v", d.Skewness)
	}
	if math.Abs(d.ExcessKurtosis) > 1 {
		t.Fatalf("kurtosis = %v", d.ExcessKurtosis)
	}
	if math.Abs(d.FittedCorrelation) > 0.05 {
		t.Fatalf("residual-fitted correlation = %v", d.FittedCorrelation)
	}
	if d.MaxAbs <= 0 {
		t.Fatal("MaxAbs not populated")
	}
}

func TestMisspecifiedModelShowsResidualStructure(t *testing.T) {
	// Fit y = x^2 with a linear model: residual analysis must flag it
	// through heavy tails / curvature, visible as high |MaxAbs| relative
	// to the spread and strong kurtosis deviation.
	r := rng.New(71)
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64()*10 - 5
		y[i] = x[i] * x[i]
	}
	d := NewDataset(n)
	d.AddColumn("x", x)
	d.AddColumn("y", y)
	lin, err := Fit(NewSpec("y", Identity).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	spl, err := Fit(NewSpec("y", Identity).Spline("x", 5), d)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := lin.ResidualDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := spl.ResidualDiagnostics()
	if err != nil {
		t.Fatal(err)
	}
	if ds.StdDev >= dl.StdDev {
		t.Fatalf("spline residual spread %v should beat linear %v", ds.StdDev, dl.StdDev)
	}
}

func TestSummaryIncludesInference(t *testing.T) {
	m := fitWithNoise(t, 90)
	s := m.Summary()
	for _, want := range []string{"stderr", "t", "p", "F="} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestFStatDegenerate(t *testing.T) {
	// Saturated model: no residual degrees of freedom.
	d := NewDataset(2)
	d.AddColumn("x", []float64{1, 2})
	d.AddColumn("y", []float64{3, 5})
	m, err := Fit(NewSpec("y", Identity).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.FStat(); err == nil {
		t.Fatal("F statistic computed without residual degrees of freedom")
	}
	if _, err := m.Significance(); err == nil {
		t.Fatal("significance computed without residual degrees of freedom")
	}
}
