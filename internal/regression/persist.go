package regression

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the serialized form of a fitted model. Knots are stored
// per term so a reloaded model predicts bit-identically without access to
// the training data.
type modelJSON struct {
	Response  string     `json:"response"`
	Transform Transform  `json:"transform"`
	Terms     []termJSON `json:"terms"`
	ColNames  []string   `json:"columns"`
	Beta      []float64  `json:"coefficients"`
	N         int        `json:"n"`
	R2        float64    `json:"r2"`
	AdjR2     float64    `json:"adj_r2"`
	RSE       float64    `json:"rse"`
	Cond      float64    `json:"condition"`
}

type termJSON struct {
	Kind  TermKind  `json:"kind"`
	Var   string    `json:"var"`
	Var2  string    `json:"var2,omitempty"`
	Knots []float64 `json:"knots,omitempty"`
	Names []string  `json:"names"`
}

// MarshalJSON serializes the fitted model, including resolved spline
// knots, so that UnmarshalJSON reproduces identical predictions.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Response:  m.spec.Response,
		Transform: m.spec.Transform,
		ColNames:  m.colNames,
		Beta:      m.beta,
		N:         m.n,
		R2:        m.r2,
		AdjR2:     m.adjR2,
		RSE:       m.rse,
		Cond:      m.cond,
	}
	for _, t := range m.terms {
		out.Terms = append(out.Terms, termJSON{
			Kind:  t.spec.Kind,
			Var:   t.spec.Var,
			Var2:  t.spec.Var2,
			Knots: t.knots,
			Names: t.names,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a fitted model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("regression: decoding model: %w", err)
	}
	if in.Response == "" {
		return fmt.Errorf("regression: serialized model missing response")
	}
	if len(in.Beta) != len(in.ColNames) || len(in.Beta) == 0 {
		return fmt.Errorf("regression: serialized model has %d coefficients for %d columns",
			len(in.Beta), len(in.ColNames))
	}
	spec := Spec{Response: in.Response, Transform: in.Transform}
	var terms []fittedTerm
	width := 1 // intercept
	for i, t := range in.Terms {
		switch t.Kind {
		case TermLinear, TermInteraction:
			if len(t.Names) != 1 {
				return fmt.Errorf("regression: term %d has %d columns, want 1", i, len(t.Names))
			}
		case TermSpline:
			if t.Knots != nil && len(t.Names) != len(t.Knots)-1 {
				return fmt.Errorf("regression: spline term %d has %d columns for %d knots",
					i, len(t.Names), len(t.Knots))
			}
			if t.Knots == nil && len(t.Names) != 1 {
				return fmt.Errorf("regression: degraded spline term %d has %d columns", i, len(t.Names))
			}
			if t.Knots != nil && !strictlyIncreasing(t.Knots) {
				return fmt.Errorf("regression: spline term %d knots not increasing", i)
			}
		default:
			return fmt.Errorf("regression: unknown term kind %d", t.Kind)
		}
		ts := TermSpec{Kind: t.Kind, Var: t.Var, Var2: t.Var2, Knots: len(t.Knots)}
		spec.Terms = append(spec.Terms, ts)
		terms = append(terms, fittedTerm{spec: ts, knots: t.Knots, names: t.Names})
		width += len(t.Names)
	}
	if width != len(in.Beta) {
		return fmt.Errorf("regression: terms contribute %d columns but model has %d coefficients",
			width, len(in.Beta))
	}
	m.spec = spec
	m.terms = terms
	m.colNames = in.ColNames
	m.beta = in.Beta
	m.n = in.N
	m.r2 = in.R2
	m.adjR2 = in.AdjR2
	m.rse = in.RSE
	m.cond = in.Cond
	return nil
}
