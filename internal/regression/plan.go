package regression

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// SweepPlan is a CompiledModel re-lowered into structure-of-arrays form
// for exhaustive sweeps: one flat premultiplied lookup table per design
// column, indexed by predictor level. Where the compiled model assembles
// a design row per point (an append per term, a memmove per spline
// table slice) and then dots it against the coefficients, the plan
// collapses each column's basis value and its coefficient into a single
// precomputed product — table[l] = basis(level l) * beta[j], computed at
// build time with exactly the multiply linalg.Dot would perform — so
// evaluating a point is nothing but len(beta)-1 table loads and adds
// into one accumulator, in the interpreter's column order.
//
// Because the per-point operations (one multiply per column, folded into
// the table; one add per column, performed in the same left-to-right
// order; the same transform inverse) are bit-for-bit the interpreter's,
// plan predictions are bit-identical to Model.Predict, CompiledModel
// .PredictLevels and the scalar sweep kernel — regardless of block size,
// since blocking interleaves the accumulation chains of *distinct*
// points without reordering any point's own chain.
//
// A SweepPlan is immutable and safe for concurrent use.
type SweepPlan struct {
	transform Transform
	intercept float64 // beta[0]: the interpreter's 0 + 1*beta[0]
	cols      []planCol
	nPred     int
}

// planCol is one design column of the plan: a level-indexed table of
// coefficient-premultiplied basis values. Linear and spline columns are
// driven by a single axis (stride == 0, table[l]); interaction columns
// are driven by two (stride == len(levels[axis2]), table[l1*stride+l2],
// with table entries (v1*v2)*beta — the interpreter's multiply order).
type planCol struct {
	table  []float64
	axis   int
	axis2  int
	stride int
}

// Plan lowers the compiled model into its structure-of-arrays sweep
// form. The model must be Leveled: every referenced predictor needs the
// discrete sweep levels the tables are indexed by.
func (c *CompiledModel) Plan() (*SweepPlan, error) {
	sp := obs.Begin("regression.plan", obs.Int("columns", int64(c.width)))
	defer sp.End()
	if !c.leveled {
		return nil, fmt.Errorf("regression: planning a model compiled without full levels")
	}
	p := &SweepPlan{
		transform: c.transform,
		intercept: c.beta[0],
		cols:      make([]planCol, 0, c.width-1),
		nPred:     c.nPred,
	}
	j := 1 // coefficient cursor; 0 is the intercept
	for i := range c.ops {
		op := &c.ops[i]
		if op.kind == TermInteraction {
			lp, lq := c.levelVals[op.p], c.levelVals[op.q]
			t := make([]float64, len(lp)*len(lq))
			for a, va := range lp {
				for b, vb := range lq {
					// The interpreter computes (va*vb) in AppendRowLevels and
					// multiplies by beta[j] inside Dot; same order here.
					t[a*len(lq)+b] = (va * vb) * c.beta[j]
				}
			}
			p.cols = append(p.cols, planCol{table: t, axis: op.p, axis2: op.q, stride: len(lq)})
			j++
			continue
		}
		nl := len(c.levelVals[op.p])
		for w := 0; w < op.width; w++ {
			t := make([]float64, nl)
			for l := 0; l < nl; l++ {
				t[l] = op.table[l*op.width+w] * c.beta[j]
			}
			p.cols = append(p.cols, planCol{table: t, axis: op.p, axis2: -1})
			j++
		}
	}
	if j != c.width {
		return nil, fmt.Errorf("regression: plan lowered %d columns, model has %d", j, c.width)
	}
	return p, nil
}

// NumPredictors returns the predictor-vector length the plan was laid
// out against (the length each level vector must have).
func (p *SweepPlan) NumPredictors() int { return p.nPred }

// NumColumns returns the number of non-intercept design columns.
func (p *SweepPlan) NumColumns() int { return len(p.cols) }

// PlanBlock is the point count PredictBlock processes per unrolled
// iteration. Eight independent accumulation chains are enough to hide
// the floating-point add latency that serializes the scalar kernel
// (each chain is a strict left-to-right dependency, so a single point
// can never saturate the FP units).
const PlanBlock = 8

// PredictBlock evaluates the plan for len(out) design points, where
// lev[i] holds point i's per-predictor level indices, writing the
// response-scale prediction for point i into out[i]. Points are
// processed in blocks of PlanBlock with the per-column table and axis
// loads hoisted out of the unrolled point loop; the remainder runs the
// same per-point operation sequence one point at a time, so every
// point's result is bit-identical to PredictLevels no matter how the
// caller sizes or aligns the batch.
func (p *SweepPlan) PredictBlock(lev [][]int, out []float64) {
	n := len(out)
	if len(lev) < n {
		panic(fmt.Sprintf("regression: PredictBlock with %d level vectors for %d outputs", len(lev), n))
	}
	cols := p.cols
	base := 0
	for ; base+PlanBlock <= n; base += PlanBlock {
		l0, l1, l2, l3 := lev[base], lev[base+1], lev[base+2], lev[base+3]
		l4, l5, l6, l7 := lev[base+4], lev[base+5], lev[base+6], lev[base+7]
		a0, a1, a2, a3 := p.intercept, p.intercept, p.intercept, p.intercept
		a4, a5, a6, a7 := p.intercept, p.intercept, p.intercept, p.intercept
		for ci := range cols {
			c := &cols[ci]
			t, ax := c.table, c.axis
			if c.stride == 0 {
				a0 += t[l0[ax]]
				a1 += t[l1[ax]]
				a2 += t[l2[ax]]
				a3 += t[l3[ax]]
				a4 += t[l4[ax]]
				a5 += t[l5[ax]]
				a6 += t[l6[ax]]
				a7 += t[l7[ax]]
			} else {
				s, ax2 := c.stride, c.axis2
				a0 += t[l0[ax]*s+l0[ax2]]
				a1 += t[l1[ax]*s+l1[ax2]]
				a2 += t[l2[ax]*s+l2[ax2]]
				a3 += t[l3[ax]*s+l3[ax2]]
				a4 += t[l4[ax]*s+l4[ax2]]
				a5 += t[l5[ax]*s+l5[ax2]]
				a6 += t[l6[ax]*s+l6[ax2]]
				a7 += t[l7[ax]*s+l7[ax2]]
			}
		}
		// One transform dispatch per block, not per point; the applied
		// operation per point is exactly Transform.Inverse's.
		switch p.transform {
		case Identity:
			out[base+0], out[base+1], out[base+2], out[base+3] = a0, a1, a2, a3
			out[base+4], out[base+5], out[base+6], out[base+7] = a4, a5, a6, a7
		case Sqrt:
			out[base+0], out[base+1], out[base+2], out[base+3] = a0*a0, a1*a1, a2*a2, a3*a3
			out[base+4], out[base+5], out[base+6], out[base+7] = a4*a4, a5*a5, a6*a6, a7*a7
		case Log:
			out[base+0], out[base+1], out[base+2], out[base+3] = math.Exp(a0), math.Exp(a1), math.Exp(a2), math.Exp(a3)
			out[base+4], out[base+5], out[base+6], out[base+7] = math.Exp(a4), math.Exp(a5), math.Exp(a6), math.Exp(a7)
		default:
			out[base+0], out[base+1], out[base+2], out[base+3] =
				p.transform.Inverse(a0), p.transform.Inverse(a1), p.transform.Inverse(a2), p.transform.Inverse(a3)
			out[base+4], out[base+5], out[base+6], out[base+7] =
				p.transform.Inverse(a4), p.transform.Inverse(a5), p.transform.Inverse(a6), p.transform.Inverse(a7)
		}
	}
	for ; base < n; base++ {
		out[base] = p.PredictLevels(lev[base])
	}
}

// Congruent reports whether two plans share column structure — same
// predictor count and, column by column, the same driving axes, stride
// and table length. Congruent plans (e.g. the performance and power
// models of one benchmark, fitted from one spec over one design space)
// can be evaluated by the fused PredictBlockPair kernel, which loads
// each point's level indices once for both models. Coefficients, table
// contents and transforms are free to differ.
func (p *SweepPlan) Congruent(q *SweepPlan) bool {
	if q == nil || p.nPred != q.nPred || len(p.cols) != len(q.cols) {
		return false
	}
	for i := range p.cols {
		a, b := &p.cols[i], &q.cols[i]
		if a.axis != b.axis || a.axis2 != b.axis2 || a.stride != b.stride || len(a.table) != len(b.table) {
			return false
		}
	}
	return true
}

// pairBlock is the point count PredictBlockPair processes per unrolled
// iteration. Eight points across two models give sixteen independent
// accumulation chains; the accumulators overflow the sixteen
// architectural vector registers, but the spills are cheap stack
// traffic and measured throughput beats the narrower four-point
// variant — each loaded level index feeds two table loads, so wider
// blocks amortize more index loads per memory access.
const pairBlock = 8

// PredictBlockPair evaluates two congruent plans over one shared batch
// of level vectors: out1[i] is p's prediction and out2[i] is q's for
// the point lev[i]. Each level index is loaded once and indexes both
// models' column tables, halving the index traffic of two PredictBlock
// passes. Per point and per model the operation sequence is exactly
// PredictLevels', so both outputs are bit-identical to the scalar path.
// Callers must ensure p.Congruent(q); len(out2) and len(lev) must be at
// least len(out1).
func (p *SweepPlan) PredictBlockPair(q *SweepPlan, lev [][]int, out1, out2 []float64) {
	n := len(out1)
	if len(out2) < n || len(lev) < n {
		panic(fmt.Sprintf("regression: PredictBlockPair with %d level vectors, %d+%d outputs", len(lev), n, len(out2)))
	}
	// Reslicing to exact lengths lets the compiler hoist the qc[ci],
	// lev[base+i] and out[base+i] bounds checks out of the hot loops.
	pc := p.cols
	qc := q.cols[:len(p.cols)]
	lev = lev[:n]
	out1 = out1[:n]
	out2 = out2[:n]
	base := 0
	for ; base+pairBlock <= n; base += pairBlock {
		l0, l1, l2, l3 := lev[base], lev[base+1], lev[base+2], lev[base+3]
		l4, l5, l6, l7 := lev[base+4], lev[base+5], lev[base+6], lev[base+7]
		a0, a1, a2, a3 := p.intercept, p.intercept, p.intercept, p.intercept
		a4, a5, a6, a7 := p.intercept, p.intercept, p.intercept, p.intercept
		b0, b1, b2, b3 := q.intercept, q.intercept, q.intercept, q.intercept
		b4, b5, b6, b7 := q.intercept, q.intercept, q.intercept, q.intercept
		for ci := range pc {
			c := &pc[ci]
			t, u := c.table, qc[ci].table
			ax := c.axis
			var i0, i1, i2, i3, i4, i5, i6, i7 int
			if c.stride == 0 {
				i0, i1, i2, i3 = l0[ax], l1[ax], l2[ax], l3[ax]
				i4, i5, i6, i7 = l4[ax], l5[ax], l6[ax], l7[ax]
			} else {
				s, ax2 := c.stride, c.axis2
				i0 = l0[ax]*s + l0[ax2]
				i1 = l1[ax]*s + l1[ax2]
				i2 = l2[ax]*s + l2[ax2]
				i3 = l3[ax]*s + l3[ax2]
				i4 = l4[ax]*s + l4[ax2]
				i5 = l5[ax]*s + l5[ax2]
				i6 = l6[ax]*s + l6[ax2]
				i7 = l7[ax]*s + l7[ax2]
			}
			a0 += t[i0]
			a1 += t[i1]
			a2 += t[i2]
			a3 += t[i3]
			a4 += t[i4]
			a5 += t[i5]
			a6 += t[i6]
			a7 += t[i7]
			b0 += u[i0]
			b1 += u[i1]
			b2 += u[i2]
			b3 += u[i3]
			b4 += u[i4]
			b5 += u[i5]
			b6 += u[i6]
			b7 += u[i7]
		}
		switch p.transform {
		case Identity:
			out1[base+0], out1[base+1], out1[base+2], out1[base+3] = a0, a1, a2, a3
			out1[base+4], out1[base+5], out1[base+6], out1[base+7] = a4, a5, a6, a7
		case Sqrt:
			out1[base+0], out1[base+1], out1[base+2], out1[base+3] = a0*a0, a1*a1, a2*a2, a3*a3
			out1[base+4], out1[base+5], out1[base+6], out1[base+7] = a4*a4, a5*a5, a6*a6, a7*a7
		case Log:
			out1[base+0], out1[base+1], out1[base+2], out1[base+3] = math.Exp(a0), math.Exp(a1), math.Exp(a2), math.Exp(a3)
			out1[base+4], out1[base+5], out1[base+6], out1[base+7] = math.Exp(a4), math.Exp(a5), math.Exp(a6), math.Exp(a7)
		default:
			out1[base+0], out1[base+1], out1[base+2], out1[base+3] =
				p.transform.Inverse(a0), p.transform.Inverse(a1), p.transform.Inverse(a2), p.transform.Inverse(a3)
			out1[base+4], out1[base+5], out1[base+6], out1[base+7] =
				p.transform.Inverse(a4), p.transform.Inverse(a5), p.transform.Inverse(a6), p.transform.Inverse(a7)
		}
		switch q.transform {
		case Identity:
			out2[base+0], out2[base+1], out2[base+2], out2[base+3] = b0, b1, b2, b3
			out2[base+4], out2[base+5], out2[base+6], out2[base+7] = b4, b5, b6, b7
		case Sqrt:
			out2[base+0], out2[base+1], out2[base+2], out2[base+3] = b0*b0, b1*b1, b2*b2, b3*b3
			out2[base+4], out2[base+5], out2[base+6], out2[base+7] = b4*b4, b5*b5, b6*b6, b7*b7
		case Log:
			out2[base+0], out2[base+1], out2[base+2], out2[base+3] = math.Exp(b0), math.Exp(b1), math.Exp(b2), math.Exp(b3)
			out2[base+4], out2[base+5], out2[base+6], out2[base+7] = math.Exp(b4), math.Exp(b5), math.Exp(b6), math.Exp(b7)
		default:
			out2[base+0], out2[base+1], out2[base+2], out2[base+3] =
				q.transform.Inverse(b0), q.transform.Inverse(b1), q.transform.Inverse(b2), q.transform.Inverse(b3)
			out2[base+4], out2[base+5], out2[base+6], out2[base+7] =
				q.transform.Inverse(b4), q.transform.Inverse(b5), q.transform.Inverse(b6), q.transform.Inverse(b7)
		}
	}
	for ; base < n; base++ {
		out1[base] = p.PredictLevels(lev[base])
		out2[base] = q.PredictLevels(lev[base])
	}
}

// PredictLevels evaluates the plan for one design point — the scalar
// tail of PredictBlock and the single-point entry for cross-checks.
// Bit-identical to CompiledModel.PredictLevels.
func (p *SweepPlan) PredictLevels(lv []int) float64 {
	a := p.intercept
	cols := p.cols
	for ci := range cols {
		c := &cols[ci]
		if c.stride == 0 {
			a += c.table[lv[c.axis]]
		} else {
			a += c.table[lv[c.axis]*c.stride+lv[c.axis2]]
		}
	}
	return p.transform.Inverse(a)
}
