// Package regression implements the paper's statistical inference engine:
// linear models fit by least squares with restricted cubic spline predictor
// transformations, pairwise interaction terms, and square-root / log
// response transformations (Sections 3.1-3.3 of the paper). It replaces the
// R + Hmisc/Design environment the authors used.
package regression

import (
	"fmt"
	"sort"
)

// Dataset is a column-oriented table of numeric observations. Columns are
// addressed by name; all columns have the same length.
type Dataset struct {
	n     int
	order []string
	cols  map[string][]float64
}

// NewDataset returns an empty dataset expecting columns of length n.
func NewDataset(n int) *Dataset {
	if n <= 0 {
		panic("regression: NewDataset with non-positive n")
	}
	return &Dataset{n: n, cols: make(map[string][]float64)}
}

// N returns the number of observations.
func (d *Dataset) N() int { return d.n }

// AddColumn installs a named column. It panics if the length differs from
// the dataset size or the name is already present.
func (d *Dataset) AddColumn(name string, values []float64) {
	if len(values) != d.n {
		panic(fmt.Sprintf("regression: column %q has %d values, want %d", name, len(values), d.n))
	}
	if _, dup := d.cols[name]; dup {
		panic(fmt.Sprintf("regression: duplicate column %q", name))
	}
	d.cols[name] = values
	d.order = append(d.order, name)
}

// Column returns the named column. It panics if absent.
func (d *Dataset) Column(name string) []float64 {
	c, ok := d.cols[name]
	if !ok {
		panic(fmt.Sprintf("regression: unknown column %q", name))
	}
	return c
}

// HasColumn reports whether the named column exists.
func (d *Dataset) HasColumn(name string) bool {
	_, ok := d.cols[name]
	return ok
}

// Columns returns the column names in insertion order.
func (d *Dataset) Columns() []string {
	return append([]string(nil), d.order...)
}

// distinctSorted returns the sorted distinct values of a column.
func distinctSorted(values []float64) []float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return append([]float64(nil), out...)
}
