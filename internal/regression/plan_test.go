package regression

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// planGrid enumerates every level combination of the fixture's grid.
func planGrid(levels [][]float64) [][]int {
	var all [][]int
	lev := make([]int, len(levels))
	var walk func(p int)
	walk = func(p int) {
		if p == len(levels) {
			all = append(all, append([]int(nil), lev...))
			return
		}
		for l := range levels[p] {
			lev[p] = l
			walk(p + 1)
		}
	}
	walk(0)
	return all
}

func TestPlanBitIdenticalToPredictLevels(t *testing.T) {
	for _, tr := range []Transform{Identity, Sqrt, Log} {
		m, names, levels := compileFixture(t, tr)
		c, err := m.Compile(names, levels)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if p.NumPredictors() != c.NumPredictors() {
			t.Fatalf("NumPredictors = %d, want %d", p.NumPredictors(), c.NumPredictors())
		}
		if p.NumColumns() != c.RowWidth()-1 {
			t.Fatalf("NumColumns = %d, want %d", p.NumColumns(), c.RowWidth()-1)
		}
		for _, lev := range planGrid(levels) {
			want := c.PredictLevels(lev)
			if got := p.PredictLevels(lev); got != want {
				t.Fatalf("transform %v, levels %v: plan %v, compiled %v", tr, lev, got, want)
			}
		}
	}
}

func TestPlanBlockMatchesScalar(t *testing.T) {
	m, names, levels := compileFixture(t, Sqrt)
	c, err := m.Compile(names, levels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	grid := planGrid(levels) // 48 points: several full blocks plus a tail
	want := make([]float64, len(grid))
	for i, lev := range grid {
		want[i] = c.PredictLevels(lev)
	}
	// Every batch size — aligned, unaligned, sub-block — must agree
	// bit-for-bit with the scalar path for every point.
	for size := 1; size <= len(grid); size++ {
		out := make([]float64, size)
		for base := 0; base+size <= len(grid); base += size {
			p.PredictBlock(grid[base:], out)
			for i, got := range out {
				if got != want[base+i] {
					t.Fatalf("batch size %d, point %d: block %v, scalar %v", size, base+i, got, want[base+i])
				}
			}
		}
	}
}

func TestPlanBlockShortInputPanics(t *testing.T) {
	m, names, levels := compileFixture(t, Identity)
	c, err := m.Compile(names, levels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PredictBlock with fewer level vectors than outputs did not panic")
		}
	}()
	p.PredictBlock([][]int{{0, 0, 0}}, make([]float64, 2))
}

func TestPlanRequiresLevels(t *testing.T) {
	m, names, _ := compileFixture(t, Log)
	c, err := m.Compile(names, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(); err == nil || !strings.Contains(err.Error(), "without full levels") {
		t.Fatalf("Plan on unleveled model: err = %v, want level error", err)
	}
}

// planBenchInput builds a deterministic pseudo-random batch of on-grid
// level vectors sized like a sweep chunk.
func planBenchInput(levels [][]float64, n int) [][]int {
	r := rng.New(42)
	lev := make([][]int, n)
	for i := range lev {
		v := make([]int, len(levels))
		for a := range v {
			v[a] = r.Intn(len(levels[a]))
		}
		lev[i] = v
	}
	return lev
}

func BenchmarkPlanPredictBlock(b *testing.B) {
	m, names, levels := compileFixture(b, Sqrt)
	c, err := m.Compile(names, levels)
	if err != nil {
		b.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 512
	lev := planBenchInput(levels, chunk)
	out := make([]float64, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictBlock(lev, out)
	}
	b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "predictions/s")
}

func BenchmarkPlanPredictBlockPair(b *testing.B) {
	m, names, levels := compileFixture(b, Sqrt)
	m2, _, _ := compileFixture(b, Log)
	c, err := m.Compile(names, levels)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := m2.Compile(names, levels)
	if err != nil {
		b.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		b.Fatal(err)
	}
	q, err := c2.Plan()
	if err != nil {
		b.Fatal(err)
	}
	if !p.Congruent(q) {
		b.Fatal("fixture plans not congruent")
	}
	const chunk = 512
	lev := planBenchInput(levels, chunk)
	out1 := make([]float64, chunk)
	out2 := make([]float64, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictBlockPair(q, lev, out1, out2)
	}
	b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkPlanPredictScalar(b *testing.B) {
	m, names, levels := compileFixture(b, Sqrt)
	c, err := m.Compile(names, levels)
	if err != nil {
		b.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 512
	lev := planBenchInput(levels, chunk)
	out := make([]float64, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, lv := range lev {
			out[j] = p.PredictLevels(lv)
		}
	}
	b.ReportMetric(float64(chunk)*float64(b.N)/b.Elapsed().Seconds(), "predictions/s")
}
