package regression

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// CoefStat is one row of a coefficient significance table: the paper's
// statistically rigorous derivation relies on exactly this kind of
// significance testing to justify which predictors and interactions stay
// in the model.
type CoefStat struct {
	Name     string
	Estimate float64
	StdErr   float64
	T        float64 // Estimate / StdErr
	P        float64 // two-sided p-value with n-p degrees of freedom
}

// Significance returns the coefficient significance table. It is
// available only on freshly fitted models (standard errors require the
// training design matrix); models restored from JSON return an error.
func (m *Model) Significance() ([]CoefStat, error) {
	if m.gramDiag == nil {
		return nil, fmt.Errorf("regression: significance unavailable (model was not fit in this process)")
	}
	df := float64(m.n - len(m.beta))
	if df <= 0 {
		return nil, fmt.Errorf("regression: no residual degrees of freedom")
	}
	out := make([]CoefStat, len(m.beta))
	for j, b := range m.beta {
		se := m.rse * math.Sqrt(m.gramDiag[j])
		cs := CoefStat{Name: m.colNames[j], Estimate: b, StdErr: se}
		if se > 0 {
			cs.T = b / se
			cs.P = stats.StudentTPValue(cs.T, df)
		} else {
			cs.P = math.NaN()
		}
		out[j] = cs
	}
	return out, nil
}

// FStat returns the overall F statistic for the regression (all
// non-intercept coefficients zero) and its p-value.
func (m *Model) FStat() (f, p float64, err error) {
	k := float64(len(m.beta) - 1) // slope coefficients
	df2 := float64(m.n - len(m.beta))
	if k <= 0 || df2 <= 0 {
		return 0, 0, fmt.Errorf("regression: F statistic undefined for this model")
	}
	if m.r2 >= 1 {
		return math.Inf(1), 0, nil
	}
	f = (m.r2 / k) / ((1 - m.r2) / df2)
	return f, stats.FPValue(f, k, df2), nil
}

// Residuals returns a copy of the training residuals on the transformed
// scale (f(y) - f^(y)), or nil for models restored from JSON.
func (m *Model) Residuals() []float64 {
	return append([]float64(nil), m.residuals...)
}

// Fitted returns a copy of the fitted values on the transformed scale,
// aligned with Residuals, or nil for restored models.
func (m *Model) Fitted() []float64 {
	return append([]float64(nil), m.fitted...)
}

// ResidualDiagnostics summarizes the residual distribution, the paper's
// "residual analysis": approximately normal, centered residuals with no
// strong relationship to the fitted values indicate an adequate
// specification and transformation choice.
type ResidualDiagnostics struct {
	N                 int
	Mean              float64
	StdDev            float64
	Skewness          float64
	ExcessKurtosis    float64
	FittedCorrelation float64 // Pearson correlation of residuals with fitted values
	MaxAbs            float64
}

// ResidualDiagnostics computes the summary. It errs on restored models.
func (m *Model) ResidualDiagnostics() (ResidualDiagnostics, error) {
	if len(m.residuals) == 0 {
		return ResidualDiagnostics{}, fmt.Errorf("regression: residuals unavailable (model was not fit in this process)")
	}
	d := ResidualDiagnostics{
		N:    len(m.residuals),
		Mean: stats.Mean(m.residuals),
	}
	if d.N > 1 {
		d.StdDev = stats.StdDev(m.residuals)
		d.Skewness = stats.Skewness(m.residuals)
		d.ExcessKurtosis = stats.Kurtosis(m.residuals)
		d.FittedCorrelation = stats.Pearson(m.residuals, m.fitted)
	}
	for _, r := range m.residuals {
		if a := math.Abs(r); a > d.MaxAbs {
			d.MaxAbs = a
		}
	}
	return d, nil
}
