package regression

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/rng"
)

// fitReference builds a realistic model exercising every term kind.
func fitReference(t *testing.T) (*Model, *Dataset) {
	t.Helper()
	r := rng.New(31)
	n := 120
	d := NewDataset(n)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = r.Float64() * 10
		x2[i] = float64(r.Intn(3)) // few levels: spline degrades
		y[i] = math.Pow(1+0.5*x1[i]+0.2*x2[i]+0.05*x1[i]*x2[i], 2) * (1 + 0.01*r.NormFloat64())
	}
	d.AddColumn("x1", x1)
	d.AddColumn("x2", x2)
	d.AddColumn("y", y)
	m, err := Fit(NewSpec("y", Sqrt).Spline("x1", 4).Spline("x2", 3).Interact("x1", "x2"), d)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestModelJSONRoundTrip(t *testing.T) {
	m, _ := fitReference(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	// Predictions must be bit-identical across a grid of inputs.
	for x1 := 0.0; x1 <= 10; x1 += 0.7 {
		for x2 := 0.0; x2 <= 2; x2++ {
			vals := map[string]float64{"x1": x1, "x2": x2}
			if got, want := restored.PredictMap(vals), m.PredictMap(vals); got != want {
				t.Fatalf("prediction differs after round trip at (%v,%v): %v vs %v", x1, x2, got, want)
			}
		}
	}
	// Diagnostics survive.
	if restored.R2() != m.R2() || restored.RSE() != m.RSE() || restored.AdjR2() != m.AdjR2() {
		t.Fatal("diagnostics lost in round trip")
	}
	if restored.Response() != "y" {
		t.Fatal("response lost")
	}
	p := restored.Predictors()
	if len(p) != 2 || p[0] != "x1" || p[1] != "x2" {
		t.Fatalf("predictors = %v", p)
	}
}

func TestModelJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"response":"y","coefficients":[1,2],"columns":["a"]}`, // mismatched widths
		`{"response":"y","coefficients":[1],"columns":["(intercept)"],
		  "terms":[{"kind":99,"var":"x","names":["x"]}]}`, // unknown kind
		`{"response":"y","coefficients":[1,2],"columns":["(intercept)","x"],
		  "terms":[{"kind":1,"var":"x","knots":[3,2,1],"names":["x","x'1"]}]}`, // bad knots
		`{"response":"y","coefficients":[1,2,3],"columns":["(intercept)","x","z"],
		  "terms":[{"kind":0,"var":"x","names":["x"]}]}`, // width mismatch
	}
	for i, c := range cases {
		var m Model
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Fatalf("case %d: corrupt model accepted", i)
		}
	}
}

func TestModelJSONSplineKnotsPreserved(t *testing.T) {
	m, _ := fitReference(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	terms, ok := decoded["terms"].([]interface{})
	if !ok || len(terms) == 0 {
		t.Fatal("no terms serialized")
	}
	first := terms[0].(map[string]interface{})
	knots, ok := first["knots"].([]interface{})
	if !ok || len(knots) != 4 {
		t.Fatalf("spline knots not serialized: %v", first)
	}
}

func TestModelJSONSummaryAfterReload(t *testing.T) {
	m, _ := fitReference(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	// Significance requires the training design matrix, so a restored
	// model renders estimates only — but the headline diagnostics and
	// coefficient values must match.
	if restored.R2() != m.R2() || restored.NumCoefficients() != m.NumCoefficients() {
		t.Fatal("diagnostics differ after reload")
	}
	if _, err := restored.Significance(); err == nil {
		t.Fatal("restored model offered significance table")
	}
	if _, err := restored.ResidualDiagnostics(); err == nil {
		t.Fatal("restored model offered residual diagnostics")
	}
	if restored.Residuals() != nil || restored.Fitted() != nil {
		t.Fatal("restored model offered residuals")
	}
}
