package regression

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

// makeDataset builds a dataset from named columns.
func makeDataset(t *testing.T, n int, cols map[string][]float64) *Dataset {
	t.Helper()
	d := NewDataset(n)
	for _, name := range sortedKeys(cols) {
		d.AddColumn(name, cols[name])
	}
	return d
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion order must be deterministic for reproducible fits
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset(3)
	d.AddColumn("x", []float64{1, 2, 3})
	if !d.HasColumn("x") || d.HasColumn("y") {
		t.Fatal("HasColumn wrong")
	}
	if d.N() != 3 {
		t.Fatal("N wrong")
	}
	if cols := d.Columns(); len(cols) != 1 || cols[0] != "x" {
		t.Fatalf("Columns = %v", cols)
	}
}

func TestDatasetPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDataset(0) },
		func() {
			d := NewDataset(2)
			d.AddColumn("x", []float64{1})
		},
		func() {
			d := NewDataset(1)
			d.AddColumn("x", []float64{1})
			d.AddColumn("x", []float64{2})
		},
		func() { NewDataset(1).Column("missing") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTransforms(t *testing.T) {
	cases := []struct {
		tr   Transform
		y    float64
		want float64
	}{
		{Identity, 4, 4},
		{Sqrt, 4, 2},
		{Log, math.E, 1},
	}
	for _, c := range cases {
		if got := c.tr.Apply(c.y); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%v.Apply(%v) = %v", c.tr, c.y, got)
		}
		if got := c.tr.Inverse(c.tr.Apply(c.y)); math.Abs(got-c.y) > 1e-12 {
			t.Fatalf("%v round-trip failed", c.tr)
		}
	}
}

func TestTransformDomainPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Sqrt.Apply(-1) },
		func() { Log.Apply(0) },
		func() { Transform(99).Apply(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTransformString(t *testing.T) {
	if Identity.String() != "identity" || Sqrt.String() != "sqrt" || Log.String() != "log" {
		t.Fatal("transform names wrong")
	}
	if !strings.Contains(Transform(42).String(), "42") {
		t.Fatal("unknown transform name should include code")
	}
}

func TestFitRecoversLinearModel(t *testing.T) {
	// y = 3 + 2a - b, exactly.
	n := 50
	r := rng.New(5)
	a := make([]float64, n)
	bcol := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		bcol[i] = r.Float64() * 5
		y[i] = 3 + 2*a[i] - bcol[i]
	}
	d := makeDataset(t, n, map[string][]float64{"a": a, "b": bcol, "y": y})
	m, err := Fit(NewSpec("y", Identity).Linear("a").Linear("b"), d)
	if err != nil {
		t.Fatal(err)
	}
	_, beta := m.Coefficients()
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-9 {
			t.Fatalf("beta = %v, want %v", beta, want)
		}
	}
	if m.R2() < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", m.R2())
	}
}

func TestFitInteraction(t *testing.T) {
	// y = 1 + a + b + 0.5ab.
	n := 60
	r := rng.New(7)
	a := make([]float64, n)
	bcol := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 4
		bcol[i] = r.Float64() * 4
		y[i] = 1 + a[i] + bcol[i] + 0.5*a[i]*bcol[i]
	}
	d := makeDataset(t, n, map[string][]float64{"a": a, "b": bcol, "y": y})
	m, err := Fit(NewSpec("y", Identity).Linear("a").Linear("b").Interact("a", "b"), d)
	if err != nil {
		t.Fatal(err)
	}
	_, beta := m.Coefficients()
	if math.Abs(beta[3]-0.5) > 1e-9 {
		t.Fatalf("interaction coefficient = %v, want 0.5", beta[3])
	}
	// Predict at a fresh point.
	got := m.PredictMap(map[string]float64{"a": 2, "b": 3})
	want := 1.0 + 2 + 3 + 0.5*6
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}

func TestFitSplineCapturesNonlinearity(t *testing.T) {
	// A smooth nonlinear function: spline should fit far better than a
	// pure linear model.
	n := 200
	r := rng.New(11)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		y[i] = math.Sin(x[i]/2) + 0.3*x[i]
	}
	d := makeDataset(t, n, map[string][]float64{"x": x, "y": y})
	lin, err := Fit(NewSpec("y", Identity).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	spl, err := Fit(NewSpec("y", Identity).Spline("x", 5), d)
	if err != nil {
		t.Fatal(err)
	}
	if spl.R2() <= lin.R2() {
		t.Fatalf("spline R2 %v should beat linear R2 %v", spl.R2(), lin.R2())
	}
	if spl.R2() < 0.95 {
		t.Fatalf("spline R2 = %v, want > 0.95", spl.R2())
	}
}

func TestFitLogTransformForExponential(t *testing.T) {
	// y = exp(0.5x): log response makes the fit exact.
	n := 80
	r := rng.New(13)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 6
		y[i] = math.Exp(0.5 * x[i])
	}
	d := makeDataset(t, n, map[string][]float64{"x": x, "y": y})
	m, err := Fit(NewSpec("y", Log).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	_, beta := m.Coefficients()
	if math.Abs(beta[1]-0.5) > 1e-9 {
		t.Fatalf("slope on log scale = %v, want 0.5", beta[1])
	}
	got := m.PredictMap(map[string]float64{"x": 4})
	if math.Abs(got-math.Exp(2)) > 1e-6 {
		t.Fatalf("Predict = %v, want e^2", got)
	}
}

func TestFitSqrtTransform(t *testing.T) {
	// y = (1 + 2x)^2: sqrt response makes it linear.
	n := 50
	r := rng.New(17)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 3
		v := 1 + 2*x[i]
		y[i] = v * v
	}
	d := makeDataset(t, n, map[string][]float64{"x": x, "y": y})
	m, err := Fit(NewSpec("y", Sqrt).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	got := m.PredictMap(map[string]float64{"x": 1})
	if math.Abs(got-9) > 1e-8 {
		t.Fatalf("Predict = %v, want 9", got)
	}
}

func TestFitSplineDegradesWithFewLevels(t *testing.T) {
	// Predictor with only 2 levels: the spline term must degrade to
	// linear rather than fail.
	n := 40
	r := rng.New(19)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 2)
		y[i] = 2 + 3*x[i] + 0.01*r.NormFloat64()
	}
	d := makeDataset(t, n, map[string][]float64{"x": x, "y": y})
	m, err := Fit(NewSpec("y", Identity).Spline("x", 4), d)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCoefficients() != 2 {
		t.Fatalf("degraded spline should have 2 coefficients, got %d", m.NumCoefficients())
	}
}

func TestFitErrors(t *testing.T) {
	d := makeDataset(t, 5, map[string][]float64{
		"x": {1, 2, 3, 4, 5},
		"y": {1, 2, 3, 4, 5},
	})
	if _, err := Fit(NewSpec("missing", Identity).Linear("x"), d); err == nil {
		t.Fatal("missing response accepted")
	}
	if _, err := Fit(NewSpec("y", Identity).Linear("nope"), d); err == nil {
		t.Fatal("missing predictor accepted")
	}
	if _, err := Fit(NewSpec("y", Identity), d); err == nil {
		t.Fatal("empty spec accepted")
	}
	// Duplicate predictor columns -> rank deficiency.
	if _, err := Fit(NewSpec("y", Identity).Linear("x").Linear("x"), d); err == nil {
		t.Fatal("rank-deficient fit accepted")
	}
}

func TestFitTooFewObservations(t *testing.T) {
	d := makeDataset(t, 2, map[string][]float64{
		"a": {1, 2}, "b": {3, 5}, "c": {2, 8}, "y": {1, 2},
	})
	if _, err := Fit(NewSpec("y", Identity).Linear("a").Linear("b").Linear("c"), d); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestPredictors(t *testing.T) {
	d := makeDataset(t, 10, map[string][]float64{
		"a": seq(10, 1), "b": seq(10, 2), "y": seq(10, 3),
	})
	m, err := Fit(NewSpec("y", Identity).Linear("a").Interact("a", "b"), d)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predictors()
	if len(p) != 2 || p[0] != "a" || p[1] != "b" {
		t.Fatalf("Predictors = %v", p)
	}
	if m.Response() != "y" {
		t.Fatalf("Response = %q", m.Response())
	}
}

func TestPredictMapMissingPanics(t *testing.T) {
	d := makeDataset(t, 10, map[string][]float64{"x": seq(10, 1), "y": seq(10, 2)})
	m, err := Fit(NewSpec("y", Identity).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PredictMap with missing key did not panic")
		}
	}()
	m.PredictMap(map[string]float64{})
}

func TestSummaryContainsDiagnostics(t *testing.T) {
	d := makeDataset(t, 10, map[string][]float64{"x": seq(10, 1), "y": seq(10, 2)})
	m, err := Fit(NewSpec("y", Identity).Linear("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	for _, want := range []string{"response: y", "R2=", "(intercept)", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary missing %q:\n%s", want, s)
		}
	}
}

func seq(n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = scale * float64(i+1)
	}
	return out
}

// Property: in-sample residuals of a fitted model have ~zero mean on the
// transformed scale (intercept absorbs the mean).
func TestQuickResidualMeanZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 40
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = r.Float64() * 10
			y[i] = 5 + 2*x[i] + r.NormFloat64()
		}
		d := NewDataset(n)
		d.AddColumn("x", x)
		d.AddColumn("y", y)
		m, err := Fit(NewSpec("y", Identity).Linear("x"), d)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < n; i++ {
			xi := x[i]
			sum += y[i] - m.Predict(func(string) float64 { return xi })
		}
		return math.Abs(sum/float64(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: model predictions on training points track observations with
// R2 consistent with the reported diagnostic.
func TestQuickR2Bounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = r.Float64() * 10
			y[i] = 1 + x[i] + 0.5*r.NormFloat64()
		}
		d := NewDataset(n)
		d.AddColumn("x", x)
		d.AddColumn("y", y)
		m, err := Fit(NewSpec("y", Identity).Spline("x", 4), d)
		if err != nil {
			return false
		}
		return m.R2() >= 0 && m.R2() <= 1 && m.AdjR2() <= m.R2()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrorMetricIntegration(t *testing.T) {
	// End-to-end: fit on noisy nonlinear data, validate on held-out
	// points, compute the paper's |obs-pred|/pred median error.
	r := rng.New(23)
	gen := func(n int) (x1, x2, y []float64) {
		x1 = make([]float64, n)
		x2 = make([]float64, n)
		y = make([]float64, n)
		for i := 0; i < n; i++ {
			x1[i] = 1 + r.Float64()*9
			x2[i] = 1 + r.Float64()*4
			mean := math.Pow(2+0.8*x1[i]-0.05*x1[i]*x1[i]+0.3*x2[i]+0.1*x1[i]*x2[i], 2)
			y[i] = mean * (1 + 0.02*r.NormFloat64())
		}
		return
	}
	x1, x2, y := gen(300)
	d := NewDataset(300)
	d.AddColumn("x1", x1)
	d.AddColumn("x2", x2)
	d.AddColumn("y", y)
	m, err := Fit(NewSpec("y", Sqrt).Spline("x1", 4).Spline("x2", 3).Interact("x1", "x2"), d)
	if err != nil {
		t.Fatal(err)
	}
	vx1, vx2, vy := gen(100)
	errs := make([]float64, len(vy))
	for i := range vy {
		pred := m.PredictMap(map[string]float64{"x1": vx1[i], "x2": vx2[i]})
		errs[i] = stats.RelErr(vy[i], pred)
	}
	med := stats.Median(errs)
	if med > 0.05 {
		t.Fatalf("median validation error = %v, want < 5%%", med)
	}
}

func BenchmarkFit1000x30(b *testing.B) {
	r := rng.New(1)
	n := 1000
	d := NewDataset(n)
	cols := []string{"a", "b", "c", "d", "e", "f", "g"}
	vals := make(map[string][]float64)
	for _, c := range cols {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64() * 10
		}
		vals[c] = v
		d.AddColumn(c, v)
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 1 + vals["a"][i] + 0.5*vals["b"][i]*vals["c"][i] + r.NormFloat64()
	}
	d.AddColumn("y", y)
	spec := NewSpec("y", Sqrt)
	for _, c := range cols {
		spec.Spline(c, 4)
	}
	spec.Interact("a", "b").Interact("c", "d")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(spec, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	n := 500
	d := NewDataset(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * 10
		y[i] = 1 + x[i]*x[i]
	}
	d.AddColumn("x", x)
	d.AddColumn("y", y)
	m, err := Fit(NewSpec("y", Sqrt).Spline("x", 4), d)
	if err != nil {
		b.Fatal(err)
	}
	get := func(string) float64 { return 5.0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(get)
	}
}
