package stats

import (
	"fmt"
	"math"
)

// This file implements the distribution functions needed for regression
// significance testing (the paper's methodology inherits "significance
// testing" from the authors' ASPLOS'06 derivation): the regularized
// incomplete beta function and, on top of it, Student's t and the F
// distribution.

// BetaInc returns the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Numerical Recipes
// betacf). It panics for a, b <= 0 or x outside [0, 1].
func BetaInc(a, b, x float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("stats: BetaInc with non-positive shape a=%v b=%v", a, b))
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: BetaInc with x=%v outside [0,1]", x))
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the symmetry relation for faster convergence.
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	// Convergence failure is a caller bug (extreme shapes); the partial
	// sum is still the best available estimate.
	return h
}

// StudentTPValue returns the two-sided p-value of a t statistic with df
// degrees of freedom: P(|T| >= |t|). It panics for df <= 0.
func StudentTPValue(t, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: StudentTPValue with df=%v", df))
	}
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return BetaInc(df/2, 0.5, x)
}

// FPValue returns the upper-tail p-value of an F statistic with (df1,
// df2) degrees of freedom: P(F >= f). It panics for non-positive degrees
// of freedom and returns 1 for f <= 0.
func FPValue(f, df1, df2 float64) float64 {
	if df1 <= 0 || df2 <= 0 {
		panic(fmt.Sprintf("stats: FPValue with df1=%v df2=%v", df1, df2))
	}
	if f <= 0 {
		return 1
	}
	x := df2 / (df2 + df1*f)
	return BetaInc(df2/2, df1/2, x)
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Skewness returns the sample skewness (biased, moment-based). It panics
// for fewer than two observations or zero variance data.
func Skewness(data []float64) float64 {
	if len(data) < 2 {
		panic("stats: Skewness needs at least two observations")
	}
	mean := Mean(data)
	var m2, m3 float64
	for _, v := range data {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(data))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		panic("stats: Skewness of constant data")
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (biased, moment-based):
// zero for a normal distribution.
func Kurtosis(data []float64) float64 {
	if len(data) < 2 {
		panic("stats: Kurtosis needs at least two observations")
	}
	mean := Mean(data)
	var m2, m4 float64
	for _, v := range data {
		d := v - mean
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(data))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		panic("stats: Kurtosis of constant data")
	}
	return m4/(m2*m2) - 3
}
