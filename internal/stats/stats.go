// Package stats provides the descriptive statistics used throughout the
// design-space studies: quantiles, boxplot summaries (the paper reports most
// error distributions as boxplots), correlation coefficients, histograms,
// and the relative-error metric |obs - pred| / pred used in model validation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the p-quantile (0 <= p <= 1) of the data using linear
// interpolation between order statistics (R's default "type 7" definition,
// which is also what the Hmisc utilities the paper relies on use by
// default). The input need not be sorted. Quantile panics on empty data or
// p outside [0, 1].
func Quantile(data []float64, p float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Quantile probability %v out of [0,1]", p))
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantileSorted is like Quantile but requires data to be sorted ascending,
// avoiding the copy. It panics if the data is empty.
func QuantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: QuantileSorted of empty data")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: QuantileSorted probability %v out of [0,1]", p))
	}
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles evaluates multiple probabilities with a single sort.
func Quantiles(data []float64, ps ...float64) []float64 {
	if len(data) == 0 {
		panic("stats: Quantiles of empty data")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = QuantileSorted(sorted, p)
	}
	return out
}

// Median returns the 0.5 quantile.
func Median(data []float64) float64 { return Quantile(data, 0.5) }

// Mean returns the arithmetic mean. It panics on empty data.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: Mean of empty data")
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data))
}

// GeoMean returns the geometric mean of strictly positive data. The paper's
// benchmark-suite averages of multiplicative ratios (relative efficiencies)
// are aggregated geometrically.
func GeoMean(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: GeoMean of empty data")
	}
	var sum float64
	for _, v := range data {
		if v <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(data)))
}

// Variance returns the unbiased (n-1 denominator) sample variance.
// It panics if fewer than two observations are supplied.
func Variance(data []float64) float64 {
	if len(data) < 2 {
		panic("stats: Variance needs at least two observations")
	}
	mean := Mean(data)
	var ss float64
	for _, v := range data {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(data)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(data []float64) float64 { return math.Sqrt(Variance(data)) }

// Min returns the smallest element. It panics on empty data.
func Min(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: Min of empty data")
	}
	m := data[0]
	for _, v := range data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. It panics on empty data.
func Max(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: Max of empty data")
	}
	m := data[0]
	for _, v := range data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Boxplot summarizes a distribution the way the paper's figures do:
// median and quartiles, whiskers extending to the most extreme points
// within 1.5 IQR of the quartiles, and everything beyond flagged as an
// outlier.
type Boxplot struct {
	N            int
	Min, Max     float64 // extremes of the data, outliers included
	Q1, Med, Q3  float64
	LoWhisker    float64 // smallest point >= Q1 - 1.5*IQR
	HiWhisker    float64 // largest point <= Q3 + 1.5*IQR
	Outliers     []float64
	Mean, StdDev float64
}

// IQR returns the interquartile range Q3 - Q1.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// NewBoxplot computes the five-number-plus-outliers summary. It panics on
// empty data.
func NewBoxplot(data []float64) Boxplot {
	if len(data) == 0 {
		panic("stats: NewBoxplot of empty data")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	b := Boxplot{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Q1:   QuantileSorted(sorted, 0.25),
		Med:  QuantileSorted(sorted, 0.50),
		Q3:   QuantileSorted(sorted, 0.75),
		Mean: Mean(sorted),
	}
	if len(sorted) > 1 {
		b.StdDev = StdDev(sorted)
	}
	iqr := b.IQR()
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisker = b.Max
	b.HiWhisker = b.Min
	for _, v := range sorted {
		if v >= loFence && v < b.LoWhisker {
			b.LoWhisker = v
		}
		if v <= hiFence && v > b.HiWhisker {
			b.HiWhisker = v
		}
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}

// Pearson returns the Pearson product-moment correlation between x and y.
// It panics if the lengths differ or fewer than two pairs are supplied, and
// returns NaN if either variable is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) < 2 {
		panic("stats: Pearson needs at least two pairs")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation, i.e. the Pearson
// correlation of the mid-ranks. Ties receive averaged ranks.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns 1-based mid-ranks of the data, averaging ties.
func Ranks(data []float64) []float64 {
	n := len(data)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return data[idx[a]] < data[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && data[idx[j+1]] == data[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// CorrMatrix returns the matrix of pairwise Pearson correlations between
// the given equal-length columns. Entry [i][j] is the correlation of
// columns i and j; the diagonal is 1. Constant columns yield NaN entries.
func CorrMatrix(cols [][]float64) [][]float64 {
	n := len(cols)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := Pearson(cols[i], cols[j])
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out
}

// RelErr returns the paper's prediction-error metric |obs - pred| / pred.
// The denominator is the prediction, matching Section 3.4. It panics if
// pred is zero.
func RelErr(obs, pred float64) float64 {
	if pred == 0 {
		panic("stats: RelErr with zero prediction")
	}
	return math.Abs(obs-pred) / math.Abs(pred)
}

// SignedRelErr returns (pred - obs) / obs, the signed error used in the
// paper's Table 2 (negative means the model under-predicts).
func SignedRelErr(obs, pred float64) float64 {
	if obs == 0 {
		panic("stats: SignedRelErr with zero observation")
	}
	return (pred - obs) / obs
}

// RelErrs computes RelErr element-wise over two parallel slices.
func RelErrs(obs, pred []float64) []float64 {
	if len(obs) != len(pred) {
		panic("stats: RelErrs length mismatch")
	}
	out := make([]float64, len(obs))
	for i := range obs {
		out[i] = RelErr(obs[i], pred[i])
	}
	return out
}

// Histogram counts data into nbins equal-width bins spanning [min, max].
// Values exactly at max land in the last bin. It panics if nbins < 1 or
// min >= max.
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of the data.
func NewHistogram(data []float64, nbins int, min, max float64) Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram with nbins < 1")
	}
	if min >= max {
		panic("stats: NewHistogram with min >= max")
	}
	h := Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	width := (max - min) / float64(nbins)
	for _, v := range data {
		if v < min || v > max {
			continue
		}
		bin := int((v - min) / width)
		if bin >= nbins {
			bin = nbins - 1
		}
		h.Counts[bin]++
	}
	return h
}

// Total returns the number of values counted into the histogram.
func (h Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Summary holds a compact numeric description of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Q1, Med float64
	Q3, Max      float64
}

// Summarize computes a Summary. It panics on empty data.
func Summarize(data []float64) Summary {
	b := NewBoxplot(data)
	return Summary{
		N: b.N, Mean: b.Mean, StdDev: b.StdDev,
		Min: b.Min, Q1: b.Q1, Med: b.Med, Q3: b.Q3, Max: b.Max,
	}
}

// Normalize rescales data to [0, 1] by min/max. A constant slice maps to
// all zeros. The result is a fresh slice.
func Normalize(data []float64) []float64 {
	if len(data) == 0 {
		return nil
	}
	lo, hi := Min(data), Max(data)
	out := make([]float64, len(data))
	if hi == lo {
		return out
	}
	for i, v := range data {
		out[i] = (v - lo) / (hi - lo)
	}
	return out
}
