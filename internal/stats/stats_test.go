package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestQuantileKnownValues(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(data, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if got := Quantile(data, 0.5); got != 3 {
		t.Fatalf("median of shuffled = %v, want 3", got)
	}
	// Input must not be mutated.
	if data[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		if got := Quantile([]float64{7}, p); got != 7 {
			t.Fatalf("Quantile single element p=%v = %v", p, got)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Quantile([]float64{1}, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	data := []float64{9, 3, 7, 1, 5, 2}
	ps := []float64{0.05, 0.35, 0.65, 0.95}
	got := Quantiles(data, ps...)
	for i, p := range ps {
		if want := Quantile(data, p); got[i] != want {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestMeanMedian(t *testing.T) {
	data := []float64{2, 4, 6, 8}
	if got := Mean(data); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(data); got != 5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestVarianceStdDev(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(data); !almostEqual(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(data); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	data := []float64{3, -1, 4, 1, 5}
	if Min(data) != -1 || Max(data) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(data), Max(data))
	}
}

func TestBoxplotNoOutliers(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxplot(data)
	if b.Med != 5 || b.Q1 != 3 || b.Q3 != 7 {
		t.Fatalf("quartiles = %v/%v/%v", b.Q1, b.Med, b.Q3)
	}
	if b.LoWhisker != 1 || b.HiWhisker != 9 {
		t.Fatalf("whiskers = %v/%v", b.LoWhisker, b.HiWhisker)
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("unexpected outliers %v", b.Outliers)
	}
}

func TestBoxplotOutliers(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxplot(data)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.HiWhisker == 100 {
		t.Fatal("whisker extended to outlier")
	}
	if b.Max != 100 {
		t.Fatalf("Max = %v, want 100 (extremes include outliers)", b.Max)
	}
}

func TestBoxplotWhiskerWithinFence(t *testing.T) {
	data := []float64{10, 10, 10, 10, 10, 10, 50}
	b := NewBoxplot(data)
	// IQR is 0 so whiskers collapse to the quartiles; 50 is an outlier.
	if b.LoWhisker != 10 || b.HiWhisker != 10 {
		t.Fatalf("whiskers = %v/%v, want 10/10", b.LoWhisker, b.HiWhisker)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 50 {
		t.Fatalf("Outliers = %v", b.Outliers)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yneg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsNaN(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Fatalf("Pearson of constant = %v, want NaN", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if got := Spearman(x, y); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	data := []float64{10, 20, 20, 30}
	want := []float64{1, 2.5, 2.5, 4}
	got := Ranks(data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("RelErr = %v, want 0.1", got)
	}
	if got := RelErr(90, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("RelErr = %v, want 0.1", got)
	}
}

func TestSignedRelErr(t *testing.T) {
	if got := SignedRelErr(100, 95); !almostEqual(got, -0.05, 1e-12) {
		t.Fatalf("SignedRelErr = %v, want -0.05", got)
	}
}

func TestRelErrsParallel(t *testing.T) {
	got := RelErrs([]float64{2, 4}, []float64{1, 8})
	if !almostEqual(got[0], 1, 1e-12) || !almostEqual(got[1], 0.5, 1e-12) {
		t.Fatalf("RelErrs = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 1.5, 2, 9, 10, -5, 11}, 5, 0, 10)
	if h.Total() != 7 { // -5 and 11 fall outside
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if h.Counts[0] != 4 { // 0, 0.5, 1, 1.5 in [0,2)
		t.Fatalf("bin 0 = %d, want 4", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and the boundary value 10
		t.Fatalf("bin 4 = %d, want 2", h.Counts[4])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Med != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	constant := Normalize([]float64{3, 3})
	if constant[0] != 0 || constant[1] != 0 {
		t.Fatalf("Normalize constant = %v, want zeros", constant)
	}
	if Normalize(nil) != nil {
		t.Fatal("Normalize(nil) should be nil")
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		clamp := func(p float64) float64 {
			p = math.Abs(math.Mod(p, 1))
			if math.IsNaN(p) {
				return 0.5
			}
			return p
		}
		a, b := clamp(p1), clamp(p2)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(data, a), Quantile(data, b)
		return qa <= qb && qa >= Min(data) && qb <= Max(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: boxplot invariants Q1 <= Med <= Q3, whiskers inside extremes,
// count of outliers plus in-fence points equals N.
func TestQuickBoxplotInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		b := NewBoxplot(data)
		if !(b.Q1 <= b.Med && b.Med <= b.Q3) {
			return false
		}
		if b.LoWhisker < b.Min || b.HiWhisker > b.Max {
			return false
		}
		return b.N == len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Ranks is a permutation-invariant relabeling summing to n(n+1)/2.
func TestQuickRanksSum(t *testing.T) {
	f := func(raw []float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				data = append(data, v)
			}
		}
		n := len(data)
		r := Ranks(data)
		var sum float64
		for _, v := range r {
			sum += v
		}
		return almostEqual(sum, float64(n*(n+1))/2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize output is always within [0,1].
func TestQuickNormalizeRange(t *testing.T) {
	f := func(raw []float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		for _, v := range Normalize(data) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAgainstSortReference(t *testing.T) {
	// Cross-check the interpolated quantile against a direct definition on
	// a larger sample.
	data := make([]float64, 101)
	for i := range data {
		data[i] = float64(i) // 0..100
	}
	// With n=101 type-7 quantiles are exact at percentiles.
	for p := 0.0; p <= 1.0; p += 0.05 {
		want := p * 100
		if got := Quantile(data, p); !almostEqual(got, want, 1e-9) {
			t.Fatalf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	// And the data must remain sorted/unchanged.
	if !sort.Float64sAreSorted(data) {
		t.Fatal("input mutated")
	}
}

func TestCorrMatrix(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8} // perfectly correlated with x
	z := []float64{4, 3, 2, 1} // perfectly anti-correlated
	m := CorrMatrix([][]float64{x, y, z})
	if m[0][0] != 1 || m[1][1] != 1 || m[2][2] != 1 {
		t.Fatal("diagonal must be 1")
	}
	if !almostEqual(m[0][1], 1, 1e-12) || !almostEqual(m[1][0], 1, 1e-12) {
		t.Fatalf("corr(x,y) = %v", m[0][1])
	}
	if !almostEqual(m[0][2], -1, 1e-12) {
		t.Fatalf("corr(x,z) = %v", m[0][2])
	}
	if m[0][1] != m[1][0] || m[0][2] != m[2][0] {
		t.Fatal("matrix not symmetric")
	}
}
