package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBetaIncBoundaries(t *testing.T) {
	if BetaInc(2, 3, 0) != 0 {
		t.Fatal("I_0 should be 0")
	}
	if BetaInc(2, 3, 1) != 1 {
		t.Fatal("I_1 should be 1")
	}
}

func TestBetaIncSymmetricCase(t *testing.T) {
	// I_x(1, 1) is the uniform CDF: x itself.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := BetaInc(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		lhs := BetaInc(2.5, 4, x)
		rhs := 1 - BetaInc(4, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Fatalf("symmetry violated at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestBetaIncKnownValue(t *testing.T) {
	// I_0.5(2, 2) = 0.5 by symmetry; I_x(1, 2) = 1-(1-x)^2.
	if got := BetaInc(2, 2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("I_0.5(2,2) = %v", got)
	}
	x := 0.3
	want := 1 - (1-x)*(1-x)
	if got := BetaInc(1, 2, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("I_0.3(1,2) = %v, want %v", got, want)
	}
}

func TestBetaIncPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BetaInc(0, 1, 0.5) },
		func() { BetaInc(1, -1, 0.5) },
		func() { BetaInc(1, 1, -0.1) },
		func() { BetaInc(1, 1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStudentTPValueKnownValues(t *testing.T) {
	// With df=1 (Cauchy), t=1 gives p = 0.5.
	if got := StudentTPValue(1, 1); math.Abs(got-0.5) > 1e-10 {
		t.Fatalf("p(t=1, df=1) = %v, want 0.5", got)
	}
	// t=0 is always p=1.
	if got := StudentTPValue(0, 10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("p(t=0) = %v", got)
	}
	// Large t: essentially zero.
	if got := StudentTPValue(50, 20); got > 1e-10 {
		t.Fatalf("p(t=50, df=20) = %v", got)
	}
	// Classic critical value: t=2.086, df=20 -> p ~ 0.05.
	if got := StudentTPValue(2.086, 20); math.Abs(got-0.05) > 0.002 {
		t.Fatalf("p(2.086, 20) = %v, want ~0.05", got)
	}
	if got := StudentTPValue(math.Inf(1), 5); got != 0 {
		t.Fatalf("p(inf) = %v", got)
	}
}

func TestStudentTSymmetric(t *testing.T) {
	for _, tv := range []float64{0.5, 1.3, 2.7} {
		if StudentTPValue(tv, 7) != StudentTPValue(-tv, 7) {
			t.Fatal("two-sided p-value not symmetric")
		}
	}
}

func TestFPValueKnownValues(t *testing.T) {
	// F(1,1): P(F >= 1) = 0.5.
	if got := FPValue(1, 1, 1); math.Abs(got-0.5) > 1e-10 {
		t.Fatalf("P(F>=1; 1,1) = %v", got)
	}
	// Critical value: F(0.95; 3, 10) ~ 3.708.
	if got := FPValue(3.708, 3, 10); math.Abs(got-0.05) > 0.002 {
		t.Fatalf("P(F>=3.708; 3,10) = %v, want ~0.05", got)
	}
	if FPValue(0, 2, 5) != 1 || FPValue(-2, 2, 5) != 1 {
		t.Fatal("non-positive F should give p=1")
	}
}

func TestFTSquaredEquivalence(t *testing.T) {
	// For one numerator df, F = t^2 and the p-values coincide.
	tval, df := 2.3, 14.0
	pt := StudentTPValue(tval, df)
	pf := FPValue(tval*tval, 1, df)
	if math.Abs(pt-pf) > 1e-10 {
		t.Fatalf("t/F equivalence violated: %v vs %v", pt, pf)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Fatalf("Phi(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	symmetric := []float64{-2, -1, 0, 1, 2}
	if got := Skewness(symmetric); math.Abs(got) > 1e-12 {
		t.Fatalf("skewness of symmetric data = %v", got)
	}
	rightSkewed := []float64{1, 1, 1, 1, 10}
	if Skewness(rightSkewed) <= 0 {
		t.Fatal("right-skewed data should have positive skewness")
	}
	// Uniform-ish data has negative excess kurtosis.
	if Kurtosis(symmetric) >= 0 {
		t.Fatalf("kurtosis of short-tailed data = %v", Kurtosis(symmetric))
	}
	heavy := []float64{-10, -0.1, -0.05, 0, 0.05, 0.1, 10}
	if Kurtosis(heavy) <= 0 {
		t.Fatal("heavy-tailed data should have positive excess kurtosis")
	}
}

func TestMomentPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Skewness([]float64{1}) },
		func() { Skewness([]float64{2, 2, 2}) },
		func() { Kurtosis([]float64{1}) },
		func() { Kurtosis([]float64{3, 3}) },
		func() { StudentTPValue(1, 0) },
		func() { FPValue(1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: BetaInc is monotone in x and bounded in [0,1].
func TestQuickBetaIncMonotone(t *testing.T) {
	f := func(aRaw, bRaw, x1Raw, x2Raw uint16) bool {
		a := 0.5 + float64(aRaw%80)/10
		b := 0.5 + float64(bRaw%80)/10
		x1 := float64(x1Raw) / 65535
		x2 := float64(x2Raw) / 65535
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1 := BetaInc(a, b, x1)
		p2 := BetaInc(a, b, x2)
		return p1 >= -1e-12 && p2 <= 1+1e-12 && p1 <= p2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: p-values are in [0,1] and decrease as |t| grows.
func TestQuickTPValueMonotone(t *testing.T) {
	f := func(tRaw, dfRaw uint16) bool {
		tv := float64(tRaw%1000) / 100
		df := 1 + float64(dfRaw%60)
		p1 := StudentTPValue(tv, df)
		p2 := StudentTPValue(tv+0.5, df)
		return p1 >= 0 && p1 <= 1 && p2 <= p1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
