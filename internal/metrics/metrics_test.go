package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDelayRoundTrip(t *testing.T) {
	for _, bips := range []float64{0.1, 1, 2.5} {
		d := Delay(bips)
		if got := BIPSFromDelay(d); math.Abs(got-bips) > 1e-12 {
			t.Fatalf("round trip %v -> %v -> %v", bips, d, got)
		}
	}
}

func TestDelayKnownValue(t *testing.T) {
	// 1 bips executes 100M instructions in 0.1 s.
	if got := Delay(1); math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("Delay(1) = %v, want 0.1", got)
	}
}

func TestBIPS3W(t *testing.T) {
	if got := BIPS3W(2, 4); got != 2 {
		t.Fatalf("BIPS3W(2,4) = %v, want 2", got)
	}
}

func TestRelativeEfficiency(t *testing.T) {
	// Doubling bips at equal power is 8x efficiency.
	if got := RelativeEfficiency(2, 10, 1, 10); math.Abs(got-8) > 1e-12 {
		t.Fatalf("RelativeEfficiency = %v, want 8", got)
	}
	// Halving power at equal bips is 2x.
	if got := RelativeEfficiency(1, 5, 1, 10); math.Abs(got-2) > 1e-12 {
		t.Fatalf("RelativeEfficiency = %v, want 2", got)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Delay(0) },
		func() { Delay(-1) },
		func() { BIPSFromDelay(0) },
		func() { BIPS3W(0, 1) },
		func() { BIPS3W(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: BIPS3W is voltage-scaling invariant in spirit — scaling bips
// by s and watts by s^3 leaves the metric unchanged.
func TestQuickVoltageInvariance(t *testing.T) {
	f := func(bipsRaw, wattsRaw, sRaw uint16) bool {
		bips := 0.1 + float64(bipsRaw)/1000
		watts := 1 + float64(wattsRaw)/100
		s := 0.5 + float64(sRaw)/65535
		a := BIPS3W(bips, watts)
		b := BIPS3W(bips*s, watts*s*s*s)
		return math.Abs(a-b)/a < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delay is strictly decreasing in bips.
func TestQuickDelayMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := 0.01 + float64(aRaw)/1000
		b := a + 0.01 + float64(bRaw)/1000
		return Delay(b) < Delay(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
