// Package metrics defines the power-performance metrics of the paper:
// bips (billions of instructions per second), delay (execution time), and
// bips^3/w, the voltage-invariant efficiency metric the studies optimize
// (the inverse energy-delay-squared product).
package metrics

import "fmt"

// TraceInstructions is the nominal workload length the paper's delay
// numbers refer to: 100 million instructions per benchmark trace.
const TraceInstructions = 100e6

// Delay converts throughput in bips to seconds for the nominal
// 100M-instruction workload. It panics on non-positive bips.
func Delay(bips float64) float64 {
	if bips <= 0 {
		panic(fmt.Sprintf("metrics: non-positive bips %v", bips))
	}
	return TraceInstructions / (bips * 1e9)
}

// BIPSFromDelay inverts Delay.
func BIPSFromDelay(delaySeconds float64) float64 {
	if delaySeconds <= 0 {
		panic(fmt.Sprintf("metrics: non-positive delay %v", delaySeconds))
	}
	return TraceInstructions / (delaySeconds * 1e9)
}

// BIPS3W returns bips^3 / watts, the paper's efficiency metric. Cubing
// performance reflects the cubic relationship between power and voltage:
// the metric is invariant under voltage/frequency scaling. It panics on
// non-positive inputs.
func BIPS3W(bips, watts float64) float64 {
	if bips <= 0 || watts <= 0 {
		panic(fmt.Sprintf("metrics: non-positive inputs bips=%v watts=%v", bips, watts))
	}
	return bips * bips * bips / watts
}

// RelativeEfficiency returns the ratio of a design's bips^3/w to a
// reference design's, the unit of the paper's Figures 5, 6 and 9.
func RelativeEfficiency(bips, watts, refBIPS, refWatts float64) float64 {
	return BIPS3W(bips, watts) / BIPS3W(refBIPS, refWatts)
}
