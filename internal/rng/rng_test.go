package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values out of 100", same)
	}
}

func TestNewFromStringStable(t *testing.T) {
	a := NewFromString("mcf")
	b := NewFromString("mcf")
	c := NewFromString("gzip")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same name produced different streams")
	}
	a2 := NewFromString("mcf")
	if a2.Uint64() == c.Uint64() {
		t.Fatal("different names produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn bucket %d has count %d, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	p := 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestExponentialMean(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(4)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestDiscreteRespectsWeights(t *testing.T) {
	r := New(37)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Discrete(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight outcome sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, weights := range [][]float64{{-1, 2}, {0, 0}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Discrete(%v) did not panic", weights)
				}
			}()
			New(1).Discrete(weights)
		}()
	}
}

func TestTableMatchesDiscrete(t *testing.T) {
	weights := []float64{2, 5, 1, 8}
	tab := NewTable(weights)
	r := New(41)
	counts := make([]int, len(weights))
	const n = 160000
	for i := 0; i < n; i++ {
		idx := tab.Sample(r)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("Table.Sample out of range: %d", idx)
		}
		counts[idx]++
	}
	total := 16.0
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestTableLen(t *testing.T) {
	if got := NewTable([]float64{1, 2, 3}).Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// Property: Float64 is always in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 32; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always returns a valid permutation.
func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := New(seed).Perm(size)
		seen := make(map[int]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same string seed yields identical streams.
func TestQuickStringSeedStable(t *testing.T) {
	f := func(name string) bool {
		a := NewFromString(name)
		b := NewFromString(name)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkTableSample(b *testing.B) {
	tab := NewTable([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Sample(r)
	}
}
