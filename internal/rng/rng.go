// Package rng provides a small, deterministic pseudo-random number
// generator and the sampling distributions used throughout the repository.
//
// Every stochastic component in this project — workload synthesis, design
// space sampling, k-means seeding — draws from this package rather than
// math/rand so that results are bit-reproducible across Go releases and
// across machines. The generator is xoshiro256**, seeded via SplitMix64,
// which is the combination recommended by the algorithm's authors.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New or NewFromString.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// produce statistically independent streams.
func New(seed uint64) *Source {
	// SplitMix64 expansion of the seed into the 256-bit state, per
	// Blackman & Vigna's reference implementation.
	var src Source
	x := seed
	for i := range src.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// NewFromString returns a Source seeded from an arbitrary string, typically
// a benchmark or experiment name. The seed is an FNV-1a hash of the string,
// so the same name always yields the same stream.
func NewFromString(name string) *Source {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	// Use the top 53 bits for a uniform double, the standard construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but a
	// plain modulo of a 64-bit value has negligible bias for the small n
	// used here and keeps the stream layout simple.
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It consumes a variable number of stream values.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a lognormal variate with the given location mu and
// scale sigma of the underlying normal.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Geometric returns a geometric variate counting the number of failures
// before the first success with success probability p in (0, 1]. The mean
// is (1-p)/p.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric probability out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)).
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Exponential returns an exponential variate with the given mean.
func (r *Source) Exponential(mean float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n), Fisher-Yates shuffled.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Discrete samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; Discrete panics otherwise. For repeated sampling from the same
// weights, build a Table instead.
func (r *Source) Discrete(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Discrete with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Discrete with non-positive weight sum")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Table is a precomputed cumulative-distribution table for fast repeated
// discrete sampling.
type Table struct {
	cdf []float64
}

// NewTable builds a sampling table from non-negative weights.
func NewTable(weights []float64) *Table {
	cdf := make([]float64, len(weights))
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewTable with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: NewTable with non-positive weight sum")
	}
	var acc float64
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1 // guard against rounding
	return &Table{cdf: cdf}
}

// Sample draws an index from the table using the given source.
func (t *Table) Sample(r *Source) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(t.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of outcomes in the table.
func (t *Table) Len() int { return len(t.cdf) }
