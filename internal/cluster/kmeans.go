// Package cluster implements K-means clustering over normalized, weighted
// parameter vectors, as used by the paper's multiprocessor heterogeneity
// analysis (Section 6): per-benchmark optimal architectures are clustered
// in the p-dimensional design-parameter space and each centroid becomes a
// "compromise architecture".
package cluster

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Result holds the outcome of a K-means run.
type Result struct {
	// Centroids are the K cluster centers in the (normalized, weighted)
	// clustering space.
	Centroids [][]float64
	// Assign maps each input point index to its cluster index.
	Assign []int
	// WithinSS is the total within-cluster sum of squared distances,
	// the objective K-means minimizes.
	WithinSS float64
	// Iterations is the number of Lloyd iterations until convergence.
	Iterations int
}

// Members returns the indices of points assigned to cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Options configures KMeans.
type Options struct {
	// Weights scales each dimension before distance computation; nil
	// means all ones. The paper clusters "normalized and weighted vectors
	// of parameter values".
	Weights []float64
	// Normalize min/max-rescales each dimension to [0, 1] before
	// weighting, so parameters with large raw ranges (register counts)
	// do not dominate small ones (cache size indices).
	Normalize bool
	// MaxIter bounds Lloyd iterations; 0 means a default of 100.
	MaxIter int
	// Restarts runs k-means++ with this many seedings and keeps the best
	// objective; 0 means a default of 8.
	Restarts int
	// Seed makes the run deterministic; the same seed and inputs always
	// produce the same clustering.
	Seed uint64
}

// KMeans partitions points into k clusters using Lloyd's algorithm with
// k-means++ seeding. points must be non-empty rows of equal dimension and
// 1 <= k <= len(points). Returned centroids are reported in the original
// (unnormalized, unweighted) space.
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1, %d]", k, n)
	}
	if opts.Weights != nil && len(opts.Weights) != dim {
		return nil, fmt.Errorf("cluster: %d weights for dimension %d", len(opts.Weights), dim)
	}

	// Build the clustering space: normalize then weight.
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points {
		for d, v := range p {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	space := make([][]float64, n)
	for i, p := range points {
		row := make([]float64, dim)
		for d, v := range p {
			x := v
			if opts.Normalize {
				if hi[d] > lo[d] {
					x = (v - lo[d]) / (hi[d] - lo[d])
				} else {
					x = 0
				}
			}
			if opts.Weights != nil {
				x *= opts.Weights[d]
			}
			row[d] = x
		}
		space[i] = row
	}

	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	r := rng.New(opts.Seed ^ 0x6b6d65616e73) // fold in a fixed tag

	var best *Result
	for attempt := 0; attempt < restarts; attempt++ {
		res := lloyd(space, k, maxIter, r)
		if best == nil || res.WithinSS < best.WithinSS {
			best = res
		}
	}

	// Map centroids back to the original space: the centroid of a cluster
	// in the original coordinates is the mean of its members there.
	orig := make([][]float64, k)
	for c := 0; c < k; c++ {
		orig[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, a := range best.Assign {
		counts[a]++
		for d, v := range points[i] {
			orig[a][d] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue // empty clusters keep zero centroids; callers see no members
		}
		for d := range orig[c] {
			orig[c][d] /= float64(counts[c])
		}
	}
	best.Centroids = orig
	return best, nil
}

// lloyd runs one seeded K-means pass in the prepared space.
func lloyd(space [][]float64, k, maxIter int, r *rng.Source) *Result {
	n := len(space)
	dim := len(space[0])
	centers := seedPlusPlus(space, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var iters int
	for iters = 1; iters <= maxIter; iters++ {
		changed := false
		// Assignment step.
		for i, p := range space {
			bestC, bestD := 0, math.Inf(1)
			for c := range centers {
				d := sqDist(p, centers[c])
				if d < bestD {
					bestD, bestC = d, c
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed {
			break
		}
		// Update step.
		for c := range centers {
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		counts := make([]int, k)
		for i, a := range assign {
			counts[a]++
			for d, v := range space[i] {
				centers[a][d] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its current center to avoid losing a cluster.
				far, farD := 0, -1.0
				for i, p := range space {
					d := sqDist(p, centers[assign[i]])
					if d > farD {
						farD, far = d, i
					}
				}
				copy(centers[c], space[far])
				continue
			}
			for d := range centers[c] {
				centers[c][d] /= float64(counts[c])
			}
		}
		_ = dim
	}
	var wss float64
	for i, a := range assign {
		wss += sqDist(space[i], centers[a])
	}
	return &Result{Assign: assign, WithinSS: wss, Iterations: iters}
}

// seedPlusPlus picks k initial centers with the k-means++ strategy:
// the first uniformly, the rest proportional to squared distance from the
// nearest chosen center.
func seedPlusPlus(space [][]float64, k int, r *rng.Source) [][]float64 {
	n := len(space)
	centers := make([][]float64, 0, k)
	first := r.Intn(n)
	centers = append(centers, append([]float64(nil), space[first]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range space {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			// All points coincide with existing centers; pick uniformly.
			idx = r.Intn(n)
		} else {
			u := r.Float64() * total
			var acc float64
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if u < acc {
					idx = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), space[idx]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b-a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b the smallest mean distance to another
// cluster. Values near 1 indicate compact, well-separated clusters;
// values near 0 indicate overlapping ones. Points in singleton clusters
// contribute 0 by convention. It returns an error unless 2 <= k and every
// assignment is within range.
func Silhouette(points [][]float64, assign []int, k int) (float64, error) {
	n := len(points)
	if n == 0 || len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d points", len(assign), n)
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs k >= 2, have %d", k)
	}
	counts := make([]int, k)
	for _, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d out of [0,%d)", a, k)
		}
		counts[a]++
	}
	var total float64
	dist := func(i, j int) float64 { return math.Sqrt(sqDist(points[i], points[j])) }
	for i := 0; i < n; i++ {
		own := assign[i]
		if counts[own] <= 1 {
			continue // singleton: contributes 0
		}
		// Mean distance per cluster.
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assign[j]] += dist(i, j)
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // no other non-empty cluster
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n), nil
}
