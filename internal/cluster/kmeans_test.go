package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// threeBlobs returns points in three well-separated groups.
func threeBlobs() ([][]float64, []int) {
	r := rng.New(77)
	var points [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for c, ctr := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				ctr[0] + 0.5*r.NormFloat64(),
				ctr[1] + 0.5*r.NormFloat64(),
			})
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	points, labels := threeBlobs()
	res, err := KMeans(points, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every true group must map to exactly one cluster.
	groupToCluster := map[int]int{}
	for i, lab := range labels {
		c := res.Assign[i]
		if prev, ok := groupToCluster[lab]; ok && prev != c {
			t.Fatalf("group %d split across clusters %d and %d", lab, prev, c)
		}
		groupToCluster[lab] = c
	}
	if len(groupToCluster) != 3 {
		t.Fatalf("expected 3 distinct clusters, got %d", len(groupToCluster))
	}
}

func TestKMeansCentroidNearBlobCenter(t *testing.T) {
	points, labels := threeBlobs()
	res, err := KMeans(points, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find the cluster containing group 1 (center 10,10) and check its
	// centroid in original space.
	var c int
	for i, lab := range labels {
		if lab == 1 {
			c = res.Assign[i]
			break
		}
	}
	ctr := res.Centroids[c]
	if math.Abs(ctr[0]-10) > 1 || math.Abs(ctr[1]-10) > 1 {
		t.Fatalf("centroid = %v, want ~(10,10)", ctr)
	}
}

func TestKMeansK1IsMean(t *testing.T) {
	points := [][]float64{{0, 0}, {2, 4}, {4, 2}}
	res, err := KMeans(points, 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 || math.Abs(res.Centroids[0][1]-2) > 1e-9 {
		t.Fatalf("k=1 centroid = %v, want (2,2)", res.Centroids[0])
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {5}, {10}, {20}}
	res, err := KMeans(points, 4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinSS > 1e-12 {
		t.Fatalf("k=n WithinSS = %v, want 0", res.WithinSS)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		if seen[a] {
			t.Fatal("two points share a cluster despite k=n")
		}
		seen[a] = true
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := threeBlobs()
	a, err := KMeans(points, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansNormalizationMatters(t *testing.T) {
	// Dimension 0 spans [0, 1000], dimension 1 spans [0, 1]. Without
	// normalization dim 0 dominates; with it, the two groups split on
	// dim 1.
	var points [][]float64
	r := rng.New(5)
	for i := 0; i < 20; i++ {
		points = append(points, []float64{r.Float64() * 1000, 0})
		points = append(points, []float64{r.Float64() * 1000, 1})
	}
	res, err := KMeans(points, 2, Options{Seed: 6, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(points); i += 2 {
		if res.Assign[i] == res.Assign[i+1] {
			t.Fatal("normalized clustering failed to split on small-range dimension")
		}
	}
}

func TestKMeansWeightsZeroOutDimension(t *testing.T) {
	// With weight 0 on dim 1, clustering must split on dim 0 only.
	points := [][]float64{{0, 100}, {0, -100}, {10, 100}, {10, -100}}
	res, err := KMeans(points, 2, Options{Seed: 7, Weights: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] {
		t.Fatalf("weighted clustering wrong: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[2] {
		t.Fatal("dim-0 groups merged")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 1, Options{}); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 3, Options{}); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 0, Options{}); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, Options{}); err == nil {
		t.Fatal("ragged points accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 1, Options{Weights: []float64{1, 2}}); err == nil {
		t.Fatal("wrong weight length accepted")
	}
	if _, err := KMeans([][]float64{{}}, 1, Options{}); err == nil {
		t.Fatal("zero-dimensional points accepted")
	}
}

func TestMembers(t *testing.T) {
	points := [][]float64{{0}, {0.1}, {10}}
	res, err := KMeans(points, 2, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 2; c++ {
		total += len(res.Members(c))
	}
	if total != 3 {
		t.Fatalf("members across clusters = %d, want 3", total)
	}
	// The two nearby points must share a cluster.
	if res.Assign[0] != res.Assign[1] {
		t.Fatal("nearby points split")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinSS > 1e-12 {
		t.Fatalf("identical points WithinSS = %v", res.WithinSS)
	}
}

// Property: every point is assigned a cluster in range, and WithinSS is
// non-negative and non-increasing in k.
func TestQuickKMeansInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12 + r.Intn(20)
		dim := 1 + r.Intn(4)
		points := make([][]float64, n)
		for i := range points {
			row := make([]float64, dim)
			for d := range row {
				row[d] = r.Float64() * 50
			}
			points[i] = row
		}
		prev := math.Inf(1)
		for k := 1; k <= 4; k++ {
			res, err := KMeans(points, k, Options{Seed: seed, Restarts: 4})
			if err != nil {
				return false
			}
			if len(res.Assign) != n {
				return false
			}
			for _, a := range res.Assign {
				if a < 0 || a >= k {
					return false
				}
			}
			if res.WithinSS < 0 || res.WithinSS > prev+1e-9 {
				return false
			}
			prev = res.WithinSS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	points, _ := threeBlobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, 3, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	points, _ := threeBlobs()
	res, err := KMeans(points, 3, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(points, res.Assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Fatalf("silhouette of well-separated blobs = %v, want > 0.8", s)
	}
}

func TestSilhouetteOverSplitIsWorse(t *testing.T) {
	points, _ := threeBlobs()
	good, err := KMeans(points, 3, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	over, err := KMeans(points, 6, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Silhouette(points, good.Assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Silhouette(points, over.Assign, 6)
	if err != nil {
		t.Fatal(err)
	}
	if so >= sg {
		t.Fatalf("over-split silhouette %v should be below natural %v", so, sg)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Silhouette([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Silhouette([][]float64{{1}, {2}}, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	if _, err := Silhouette([][]float64{{1}, {2}}, []int{0}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	// All singleton clusters: silhouette is 0 by convention.
	points := [][]float64{{0}, {10}, {20}}
	s, err := Silhouette(points, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("all-singleton silhouette = %v, want 0", s)
	}
}
