package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-spaced bucket layout: bucket 0 holds
// sub-µs durations, each subsequent bucket doubles, boundaries land in
// the upper bucket (bounds are exclusive upper).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // Observe clamps; bucketIndex treats <1µs as 0
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1}, // boundary: exactly 1µs leaves bucket 0
		{1999 * time.Nanosecond, 1},
		{2 * time.Microsecond, 2}, // boundary: 2µs doubles up
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10}, // 1000µs: 2^9 ≤ 1000 < 2^10
		{time.Second, 20},      // 10^6µs: 2^19 ≤ 10^6 < 2^20
		{18 * time.Minute, 31}, // ≥ 1µs·2^30: clamped to the open-ended bucket
		{24 * time.Hour, 31},
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0
		}
		if got := bucketIndex(d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketUpperBoundsShape(t *testing.T) {
	bounds := BucketUpperBounds()
	if len(bounds) != NumBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), NumBuckets)
	}
	if bounds[0] != time.Microsecond {
		t.Fatalf("bounds[0] = %v, want 1µs", bounds[0])
	}
	for i := 1; i < NumBuckets-1; i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds[%d] = %v, want double of %v (log-spaced ratio 2)", i, bounds[i], bounds[i-1])
		}
	}
	if bounds[NumBuckets-1] != -1 {
		t.Fatalf("final bound = %v, want -1 (unbounded)", bounds[NumBuckets-1])
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if r.Histogram("lat") != h {
		t.Fatal("Histogram is not get-or-create")
	}
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(time.Microsecond)      // bucket 1
	h.Observe(3 * time.Millisecond)  // 3ms/1µs ≈ 3072 → bucket 12
	h.Observe(-time.Second)          // clamped to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := int64(500 + 1000 + 1000 + 3000000)
	if s.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNS, wantSum)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("got %d non-empty buckets, want 3: %+v", len(s.Buckets), s.Buckets)
	}
	if s.Buckets[0].UpperNS != 1000 || s.Buckets[0].Count != 2 {
		t.Fatalf("bucket 0 = %+v", s.Buckets[0])
	}
	if s.Buckets[1].UpperNS != 2000 || s.Buckets[1].Count != 2 {
		t.Fatalf("bucket 1 = %+v", s.Buckets[1])
	}
	if got := s.MeanNS(); got != float64(wantSum)/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h")
			for i := 0; i < each; i++ {
				c.Add(1)
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != goroutines*each {
		t.Fatalf("counter = %d, want %d", got, goroutines*each)
	}
	if got := r.Histogram("h").Snapshot().Count; got != goroutines*each {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*each)
	}
	vals := r.CounterValues()
	if vals["n"] != goroutines*each {
		t.Fatalf("CounterValues = %v", vals)
	}
	snaps := r.HistogramSnapshots()
	if len(snaps) != 1 || snaps[0].Name != "h" {
		t.Fatalf("HistogramSnapshots = %+v", snaps)
	}
}
