// Package obs is the zero-dependency observability layer for the
// evaluation pipeline. Every throughput claim this repository makes —
// 375,000-point studies, multi-million-predictions-per-second sweeps —
// rests on being able to see where evaluation time goes, so obs provides
// the four instruments the commands and the evaluation engine share:
//
//   - Hierarchical span tracing (Span, Tracer): start/stop spans with
//     attributes, parented through context.Context, recorded into a
//     lock-free ring buffer and drained as JSON lines at process exit.
//   - A counters-and-histograms registry (Counter, Histogram, Registry):
//     atomic counters plus fixed log-spaced latency histograms for
//     per-stage accounting (engine invokes, sweep tiles, simulator runs).
//   - Run manifests (Manifest): one JSON document per command invocation
//     recording the git revision, seed, space size, worker count,
//     per-phase wall time and engine-stat deltas — the measured baseline
//     every performance change is judged against.
//   - Opt-in profiling and progress (ServePprof, StartProgress): a
//     net/http/pprof endpoint and a periodic stderr progress line for
//     long sweeps.
//
// Tracing is off by default and enabled process-wide with Enable; when
// disabled, instrumented call sites pay one atomic load and spans are
// nil no-ops, so the hot paths stay within noise of uninstrumented code.
// Counters are always live (they are single atomic adds on operations
// that cost milliseconds). The package depends only on the standard
// library and is import-safe from every layer of the system.
package obs

import "sync/atomic"

// enabled gates span recording, latency histograms and progress lines.
var enabled atomic.Bool

// Enable switches detailed tracing on or off process-wide. It is safe to
// call at any time; instrumented call sites observe the change on their
// next operation.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether detailed tracing is on. Instrumented hot paths
// check this once per operation; when false they must do no other
// observability work.
func Enabled() bool { return enabled.Load() }

// DefaultTracer receives every span started through Start/Begin. Its
// ring keeps the most recent spans; drain it with Snapshot.
var DefaultTracer = NewTracer(1 << 14)

// DefaultRegistry holds the process-wide counters and histograms; the
// run-manifest writer snapshots it at exit.
var DefaultRegistry = NewRegistry()
