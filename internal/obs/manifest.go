package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/atomicio"
)

// ManifestVersion identifies the manifest schema; bump it when fields
// change incompatibly.
const ManifestVersion = 1

// Phase is one timed stage of a run: its wall time and an
// integer-valued stats snapshot (engine-counter deltas for the phase).
type Phase struct {
	Name    string           `json:"name"`
	Seconds float64          `json:"seconds"`
	Stats   map[string]int64 `json:"stats,omitempty"`
}

// ShardRecord describes one shard of a distributed run: which slice of
// which work domain it owned and how its worker fared. A worker records
// its own single shard; a coordinator records one entry per worker,
// including restart counts — the manifest-level trail of the per-shard
// progress stream.
type ShardRecord struct {
	Domain   string  `json:"domain"` // "sweep" or "dataset"
	Index    int     `json:"index"`  // shard index in [0, Count)
	Count    int     `json:"count"`  // total shards in the partition
	Lo       int     `json:"lo"`     // owned flat-index range [Lo, Hi)
	Hi       int     `json:"hi"`
	Attempts int     `json:"attempts,omitempty"` // worker launches (coordinator only)
	Seconds  float64 `json:"seconds,omitempty"`  // total worker wall time (coordinator only)
	Status   string  `json:"status,omitempty"`   // "ok" or "failed" (coordinator only)

	// Liveness supervision (coordinator only): stall-kills by the
	// beacon monitor, and whether a speculative backup ran / won.
	Stalls     int  `json:"stalls,omitempty"`
	Speculated bool `json:"speculated,omitempty"`
	SpecWon    bool `json:"spec_won,omitempty"`
}

// Manifest is the run record a command emits next to its results: what
// ran (tool, command, arguments, git revision), over what (seed, space
// sizes, benchmarks, workers), and where the time went (per-phase wall
// clock and engine-stat deltas, counters, latency histograms). One
// manifest per invocation makes every study re-derivable and every
// performance claim checkable without re-running the tool.
type Manifest struct {
	Version   int      `json:"version"`
	Tool      string   `json:"tool"`
	Command   string   `json:"command"`
	Args      []string `json:"args,omitempty"`
	GitRev    string   `json:"git_rev"`
	GoVersion string   `json:"go_version"`

	Seed            uint64   `json:"seed"`
	SpaceSize       int      `json:"space_size"`
	SampleSpaceSize int      `json:"sample_space_size,omitempty"`
	Benchmarks      []string `json:"benchmarks,omitempty"`
	Workers         int      `json:"workers"`

	Start       string  `json:"start,omitempty"` // RFC 3339
	WallSeconds float64 `json:"wall_seconds"`
	Phases      []Phase `json:"phases"`

	// Shards lists the distributed-run slices this invocation owned
	// (worker: its one shard) or supervised (coordinator: all of them).
	// Empty for unsharded runs.
	Shards []ShardRecord `json:"shards,omitempty"`

	Counters   map[string]int64    `json:"counters,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	TraceSpans int64               `json:"trace_spans,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for one command invocation, stamping the
// start time, Go version and git revision (resolved from the current
// directory; "unknown" outside a repository).
func NewManifest(tool, command string, args []string) *Manifest {
	now := time.Now()
	return &Manifest{
		Version:   ManifestVersion,
		Tool:      tool,
		Command:   command,
		Args:      args,
		GitRev:    GitRevision("."),
		GoVersion: runtime.Version(),
		Start:     now.UTC().Format(time.RFC3339),
		start:     now,
	}
}

// PhaseTimer measures one phase; see Manifest.StartPhase.
type PhaseTimer struct {
	m     *Manifest
	name  string
	start time.Time
}

// StartPhase begins timing a named phase. Call End on the returned timer
// when the phase completes; phases append in completion order.
func (m *Manifest) StartPhase(name string) *PhaseTimer {
	return &PhaseTimer{m: m, name: name, start: time.Now()}
}

// End records the phase with its wall time and an optional stats
// snapshot (typically engine-counter deltas from StatsEpoch, so
// sequential phases in one process never double-count).
func (p *PhaseTimer) End(stats map[string]int64) {
	p.m.Phases = append(p.m.Phases, Phase{
		Name:    p.name,
		Seconds: time.Since(p.start).Seconds(),
		Stats:   stats,
	})
}

// Finish stamps the total wall time and absorbs the registry's counters
// and histograms plus the tracer's span total. Call once, after the last
// phase.
func (m *Manifest) Finish(reg *Registry, tr *Tracer) {
	if !m.start.IsZero() {
		m.WallSeconds = time.Since(m.start).Seconds()
	}
	if reg != nil {
		if c := reg.CounterValues(); len(c) > 0 {
			m.Counters = c
		}
		m.Histograms = reg.HistogramSnapshots()
	}
	if tr != nil {
		m.TraceSpans = tr.Total()
	}
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path atomically (temp file + fsync +
// rename), so a crash mid-write can never leave a torn manifest where a
// previous run's complete one stood.
func (m *Manifest) WriteFile(path string) error {
	return atomicio.WriteTo(path, 0o644, m.Encode)
}

// ReadManifest loads a manifest written by WriteFile, rejecting unknown
// schema versions.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("obs: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	return &m, nil
}

// GitRevision resolves the repository HEAD commit hash by reading .git
// directly (no subprocess): it walks up from dir to the nearest .git,
// follows a symbolic HEAD to its ref file, and falls back to
// packed-refs. Returns "unknown" when no repository or ref is found.
func GitRevision(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "unknown"
	}
	for {
		gitDir := filepath.Join(abs, ".git")
		if fi, err := os.Stat(gitDir); err == nil && fi.IsDir() {
			if rev := revisionFromGitDir(gitDir); rev != "" {
				return rev
			}
			return "unknown"
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "unknown"
		}
		abs = parent
	}
}

func revisionFromGitDir(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	h := strings.TrimSpace(string(head))
	if !strings.HasPrefix(h, "ref: ") {
		return h // detached HEAD holds the hash directly
	}
	ref := strings.TrimSpace(strings.TrimPrefix(h, "ref: "))
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(data))
	}
	// Ref may be packed.
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(packed), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "^") {
			continue
		}
		if hash, name, ok := strings.Cut(line, " "); ok && name == ref {
			return hash
		}
	}
	return ""
}
