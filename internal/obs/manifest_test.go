package obs

import (
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

// goldenManifest is a fully-populated manifest with deterministic fields
// (no clock, no git) so its JSON form can be pinned exactly.
func goldenManifest() *Manifest {
	return &Manifest{
		Version:         ManifestVersion,
		Tool:            "dse",
		Command:         "pareto",
		Args:            []string{"-samples", "1000"},
		GitRev:          "0123456789abcdef0123456789abcdef01234567",
		GoVersion:       "go1.22.0",
		Seed:            2007,
		SpaceSize:       262500,
		SampleSpaceSize: 375000,
		Benchmarks:      []string{"ammp", "mcf"},
		Workers:         4,
		Start:           "2026-08-05T12:00:00Z",
		WallSeconds:     12.5,
		Phases: []Phase{
			{Name: "train", Seconds: 10.25, Stats: map[string]int64{"sim_evaluations": 2000}},
			{Name: "pareto", Seconds: 2.25, Stats: map[string]int64{"model_swept_points": 525000}},
		},
		Counters: map[string]int64{"sim.instructions": 200000000},
		Histograms: []HistogramSnapshot{
			{Name: "eval.sim.invoke", Count: 2000, SumNS: 9000000000,
				Buckets: []BucketCount{{UpperNS: 8388608000, Count: 2000}}},
		},
		TraceSpans: 4123,
	}
}

const goldenJSON = `{
 "version": 1,
 "tool": "dse",
 "command": "pareto",
 "args": [
  "-samples",
  "1000"
 ],
 "git_rev": "0123456789abcdef0123456789abcdef01234567",
 "go_version": "go1.22.0",
 "seed": 2007,
 "space_size": 262500,
 "sample_space_size": 375000,
 "benchmarks": [
  "ammp",
  "mcf"
 ],
 "workers": 4,
 "start": "2026-08-05T12:00:00Z",
 "wall_seconds": 12.5,
 "phases": [
  {
   "name": "train",
   "seconds": 10.25,
   "stats": {
    "sim_evaluations": 2000
   }
  },
  {
   "name": "pareto",
   "seconds": 2.25,
   "stats": {
    "model_swept_points": 525000
   }
  }
 ],
 "counters": {
  "sim.instructions": 200000000
 },
 "histograms": [
  {
   "name": "eval.sim.invoke",
   "count": 2000,
   "sum_ns": 9000000000,
   "buckets": [
    {
     "le_ns": 8388608000,
     "count": 2000
    }
   ]
  }
 ],
 "trace_spans": 4123
}
`

// TestManifestGoldenRoundTrip pins the manifest JSON schema byte-for-byte
// and verifies WriteFile/ReadManifest reproduce the exact structure.
func TestManifestGoldenRoundTrip(t *testing.T) {
	m := goldenManifest()
	var sb strings.Builder
	if err := m.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenJSON {
		t.Fatalf("manifest JSON drifted from golden.\ngot:\n%s\nwant:\n%s", sb.String(), goldenJSON)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestReadManifestRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := goldenManifest()
	m.Version = ManifestVersion + 1
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("wrong-version manifest accepted")
	}
}

func TestNewManifestStampsEnvironment(t *testing.T) {
	m := NewManifest("dse", "train", []string{"-samples", "10"})
	if m.Version != ManifestVersion || m.Tool != "dse" || m.Command != "train" {
		t.Fatalf("header fields wrong: %+v", m)
	}
	if m.GoVersion == "" {
		t.Fatal("GoVersion not stamped")
	}
	if _, err := time.Parse(time.RFC3339, m.Start); err != nil {
		t.Fatalf("Start is not RFC 3339: %q", m.Start)
	}
	// This repository is a git checkout, so the revision must resolve to
	// a hex hash; "unknown" is reserved for non-repo environments.
	if m.GitRev != "unknown" && !regexp.MustCompile(`^[0-9a-f]{40}$`).MatchString(m.GitRev) {
		t.Fatalf("GitRev is neither a hash nor unknown: %q", m.GitRev)
	}
}

func TestManifestFinishAbsorbsRegistryAndTracer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(3)
	reg.Histogram("h").Observe(time.Millisecond)
	tr := NewTracer(16)
	tr.start(0, "x", nil).End()

	m := NewManifest("dse", "train", nil)
	pt := m.StartPhase("train")
	pt.End(map[string]int64{"sim_evaluations": 7})
	m.Finish(reg, tr)

	if len(m.Phases) != 1 || m.Phases[0].Name != "train" || m.Phases[0].Stats["sim_evaluations"] != 7 {
		t.Fatalf("phases = %+v", m.Phases)
	}
	if m.Phases[0].Seconds < 0 {
		t.Fatal("negative phase time")
	}
	if m.Counters["c"] != 3 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if len(m.Histograms) != 1 || m.Histograms[0].Name != "h" {
		t.Fatalf("histograms = %+v", m.Histograms)
	}
	if m.TraceSpans != 1 {
		t.Fatalf("trace spans = %d", m.TraceSpans)
	}
	if m.WallSeconds < 0 {
		t.Fatal("negative wall time")
	}
}

func TestGitRevisionUnknownOutsideRepo(t *testing.T) {
	if rev := GitRevision(t.TempDir()); rev != "unknown" {
		t.Fatalf("revision in temp dir = %q, want unknown", rev)
	}
}

// TestManifestShardRecordsRoundTrip: sharded runs append ShardRecords;
// they must survive WriteFile/ReadManifest and stay omitted (so the
// schema golden above is untouched) when the run is unsharded.
func TestManifestShardRecordsRoundTrip(t *testing.T) {
	m := goldenManifest()
	m.Shards = []ShardRecord{
		{Domain: "sweep", Index: 0, Count: 2, Lo: 0, Hi: 131250, Attempts: 2, Seconds: 3.5, Status: "ok"},
		{Domain: "sweep", Index: 1, Count: 2, Lo: 131250, Hi: 262500, Attempts: 1, Seconds: 1.25, Status: "ok"},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shards, m.Shards) {
		t.Fatalf("shards round-trip mismatch:\ngot  %+v\nwant %+v", got.Shards, m.Shards)
	}
}
