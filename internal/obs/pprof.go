package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServePprof starts an HTTP server exposing the standard
// /debug/pprof/... endpoints on addr (e.g. "localhost:6060"; port 0
// picks a free port). It returns the bound address and a shutdown
// function that closes the listener and in-flight connections. The
// handlers are mounted on a private mux, so enabling profiling never
// touches http.DefaultServeMux.
func ServePprof(addr string) (bound string, shutdown func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), srv.Close, nil
}
