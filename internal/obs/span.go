package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
)

// Attr is one span attribute. Values are pre-rendered to strings so
// records are flat and JSON encoding never reflects over interface
// values; the constructors below cover the common types.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute.
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// SpanRecord is one completed span as stored in the ring and serialized
// to the trace log. Times are nanoseconds relative to the tracer's
// epoch, so records from one process compare directly.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-size lock-free ring: each
// End claims the next slot with an atomic increment and publishes the
// record through an atomic pointer, so writers never block each other or
// readers, and the ring overwrites oldest-first once full. Total counts
// every record ever published (overwritten or not).
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64
	next  atomic.Uint64
	total atomic.Int64
	mask  uint64
	slots []atomic.Pointer[SpanRecord]
}

// NewTracer creates a tracer whose ring holds capacity spans (rounded up
// to a power of two, minimum 16).
func NewTracer(capacity int) *Tracer {
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &Tracer{
		epoch: time.Now(),
		mask:  uint64(size - 1),
		slots: make([]atomic.Pointer[SpanRecord], size),
	}
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int { return len(t.slots) }

// Total returns how many spans have been recorded over the tracer's
// lifetime, including spans the ring has since overwritten.
func (t *Tracer) Total() int64 { return t.total.Load() }

// Span is one in-flight operation. A nil Span is a valid no-op (the
// disabled-tracing fast path), so call sites never branch on enablement
// themselves. Spans are owned by the goroutine that started them; End
// must be called exactly once.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// ctxKey carries the current span ID through a context.
type ctxKey struct{}

// Start begins a span parented to the span already in ctx (if any) and
// returns a derived context carrying the new span, for further nesting.
// When tracing is disabled it returns ctx unchanged and a nil span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(uint64)
	s := DefaultTracer.start(parent, name, attrs)
	return context.WithValue(ctx, ctxKey{}, s.id), s
}

// Begin starts a root span with no context plumbing — for call sites
// (model fitting, compilation) that are not on a context-carrying path.
// Returns nil when tracing is disabled.
func Begin(name string, attrs ...Attr) *Span {
	if !Enabled() {
		return nil
	}
	return DefaultTracer.start(0, name, attrs)
}

// Child starts a span parented to s, for hierarchies built outside a
// context chain. A nil receiver yields a root span (or nil if tracing is
// off).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return Begin(name, attrs...)
	}
	return s.t.start(s.id, name, attrs)
}

func (t *Tracer) start(parent uint64, name string, attrs []Attr) *Span {
	return &Span{
		t:      t,
		id:     t.ids.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// SetAttrs appends attributes to the span before End.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and publishes its record to the tracer's ring.
// Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end(time.Since(s.start))
}

// EndObserve completes the span and records its duration into h off a
// single clock read — for hot loops (sweep tiles) that would otherwise
// pay one time.Now for the span and another for the histogram. Safe on
// a nil span, in which case nothing is observed either.
func (s *Span) EndObserve(h *Histogram) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.end(d)
	h.Observe(d)
}

func (s *Span) end(d time.Duration) {
	t := s.t
	rec := &SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.Sub(t.epoch).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
		Attrs:   s.attrs,
	}
	slot := t.next.Add(1) - 1
	t.slots[slot&t.mask].Store(rec)
	t.total.Add(1)
}

// Snapshot returns the spans currently held by the ring, ordered by
// start time (ties by ID). It is safe to call concurrently with writers;
// records are immutable once published.
func (t *Tracer) Snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		if rec := t.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartNS != out[b].StartNS {
			return out[a].StartNS < out[b].StartNS
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// WriteSpans serializes span records as JSON lines, one record per line.
func WriteSpans(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansFile writes the span log to path atomically (temp file +
// fsync + rename).
func WriteSpansFile(path string, spans []SpanRecord) error {
	return atomicio.WriteTo(path, 0o644, func(w io.Writer) error {
		return WriteSpans(w, spans)
	})
}
