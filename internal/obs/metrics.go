package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every latency histogram.
// Buckets are log-spaced with ratio 2 starting at 1µs: bucket 0 holds
// durations under 1µs, bucket i holds [1µs·2^(i-1), 1µs·2^i), and the
// last bucket is unbounded above (≈ 18 minutes and beyond) — wide enough
// to span a compiled sweep tile (tens of µs), a detailed simulation
// (ms–s) and a full training phase in one fixed layout, so snapshots
// from different runs compare bucket-for-bucket.
const NumBuckets = 32

// histBase is the upper bound of bucket 0.
const histBase = time.Microsecond

// bucketIndex maps a duration to its histogram bucket.
func bucketIndex(d time.Duration) int {
	if d < histBase {
		return 0
	}
	// bits.Len64 of the duration in whole µs: 1µs → bucket 1, 2-3µs →
	// bucket 2, doubling per bucket.
	i := bits.Len64(uint64(d / histBase))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpperBounds returns the inclusive-exclusive upper bound of each
// bucket; the final entry is -1, meaning unbounded.
func BucketUpperBounds() []time.Duration {
	out := make([]time.Duration, NumBuckets)
	for i := 0; i < NumBuckets-1; i++ {
		out[i] = histBase << uint(i)
	}
	out[NumBuckets-1] = -1
	return out
}

// Counter is a named monotonic counter. Safe for concurrent use.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram is a fixed-bucket log-spaced latency histogram. Observe is
// a pair of atomic adds plus a bucket increment — safe and cheap under
// heavy concurrency.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.buckets[bucketIndex(d)].Add(1)
}

// BucketCount is one non-empty histogram bucket in a snapshot. UpperNS
// is the bucket's exclusive upper bound in nanoseconds; -1 means
// unbounded (the final bucket).
type BucketCount struct {
	UpperNS int64 `json:"le_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, carrying
// only its non-empty buckets.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	SumNS   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MeanNS returns the mean observed duration in nanoseconds, or 0 with no
// observations.
func (s HistogramSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
	}
	bounds := BucketUpperBounds()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{
				UpperNS: bounds[i].Nanoseconds(),
				Count:   n,
			})
		}
	}
	return s
}

// Registry is a name-indexed set of counters and histograms.
// Counter/Histogram get-or-create; instruments are never removed, so
// callers cache the returned pointers and skip the map on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// CounterValues snapshots every non-zero counter as a name → value map.
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		if v := c.Load(); v != 0 {
			out[name] = v
		}
	}
	return out
}

// HistogramSnapshots snapshots every histogram with observations, sorted
// by name for stable manifest output.
func (r *Registry) HistogramSnapshots() []HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]HistogramSnapshot, 0, len(r.hists))
	for _, h := range r.hists {
		if s := h.Snapshot(); s.Count > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
