package obs

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// progressInterval is how often a progress line is emitted.
const progressInterval = 2 * time.Second

// progressWriter is where progress lines go; stderr keeps them out of
// study output (which must stay bit-identical with observability on).
// Tests may swap it.
var progressWriter io.Writer = os.Stderr

// StartProgress emits a periodic one-line progress report for a long
// operation: "obs: <name> <done>/<total> (pct) elapsed". done is polled
// on each tick and must be safe to call concurrently with the work.
// The returned stop function halts and joins the reporter; it must be
// called before the operation's results are used. When tracing is
// disabled (or total is non-positive) no goroutine is started and stop
// is a no-op.
func StartProgress(name string, total int64, done func() int64) (stop func()) {
	if !Enabled() || total <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	var emitted atomic.Bool
	go func() {
		defer close(finished)
		ticker := time.NewTicker(progressInterval)
		defer ticker.Stop()
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
				d := done()
				emitted.Store(true)
				fmt.Fprintf(progressWriter, "obs: %s %d/%d (%.1f%%) %.1fs\n",
					name, d, total, 100*float64(d)/float64(total),
					time.Since(start).Seconds())
			}
		}
	}()
	return func() {
		close(quit)
		<-finished
		// A closing line only if any progress line was printed, so quick
		// operations stay silent.
		if emitted.Load() {
			fmt.Fprintf(progressWriter, "obs: %s done %d/%d in %.1fs\n",
				name, done(), total, time.Since(start).Seconds())
		}
	}
}
