package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing enables tracing on a fresh default tracer for one test and
// restores the previous state afterwards. Tests mutating process-wide
// observability state must not run in parallel.
func withTracing(t *testing.T, capacity int) *Tracer {
	t.Helper()
	prevTracer := DefaultTracer
	prevEnabled := Enabled()
	DefaultTracer = NewTracer(capacity)
	Enable(true)
	t.Cleanup(func() {
		DefaultTracer = prevTracer
		Enable(prevEnabled)
	})
	return DefaultTracer
}

func TestSpanDisabledIsNoOp(t *testing.T) {
	Enable(false)
	ctx, sp := Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("disabled tracing returned a live span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled tracing derived a new context")
	}
	// All methods must be nil-safe.
	sp.SetAttrs(String("k", "v"))
	sp.End()
	if c := sp.Child("child"); c != nil {
		t.Fatal("child of nil span with tracing off should be nil")
	}
	if Begin("y") != nil {
		t.Fatal("Begin with tracing off should be nil")
	}
}

func TestSpanNestingThroughContext(t *testing.T) {
	tr := withTracing(t, 64)

	ctx, parent := Start(context.Background(), "parent", String("kind", "test"))
	_, child := Start(ctx, "child")
	child.End()
	_, child2 := Start(ctx, "child2")
	child2.End()
	parent.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	p := byName["parent"]
	for _, name := range []string{"child", "child2"} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("span %q not recorded", name)
		}
		if c.Parent != p.ID {
			t.Fatalf("%s.Parent = %d, want parent ID %d", name, c.Parent, p.ID)
		}
		if c.StartNS < p.StartNS {
			t.Fatalf("%s started before its parent", name)
		}
		if end, pend := c.StartNS+c.DurNS, p.StartNS+p.DurNS; end > pend {
			t.Fatalf("%s ended after its parent (%d > %d)", name, end, pend)
		}
	}
	if p.Parent != 0 {
		t.Fatalf("root span has parent %d", p.Parent)
	}
	if got := p.Attrs[0]; got.Key != "kind" || got.Value != "test" {
		t.Fatalf("attr = %+v", got)
	}
}

func TestSpanChildWithoutContext(t *testing.T) {
	tr := withTracing(t, 64)
	root := Begin("root")
	kid := root.Child("kid", Int("i", 7))
	kid.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
}

// TestSpanRingConcurrent hammers a tiny ring from many goroutines —
// under -race this verifies the lock-free publish path — and checks the
// ring stays bounded while the lifetime total keeps counting.
func TestSpanRingConcurrent(t *testing.T) {
	tr := withTracing(t, 16) // deliberately tiny: constant overwrites
	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < each; i++ {
				c, sp := Start(ctx, "work")
				_, inner := Start(c, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	if got := tr.Total(); got != goroutines*each*2 {
		t.Fatalf("total = %d, want %d", got, goroutines*each*2)
	}
	spans := tr.Snapshot()
	if len(spans) == 0 || len(spans) > tr.Capacity() {
		t.Fatalf("snapshot has %d spans, ring capacity %d", len(spans), tr.Capacity())
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS < spans[i-1].StartNS {
			t.Fatal("snapshot not ordered by start time")
		}
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	tr := withTracing(t, 16)
	Begin("a", String("x", "1")).End()
	Begin("b").End()
	var sb strings.Builder
	if err := WriteSpans(&sb, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("line is not a JSON object: %s", l)
		}
	}
	if !strings.Contains(lines[0], `"name":"a"`) {
		t.Fatalf("first line missing span name: %s", lines[0])
	}
}

func TestStartProgressDisabled(t *testing.T) {
	Enable(false)
	stop := StartProgress("sweep", 100, func() int64 { return 0 })
	stop() // must be a no-op, not a panic
}

func TestStartProgressRuns(t *testing.T) {
	withTracing(t, 16)
	var sb strings.Builder
	prev := progressWriter
	progressWriter = &sb
	defer func() { progressWriter = prev }()

	stop := StartProgress("sweep", 10, func() int64 { return 5 })
	time.Sleep(10 * time.Millisecond) // well under the tick; no output expected
	stop()
	if s := sb.String(); s != "" {
		t.Fatalf("progress emitted before its interval: %q", s)
	}
}
