// Package fault is a seeded, deterministic fault-injection framework for
// resilience testing. Code under test declares named injection sites
// (fault.Here, fault.HereCtx, fault.Flip); a Plan arms those sites with
// rules that fire panics, transient or fatal errors, delays, hangs, or
// floating-point bit flips on deterministically chosen visits. Injection is off by default and
// costs one atomic pointer load per site when disabled, so sites are
// safe to leave in production hot paths.
//
// Determinism: whether a rule fires on its k-th visit is a pure function
// of (plan seed, site name, rule index, k), so a single-threaded caller
// replays the exact same fault sequence on every run. Concurrent callers
// race only for visit numbers; the set of fired visits is still
// deterministic even though their assignment to goroutines is not.
//
// Plans can be armed programmatically (Enable) or from the environment:
// if REPRO_FAULT_PLAN is set when the process starts, it is parsed with
// Parse and enabled, which is how the CI fault matrix runs the ordinary
// test suites under injection.
package fault

import (
	"context"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// KindError injects a transient *Injected error (Transient() true):
	// resilient callers are expected to absorb it by retrying.
	KindError Kind = iota
	// KindFatal injects a non-transient *Injected error: it models
	// permanent failures (corrupt input, dead backend) that retry must
	// not mask, and is how tests kill a run at an exact visit.
	KindFatal
	// KindPanic panics with a *PanicValue.
	KindPanic
	// KindDelay sleeps for the rule's Delay.
	KindDelay
	// KindFlip flips one mantissa bit of the value passed to Flip,
	// modeling silent data corruption on a fast path.
	KindFlip
	// KindHang blocks until the site's context is cancelled, modeling
	// liveness faults (NFS stalls, livelocks) that never surface as an
	// exit. At a context-free site (Here) a hang blocks forever — the
	// victim can only be unstuck by whatever supervises its process.
	KindHang
)

// String names the kind as Parse spells it.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindFatal:
		return "fatal"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindFlip:
		return "flip"
	case KindHang:
		return "hang"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rule arms one site with one failure mode. A rule fires on a visit when
// the visit is past After, the rule has fired fewer than Count times
// (0 = unlimited), and the trigger matches: every Every-th visit when
// Every > 0, otherwise an independent deterministic draw with
// probability Prob.
type Rule struct {
	Site  string
	Kind  Kind
	Prob  float64       // per-visit firing probability (used when Every == 0)
	Every int64         // fire on visits where visit % Every == 0 (1-indexed)
	After int64         // ignore the first After visits
	Count int64         // maximum total firings; 0 means unlimited
	Delay time.Duration // sleep duration for KindDelay
}

// Plan is a seeded set of rules. The zero Seed is valid (and
// deterministic like any other).
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// armed is one rule's runtime state.
type armed struct {
	Rule
	idx    uint64 // rule index, mixed into the trigger hash
	visits atomic.Int64
	fired  atomic.Int64
}

type state struct {
	plan  *Plan
	seed  uint64
	sites map[string][]*armed
}

var active atomic.Pointer[state]

// injections counts every fired rule, by any kind, process-wide; it
// flows into run manifests like every obs counter.
var injections = obs.DefaultRegistry.Counter("fault.injections")

// Enable arms the plan process-wide, replacing any previous plan. Pass
// nil to disable (equivalent to Disable). Rule state (visit and fire
// counters) starts fresh on every Enable.
func Enable(p *Plan) {
	if p == nil {
		active.Store(nil)
		return
	}
	st := &state{plan: p, seed: p.Seed, sites: make(map[string][]*armed)}
	for i, r := range p.Rules {
		st.sites[r.Site] = append(st.sites[r.Site], &armed{Rule: r, idx: uint64(i)})
	}
	active.Store(st)
}

// Disable disarms fault injection process-wide.
func Disable() { active.Store(nil) }

// Active reports whether a plan is armed. Tests whose assertions only
// hold in a fault-free world (exact backend call counts, for example)
// skip themselves when a plan is active.
func Active() bool { return active.Load() != nil }

// Current returns the armed plan, or nil when injection is disabled.
// Tests that arm their own plan save Current and re-Enable it on
// cleanup, so a process-wide plan (the CI fault matrix) survives them —
// though its rule counters restart, as Enable documents.
func Current() *Plan {
	if st := active.Load(); st != nil {
		return st.plan
	}
	return nil
}

// Injected is the error value KindError and KindFatal rules produce.
type Injected struct {
	Site      string
	Visit     int64
	Transient bool
}

// Error implements error.
func (e *Injected) Error() string {
	mode := "fatal"
	if e.Transient {
		mode = "transient"
	}
	return fmt.Sprintf("fault: injected %s error at %s (visit %d)", mode, e.Site, e.Visit)
}

// IsTransient reports the retryability classification callers probe via
// errors.As; transient injected errors model failures a bounded retry
// should absorb.
func (e *Injected) IsTransient() bool { return e.Transient }

// PanicValue is the value KindPanic rules panic with, so recovery sites
// can distinguish injected panics in tests.
type PanicValue struct {
	Site  string
	Visit int64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s (visit %d)", p.Site, p.Visit)
}

// fnv1a hashes a site name for the trigger draw.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finalizer that turns (seed, site, rule, visit) into
// an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fires decides whether rule a fires on visit v (1-indexed) under seed.
func (a *armed) fires(seed uint64, v int64) bool {
	if v <= a.After {
		return false
	}
	if a.Every > 0 {
		if (v-a.After)%a.Every != 0 {
			return false
		}
	} else {
		draw := splitmix64(seed ^ fnv1a(a.Site) ^ (a.idx * 0x9e3779b97f4a7c15) ^ uint64(v))
		if float64(draw>>11)/float64(1<<53) >= a.Prob {
			return false
		}
	}
	if a.Count > 0 && a.fired.Add(1) > a.Count {
		return false
	}
	injections.Add(1)
	return true
}

// Here evaluates the site's error, panic, delay and hang rules for this
// visit. It returns an injected error (transient or fatal), panics with
// a *PanicValue, sleeps, blocks, or — almost always — returns nil. When
// no plan is armed the cost is a single atomic load. Flip rules are not
// evaluated by Here; they live on the value path (Flip). Sites that hold
// a context should call HereCtx instead, so delay and hang rules respect
// cancellation.
func Here(site string) error { return HereCtx(context.Background(), site) }

// HereCtx is Here for sites with a context in hand: a delay rule sleeps
// only until ctx is cancelled (returning ctx.Err() when interrupted,
// so shutdown and drain are not held up by a sleeping fault), and a
// hang rule blocks until cancellation and then returns ctx.Err(). Under
// the background context (Here) a hang blocks forever by design.
func HereCtx(ctx context.Context, site string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	rules := st.sites[site]
	if len(rules) == 0 {
		return nil
	}
	for _, a := range rules {
		if a.Kind == KindFlip {
			continue
		}
		v := a.visits.Add(1)
		if !a.fires(st.seed, v) {
			continue
		}
		switch a.Kind {
		case KindPanic:
			panic(&PanicValue{Site: site, Visit: v})
		case KindDelay:
			if err := sleepCtx(ctx, a.Delay); err != nil {
				return err
			}
		case KindHang:
			<-ctx.Done()
			return ctx.Err()
		case KindFatal:
			return &Injected{Site: site, Visit: v, Transient: false}
		default:
			return &Injected{Site: site, Visit: v, Transient: true}
		}
	}
	return nil
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() when interrupted.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flip passes v through the site's flip rules: when one fires, a middle
// mantissa bit of the float is inverted — a silent, bit-exact-detectable
// corruption of roughly relative magnitude 2^-32. With no plan armed the
// cost is a single atomic load.
func Flip(site string, v float64) float64 {
	st := active.Load()
	if st == nil {
		return v
	}
	for _, a := range st.sites[site] {
		if a.Kind != KindFlip {
			continue
		}
		n := a.visits.Add(1)
		if a.fires(st.seed, n) {
			v = math.Float64frombits(math.Float64bits(v) ^ (1 << 20))
		}
	}
	return v
}

// Parse builds a plan from a compact spec, the REPRO_FAULT_PLAN syntax:
//
//	seed=2007;eval.invoke:error:p=0.02;eval.invoke:delay:p=0.01,delay=200us
//
// Clauses are separated by ';'. An optional leading seed=N clause sets
// the plan seed. Every other clause is site:kind[:opts] where kind is
// error, fatal, panic, delay, hang or flip and opts is a comma-separated
// list of p=<prob>, every=<n>, after=<n>, count=<n>, delay=<duration>.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			p.Seed = seed
			continue
		}
		parts := strings.SplitN(clause, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: clause %q is not site:kind[:opts]", clause)
		}
		r := Rule{Site: parts[0]}
		switch parts[1] {
		case "error":
			r.Kind = KindError
		case "fatal":
			r.Kind = KindFatal
		case "panic":
			r.Kind = KindPanic
		case "delay":
			r.Kind = KindDelay
		case "flip":
			r.Kind = KindFlip
		case "hang":
			r.Kind = KindHang
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in clause %q", parts[1], clause)
		}
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("fault: option %q in clause %q is not key=value", opt, clause)
				}
				var err error
				switch key {
				case "p":
					r.Prob, err = strconv.ParseFloat(val, 64)
				case "every":
					r.Every, err = strconv.ParseInt(val, 10, 64)
				case "after":
					r.After, err = strconv.ParseInt(val, 10, 64)
				case "count":
					r.Count, err = strconv.ParseInt(val, 10, 64)
				case "delay":
					r.Delay, err = time.ParseDuration(val)
				default:
					return nil, fmt.Errorf("fault: unknown option %q in clause %q", key, clause)
				}
				if err != nil {
					return nil, fmt.Errorf("fault: option %q in clause %q: %w", opt, clause, err)
				}
			}
		}
		if r.Prob == 0 && r.Every == 0 {
			return nil, fmt.Errorf("fault: clause %q has no trigger (set p= or every=)", clause)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// EnvVar is the environment variable the process-start hookup reads.
const EnvVar = "REPRO_FAULT_PLAN"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		p, err := Parse(spec)
		if err != nil {
			// A malformed plan in CI must fail the job loudly, not
			// silently run a fault-free suite that proves nothing.
			panic(err)
		}
		Enable(p)
	}
}
