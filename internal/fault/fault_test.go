package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// with arms a plan for the duration of the test and disarms it after,
// also restoring any plan an outer environment (the CI fault matrix)
// had armed.
func with(t *testing.T, p *Plan) {
	t.Helper()
	prev := active.Load()
	Enable(p)
	t.Cleanup(func() { active.Store(prev) })
}

func TestDisabledIsNil(t *testing.T) {
	prev := active.Load()
	Disable()
	t.Cleanup(func() { active.Store(prev) })
	if Active() {
		t.Fatal("Active after Disable")
	}
	for i := 0; i < 100; i++ {
		if err := Here("any.site"); err != nil {
			t.Fatalf("disabled Here returned %v", err)
		}
		if v := Flip("any.site", 1.5); v != 1.5 {
			t.Fatalf("disabled Flip changed value: %v", v)
		}
	}
}

func TestEveryTriggerFiresDeterministically(t *testing.T) {
	with(t, &Plan{Rules: []Rule{{Site: "s", Kind: KindError, Every: 3, After: 1}}})
	var fired []int
	for i := 1; i <= 10; i++ {
		if Here("s") != nil {
			fired = append(fired, i)
		}
	}
	// After=1 skips visit 1; then every 3rd of the remaining visits:
	// visits 4, 7, 10.
	want := []int{4, 7, 10}
	if len(fired) != len(want) {
		t.Fatalf("fired on visits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on visits %v, want %v", fired, want)
		}
	}
}

func TestProbabilityTriggerIsSeededAndReplayable(t *testing.T) {
	run := func(seed uint64) []int {
		Enable(&Plan{Seed: seed, Rules: []Rule{{Site: "p", Kind: KindError, Prob: 0.3}}})
		var fired []int
		for i := 1; i <= 200; i++ {
			if Here("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	prev := active.Load()
	t.Cleanup(func() { active.Store(prev) })
	a, b, c := run(7), run(7), run(8)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: visit %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestCountCapsFirings(t *testing.T) {
	with(t, &Plan{Rules: []Rule{{Site: "c", Kind: KindError, Every: 1, Count: 2}}})
	n := 0
	for i := 0; i < 50; i++ {
		if Here("c") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("count=2 rule fired %d times", n)
	}
}

func TestKinds(t *testing.T) {
	with(t, &Plan{Rules: []Rule{
		{Site: "err", Kind: KindError, Every: 1},
		{Site: "fatal", Kind: KindFatal, Every: 1},
		{Site: "panic", Kind: KindPanic, Every: 1},
		{Site: "delay", Kind: KindDelay, Every: 1, Delay: 5 * time.Millisecond},
		{Site: "flip", Kind: KindFlip, Every: 1},
	}})

	var inj *Injected
	if err := Here("err"); !errors.As(err, &inj) || !inj.IsTransient() {
		t.Fatalf("error site returned %v", err)
	}
	if err := Here("fatal"); !errors.As(err, &inj) || inj.IsTransient() {
		t.Fatalf("fatal site returned %v", err)
	}

	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*PanicValue); !ok {
				t.Errorf("panic site recovered %v", r)
			}
		}()
		Here("panic")
		t.Error("panic site did not panic")
	}()

	start := time.Now()
	if err := Here("delay"); err != nil {
		t.Fatalf("delay site returned %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay site did not sleep")
	}

	// Flip rules live only on the value path: Here ignores them, Flip
	// perturbs exactly one mantissa bit.
	if err := Here("flip"); err != nil {
		t.Fatalf("Here on flip-only site returned %v", err)
	}
	v := Flip("flip", 2.0)
	if v == 2.0 {
		t.Fatal("flip did not perturb the value")
	}
	if v < 1.9999 || v > 2.0001 {
		t.Fatalf("flip perturbed too much: %v", v)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("seed=42; eval.invoke:error:p=0.02 ;sim.run:delay:every=10,delay=200us;x:fatal:after=3,every=1,count=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d", p.Seed)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("parsed %d rules", len(p.Rules))
	}
	if r := p.Rules[0]; r.Site != "eval.invoke" || r.Kind != KindError || r.Prob != 0.02 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := p.Rules[1]; r.Kind != KindDelay || r.Every != 10 || r.Delay != 200*time.Microsecond {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := p.Rules[2]; r.Kind != KindFatal || r.After != 3 || r.Count != 1 {
		t.Fatalf("rule 2 = %+v", r)
	}

	for _, bad := range []string{
		"seed=x",
		"siteonly",
		"s:explode:p=1",
		"s:error:p=1,bogus=2",
		"s:error:noeq",
		"s:error", // no trigger
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestDelayHonorsContextCancellation(t *testing.T) {
	with(t, &Plan{Rules: []Rule{{Site: "d", Kind: KindDelay, Every: 1, Delay: time.Minute}}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := HereCtx(ctx, "d")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted delay returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

func TestHangBlocksUntilCancel(t *testing.T) {
	with(t, &Plan{Rules: []Rule{{Site: "h", Kind: KindHang, Every: 1}}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- HereCtx(ctx, "h") }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled hang returned %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang did not unblock on cancellation")
	}
}

func TestParseHang(t *testing.T) {
	p, err := Parse("core.sweep.shard:hang:every=1,after=2,count=1")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if r.Kind != KindHang || r.Every != 1 || r.After != 2 || r.Count != 1 {
		t.Fatalf("rule = %+v", r)
	}
	if r.Kind.String() != "hang" {
		t.Fatalf("String() = %q", r.Kind.String())
	}
}
