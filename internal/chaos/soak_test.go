package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/serve"
)

// soakOptions mirrors the core package's checkpoint-test configuration:
// small but real, with several dataset chunks and four sweep chunks per
// half-shard so count-bounded kill/hang rules have depth to land in.
func soakOptions(dir string) core.Options {
	opts := core.DefaultOptions()
	opts.TrainSamples = 40
	opts.ValidationSamples = 5
	opts.TraceLen = 2000
	opts.Benchmarks = []string{"gzip"}
	opts.Workers = 2
	opts.CheckpointEvery = 10
	opts.SweepCheckpointEvery = 37500
	opts.CheckpointDir = dir
	opts.Resume = true
	return opts
}

// bothShards runs f for shard 0 and 1 concurrently — two workers of a
// distributed run sharing one fault plan, as two processes would share
// one inherited REPRO_FAULT_PLAN.
func bothShards(ctx context.Context, f func(ctx context.Context, i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(ctx, i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// TestSoakDistributedSweepBitIdentical is the tentpole soak: the whole
// distributed pipeline — dataset shards, dataset merge, training,
// sweep shards, sweep merge — run round after round under randomized
// seeded fault plans that compose evaluator errors, panics and delays,
// a worker kill, two worker hangs (recoverable only by cancelling the
// attempt, the in-process analogue of the coordinator's stall-kill),
// a checkpoint-write failure and a beacon-write crash. Every round
// must converge within its budget and produce training and sweep
// checkpoints byte-identical to the fault-free golden run; afterwards
// no goroutine may be left behind.
func TestSoakDistributedSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round soak")
	}
	if fault.Active() {
		t.Skip("soak arms its own plans; golden run needs a fault-free world")
	}

	goldenDir := t.TempDir()
	golden, err := core.New(soakOptions(goldenDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.ExhaustivePredict("gzip"); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "chaos")
	round := func(ctx context.Context, r int, plan *fault.Plan) error {
		// Each round is a fresh distributed run: wipe every shard file,
		// beacon and merged checkpoint from the previous one.
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := bothShards(ctx, func(ctx context.Context, i int) error {
			_, err := chaos.RunToCompletion(ctx, 10*time.Second, 8, func(actx context.Context) error {
				w, err := core.New(soakOptions(dir))
				if err != nil {
					return err
				}
				return w.BuildDatasetShard(actx, i, 2)
			})
			return err
		}); err != nil {
			return fmt.Errorf("dataset shards: %w", err)
		}
		if _, err := chaos.RunToCompletion(ctx, 10*time.Second, 8, func(context.Context) error {
			w, err := core.New(soakOptions(dir))
			if err != nil {
				return err
			}
			return w.MergeDatasetShards(2)
		}); err != nil {
			return fmt.Errorf("dataset merge: %w", err)
		}
		if err := bothShards(ctx, func(ctx context.Context, i int) error {
			_, err := chaos.RunToCompletion(ctx, 15*time.Second, 8, func(actx context.Context) error {
				// A fresh explorer per attempt is a worker restart:
				// training resumes from the merged dataset without
				// simulating, then the sweep resumes from the shard
				// checkpoint.
				w, err := core.New(soakOptions(dir))
				if err != nil {
					return err
				}
				if err := w.Train(); err != nil {
					return err
				}
				return w.SweepShard(actx, "gzip", i, 2)
			})
			return err
		}); err != nil {
			return fmt.Errorf("sweep shards: %w", err)
		}
		if _, err := chaos.RunToCompletion(ctx, 10*time.Second, 8, func(context.Context) error {
			w, err := core.New(soakOptions(dir))
			if err != nil {
				return err
			}
			return w.MergeSweepShards(2)
		}); err != nil {
			return fmt.Errorf("sweep merge: %w", err)
		}
		if err := chaos.ByteIdentical(filepath.Join(dir, "train-gzip.ckpt"), filepath.Join(goldenDir, "train-gzip.ckpt")); err != nil {
			return err
		}
		return chaos.ByteIdentical(filepath.Join(dir, "sweep-gzip.ckpt"), filepath.Join(goldenDir, "sweep-gzip.ckpt"))
	}

	rep, err := chaos.Soak(context.Background(), chaos.Options{
		Seed:   2026,
		Rounds: 2,
		Budget: 2 * time.Minute,
		Menu:   chaos.DefaultSweepMenu(),
	}, round)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections == 0 {
		t.Fatal("soak injected no faults — the drill tested nothing")
	}
	for _, rr := range rep.Rounds {
		t.Logf("round %d: plan %q, %d faults, %.1fs", rr.Round, rr.Plan, rr.Injections, rr.Seconds)
	}
}

// serveModels trains one tiny explorer and returns its saved model
// bytes — the dsed reload path minus the filesystem.
func serveModels(t *testing.T) []byte {
	t.Helper()
	e, err := core.New(soakOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSoakServeUnderLoad drills a live server: concurrent clients keep
// requesting predictions while the plan injects request-path errors,
// latency and count-bounded request hangs (survivable because the
// handler's fault site is bounded by the server's request deadline).
// Every response must be an orderly
// status, a healthy majority must succeed, the health endpoint must
// answer after the storm, and no handler goroutine may leak.
func TestSoakServeUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round soak")
	}
	if fault.Active() {
		t.Skip("soak arms its own plans")
	}
	models := serveModels(t)
	loader := func() (*core.Explorer, error) {
		e, err := core.New(soakOptions(""))
		if err != nil {
			return nil, err
		}
		if err := e.LoadModels(bytes.NewReader(models)); err != nil {
			return nil, err
		}
		return e, nil
	}

	const clients, perClient = 4, 25
	round := func(ctx context.Context, r int, plan *fault.Plan) error {
		s, err := serve.New(loader, serve.Options{RequestTimeout: time.Second})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		// Clients give up after 500ms; a hung handler is freed by the
		// server's own deadline shortly after, never left stuck.
		client := &http.Client{Timeout: 500 * time.Millisecond}
		var ok, rejected atomic.Int64
		err = bothShardsN(ctx, clients, func(ctx context.Context, c int) error {
			for i := 0; i < perClient; i++ {
				body, _ := json.Marshal(serve.PointRequest{Bench: "gzip", Indices: []int{(c*perClient + i) * 97}})
				resp, err := client.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					rejected.Add(1) // client-side timeout: the hang rule
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusInternalServerError, http.StatusTooManyRequests,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					rejected.Add(1) // orderly refusals under injected faults
				default:
					return fmt.Errorf("request %d/%d: unexpected status %d", c, i, resp.StatusCode)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if got := ok.Load(); got < clients*perClient/4 {
			return fmt.Errorf("only %d of %d requests succeeded (%d orderly failures)",
				got, clients*perClient, rejected.Load())
		}
		// The storm over, the server must still report healthy.
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			return fmt.Errorf("healthz after load: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz after load: status %d", resp.StatusCode)
		}
		return nil
	}

	rep, err := chaos.Soak(context.Background(), chaos.Options{
		Seed:   2026,
		Rounds: 3,
		Budget: time.Minute,
		Menu:   chaos.DefaultServeMenu(),
	}, round)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections == 0 {
		t.Fatal("soak injected no faults — the drill tested nothing")
	}
	for _, rr := range rep.Rounds {
		t.Logf("round %d: plan %q, %d faults, %.1fs", rr.Round, rr.Plan, rr.Injections, rr.Seconds)
	}
}

// bothShardsN generalizes bothShards to n concurrent workers.
func bothShardsN(ctx context.Context, n int, f func(ctx context.Context, i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(ctx, i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
