// Package chaos composes the repository's deterministic
// fault-injection primitives into randomized — but seeded and therefore
// reproducible — soak drills. A Menu bounds what kinds of damage may be
// done at which sites; RandomPlan draws one concrete fault.Plan from a
// seed, arming every menu entry; Soak runs a workload round after round
// under freshly drawn plans and checks the robustness invariants that
// the rest of the repository promises one at a time: every round
// completes within its wall budget, and no goroutines leak. What the
// workload itself must guarantee (typically byte-identical artifacts
// versus a fault-free run) is asserted by the round callback with
// ByteIdentical.
//
// The package deliberately knows nothing about explorers, shards or
// servers: it manipulates only fault plans and clocks, so any workload
// — in-process library calls or forked worker processes — can be put
// under soak.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/fault"
)

// RuleSpec bounds one randomized fault rule: the site and kind are
// fixed, the firing schedule is drawn per plan. Exactly one of MaxProb
// (probabilistic firing) and Every (modular schedule) should be set,
// mirroring fault.Rule.
type RuleSpec struct {
	Site string
	Kind fault.Kind

	// MaxProb caps the drawn per-visit firing probability. The draw is
	// kept in [MaxProb/4, MaxProb] so every armed rule stays live — a
	// probability rounding to zero would silently drop the rule from
	// the drill.
	MaxProb float64

	// Every fires on every Every-th visit (used when MaxProb is zero);
	// passed through to the rule unchanged.
	Every int64

	// MaxAfter caps the drawn warm-up: the rule ignores the first
	// [0, MaxAfter] visits, so faults land at a different depth of the
	// run each round.
	MaxAfter int64

	// Count caps total firings, passed through unchanged. Kinds that
	// can only be survived by supervision (KindHang, KindFatal) should
	// set it, or a round may never converge.
	Count int64

	// MaxDelay caps the drawn sleep for KindDelay rules; the draw is
	// kept in [MaxDelay/4, MaxDelay].
	MaxDelay time.Duration
}

// Menu is the damage a drill is allowed to do: one spec per rule, all
// of them armed in every drawn plan.
type Menu []RuleSpec

// DefaultSweepMenu is the standard drill for a distributed
// dataset-build + sweep workload. It composes, in one plan, every fault
// class the pipeline claims to survive: transient evaluator errors,
// evaluator panics (recovered and retried by the eval engine),
// evaluator delays, a worker killed outright mid-sweep, workers hung at
// a checkpoint chunk (recoverable only by liveness supervision), a
// checkpoint write failure, and a crash during beacon publication.
// Hangs and kills are count-bounded so a supervised run always
// converges.
func DefaultSweepMenu() Menu {
	return Menu{
		{Site: "eval.invoke", Kind: fault.KindError, MaxProb: 0.02},
		{Site: "eval.invoke", Kind: fault.KindPanic, MaxProb: 0.005},
		{Site: "eval.invoke", Kind: fault.KindDelay, MaxProb: 0.01, MaxDelay: 2 * time.Millisecond},
		{Site: "core.dataset.shard", Kind: fault.KindHang, Every: 1, MaxAfter: 2, Count: 1},
		{Site: "core.sweep.shard", Kind: fault.KindFatal, Every: 1, MaxAfter: 2, Count: 1},
		{Site: "core.sweep.shard", Kind: fault.KindHang, Every: 1, MaxAfter: 3, Count: 1},
		{Site: "ckpt.save", Kind: fault.KindError, MaxProb: 0.01},
		{Site: "shard.beacon", Kind: fault.KindFatal, Every: 1, MaxAfter: 4, Count: 1},
	}
}

// DefaultServeMenu is the standard drill for a live dsed under client
// load: request-path errors, injected latency, and count-bounded
// request hangs (survivable because the handler's fault site is bounded
// by the server's request deadline — a hung handler times out instead
// of pinning its goroutine forever), plus the evaluator faults behind
// the endpoints.
func DefaultServeMenu() Menu {
	return Menu{
		{Site: "serve.request", Kind: fault.KindError, MaxProb: 0.05},
		{Site: "serve.request", Kind: fault.KindDelay, MaxProb: 0.05, MaxDelay: 20 * time.Millisecond},
		{Site: "serve.request", Kind: fault.KindHang, Every: 1, MaxAfter: 10, Count: 2},
		{Site: "eval.invoke", Kind: fault.KindError, MaxProb: 0.02},
		{Site: "eval.invoke", Kind: fault.KindPanic, MaxProb: 0.005},
		{Site: "eval.invoke", Kind: fault.KindDelay, MaxProb: 0.01, MaxDelay: 2 * time.Millisecond},
	}
}

// splitmix64 is the finalizer behind the package's deterministic draws
// (the same mixer the fault and eval packages use, so one seed namespace
// behaves consistently across the repository).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// drawStream is a tiny deterministic sequence over splitmix64: enough
// randomness to vary a drill, no global state, identical on every
// platform.
type drawStream struct{ state uint64 }

func (d *drawStream) next() uint64 {
	d.state++
	return splitmix64(d.state)
}

// unit returns a draw in [0, 1).
func (d *drawStream) unit() float64 {
	return float64(d.next()>>11) / float64(1<<53)
}

// RandomPlan draws one concrete fault plan from the seed: every menu
// entry becomes a rule, with its free parameters (probability, warm-up,
// delay) drawn from a splitmix64 stream over the seed. The same seed
// and menu always produce the identical plan — a failing soak round is
// re-runnable from its reported seed alone. The plan's own Seed (which
// drives per-visit probabilistic draws inside the fault package) is
// derived from the same stream.
func RandomPlan(seed uint64, menu Menu) *fault.Plan {
	d := &drawStream{state: seed}
	p := &fault.Plan{Seed: d.next()}
	for _, spec := range menu {
		r := fault.Rule{
			Site:  spec.Site,
			Kind:  spec.Kind,
			Every: spec.Every,
			Count: spec.Count,
		}
		if spec.MaxProb > 0 {
			r.Prob = spec.MaxProb * (0.25 + 0.75*d.unit())
			r.Every = 0
		}
		if spec.MaxAfter > 0 {
			r.After = int64(d.next() % uint64(spec.MaxAfter+1))
		}
		if spec.MaxDelay > 0 {
			r.Delay = time.Duration(float64(spec.MaxDelay) * (0.25 + 0.75*d.unit()))
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}

// PlanString renders a drawn plan compactly for logs and failure
// messages, one rule per semicolon-separated clause in the same spirit
// as fault.Parse input.
func PlanString(p *fault.Plan) string {
	s := fmt.Sprintf("seed=%d", p.Seed)
	for _, r := range p.Rules {
		s += fmt.Sprintf(";%s:%s", r.Site, r.Kind)
		if r.Prob > 0 {
			s += fmt.Sprintf(":p=%.4f", r.Prob)
		}
		if r.Every > 0 {
			s += fmt.Sprintf(":every=%d", r.Every)
		}
		if r.After > 0 {
			s += fmt.Sprintf(",after=%d", r.After)
		}
		if r.Count > 0 {
			s += fmt.Sprintf(",count=%d", r.Count)
		}
		if r.Delay > 0 {
			s += fmt.Sprintf(",delay=%s", r.Delay)
		}
	}
	return s
}
