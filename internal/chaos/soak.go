package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Options configures a soak drill.
type Options struct {
	// Seed anchors every random draw in the drill: round r runs under
	// RandomPlan(splitmix64(Seed^r), Menu). Re-running with the same
	// seed, menu and round count replays the identical fault sequence.
	Seed uint64

	// Rounds is how many independently drawn plans to run the workload
	// under. 0 means 1.
	Rounds int

	// Budget bounds each round's wall time; a round that has not
	// completed when it expires fails the soak — the liveness claim
	// under test is "faulty runs still finish unattended". 0 means
	// DefaultBudget.
	Budget time.Duration

	// Menu is the damage the drill may do. Required.
	Menu Menu

	// SettleTimeout bounds the post-drill wait for the goroutine count
	// to return to its pre-drill baseline (the leak check). 0 means
	// DefaultSettleTimeout.
	SettleTimeout time.Duration
}

// DefaultBudget is the per-round wall budget when Options.Budget is 0:
// generous next to a healthy round so only a genuine liveness failure
// (a hang nothing recovered) spends it.
const DefaultBudget = 2 * time.Minute

// DefaultSettleTimeout is the post-drill goroutine-settle allowance.
const DefaultSettleTimeout = 10 * time.Second

// goroutineSlack is how many goroutines above the pre-drill baseline
// the settle check tolerates: the runtime parks helper goroutines
// (timer and netpoll machinery) that are not leaks.
const goroutineSlack = 3

// RoundReport records one soak round for the drill's summary.
type RoundReport struct {
	Round      int
	Seed       uint64
	Plan       string  // PlanString of the drawn plan
	Injections int64   // faults actually fired during the round
	Seconds    float64 // round wall time
}

// Report summarizes a completed soak.
type Report struct {
	Rounds     []RoundReport
	Injections int64 // total faults fired across all rounds
}

// Soak runs the workload once per round, each round under a freshly
// drawn fault plan, and enforces the drill-level invariants: every
// round returns nil within its wall budget, and the process's goroutine
// count settles back to its pre-drill baseline afterwards (nothing the
// faults interrupted leaked a worker). The round callback receives the
// armed plan so it can include it in its own failure messages; content
// invariants — merged artifacts byte-identical to a fault-free run,
// servers answering health checks — belong in the callback, next to the
// workload that produces them.
//
// The previously armed fault plan (if any) is restored on return, so a
// soak composes with test-matrix runs that arm a global plan.
func Soak(ctx context.Context, opts Options, round func(ctx context.Context, r int, plan *fault.Plan) error) (*Report, error) {
	if len(opts.Menu) == 0 {
		return nil, errors.New("chaos: Soak requires a non-empty Menu")
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	settle := opts.SettleTimeout
	if settle <= 0 {
		settle = DefaultSettleTimeout
	}

	prior := fault.Current()
	defer fault.Enable(prior)
	baseline := runtime.NumGoroutine()

	rep := &Report{}
	for r := 0; r < rounds; r++ {
		seed := splitmix64(opts.Seed ^ uint64(r))
		plan := RandomPlan(seed, opts.Menu)
		before := injectionCount()
		fault.Enable(plan)
		rctx, cancel := context.WithTimeout(ctx, budget)
		start := time.Now()
		err := round(rctx, r, plan)
		cancel()
		fault.Enable(prior)
		rr := RoundReport{
			Round:      r,
			Seed:       seed,
			Plan:       PlanString(plan),
			Injections: injectionCount() - before,
			Seconds:    time.Since(start).Seconds(),
		}
		rep.Rounds = append(rep.Rounds, rr)
		rep.Injections += rr.Injections
		if err != nil {
			return rep, fmt.Errorf("chaos: round %d (plan %q) failed after %.1fs with %d faults injected: %w",
				r, rr.Plan, rr.Seconds, rr.Injections, err)
		}
	}

	if err := settleGoroutines(baseline, settle); err != nil {
		return rep, err
	}
	return rep, nil
}

// injectionCount reads the fault package's global firing counter.
func injectionCount() int64 {
	return obs.DefaultRegistry.CounterValues()["fault.injections"]
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack), polling briefly; a count that never settles
// means a fault stranded a worker — exactly the leak class hangs
// produce when some path forgets its context.
func settleGoroutines(baseline int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+goroutineSlack {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("chaos: %d goroutines after drill, baseline %d — leak suspected\n%s",
				n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RunToCompletion drives one fallible operation to success with bounded
// per-attempt wall time: the in-process analogue of the coordinator's
// stall-kill-restart loop. Each attempt runs under a child context with
// attemptTimeout; an attempt that hangs at a context-honouring fault
// site is cancelled and retried, an attempt that fails is retried, and
// the operation is expected to make durable progress (checkpoints)
// between attempts so the sequence converges. Returns the number of
// attempts consumed alongside the first success or the final error.
func RunToCompletion(ctx context.Context, attemptTimeout time.Duration, maxAttempts int, op func(ctx context.Context) error) (int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var err error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		actx, cancel := context.WithTimeout(ctx, attemptTimeout)
		err = op(actx)
		cancel()
		if err == nil {
			return attempt, nil
		}
		if ctx.Err() != nil {
			return attempt, fmt.Errorf("chaos: run abandoned after attempt %d: %w (last attempt: %v)", attempt, ctx.Err(), err)
		}
	}
	return maxAttempts, fmt.Errorf("chaos: still failing after %d attempts: %w", maxAttempts, err)
}

// ByteIdentical asserts two files hold identical bytes — the merge
// guarantee every distributed drill checks against its fault-free
// golden run.
func ByteIdentical(got, want string) error {
	g, err := os.ReadFile(got)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	w, err := os.ReadFile(want)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if !bytes.Equal(g, w) {
		return fmt.Errorf("chaos: %s (%d bytes) differs from %s (%d bytes)", got, len(g), want, len(w))
	}
	return nil
}
