package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestRandomPlanDeterministicPerSeed(t *testing.T) {
	menu := DefaultSweepMenu()
	a := RandomPlan(42, menu)
	b := RandomPlan(42, menu)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different plans:\n%s\n%s", PlanString(a), PlanString(b))
	}
	c := RandomPlan(43, menu)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew identical plans: %s", PlanString(a))
	}
}

// TestRandomPlanArmsEveryMenuEntry: a drawn plan must keep every spec
// live — a probabilistic rule with a zero probability would silently
// drop a fault class from the drill.
func TestRandomPlanArmsEveryMenuEntry(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		for _, menu := range []Menu{DefaultSweepMenu(), DefaultServeMenu()} {
			p := RandomPlan(seed, menu)
			if len(p.Rules) != len(menu) {
				t.Fatalf("seed %d: %d rules from %d specs", seed, len(p.Rules), len(menu))
			}
			for i, r := range p.Rules {
				spec := menu[i]
				if r.Site != spec.Site || r.Kind != spec.Kind {
					t.Fatalf("seed %d rule %d: %s:%v, want %s:%v", seed, i, r.Site, r.Kind, spec.Site, spec.Kind)
				}
				if spec.MaxProb > 0 {
					if r.Prob < spec.MaxProb/4 || r.Prob > spec.MaxProb {
						t.Fatalf("seed %d rule %d: prob %v outside [%v/4, %v]", seed, i, r.Prob, spec.MaxProb, spec.MaxProb)
					}
				} else if r.Every != spec.Every {
					t.Fatalf("seed %d rule %d: every %d, want %d", seed, i, r.Every, spec.Every)
				}
				if r.After < 0 || r.After > spec.MaxAfter {
					t.Fatalf("seed %d rule %d: after %d outside [0, %d]", seed, i, r.After, spec.MaxAfter)
				}
				if spec.MaxDelay > 0 && (r.Delay < spec.MaxDelay/4 || r.Delay > spec.MaxDelay) {
					t.Fatalf("seed %d rule %d: delay %v outside [%v/4, %v]", seed, i, r.Delay, spec.MaxDelay, spec.MaxDelay)
				}
				if r.Count != spec.Count {
					t.Fatalf("seed %d rule %d: count %d, want %d", seed, i, r.Count, spec.Count)
				}
			}
		}
	}
}

// TestDefaultSweepMenuCoversFaultKinds: the acceptance bar is panic,
// fatal, delay and hang rules composed in one plan.
func TestDefaultSweepMenuCoversFaultKinds(t *testing.T) {
	kinds := map[fault.Kind]bool{}
	for _, spec := range DefaultSweepMenu() {
		kinds[spec.Kind] = true
	}
	for _, k := range []fault.Kind{fault.KindError, fault.KindPanic, fault.KindFatal, fault.KindDelay, fault.KindHang} {
		if !kinds[k] {
			t.Errorf("DefaultSweepMenu has no %v rule", k)
		}
	}
}

func TestPlanStringMentionsEveryRule(t *testing.T) {
	p := RandomPlan(7, DefaultSweepMenu())
	s := PlanString(p)
	if !strings.HasPrefix(s, "seed=") {
		t.Fatalf("plan string %q does not lead with the seed", s)
	}
	for _, r := range p.Rules {
		if !strings.Contains(s, r.Site+":"+r.Kind.String()) {
			t.Errorf("plan string %q omits %s:%v", s, r.Site, r.Kind)
		}
	}
}

// TestRunToCompletionUnhangsAndConverges: an operation that hangs on
// its context (the in-process analogue of a worker stuck at a
// KindHang site) is cancelled by the per-attempt timeout; the next
// attempt succeeds.
func TestRunToCompletionUnhangsAndConverges(t *testing.T) {
	calls := 0
	attempts, err := RunToCompletion(context.Background(), 50*time.Millisecond, 5, func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("RunToCompletion = (%d, %v), want (2, nil)", attempts, err)
	}
}

func TestRunToCompletionReportsExhaustion(t *testing.T) {
	boom := errors.New("boom")
	attempts, err := RunToCompletion(context.Background(), time.Second, 3, func(context.Context) error { return boom })
	if attempts != 3 || !errors.Is(err, boom) {
		t.Fatalf("RunToCompletion = (%d, %v), want (3, wrapped boom)", attempts, err)
	}
}

func TestRunToCompletionHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunToCompletion(ctx, time.Second, 10, func(ctx context.Context) error { return ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunToCompletion under cancelled parent = %v, want context.Canceled", err)
	}
}

// TestSoakRestoresPriorPlan: a soak must not leave its drill plan armed
// — the global fault state belongs to whoever armed it first.
func TestSoakRestoresPriorPlan(t *testing.T) {
	prior := fault.Current()
	defer fault.Enable(prior)
	mine := &fault.Plan{Rules: []fault.Rule{{Site: "nowhere", Kind: fault.KindError, Every: 1}}}
	fault.Enable(mine)

	var saw *fault.Plan
	rep, err := Soak(context.Background(), Options{Seed: 1, Rounds: 2, Menu: DefaultSweepMenu(), Budget: time.Second},
		func(ctx context.Context, r int, plan *fault.Plan) error {
			saw = fault.Current()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d round reports, want 2", len(rep.Rounds))
	}
	if saw == mine {
		t.Fatal("round ran under the prior plan, not the drawn one")
	}
	if fault.Current() != mine {
		t.Fatalf("soak left plan %v armed, want the prior plan restored", fault.Current())
	}
}

func TestSoakReportsRoundFailure(t *testing.T) {
	if fault.Active() {
		t.Skip("soak arms its own plans")
	}
	boom := errors.New("round broke")
	rep, err := Soak(context.Background(), Options{Seed: 9, Rounds: 3, Menu: DefaultSweepMenu(), Budget: time.Second},
		func(ctx context.Context, r int, plan *fault.Plan) error {
			if r == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("Soak = %v, want wrapped round error", err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d round reports before failure, want 2", len(rep.Rounds))
	}
	if !strings.Contains(err.Error(), "seed=") {
		t.Fatalf("failure %q does not carry the replay plan", err)
	}
}

func TestSoakRequiresMenu(t *testing.T) {
	if _, err := Soak(context.Background(), Options{}, func(context.Context, int, *fault.Plan) error { return nil }); err == nil {
		t.Fatal("empty menu accepted")
	}
}
