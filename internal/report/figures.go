package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Figure1 renders the validation error distributions (boxplots of
// |obs-pred|/pred for performance and power per benchmark).
func Figure1(rep *core.ValidationReport) string {
	var b strings.Builder
	b.WriteString("Figure 1: prediction error distributions, random validation designs\n")
	b.WriteString("(scale 0% ....................................... 50%)\n")
	render := func(label string, errs []float64) {
		box := stats.NewBoxplot(errs)
		fmt.Fprintf(&b, "  %-12s %s med=%5.1f%%\n", label, RenderBoxplot(box, 0, 0.5, 44), box.Med*100)
	}
	for _, be := range rep.PerBenchmark {
		render(be.Benchmark+" perf", be.Perf)
		render(be.Benchmark+" power", be.Power)
	}
	perf, pow := rep.OverallMedians()
	fmt.Fprintf(&b, "overall median: performance %.1f%%, power %.1f%% (paper: 7.2%%, 5.4%%)\n",
		perf*100, pow*100)
	return b.String()
}

// Figure2 summarizes the exhaustive design-space characterization: the
// scatter's cluster structure as one row per (depth, width) combination
// with delay and power ranges. The full scatter is available through
// Figure2CSV.
func Figure2(space *arch.Space, res *paretostudy.Result) string {
	type key struct{ depth, width int }
	type agg struct {
		minD, maxD, minP, maxP float64
		n                      int
	}
	groups := make(map[key]*agg)
	for _, p := range res.Characterization {
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		cfg := space.Config(space.PointAt(p.Index))
		k := key{cfg.DepthFO4, cfg.Width}
		d := metrics.Delay(p.BIPS)
		a, ok := groups[k]
		if !ok {
			groups[k] = &agg{minD: d, maxD: d, minP: p.Watts, maxP: p.Watts, n: 1}
			continue
		}
		if d < a.minD {
			a.minD = d
		}
		if d > a.maxD {
			a.maxD = d
		}
		if p.Watts < a.minP {
			a.minP = p.Watts
		}
		if p.Watts > a.maxP {
			a.maxP = p.Watts
		}
		a.n++
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].depth != keys[j].depth {
			return keys[i].depth < keys[j].depth
		}
		return keys[i].width < keys[j].width
	})
	t := NewTable(
		fmt.Sprintf("Figure 2 (%s): predicted delay-power clusters by depth-width combination", res.Benchmark),
		"depth", "width", "designs", "delay range (s)", "power range (W)")
	for _, k := range keys {
		a := groups[k]
		t.AddRow(
			fmt.Sprintf("%dFO4", k.depth),
			fmt.Sprintf("%d", k.width),
			fmt.Sprintf("%d", a.n),
			fmt.Sprintf("%.3f-%.3f", a.minD, a.maxD),
			fmt.Sprintf("%.1f-%.1f", a.minP, a.maxP),
		)
	}
	return t.String()
}

// Figure3 renders the modeled versus simulated pareto frontier.
func Figure3(res *paretostudy.Result) string {
	t := NewTable(
		fmt.Sprintf("Figure 3 (%s): pareto frontier, model vs simulation", res.Benchmark),
		"design", "model delay", "model power", "sim delay", "sim power")
	for _, fp := range res.Frontier {
		simD, simP := "-", "-"
		if fp.SimDelay > 0 {
			simD = fmt.Sprintf("%.3f", fp.SimDelay)
			simP = fmt.Sprintf("%.1f", fp.SimPower)
		}
		t.AddRow(fp.Config.String(),
			fmt.Sprintf("%.3f", fp.ModelDelay),
			fmt.Sprintf("%.1f", fp.ModelPower),
			simD, simP)
	}
	return t.String()
}

// Figure4 renders the frontier prediction-error boxplots.
func Figure4(results map[string]*paretostudy.Result) string {
	var b strings.Builder
	b.WriteString("Figure 4: prediction error for pareto frontier designs\n")
	b.WriteString("(scale 0% ....................................... 50%)\n")
	for _, bench := range sortedKeys(results) {
		r := results[bench]
		if len(r.PerfErrs) == 0 {
			continue
		}
		pb := stats.NewBoxplot(r.PerfErrs)
		wb := stats.NewBoxplot(r.PowerErrs)
		fmt.Fprintf(&b, "  %-12s %s med=%5.1f%%\n", bench+" perf", RenderBoxplot(pb, 0, 0.5, 44), pb.Med*100)
		fmt.Fprintf(&b, "  %-12s %s med=%5.1f%%\n", bench+" power", RenderBoxplot(wb, 0, 0.5, 44), wb.Med*100)
	}
	if perf, pow, ok := paretostudy.ErrorSummary(results); ok {
		fmt.Fprintf(&b, "overall median: performance %.1f%%, power %.1f%% (paper: 8.7%%, 5.5%%)\n",
			perf*100, pow*100)
	}
	return b.String()
}

// Table2 renders the per-benchmark bips^3/w-optimal architectures with
// model predictions and signed errors, the paper's Table 2.
func Table2(results map[string]*paretostudy.Result) string {
	t := NewTable("Table 2: bips^3/w maximizing per-benchmark architectures",
		"bench", "depth", "width", "reg", "resv", "i$", "d$", "l2",
		"delay", "err", "power", "err")
	for _, bench := range sortedKeys(results) {
		o := results[bench].Best
		c := o.Config
		t.AddRow(bench,
			fmt.Sprintf("%d", c.DepthFO4),
			fmt.Sprintf("%d", c.Width),
			fmt.Sprintf("%d", c.GPR),
			fmt.Sprintf("%d", c.ResvBR),
			KB(c.IL1KB), KB(c.DL1KB), KB(c.L2KB),
			fmt.Sprintf("%.3f", o.ModelDelay),
			Pct(o.DelayErr),
			fmt.Sprintf("%.1f", o.ModelPower),
			Pct(o.PowerErr),
		)
	}
	return t.String()
}

// Figure5a renders the original (line) versus enhanced (boxplot) depth
// analyses, relative to the original bips^3/w optimum.
func Figure5a(avg *depthstudy.SuiteAverage) string {
	var b strings.Builder
	b.WriteString("Figure 5a: efficiency vs pipeline depth, original (line) and enhanced (boxes)\n")
	b.WriteString("values relative to the original-analysis optimum\n")
	t := NewTable("", "depth", "original", "q1", "median", "q3", "box max", "bound rel", ">baseline")
	for i, d := range avg.Depths {
		t.AddRow(
			fmt.Sprintf("%dFO4", d),
			fmt.Sprintf("%.3f", avg.OriginalRel[i]),
			fmt.Sprintf("%.3f", avg.Q1Rel[i]),
			fmt.Sprintf("%.3f", avg.MedianRel[i]),
			fmt.Sprintf("%.3f", avg.Q3Rel[i]),
			fmt.Sprintf("%.3f", avg.MaxRel[i]),
			fmt.Sprintf("%.3f", avg.BoundRel[i]),
			Pct(avg.FracBeatsBaseline[i]),
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "optimal depth: original %d FO4, bound architectures %d FO4 (paper: 18, 15-18)\n",
		avg.BestOriginalDepth, avg.BestBoundDepth)
	return b.String()
}

// Figure5b renders the D-L1 size distribution among 95th-percentile
// designs at each depth, averaged across benchmarks.
func Figure5b(results map[string]*depthstudy.Result, space *arch.Space) string {
	sizes := space.DL1Levels()
	headers := []string{"depth"}
	for _, s := range sizes {
		headers = append(headers, KB(s))
	}
	t := NewTable("Figure 5b: D-L1 sizes among top-5% designs per depth (suite average)", headers...)
	var depths []int
	for _, r := range results {
		for _, row := range r.Rows {
			depths = append(depths, row.DepthFO4)
		}
		break
	}
	for di, d := range depths {
		row := []string{fmt.Sprintf("%dFO4", d)}
		for _, s := range sizes {
			var sum float64
			var n int
			for _, r := range results {
				sum += r.Rows[di].DL1Histogram[s]
				n++
			}
			row = append(row, Pct(sum/float64(n)))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Figure6 renders predicted versus simulated relative efficiency for the
// original and enhanced (bound) analyses.
func Figure6(avg *depthstudy.SuiteAverage) string {
	t := NewTable("Figure 6: predicted vs simulated bips^3/w (relative to each curve's max)",
		"depth", "orig model", "orig sim", "bound model", "bound sim")
	for i, d := range avg.Depths {
		simO, simB := "-", "-"
		if avg.OriginalSimRel[i] > 0 {
			simO = fmt.Sprintf("%.3f", avg.OriginalSimRel[i])
			simB = fmt.Sprintf("%.3f", avg.BoundSimRel[i])
		}
		t.AddRow(
			fmt.Sprintf("%dFO4", d),
			fmt.Sprintf("%.3f", avg.OriginalRel[i]),
			simO,
			fmt.Sprintf("%.3f", avg.BoundRel[i]),
			simB,
		)
	}
	return t.String()
}

// Figure7 decomposes the depth validation into performance and power for
// one benchmark's original and bound designs.
func Figure7(res *depthstudy.Result) string {
	t := NewTable(
		fmt.Sprintf("Figure 7 (%s): performance and power, model vs simulation", res.Benchmark),
		"depth", "orig bips (m/s)", "orig watts (m/s)", "bound bips (m/s)", "bound watts (m/s)")
	for _, row := range res.Rows {
		fmtPair := func(m, s float64) string {
			if s > 0 {
				return fmt.Sprintf("%.2f/%.2f", m, s)
			}
			return fmt.Sprintf("%.2f/-", m)
		}
		t.AddRow(
			fmt.Sprintf("%dFO4", row.DepthFO4),
			fmtPair(row.OriginalModelBIPS, row.OriginalSimBIPS),
			fmtPair(row.OriginalModelWatts, row.OriginalSimWatts),
			fmtPair(row.BoundModelBIPS, row.BoundSimBIPS),
			fmtPair(row.BoundModelWatts, row.BoundSimWatts),
		)
	}
	return t.String()
}

// Table4 renders the K=4 compromise architectures.
func Table4(res *heterostudy.Result) string {
	if len(res.Levels) < 4 {
		return "Table 4: (needs a K=4 clustering)\n"
	}
	lvl := res.Levels[3]
	t := NewTable("Table 4: K=4 compromise architectures",
		"cluster", "depth", "width", "reg", "resv", "i$", "d$", "l2",
		"avg delay", "avg power", "benchmarks")
	for i, comp := range lvl.Compromises {
		c := comp.Config
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", c.DepthFO4),
			fmt.Sprintf("%d", c.Width),
			fmt.Sprintf("%d", c.GPR),
			fmt.Sprintf("%d", c.ResvBR),
			KB(c.IL1KB), KB(c.DL1KB), KB(c.L2KB),
			fmt.Sprintf("%.3f", comp.AvgDelay),
			fmt.Sprintf("%.1f", comp.AvgPower),
			strings.Join(comp.Benchmarks, ", "),
		)
	}
	return t.String()
}

// Figure8 renders delay-power coordinates of the per-benchmark optima and
// the K=4 compromises.
func Figure8(res *heterostudy.Result) string {
	t := NewTable("Figure 8: delay and power of per-benchmark optima (x) and K=4 compromises (O)",
		"point", "delay (s)", "power (W)", "architecture")
	for _, bench := range sortedOptima(res) {
		o := res.Optima[bench]
		t.AddRow("x "+bench, fmt.Sprintf("%.3f", o.Delay), fmt.Sprintf("%.1f", o.Power), o.Config.String())
	}
	if len(res.Levels) >= 4 {
		for i, comp := range res.Levels[3].Compromises {
			t.AddRow(
				fmt.Sprintf("O c%d", i+1),
				fmt.Sprintf("%.3f", comp.AvgDelay),
				fmt.Sprintf("%.1f", comp.AvgPower),
				comp.Config.String(),
			)
		}
	}
	return t.String()
}

// Figure9 renders efficiency gains versus cluster count, predicted and
// simulated.
func Figure9(res *heterostudy.Result, benches []string) string {
	headers := []string{"K", "avg model", "avg sim", "silhouette"}
	headers = append(headers, benches...)
	t := NewTable("Figure 9: bips^3/w gains vs degree of heterogeneity (relative to baseline)", headers...)
	baseRow := []string{"0", "1.00", "1.00", "-"}
	for range benches {
		baseRow = append(baseRow, "1.00")
	}
	t.AddRow(baseRow...)
	for _, lvl := range res.Levels {
		row := []string{fmt.Sprintf("%d", lvl.K), fmt.Sprintf("%.2f", lvl.AvgModelGain)}
		if lvl.AvgSimGain > 0 {
			row = append(row, fmt.Sprintf("%.2f", lvl.AvgSimGain))
		} else {
			row = append(row, "-")
		}
		if lvl.K >= 2 {
			row = append(row, fmt.Sprintf("%.2f", lvl.Silhouette))
		} else {
			row = append(row, "-")
		}
		for _, b := range benches {
			row = append(row, fmt.Sprintf("%.2f", lvl.ModelGain[b]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func sortedKeys(m map[string]*paretostudy.Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedOptima(res *heterostudy.Result) []string {
	keys := make([]string, 0, len(res.Optima))
	for k := range res.Optima {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
