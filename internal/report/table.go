// Package report renders the paper's tables and figures as aligned text
// tables, ASCII boxplots, and CSV series. Every artifact of the paper's
// evaluation (Tables 1-4, Figures 1-9) has a formatter here; cmd/dse and
// the benchmark harness use them to regenerate the paper's outputs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is an aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with the verb given per
// cell as a (format, value) convenience. Values format with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3g", v))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits headers and rows as comma-separated values. Cells
// containing commas or quotes are quoted.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderBoxplot draws a boxplot as a one-line ASCII gauge over [lo, hi]:
//
//	|---[==M==]------|        o
//
// with whiskers (|), the interquartile box ([ ]), the median (M) and
// outliers (o). Values outside [lo, hi] clamp to the edges. width is the
// number of character cells; values below 10 are raised to 10.
func RenderBoxplot(b stats.Boxplot, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		hi = lo + 1
	}
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = ' '
	}
	pos := func(v float64) int {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		p := int(math.Round(f * float64(width-1)))
		return p
	}
	// Whisker span.
	loW, hiW := pos(b.LoWhisker), pos(b.HiWhisker)
	for i := loW; i <= hiW; i++ {
		cells[i] = '-'
	}
	cells[loW] = '|'
	cells[hiW] = '|'
	// Box.
	q1, q3 := pos(b.Q1), pos(b.Q3)
	for i := q1; i <= q3; i++ {
		cells[i] = '='
	}
	cells[q1] = '['
	cells[q3] = ']'
	// Median and outliers last so they stay visible.
	for _, o := range b.Outliers {
		cells[pos(o)] = 'o'
	}
	cells[pos(b.Med)] = 'M'
	return string(cells)
}

// Pct formats a ratio as a signed percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// KB formats a kilobyte capacity, switching to MB when appropriate
// (matching the paper's table conventions).
func KB(kb int) string {
	if kb >= 1024 {
		return fmt.Sprintf("%gMB", float64(kb)/1024)
	}
	return fmt.Sprintf("%dKB", kb)
}
