package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/stats"
)

// Synthetic study fixtures small enough to assert against exactly.

func sampleParetoResult() *paretostudy.Result {
	space := arch.ExplorationSpace()
	cfgA := space.Config(arch.Point{0, 0, 0, 0, 0, 0, 0})
	cfgB := space.Config(arch.Point{6, 2, 9, 9, 4, 4, 4})
	return &paretostudy.Result{
		Benchmark: "gzip",
		Characterization: []core.Prediction{
			{Index: 0, BIPS: 1.0, Watts: 20},
			{Index: space.FlatIndex(arch.Point{6, 2, 9, 9, 4, 4, 4}), BIPS: 0.5, Watts: 60},
			{Index: 1, BIPS: -1, Watts: 0}, // invalid: must be skipped
		},
		Frontier: []paretostudy.FrontierPoint{
			{Index: 0, Config: cfgA, ModelDelay: 0.10, ModelPower: 20, SimDelay: 0.11, SimPower: 19},
			{Index: 1, Config: cfgB, ModelDelay: 0.20, ModelPower: 10},
		},
		PerfErrs:  []float64{0.05, 0.07},
		PowerErrs: []float64{0.02, 0.03},
		Best: paretostudy.Optimum{
			Benchmark:  "gzip",
			Config:     cfgA,
			ModelDelay: 0.1, ModelPower: 20,
			SimDelay: 0.11, SimPower: 19,
			DelayErr: -0.09, PowerErr: 0.05,
		},
	}
}

func sampleDepthResult() (*depthstudy.Result, *depthstudy.SuiteAverage) {
	box := stats.NewBoxplot([]float64{0.5, 0.8, 1.0, 1.2, 1.5})
	res := &depthstudy.Result{
		Benchmark:         "gzip",
		OriginalBestDepth: 18,
		OriginalBestEff:   1,
	}
	for _, d := range []int{12, 15, 18, 21, 24, 27, 30} {
		res.Rows = append(res.Rows, depthstudy.DepthRow{
			DepthFO4:          d,
			OriginalModelBIPS: 1, OriginalModelWatts: 20, OriginalModelEff: 0.9,
			OriginalSimBIPS: 1.1, OriginalSimWatts: 21, OriginalSimEff: 0.95,
			EffBox:        box,
			BoundModelEff: 1.2, BoundModelBIPS: 1.3, BoundModelWatts: 25,
			BoundSimEff: 1.1, BoundSimBIPS: 1.25, BoundSimWatts: 26,
			FracBeatsBaseline: 0.4,
			DL1Histogram:      map[int]float64{8: 0.2, 16: 0.2, 32: 0.2, 64: 0.2, 128: 0.2},
			BoundConfig:       arch.Baseline(),
		})
	}
	avg, err := depthstudy.Average(map[string]*depthstudy.Result{"gzip": res})
	if err != nil {
		panic(err)
	}
	return res, avg
}

func sampleHeteroResult() *heterostudy.Result {
	base := arch.Baseline()
	res := &heterostudy.Result{
		Optima: map[string]heterostudy.OptimumPoint{
			"gzip": {Config: base, Delay: 0.1, Power: 20, Eff: 0.5},
			"mcf":  {Config: base, Delay: 0.5, Power: 10, Eff: 0.01},
		},
		BaselineModelEff: map[string]float64{"gzip": 0.3, "mcf": 0.008},
	}
	for k := 1; k <= 4; k++ {
		lvl := heterostudy.ClusterLevel{
			K:            k,
			Compromises:  []heterostudy.Compromise{{Config: base, Benchmarks: []string{"gzip", "mcf"}, AvgDelay: 0.3, AvgPower: 15}},
			Assign:       map[string]int{"gzip": 0, "mcf": 0},
			ModelGain:    map[string]float64{"gzip": 1.5, "mcf": 0.9},
			SimGain:      map[string]float64{"gzip": 1.3, "mcf": 0.95},
			AvgModelGain: 1.2,
			AvgSimGain:   1.1,
			Silhouette:   0.42,
		}
		res.Levels = append(res.Levels, lvl)
	}
	return res
}

func TestFigure2Renders(t *testing.T) {
	s := Figure2(arch.ExplorationSpace(), sampleParetoResult())
	for _, want := range []string{"Figure 2 (gzip)", "12FO4", "30FO4", "delay range"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// The invalid prediction must not create extra groups: only two rows.
	if got := strings.Count(s, "FO4"); got != 2 {
		t.Fatalf("expected 2 cluster rows, found %d", got)
	}
}

func TestFigure3Renders(t *testing.T) {
	s := Figure3(sampleParetoResult())
	if !strings.Contains(s, "0.110") { // simulated delay present
		t.Fatalf("simulated columns missing:\n%s", s)
	}
	if !strings.Contains(s, "-") { // unvalidated point renders dashes
		t.Fatalf("placeholder for missing sim values absent:\n%s", s)
	}
}

func TestFigure4RendersAndSummarizes(t *testing.T) {
	results := map[string]*paretostudy.Result{"gzip": sampleParetoResult()}
	s := Figure4(results)
	for _, want := range []string{"Figure 4", "gzip perf", "gzip power", "overall median"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	results := map[string]*paretostudy.Result{"gzip": sampleParetoResult()}
	s := Table2(results)
	for _, want := range []string{"Table 2", "gzip", "-9.0%", "5.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFigure5aRenders(t *testing.T) {
	_, avg := sampleDepthResult()
	s := Figure5a(avg)
	for _, want := range []string{"Figure 5a", "12FO4", "optimal depth", "40.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFigure5bRenders(t *testing.T) {
	res, _ := sampleDepthResult()
	s := Figure5b(map[string]*depthstudy.Result{"gzip": res}, arch.ExplorationSpace())
	for _, want := range []string{"Figure 5b", "8KB", "128KB", "20.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFigure6And7Render(t *testing.T) {
	res, avg := sampleDepthResult()
	s6 := Figure6(avg)
	if !strings.Contains(s6, "orig sim") || !strings.Contains(s6, "bound sim") {
		t.Fatalf("Figure6 incomplete:\n%s", s6)
	}
	s7 := Figure7(res)
	if !strings.Contains(s7, "Figure 7 (gzip)") || !strings.Contains(s7, "1.00/1.10") {
		t.Fatalf("Figure7 incomplete:\n%s", s7)
	}
}

func TestTable4AndFigure8Render(t *testing.T) {
	res := sampleHeteroResult()
	s4 := Table4(res)
	for _, want := range []string{"Table 4", "gzip, mcf", "19"} {
		if !strings.Contains(s4, want) {
			t.Fatalf("Table4 missing %q:\n%s", want, s4)
		}
	}
	s8 := Figure8(res)
	for _, want := range []string{"Figure 8", "x gzip", "x mcf", "O c1"} {
		if !strings.Contains(s8, want) {
			t.Fatalf("Figure8 missing %q:\n%s", want, s8)
		}
	}
}

func TestTable4NeedsFourLevels(t *testing.T) {
	res := sampleHeteroResult()
	res.Levels = res.Levels[:2]
	if !strings.Contains(Table4(res), "needs a K=4") {
		t.Fatal("short sweep should render a placeholder")
	}
}

func TestFigure9Renders(t *testing.T) {
	res := sampleHeteroResult()
	s := Figure9(res, []string{"gzip", "mcf"})
	for _, want := range []string{"Figure 9", "silhouette", "0.42", "1.20", "0.90"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// Cluster count 0 row must be present.
	if !strings.Contains(s, "\n0  ") {
		t.Fatalf("baseline row missing:\n%s", s)
	}
}

func TestCSVEmitters(t *testing.T) {
	res := sampleParetoResult()
	var buf bytes.Buffer
	if err := Figure2CSV(&buf, arch.ExplorationSpace(), res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 valid rows
		t.Fatalf("figure2 csv has %d lines", lines)
	}
	buf.Reset()
	if err := Figure3CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "model_delay_s") {
		t.Fatal("figure3 csv missing header")
	}
	buf.Reset()
	if err := Table2CSV(&buf, map[string]*paretostudy.Result{"gzip": res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gzip") {
		t.Fatal("table2 csv missing row")
	}
	buf.Reset()
	_, avg := sampleDepthResult()
	if err := Figure5aCSV(&buf, avg); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 8 { // header + 7 depths
		t.Fatalf("figure5a csv has %d lines", lines)
	}
	buf.Reset()
	if err := Figure9CSV(&buf, sampleHeteroResult(), []string{"gzip", "mcf"}); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 6 { // header + K=0..4
		t.Fatalf("figure9 csv has %d lines", lines)
	}
	buf.Reset()
	rep := &core.ValidationReport{PerBenchmark: []core.BenchmarkErrors{
		{Benchmark: "gzip", Perf: []float64{0.1}, Power: []float64{0.2}},
	}}
	if err := Figure1CSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("figure1 csv has %d lines", lines)
	}
}
