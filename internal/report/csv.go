package report

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/core/depthstudy"
	"repro/internal/core/heterostudy"
	"repro/internal/core/paretostudy"
	"repro/internal/metrics"
)

// The CSV emitters in this file serialize each figure's underlying data
// series so the paper's plots can be regenerated with any plotting tool.

// Figure1CSV writes one row per validation observation:
// benchmark,metric,error.
func Figure1CSV(w io.Writer, rep *core.ValidationReport) error {
	rows := make([][]string, 0, 256)
	for _, be := range rep.PerBenchmark {
		for _, v := range be.Perf {
			rows = append(rows, []string{be.Benchmark, "performance", formatF(v)})
		}
		for _, v := range be.Power {
			rows = append(rows, []string{be.Benchmark, "power", formatF(v)})
		}
	}
	return WriteCSV(w, []string{"benchmark", "metric", "relative_error"}, rows)
}

// Figure2CSV writes the full exhaustive characterization scatter:
// index,delay_s,power_w,depth_fo4,width. One row per design (262,500
// rows), suitable for recreating the paper's scatter plot.
func Figure2CSV(w io.Writer, space *arch.Space, res *paretostudy.Result) error {
	rows := make([][]string, 0, len(res.Characterization))
	for _, p := range res.Characterization {
		if p.BIPS <= 0 || p.Watts <= 0 {
			continue
		}
		cfg := space.Config(space.PointAt(p.Index))
		rows = append(rows, []string{
			strconv.Itoa(p.Index),
			formatF(metrics.Delay(p.BIPS)),
			formatF(p.Watts),
			strconv.Itoa(cfg.DepthFO4),
			strconv.Itoa(cfg.Width),
			strconv.Itoa(cfg.L2KB),
		})
	}
	return WriteCSV(w, []string{"index", "delay_s", "power_w", "depth_fo4", "width", "l2_kb"}, rows)
}

// Figure3CSV writes the frontier: model and simulated coordinates.
func Figure3CSV(w io.Writer, res *paretostudy.Result) error {
	rows := make([][]string, 0, len(res.Frontier))
	for _, fp := range res.Frontier {
		rows = append(rows, []string{
			strconv.Itoa(fp.Index),
			formatF(fp.ModelDelay), formatF(fp.ModelPower),
			formatF(fp.SimDelay), formatF(fp.SimPower),
		})
	}
	return WriteCSV(w, []string{"index", "model_delay_s", "model_power_w", "sim_delay_s", "sim_power_w"}, rows)
}

// Figure5aCSV writes the depth-efficiency series: one row per depth with
// the original line and the enhanced distribution's quartiles.
func Figure5aCSV(w io.Writer, avg *depthstudy.SuiteAverage) error {
	rows := make([][]string, 0, len(avg.Depths))
	for i, d := range avg.Depths {
		rows = append(rows, []string{
			strconv.Itoa(d),
			formatF(avg.OriginalRel[i]),
			formatF(avg.Q1Rel[i]),
			formatF(avg.MedianRel[i]),
			formatF(avg.Q3Rel[i]),
			formatF(avg.MaxRel[i]),
			formatF(avg.BoundRel[i]),
			formatF(avg.FracBeatsBaseline[i]),
		})
	}
	return WriteCSV(w, []string{
		"depth_fo4", "original_rel", "q1", "median", "q3", "max", "bound_rel", "frac_beats_baseline",
	}, rows)
}

// Figure9CSV writes per-benchmark gains by cluster count.
func Figure9CSV(w io.Writer, res *heterostudy.Result, benches []string) error {
	headers := []string{"clusters", "avg_model_gain", "avg_sim_gain"}
	headers = append(headers, benches...)
	base := []string{"0", "1", "1"}
	for range benches {
		base = append(base, "1")
	}
	rows := [][]string{base}
	for _, lvl := range res.Levels {
		row := []string{strconv.Itoa(lvl.K), formatF(lvl.AvgModelGain), formatF(lvl.AvgSimGain)}
		for _, b := range benches {
			row = append(row, formatF(lvl.ModelGain[b]))
		}
		rows = append(rows, row)
	}
	return WriteCSV(w, headers, rows)
}

// Table2CSV writes the per-benchmark optima.
func Table2CSV(w io.Writer, results map[string]*paretostudy.Result) error {
	rows := make([][]string, 0, len(results))
	for _, bench := range sortedKeys(results) {
		o := results[bench].Best
		c := o.Config
		rows = append(rows, []string{
			bench,
			strconv.Itoa(c.DepthFO4), strconv.Itoa(c.Width), strconv.Itoa(c.GPR),
			strconv.Itoa(c.ResvBR), strconv.Itoa(c.IL1KB), strconv.Itoa(c.DL1KB),
			strconv.Itoa(c.L2KB),
			formatF(o.ModelDelay), formatF(o.DelayErr),
			formatF(o.ModelPower), formatF(o.PowerErr),
		})
	}
	return WriteCSV(w, []string{
		"benchmark", "depth_fo4", "width", "gpr", "resv_br", "il1_kb", "dl1_kb", "l2_kb",
		"model_delay_s", "delay_err", "model_power_w", "power_err",
	}, rows)
}

func formatF(v float64) string {
	return fmt.Sprintf("%g", v)
}
