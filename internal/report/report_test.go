package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("a", "1")
	tbl.AddRow("longer-name", "22")
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatal("missing title")
	}
	// All data lines align to the same width for column 1.
	if len(lines[3]) > len(lines[4])+5 && len(lines[4]) > len(lines[3])+5 {
		t.Fatal("columns look unaligned")
	}
}

func TestTableRowTooWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row accepted")
		}
	}()
	NewTable("", "one").AddRow("a", "b")
}

func TestTableShortRowPads(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x")
	if !strings.Contains(tbl.String(), "x") {
		t.Fatal("short row dropped")
	}
}

func TestAddRowfFormats(t *testing.T) {
	tbl := NewTable("", "s", "f", "i")
	tbl.AddRowf("str", 1.23456, 42)
	s := tbl.String()
	for _, want := range []string{"str", "1.23", "42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{
		{"1", "plain"},
		{"2", "with,comma"},
		{"3", "with\"quote"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRenderBoxplot(t *testing.T) {
	b := stats.NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := RenderBoxplot(b, 0, 10, 40)
	if len(s) != 40 {
		t.Fatalf("width = %d, want 40", len(s))
	}
	for _, want := range []string{"M", "[", "]", "|"} {
		if !strings.Contains(s, want) {
			t.Fatalf("boxplot missing %q: %q", want, s)
		}
	}
}

func TestRenderBoxplotOutliers(t *testing.T) {
	b := stats.NewBoxplot([]float64{1, 2, 3, 4, 5, 100})
	s := RenderBoxplot(b, 0, 100, 50)
	if !strings.Contains(s, "o") {
		t.Fatalf("outlier not rendered: %q", s)
	}
}

func TestRenderBoxplotClampsAndMinWidth(t *testing.T) {
	b := stats.NewBoxplot([]float64{5, 6, 7})
	s := RenderBoxplot(b, 6.5, 6.4, 3) // inverted range, tiny width
	if len(s) != 10 {
		t.Fatalf("minimum width not enforced: %d", len(s))
	}
}

func TestPct(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Fatalf("Pct = %q", Pct(-0.05))
	}
}

func TestKB(t *testing.T) {
	if KB(64) != "64KB" {
		t.Fatalf("KB(64) = %q", KB(64))
	}
	if KB(2048) != "2MB" {
		t.Fatalf("KB(2048) = %q", KB(2048))
	}
	if KB(256) != "256KB" {
		t.Fatalf("KB(256) = %q", KB(256))
	}
	if KB(1536) != "1.5MB" {
		t.Fatalf("KB(1536) = %q", KB(1536))
	}
}

func TestFigure1Renders(t *testing.T) {
	rep := &core.ValidationReport{PerBenchmark: []core.BenchmarkErrors{
		{Benchmark: "gzip", Perf: []float64{0.01, 0.05, 0.1}, Power: []float64{0.02, 0.03, 0.04}},
	}}
	s := Figure1(rep)
	for _, want := range []string{"Figure 1", "gzip perf", "gzip power", "overall median"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Figure1 missing %q:\n%s", want, s)
		}
	}
}
