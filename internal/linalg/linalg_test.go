package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At round trip failed")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dimensions wrong")
	}
}

func TestMatrixPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMatrix(0, 1) },
		func() { NewMatrix(1, -1) },
		func() { NewMatrix(1, 1).At(1, 0) },
		func() { NewMatrix(1, 1).Set(0, 2, 1) },
		func() { NewMatrixFromRows(nil) },
		func() { NewMatrixFromRows([][]float64{{1, 2}, {3}}) },
		func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		func() { NewMatrix(2, 3).Mul(NewMatrix(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("Transpose wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Fatalf("Norm2 = %v", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2 of empty should be 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := 1e200
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow handling: got %v want %v", got, want)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, well-conditioned system: solution should be exact.
	a := NewMatrixFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	want := []float64{1.5, -0.5}
	y := a.MulVec(want)
	x, err := LeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit a line y = 2 + 3x through noisy points; with symmetric noise the
	// recovered coefficients should be near-exact.
	xs := []float64{0, 1, 2, 3, 4, 5}
	noise := []float64{0.1, -0.1, 0.1, -0.1, 0.1, -0.1}
	rows := make([][]float64, len(xs))
	y := make([]float64, len(xs))
	for i, x := range xs {
		rows[i] = []float64{1, x}
		y[i] = 2 + 3*x + noise[i]
	}
	beta, err := LeastSquares(NewMatrixFromRows(rows), y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 0.1 || math.Abs(beta[1]-3) > 0.05 {
		t.Fatalf("beta = %v, want ~[2 3]", beta)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	r := rng.New(99)
	const m, n = 40, 5
	a := NewMatrix(m, n)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		y[i] = r.NormFloat64()
	}
	x, err := LeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	resid := make([]float64, m)
	for i := range y {
		resid[i] = y[i] - pred[i]
	}
	at := a.Transpose()
	for j := 0; j < n; j++ {
		if g := Dot(at.Row(j), resid); math.Abs(g) > 1e-9 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, g)
		}
	}
}

func TestRankDeficientDetected(t *testing.T) {
	// Second column is a multiple of the first.
	a := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	_, err := LeastSquares(a, []float64{1, 2, 3})
	if !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestFactorRejectsWide(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("Factor accepted wide matrix")
	}
}

func TestSolveLengthMismatch(t *testing.T) {
	f, err := Factor(NewMatrixFromRows([][]float64{{1}, {1}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("Solve accepted wrong-length vector")
	}
}

func TestConditionEstimate(t *testing.T) {
	identity := NewMatrixFromRows([][]float64{{1, 0}, {0, 1}})
	f, err := Factor(identity)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ConditionEstimate(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cond(I) = %v, want 1", got)
	}
	illCond := NewMatrixFromRows([][]float64{{1, 0}, {0, 1e-9}})
	f2, err := Factor(illCond)
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.ConditionEstimate(); got < 1e8 {
		t.Fatalf("cond = %v, want >= 1e8", got)
	}
}

// Property: for random well-conditioned systems, solving A x = A x0
// recovers x0.
func TestQuickQRRecoversSolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const m, n = 20, 4
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = r.NormFloat64() * 10
		}
		y := a.MulVec(x0)
		x, err := LeastSquares(a, y)
		if err != nil {
			// Random Gaussian matrices are almost surely full rank;
			// treat rank deficiency as failure.
			return false
		}
		for j := range x0 {
			if math.Abs(x[j]-x0[j]) > 1e-8*(1+math.Abs(x0[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A^T)^T == A.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(8)
		a := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		tt := a.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != a.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQRFactorSolve(b *testing.B) {
	r := rng.New(1)
	const m, n = 1000, 30
	a := NewMatrix(m, n)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		y[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGramInverseDiagAgainstDirectInverse(t *testing.T) {
	// For X = [[1,0],[0,2],[1,1]], X'X = [[2,1],[1,5]] and
	// (X'X)^{-1} = 1/9 * [[5,-1],[-1,2]] with diagonal {5/9, 2/9}.
	x := NewMatrixFromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	f, err := Factor(x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.GramInverseDiag()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5.0 / 9, 2.0 / 9}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("diag = %v, want %v", d, want)
		}
	}
}

func TestGramInverseDiagRandomConsistency(t *testing.T) {
	// Cross-check against explicit (X'X)^{-1} computed by solving
	// (X'X) z = e_j with the same QR machinery on the Gram matrix.
	r := rng.New(7)
	const m, n = 30, 4
	x := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, r.NormFloat64())
		}
	}
	f, err := Factor(x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.GramInverseDiag()
	if err != nil {
		t.Fatal(err)
	}
	gram := x.Transpose().Mul(x)
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		z, err := LeastSquares(gram, e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(z[j]-d[j]) > 1e-8*(1+math.Abs(z[j])) {
			t.Fatalf("diag[%d] = %v, direct inverse gives %v", j, d[j], z[j])
		}
	}
}

func TestGramInverseDiagRankDeficient(t *testing.T) {
	x := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	f, err := Factor(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.GramInverseDiag(); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Row out of range did not panic")
		}
	}()
	NewMatrix(2, 2).Row(5)
}

func TestLeastSquaresPropagatesFactorError(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(1, 2), []float64{1}); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

// BenchmarkFactor measures the factorization alone at regression-fit
// scale (a training design matrix is ~1000 samples x ~100 terms); the
// reflector loops dominate, so this tracks the hot kernel directly.
func BenchmarkFactor(b *testing.B) {
	r := rng.New(1)
	const m, n = 1000, 100
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}
