// Package linalg implements the small amount of dense numerical linear
// algebra required to fit regression models: a row-major matrix type,
// Householder QR factorization, and least-squares solving. The paper fits
// its models "by numerically solving a system of linear equations"; QR is
// the numerically stable way to do that without forming normal equations.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d) with non-positive dimension", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices, which must be
// non-empty and of equal length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: NewMatrixFromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: row %d has %d columns, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d, %d) out of %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes m * x for a column vector x of length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec vector length %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d",
			m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			krow := other.Row(k)
			for j, kv := range krow {
				orow[j] += mv * kv
			}
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for large entries.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}
