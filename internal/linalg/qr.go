package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when the design matrix does not have full
// column rank, which makes the least-squares problem ill-posed (some
// coefficient combination is unidentifiable from the data).
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
// The factored matrix is stored compactly: R occupies the upper triangle,
// and the essential parts of the Householder vectors occupy the lower
// trapezoid, with the scalar factors in tau.
type QR struct {
	qr  *Matrix
	tau []float64
}

// Factor computes the QR factorization of a. It does not modify a.
// Factor returns an error if the matrix has more columns than rows.
func Factor(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, have %dx%d", m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	d := qr.data
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal,
		// accumulated in place with Norm2's scaled algorithm in the same
		// operation order (bit-identical to copying the column out first).
		var scale, ssq float64 = 0, 1
		for i := k; i < m; i++ {
			x := d[i*n+k]
			if x == 0 {
				continue
			}
			ax := math.Abs(x)
			if scale < ax {
				r := scale / ax
				ssq = 1 + ssq*r*r
				scale = ax
			} else {
				r := ax / scale
				ssq += r * r
			}
		}
		norm := scale * math.Sqrt(ssq)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := d[k*n+k]
		if alpha > 0 {
			norm = -norm
		}
		// Householder vector v = x - norm*e1, stored with v[0] implicit 1.
		v0 := alpha - norm
		d[k*n+k] = norm
		for i := k + 1; i < m; i++ {
			d[i*n+k] /= v0
		}
		tau[k] = -v0 / norm
		// Apply the reflector to the remaining columns:
		// A := (I - tau v v^T) A. Each row is touched through one slice, so
		// the column-k and column-j reads share a single bounds check.
		for j := k + 1; j < n; j++ {
			// s = v^T * A[:,j] with v = [1, qr[k+1:,k]].
			s := d[k*n+j]
			for i := k + 1; i < m; i++ {
				row := d[i*n : i*n+n]
				s += row[k] * row[j]
			}
			s *= tau[k]
			d[k*n+j] -= s
			for i := k + 1; i < m; i++ {
				row := d[i*n : i*n+n]
				row[j] -= s * row[k]
			}
		}
	}
	return &QR{qr: qr, tau: tau}, nil
}

// applyQT overwrites y with Q^T y.
func (f *QR) applyQT(y []float64) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(y) != m {
		panic(fmt.Sprintf("linalg: applyQT vector length %d, want %d", len(y), m))
	}
	d := f.qr.data
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := y[k]
		for i := k + 1; i < m; i++ {
			s += d[i*n+k] * y[i]
		}
		s *= f.tau[k]
		y[k] -= s
		for i := k + 1; i < m; i++ {
			y[i] -= s * d[i*n+k]
		}
	}
}

// RDiag returns the absolute values of R's diagonal, useful for rank and
// conditioning diagnostics.
func (f *QR) RDiag() []float64 {
	n := f.qr.Cols()
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = math.Abs(f.qr.At(i, i))
	}
	return d
}

// ConditionEstimate returns the ratio of the largest to smallest absolute
// diagonal entry of R, a cheap lower bound on the 2-norm condition number.
// It returns +Inf for a singular R.
func (f *QR) ConditionEstimate() float64 {
	d := f.RDiag()
	lo, hi := d[0], d[0]
	for _, v := range d[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// GramInverseDiag returns the diagonal of (A^T A)^{-1} computed from the
// factorization as R^{-1} R^{-T}: the scale factors of coefficient
// standard errors in least squares. It returns ErrRankDeficient when R is
// singular.
func (f *QR) GramInverseDiag() ([]float64, error) {
	n := f.qr.Cols()
	d := f.RDiag()
	var dmax float64
	for _, v := range d {
		if v > dmax {
			dmax = v
		}
	}
	tol := dmax * 1e-12 * float64(max(f.qr.Rows(), n))
	for _, v := range d {
		if v <= tol {
			return nil, ErrRankDeficient
		}
	}
	// Invert the upper-triangular R column by column: R * x = e_j.
	rinv := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := j; i >= 0; i-- {
			var s float64
			if i == j {
				s = 1
			}
			for k := i + 1; k <= j; k++ {
				s -= f.qr.At(i, k) * rinv.At(k, j)
			}
			rinv.Set(i, j, s/f.qr.At(i, i))
		}
	}
	// (R^{-1} R^{-T})_{jj} = sum_k (R^{-1})_{jk}^2 over k >= j.
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for k := j; k < n; k++ {
			v := rinv.At(j, k)
			s += v * v
		}
		out[j] = s
	}
	return out, nil
}

// Solve returns the least-squares solution x minimizing ||a*x - y||_2
// where a is the factored matrix. It returns ErrRankDeficient when R has
// a (near-)zero diagonal entry.
func (f *QR) Solve(y []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(y) != m {
		return nil, fmt.Errorf("linalg: Solve vector length %d, want %d", len(y), m)
	}
	qty := append([]float64(nil), y...)
	f.applyQT(qty)
	// Back substitution on R x = (Q^T y)[:n].
	x := make([]float64, n)
	// Rank tolerance scaled by the largest diagonal magnitude.
	d := f.RDiag()
	var dmax float64
	for _, v := range d {
		if v > dmax {
			dmax = v
		}
	}
	tol := dmax * 1e-12 * float64(max(m, n))
	for i := n - 1; i >= 0; i-- {
		if d[i] <= tol {
			return nil, ErrRankDeficient
		}
		s := qty[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.qr.At(i, i)
	}
	return x, nil
}

// LeastSquares is a convenience that factors a and solves for y in one
// call. Use Factor + Solve when solving repeatedly against one matrix.
func LeastSquares(a *Matrix, y []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(y)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
