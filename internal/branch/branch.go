// Package branch implements the branch history table used by the modeled
// core: the paper's baseline (Table 3) carries a 16K-entry 1-bit BHT; a
// 2-bit saturating-counter variant is provided as well.
package branch

import "fmt"

// Predictor is a direct-mapped branch history table indexed by PC.
type Predictor struct {
	bits    int // 1 or 2
	mask    uint32
	state   []uint8 // 1-bit: 0/1 taken; 2-bit: 0..3 counter
	lookups uint64
	misses  uint64
}

// New constructs a BHT with the given number of entries (a power of two)
// and counter width in bits (1 or 2). One-bit entries predict the last
// outcome; two-bit entries are saturating counters predicting taken for
// states 2 and 3.
func New(entries, bits int) (*Predictor, error) {
	p := &Predictor{}
	if err := p.Configure(entries, bits); err != nil {
		return nil, err
	}
	return p, nil
}

// Configure reshapes the predictor to the given geometry, reusing the
// existing state array when it is large enough (so a pooled predictor
// reaches a steady state with zero heap allocations), and resets learned
// state and statistics. The geometry rules are those of New.
func (p *Predictor) Configure(entries, bits int) error {
	if entries <= 0 || entries&(entries-1) != 0 {
		return fmt.Errorf("branch: entries %d must be a positive power of two", entries)
	}
	if bits != 1 && bits != 2 {
		return fmt.Errorf("branch: counter width %d must be 1 or 2", bits)
	}
	p.bits = bits
	p.mask = uint32(entries - 1)
	if cap(p.state) < entries {
		p.state = make([]uint8, entries)
	} else {
		p.state = p.state[:entries]
	}
	// Reset initializes 2-bit entries to weakly taken: loops predict well
	// from the start, matching typical hardware reset state.
	p.Reset()
	return nil
}

// Snapshot is an immutable copy of a predictor's geometry and trained
// state. Restoring it reproduces prediction behaviour bit-for-bit.
type Snapshot struct {
	bits  int
	mask  uint32
	state []uint8
}

// Snapshot deep-copies the predictor's trained state. Statistics are not
// captured; a restored predictor starts with zeroed counters.
func (p *Predictor) Snapshot() *Snapshot {
	return &Snapshot{
		bits:  p.bits,
		mask:  p.mask,
		state: append([]uint8(nil), p.state...),
	}
}

// Bytes returns the heap footprint of the snapshot's state array.
func (s *Snapshot) Bytes() int64 { return int64(len(s.state)) }

// Restore reshapes the predictor to the snapshot's geometry (reusing the
// state array when large enough) and copies the trained state in, with
// zeroed statistics.
func (p *Predictor) Restore(s *Snapshot) {
	p.bits = s.bits
	p.mask = s.mask
	if cap(p.state) < len(s.state) {
		p.state = make([]uint8, len(s.state))
	} else {
		p.state = p.state[:len(s.state)]
	}
	copy(p.state, s.state)
	p.lookups = 0
	p.misses = 0
}

// index hashes the PC to a table slot. Instructions are 4 bytes, so the
// low two bits carry no information.
func (p *Predictor) index(pc uint32) int {
	return int((pc >> 2) & p.mask)
}

// Predict returns the current prediction for the branch at pc without
// updating state.
func (p *Predictor) Predict(pc uint32) bool {
	s := p.state[p.index(pc)]
	if p.bits == 1 {
		return s != 0
	}
	return s >= 2
}

// Update records the actual outcome, trains the table, and reports
// whether the (pre-update) prediction was wrong.
func (p *Predictor) Update(pc uint32, taken bool) (mispredicted bool) {
	i := p.index(pc)
	p.lookups++
	var predicted bool
	if p.bits == 1 {
		predicted = p.state[i] != 0
		if taken {
			p.state[i] = 1
		} else {
			p.state[i] = 0
		}
	} else {
		predicted = p.state[i] >= 2
		if taken {
			if p.state[i] < 3 {
				p.state[i]++
			}
		} else if p.state[i] > 0 {
			p.state[i]--
		}
	}
	if predicted != taken {
		p.misses++
		return true
	}
	return false
}

// ResetStats clears the counters but keeps trained state, for use after
// a warmup pass.
func (p *Predictor) ResetStats() {
	p.lookups = 0
	p.misses = 0
}

// Reset clears learned state and statistics.
func (p *Predictor) Reset() {
	for i := range p.state {
		if p.bits == 2 {
			p.state[i] = 2
		} else {
			p.state[i] = 0
		}
	}
	p.lookups = 0
	p.misses = 0
}

// Stats returns lookups and mispredictions since the last Reset.
func (p *Predictor) Stats() (lookups, mispredictions uint64) {
	return p.lookups, p.misses
}

// MispredictRate returns misses/lookups, or 0 before any lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.misses) / float64(p.lookups)
}
