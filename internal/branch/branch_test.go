package branch

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewErrors(t *testing.T) {
	cases := []struct{ entries, bits int }{
		{0, 1}, {-4, 1}, {100, 1}, {16, 3}, {16, 0},
	}
	for _, c := range cases {
		if _, err := New(c.entries, c.bits); err == nil {
			t.Fatalf("New(%d, %d) accepted", c.entries, c.bits)
		}
	}
}

func TestOneBitLearnsDirection(t *testing.T) {
	p, err := New(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x100)
	p.Update(pc, true)
	if !p.Predict(pc) {
		t.Fatal("1-bit did not learn taken")
	}
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Fatal("1-bit did not learn not-taken")
	}
}

func TestOneBitAlternatingAlwaysMisses(t *testing.T) {
	p, err := New(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x40)
	p.Update(pc, true) // warm up
	misses := 0
	outcome := false
	for i := 0; i < 100; i++ {
		if p.Update(pc, outcome) {
			misses++
		}
		outcome = !outcome
	}
	// A 1-bit predictor mispredicts every flip of an alternating branch.
	if misses != 100 {
		t.Fatalf("alternating misses = %d, want 100", misses)
	}
}

func TestTwoBitToleratesSingleDeviation(t *testing.T) {
	p, err := New(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x80)
	for i := 0; i < 4; i++ {
		p.Update(pc, true) // saturate to strongly taken
	}
	p.Update(pc, false) // one not-taken (loop exit)
	if !p.Predict(pc) {
		t.Fatal("2-bit flipped after a single deviation")
	}
	if p.Update(pc, true) {
		t.Fatal("2-bit mispredicted the taken resume")
	}
}

func TestBiasedBranchRates(t *testing.T) {
	// A strongly biased branch should have a low misprediction rate; an
	// unbiased one ~50% on a 1-bit table.
	run := func(bias float64) float64 {
		p, err := New(1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(17)
		for i := 0; i < 20000; i++ {
			p.Update(0x123, r.Bool(bias))
		}
		return p.MispredictRate()
	}
	if easy := run(0.98); easy > 0.08 {
		t.Fatalf("easy branch mispredict rate = %v, want < 0.08", easy)
	}
	if hard := run(0.5); hard < 0.4 || hard > 0.6 {
		t.Fatalf("random branch mispredict rate = %v, want ~0.5", hard)
	}
}

func TestAliasingDistinctSlots(t *testing.T) {
	p, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// PCs 0 and 16 map to different slots (after >>2, indices 0 and 0b100&3=0)...
	// indices: pc>>2 & 3. pc=0 -> 0; pc=4 -> 1.
	p.Update(0, true)
	p.Update(4, false)
	if !p.Predict(0) || p.Predict(4) {
		t.Fatal("distinct slots interfered")
	}
	// pc=16: (16>>2)&3 = 0 -> aliases pc=0.
	p.Update(16, false)
	if p.Predict(0) {
		t.Fatal("aliased update did not affect shared slot")
	}
}

func TestResetAndStats(t *testing.T) {
	p, err := New(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Update(0, false) // weakly-taken init predicts taken: miss
	lookups, misses := p.Stats()
	if lookups != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", lookups, misses)
	}
	p.Reset()
	lookups, misses = p.Stats()
	if lookups != 0 || misses != 0 {
		t.Fatal("stats survived reset")
	}
	if !p.Predict(0) {
		t.Fatal("2-bit reset state should predict taken")
	}
	if p.MispredictRate() != 0 {
		t.Fatal("rate after reset should be 0")
	}
}

// Property: Update's reported misprediction always matches the
// pre-update Predict value.
func TestQuickUpdateConsistentWithPredict(t *testing.T) {
	f := func(seed uint64, twoBit bool) bool {
		bits := 1
		if twoBit {
			bits = 2
		}
		p, err := New(64, bits)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			pc := uint32(r.Intn(1024)) * 4
			taken := r.Bool(0.7)
			want := p.Predict(pc) != taken
			if p.Update(pc, taken) != want {
				return false
			}
		}
		lookups, misses := p.Stats()
		return lookups == 500 && misses <= lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	p, err := New(16384, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	pcs := make([]uint32, 1024)
	for i := range pcs {
		pcs[i] = uint32(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(pcs[i&1023], i&3 != 0)
	}
}

// Snapshot/Restore must reproduce prediction behaviour bit-for-bit and
// be immune to later mutation of the source predictor.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	p, err := New(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		pc := uint32(i*4) % 4096
		p.Update(pc, i%3 != 0)
	}
	p.ResetStats()
	snap := p.Snapshot()

	q, err := New(1024, 1) // different geometry: Restore must reshape
	if err != nil {
		t.Fatal(err)
	}
	q.Update(12, true)
	q.Restore(snap)
	if lk, ms := q.Stats(); lk != 0 || ms != 0 {
		t.Fatalf("restored stats %d/%d, want zeroed", lk, ms)
	}
	for i := 0; i < 5000; i++ {
		pc := uint32(i*8) % 8192
		taken := i%5 < 3
		if p.Update(pc, taken) != q.Update(pc, taken) {
			t.Fatalf("step %d: restored predictor diverged from original", i)
		}
	}
	// Mutating the source after the snapshot must not affect a restore.
	before := p.Snapshot()
	p.Update(0, true)
	p.Update(0, true)
	r2, err := New(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2.Restore(before)
	if r2.Predict(0) != (before.state[0] >= 2) {
		t.Fatal("snapshot not a deep copy")
	}
}
