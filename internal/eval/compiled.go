package eval

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/regression"
)

// CompiledPair fuses one benchmark's performance and power models into a
// single compiled evaluator: both models are lowered against the arch
// predictor layout of one design space, and every evaluation assembles
// both design rows from one shared predictor source — the configuration's
// predictor vector on the value path, or per-axis level indices on the
// table path. Predictions are bit-identical to the interpreted
// regression.Model.Predict. Immutable and safe for concurrent use;
// callers own the scratch.
type CompiledPair struct {
	perf, pow *regression.CompiledModel
	plan      *PairPlan // non-nil iff both models are leveled
}

// PairPlan is the pair's structure-of-arrays sweep form: both models'
// SweepPlans, evaluated block-at-a-time from one shared batch of
// assembled level vectors, so the sweep kernel decodes each design
// point's levels exactly once for performance and power together.
// Immutable and safe for concurrent use.
type PairPlan struct {
	perf, pow *regression.SweepPlan
	// congruent: both plans share column structure (one spec fitted to
	// two responses), so EvalBlock may run the fused pair kernel that
	// loads each level index once for both models.
	congruent bool
}

// EvalBlock evaluates both models for len(bips) design points given as
// per-axis level index vectors, writing predicted bips and watts per
// point. Results are bit-identical to EvalLevels point by point.
func (p *PairPlan) EvalBlock(lev [][]int, bips, watts []float64) {
	if p.congruent {
		p.perf.PredictBlockPair(p.pow, lev, bips, watts)
		return
	}
	p.perf.PredictBlock(lev, bips)
	p.pow.PredictBlock(lev, watts)
}

// EvalPoint evaluates both models for a single design point — the
// blocked kernel's guardrail entry, bit-identical to EvalLevels.
func (p *PairPlan) EvalPoint(lev []int) (bips, watts float64) {
	return p.perf.PredictLevels(lev), p.pow.PredictLevels(lev)
}

// CompilePair lowers a benchmark's fitted performance and power models
// against the predictor levels of the given design space. The level
// (table) path of the result enumerates exactly that space; the value
// path accepts any configuration.
func CompilePair(perf, pow *regression.Model, space *arch.Space) (*CompiledPair, error) {
	names := arch.PredictorNames()
	levels := arch.PredictorLevelValues(space)
	cperf, err := perf.Compile(names, levels)
	if err != nil {
		return nil, fmt.Errorf("eval: compiling %q model: %w", perf.Response(), err)
	}
	cpow, err := pow.Compile(names, levels)
	if err != nil {
		return nil, fmt.Errorf("eval: compiling %q model: %w", pow.Response(), err)
	}
	p := &CompiledPair{perf: cperf, pow: cpow}
	if cperf.Leveled() && cpow.Leveled() {
		// Lower the structure-of-arrays sweep plans eagerly: compilation
		// is off the hot path, and every leveled pair is swept eventually.
		perfPlan, err := cperf.Plan()
		if err != nil {
			return nil, fmt.Errorf("eval: planning %q model: %w", perf.Response(), err)
		}
		powPlan, err := cpow.Plan()
		if err != nil {
			return nil, fmt.Errorf("eval: planning %q model: %w", pow.Response(), err)
		}
		p.plan = &PairPlan{perf: perfPlan, pow: powPlan, congruent: perfPlan.Congruent(powPlan)}
	}
	return p, nil
}

// Plan returns the pair's structure-of-arrays sweep form, or nil when
// the pair is not leveled (the blocked sweep kernel then falls back to
// the scalar path).
func (p *CompiledPair) Plan() *PairPlan { return p.plan }

// Perf returns the compiled performance model.
func (p *CompiledPair) Perf() *regression.CompiledModel { return p.perf }

// Pow returns the compiled power model.
func (p *CompiledPair) Pow() *regression.CompiledModel { return p.pow }

// Leveled reports whether both models support the level (table) path,
// i.e. EvalLevels may be used for points of the compiled space.
func (p *CompiledPair) Leveled() bool { return p.perf.Leveled() && p.pow.Leveled() }

// PairScratch holds the reusable buffers of one evaluating goroutine: a
// predictor-value vector and a design-row buffer shared by both models.
// The zero value is ready to use; a scratch must not be shared between
// concurrent callers.
type PairScratch struct {
	vals []float64
	row  []float64
}

// predictorVals returns the scratch's predictor vector sized for the
// arch layout.
func (s *PairScratch) predictorVals() []float64 {
	if cap(s.vals) < arch.NumAxes {
		s.vals = make([]float64, arch.NumAxes)
	}
	return s.vals[:arch.NumAxes]
}

// EvalConfig evaluates both models for a fully-resolved configuration
// (the value path: works for any config, on or off the compiled space's
// grid) and returns predicted bips and watts.
func (p *CompiledPair) EvalConfig(cfg arch.Config, s *PairScratch) (bips, watts float64) {
	vals := arch.PredictorsInto(cfg, s.predictorVals())
	row := p.perf.AppendRow(s.row[:0], vals)
	bips = p.perf.PredictRow(row)
	row = p.pow.AppendRow(row[:0], vals)
	watts = p.pow.PredictRow(row)
	s.row = row // keep the grown capacity
	return bips, watts
}

// EvalLevels evaluates both models for a design point given as per-axis
// level indices — the sweep hot path: pure table lookups and one dot
// product per model, no configuration resolution, no spline evaluation.
func (p *CompiledPair) EvalLevels(lev []int, s *PairScratch) (bips, watts float64) {
	row := p.perf.AppendRowLevels(s.row[:0], lev)
	bips = p.perf.PredictRow(row)
	row = p.pow.AppendRowLevels(row[:0], lev)
	watts = p.pow.PredictRow(row)
	s.row = row
	return bips, watts
}
