package eval

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// ErrClosed is returned by batch evaluation after Close.
var ErrClosed = errors.New("eval: engine closed")

// Options configures an Engine. The zero value is usable: all cores, 16
// cache shards, caching enabled.
type Options struct {
	// Workers bounds batch parallelism; 0 means GOMAXPROCS.
	Workers int
	// Shards is the number of cache shards (rounded up to a power of
	// two); 0 means 16. More shards reduce lock contention when many
	// workers hit the cache simultaneously.
	Shards int
	// NoCache disables memoization and singleflight de-duplication.
	// Appropriate for backends whose evaluations are cheaper than a map
	// lookup (e.g. regression models in an exhaustive sweep, where the
	// caller caches whole sweeps instead).
	NoCache bool
	// Name labels the engine in spans, latency histograms and progress
	// lines ("sim", "model", ...); empty means "engine". Purely
	// observational — it never affects results.
	Name string
	// Retries bounds how many times a transiently-failing evaluation is
	// re-attempted (on top of the first attempt). 0 means
	// DefaultRetries; negative disables retry. Only errors that classify
	// themselves transient (and recovered panics) are retried —
	// permanent failures and context cancellation propagate immediately.
	Retries int
	// RetryBackoff is the base sleep before the first retry, doubling
	// per attempt and scaled by a deterministic per-request jitter in
	// [0.5, 1.5) so co-scheduled workers do not retry in lockstep; 0
	// means DefaultRetryBackoff. Backoff waits honor context
	// cancellation.
	RetryBackoff time.Duration
	// BatchTimeout bounds the wall time of each EvaluateBatch,
	// EvaluateIndexed and Sweep call; 0 means no deadline. On expiry the
	// batch cancels its workers and returns context.DeadlineExceeded.
	BatchTimeout time.Duration
	// Tile is the number of points handed to a worker per Sweep claim.
	// 0 sizes tiles automatically (enough tiles to load-balance, large
	// enough to amortize per-tile kernel setup). Callers whose index
	// space has natural contiguous blocks (the study space's depth
	// blocks) pass a tile that divides the block size, so no tile
	// straddles a block boundary.
	Tile int
}

// DefaultRetries is the transient-failure retry budget when
// Options.Retries is zero.
const DefaultRetries = 2

// DefaultRetryBackoff is the initial retry backoff when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = time.Millisecond

// EngineStats is a point-in-time snapshot of an engine's counters.
type EngineStats struct {
	// Evaluations counts backend Evaluate calls that actually ran.
	Evaluations int64
	// CacheHits counts requests served from the memoization cache,
	// including singleflight waiters that piggybacked on another
	// caller's in-flight evaluation.
	CacheHits int64
	// CacheMisses counts requests that had to run the backend.
	CacheMisses int64
	// SweptPoints counts design points evaluated through Sweep, the
	// uncached one-shot batch mode (they bypass the cache counters).
	SweptPoints int64
	// BatchCalls counts EvaluateBatch/EvaluateIndexed invocations (not
	// the requests inside them). The serving layer coalesces many
	// concurrent network requests into one engine batch, so the ratio of
	// coalesced requests to BatchCalls is the measured batching factor.
	BatchCalls int64
	// WarmHits counts simulator runs that restored a memoized warm
	// cache/BHT state instead of walking the warmup; zero for backends
	// without a warm-state memo.
	WarmHits int64
	// WarmMisses counts simulator runs that walked their own warmup
	// (including every first run of a geometry); zero for backends
	// without a warm-state memo.
	WarmMisses int64
	// PanicsRecovered counts backend panics converted into typed
	// TaskErrors by per-worker recovery.
	PanicsRecovered int64
	// Retries counts re-attempts of transiently-failing evaluations.
	Retries int64
	// GuardChecks counts fast-path results cross-checked against the
	// reference path by the backend's guardrail; zero for unguarded
	// backends.
	GuardChecks int64
	// GuardDivergences counts cross-checks that caught a fast-path
	// result differing from the reference — silent corruption that
	// tripped the guardrail.
	GuardDivergences int64
	// Degraded reports whether the backend's guardrail has tripped and
	// evaluations are being routed down the safe reference path. A
	// gauge, not a counter.
	Degraded bool
	// InFlight is the number of backend evaluations running right now.
	InFlight int64
	// Workers is the engine's configured batch parallelism.
	Workers int
}

// Sub returns the counter deltas s minus base. Gauges (Degraded,
// InFlight, Workers) are carried from s as-is, not differenced: they
// describe the present, not an interval. StatsEpoch is built on Sub;
// external consumers holding their own baseline snapshot (e.g. a
// serving layer attributing engine work to a traffic window) can use
// it directly.
func (s EngineStats) Sub(base EngineStats) EngineStats {
	d := s
	d.Evaluations -= base.Evaluations
	d.CacheHits -= base.CacheHits
	d.CacheMisses -= base.CacheMisses
	d.SweptPoints -= base.SweptPoints
	d.BatchCalls -= base.BatchCalls
	d.WarmHits -= base.WarmHits
	d.WarmMisses -= base.WarmMisses
	d.PanicsRecovered -= base.PanicsRecovered
	d.Retries -= base.Retries
	d.GuardChecks -= base.GuardChecks
	d.GuardDivergences -= base.GuardDivergences
	return d
}

// HitRate returns the fraction of cacheable requests served without a
// backend evaluation, or 0 before any traffic.
func (s EngineStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// entry is one memoized evaluation. The goroutine that creates the entry
// ("the owner") runs the backend and closes done; concurrent callers of
// the same key wait on done instead of re-running the backend
// (singleflight de-duplication).
type entry struct {
	done        chan struct{}
	bips, watts float64
	err         error
}

type shard struct {
	mu sync.Mutex
	m  map[Request]*entry
}

// Engine is a concurrent evaluation service over one backend. It
// provides bounded-parallelism batch evaluation with deterministic
// result ordering and context cancellation, an N-way sharded memoization
// cache with singleflight de-duplication, and lifetime counters.
//
// Batch calls spawn at most Workers goroutines for their own duration
// and always join them before returning, so an Engine holds no
// background goroutines: dropping one leaks nothing, and Close only
// fences further use.
type Engine struct {
	ev      Evaluator
	workers int
	nocache bool
	name    string
	retries int
	backoff time.Duration
	timeout time.Duration
	tile    int
	mask    uint64
	shards  []shard
	closed  atomic.Bool

	evals    atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	swept    atomic.Int64
	batches  atomic.Int64
	inflight atomic.Int64
	panics   atomic.Int64
	retried  atomic.Int64

	// epochMu guards the StatsEpoch baseline; see StatsEpoch.
	epochMu   sync.Mutex
	epochBase EngineStats

	// Cached observability instruments (resolved once at construction so
	// hot paths never touch the registry map). Histograms record only
	// while obs.Enabled(), so the default path costs one atomic load.
	invokeHist *obs.Histogram
	tileHist   *obs.Histogram
}

// NewEngine creates an engine over the backend.
func NewEngine(ev Evaluator, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	size := 1
	for size < n {
		size <<= 1
	}
	name := opts.Name
	if name == "" {
		name = "engine"
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	e := &Engine{
		ev:         ev,
		workers:    workers,
		nocache:    opts.NoCache,
		name:       name,
		retries:    retries,
		backoff:    backoff,
		timeout:    opts.BatchTimeout,
		tile:       opts.Tile,
		mask:       uint64(size - 1),
		shards:     make([]shard, size),
		invokeHist: obs.DefaultRegistry.Histogram("eval." + name + ".invoke"),
		tileHist:   obs.DefaultRegistry.Histogram("eval." + name + ".tile"),
	}
	for i := range e.shards {
		e.shards[i].m = make(map[Request]*entry)
	}
	return e
}

// Workers returns the engine's batch parallelism.
func (e *Engine) Workers() int { return e.workers }

// warmStatser is probed on the backend so engines over the simulator
// surface its warm-state memo counters without the engine depending on
// the sim package.
type warmStatser interface {
	WarmStats() (hits, misses int64)
}

// guardStatser is probed on the backend so engines over guarded
// backends (compiled models, the fast-path simulator) surface their
// guardrail counters.
type guardStatser interface {
	GuardStats() (checks, divergences int64, degraded bool)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Evaluations:     e.evals.Load(),
		CacheHits:       e.hits.Load(),
		CacheMisses:     e.misses.Load(),
		SweptPoints:     e.swept.Load(),
		BatchCalls:      e.batches.Load(),
		PanicsRecovered: e.panics.Load(),
		Retries:         e.retried.Load(),
		InFlight:        e.inflight.Load(),
		Workers:         e.workers,
	}
	if ws, ok := e.ev.(warmStatser); ok {
		s.WarmHits, s.WarmMisses = ws.WarmStats()
	}
	if gs, ok := e.ev.(guardStatser); ok {
		s.GuardChecks, s.GuardDivergences, s.Degraded = gs.GuardStats()
	}
	return s
}

// StatsEpoch returns the counters accumulated since the previous
// StatsEpoch call (or since construction, for the first call) and
// starts a new epoch. Gauges (InFlight, Workers) are reported as-is,
// not differenced. Sequential studies in one process use epochs to
// attribute evaluations to the phase that ran them — a plain Stats
// snapshot taken per phase would double-count everything before it.
// Stats itself is unaffected and still reports lifetime totals.
func (e *Engine) StatsEpoch() EngineStats {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	cur := e.Stats()
	d := cur.Sub(e.epochBase)
	e.epochBase = cur
	return d
}

// Close marks the engine closed; subsequent batch calls fail with
// ErrClosed. It does not interrupt batches already in flight (cancel
// their contexts for that) and is safe to call more than once. Engines
// hold no background goroutines, so Close is a fence, not a teardown.
func (e *Engine) Close() { e.closed.Store(true) }

// reqHash combines the request fields into one fnv1a hash without
// allocating; it keys both the cache shard choice and the retry jitter.
func reqHash(req Request) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	c := req.Config
	for _, v := range [...]int{
		c.DepthFO4, c.Width, c.LSQ, c.SQ, c.FUPerKind,
		c.GPR, c.FPR, c.SPR, c.ResvBR, c.ResvFX, c.ResvFP,
		c.IL1KB, c.DL1KB, c.L2KB, c.DL1Assoc,
	} {
		mix(uint64(v))
	}
	if c.InOrder {
		mix(1)
	}
	for i := 0; i < len(req.Bench); i++ {
		mix(uint64(req.Bench[i]))
	}
	return h
}

func (e *Engine) shardFor(req Request) *shard {
	return &e.shards[reqHash(req)&e.mask]
}

// splitmix64 finalizes a hash into an independent uniform draw (the
// same finalizer the fault package uses for its trigger draws).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryDelay is the sleep before re-attempting req after `attempt`
// failed attempts: the engine's base backoff doubled per attempt,
// scaled by a jitter factor in [0.5, 1.5) drawn deterministically from
// (request, attempt). Co-scheduled workers that fail together on a
// shared transient fault would otherwise retry in lockstep and collide
// again; hashing the request decorrelates their schedules while keeping
// every run bit-reproducible — the same request always jitters the same
// way.
func (e *Engine) retryDelay(req Request, attempt int) time.Duration {
	shift := uint(attempt - 1)
	if shift > 20 {
		shift = 20 // past ~1M× the base the cap is academic but overflow is not
	}
	base := e.backoff << shift
	draw := splitmix64(reqHash(req) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	factor := 0.5 + float64(draw>>11)/float64(1<<53)
	return time.Duration(float64(base) * factor)
}

// invokeOnce runs the backend exactly once, maintaining the counters
// and converting a backend panic into a transient *PanicError instead
// of crashing the worker — determinism of the batch is preserved (the
// task fails typed; no result slot is corrupted) and the singleflight
// cache never sees the panic (failed entries are dropped, so nothing is
// poisoned).
func (e *Engine) invokeOnce(ctx context.Context, req Request) (res Result, err error) {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			panicsRecoveredCtr.Add(1)
			err = &PanicError{Value: r}
		}
	}()
	if ferr := fault.HereCtx(ctx, "eval.invoke"); ferr != nil {
		e.evals.Add(1)
		return Result{}, ferr
	}
	bips, watts, err := e.ev.Evaluate(req.Config, req.Bench)
	e.evals.Add(1)
	if err != nil {
		return Result{}, err
	}
	return Result{BIPS: bips, Watts: watts}, nil
}

// invoke runs the backend with bounded retry: transient failures
// (self-classified errors, recovered panics, injected faults) are
// re-attempted up to the engine's retry budget with doubling,
// deterministically jittered backoff (retryDelay); permanent failures
// and context cancellation propagate immediately. Every failure leaves
// as a typed *TaskError carrying the request and attempt count.
func (e *Engine) invoke(ctx context.Context, req Request) (Result, error) {
	for attempt := 1; ; attempt++ {
		res, err := e.invokeOnce(ctx, req)
		if err == nil {
			return res, nil
		}
		var pe *PanicError
		panicked := errors.As(err, &pe)
		if attempt > e.retries || !retryable(err) || ctx.Err() != nil {
			return Result{}, &TaskError{Req: req, Attempts: attempt, Panicked: panicked, Err: err}
		}
		e.retried.Add(1)
		retriesCtr.Add(1)
		select {
		case <-ctx.Done():
			return Result{}, &TaskError{Req: req, Attempts: attempt, Panicked: panicked, Err: ctx.Err()}
		case <-time.After(e.retryDelay(req, attempt)):
		}
	}
}

// invokeTraced is invoke plus per-evaluation observability: a span
// (parented to the batch span carried in ctx) and a latency histogram
// sample. With tracing off it is exactly invoke after one atomic load.
func (e *Engine) invokeTraced(ctx context.Context, req Request) (Result, error) {
	if !obs.Enabled() {
		return e.invoke(ctx, req)
	}
	_, sp := obs.Start(ctx, "eval."+e.name+".invoke", obs.String("bench", req.Bench))
	start := time.Now()
	res, err := e.invoke(ctx, req)
	e.invokeHist.Observe(time.Since(start))
	sp.End()
	return res, err
}

// Evaluate serves one request on the caller's goroutine: cache and
// singleflight apply, but no worker dispatch, so single-point queries
// (interactive prediction, annealing steps) stay cheap and Evaluate
// remains safe to call from inside another evaluation.
func (e *Engine) Evaluate(ctx context.Context, req Request) (Result, error) {
	if e.nocache {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return e.invokeTraced(ctx, req)
	}
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		sh := e.shardFor(req)
		sh.mu.Lock()
		if ent, ok := sh.m[req]; ok {
			sh.mu.Unlock()
			select {
			case <-ent.done:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			if ent.err == nil {
				e.hits.Add(1)
				return Result{BIPS: ent.bips, Watts: ent.watts}, nil
			}
			if errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) {
				// The owner was cancelled before producing a value; the
				// key was removed, so retry (possibly becoming the owner).
				continue
			}
			return Result{}, ent.err
		}
		ent := &entry{done: make(chan struct{})}
		sh.m[req] = ent
		sh.mu.Unlock()
		e.misses.Add(1)

		res, err := e.invokeTraced(ctx, req)
		if err != nil {
			// Do not cache failures: drop the key so later callers retry,
			// then wake waiters with the error.
			sh.mu.Lock()
			delete(sh.m, req)
			sh.mu.Unlock()
			ent.err = err
			close(ent.done)
			return Result{}, err
		}
		ent.bips, ent.watts = res.BIPS, res.Watts
		close(ent.done)
		return res, nil
	}
}

// SweepFunc evaluates the half-open index tile [lo, hi) of a sweep,
// writing results directly into caller-owned storage. Implementations
// must be safe for concurrent calls on disjoint tiles.
type SweepFunc func(lo, hi int) error

// sweepShard is one worker's private progress counter, padded to its
// own cache line: workers bump their shard per tile without bouncing a
// shared line between cores, and readers (the progress ticker, the
// final stats merge) sum across shards. The padding covers the atomic
// plus the line the allocator may pack the next shard into.
type sweepShard struct {
	done atomic.Int64
	_    [56]byte
}

// Sweep partitions the index range [0, n) into contiguous tiles and
// invokes fn across the engine's workers — the batch mode for one-shot
// exhaustive sweeps. Unlike EvaluateBatch it touches neither the cache
// nor the singleflight table: a 262,500-point sweep would insert 262,500
// unique keys per benchmark, pure hash-and-store overhead and a memory
// blow-up for results the caller stores (and typically caches whole)
// anyway. No request or result slices are materialized; the kernel
// enumerates its tile in flat order and writes wherever it pleases.
//
// Tiles are fixed-size contiguous index blocks (Options.Tile, or an
// automatic size) claimed from a single atomic cursor, so fast workers
// take more of the range and no two workers ever share a tile. Per-tile
// progress lands in per-worker cache-line-padded shards — shared
// engine counters are touched exactly once, after the workers join —
// so the only cross-core traffic in a sweep's steady state is the
// handout cursor itself. The first error cancels the sweep and is
// returned; workers observe cancellation between tiles (a tile in
// progress runs to completion). All workers are joined before Sweep
// returns.
func (e *Engine) Sweep(ctx context.Context, n int, fn SweepFunc) error {
	return e.SweepRange(ctx, 0, n, fn)
}

// SweepRange is Sweep restricted to the half-open index sub-range
// [from, to): tiles are carved from that range only, progress is
// reported against its size (not the full domain's), and SweptPoints
// advances by exactly the indices completed. Sharded runs use this to
// sweep one shard's slice of the study space; fn still receives
// absolute indices, so kernels write into full-domain storage
// unchanged.
func (e *Engine) SweepRange(ctx context.Context, from, to int, fn SweepFunc) error {
	n := to - from
	if n <= 0 {
		return nil
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, e.timeout)
		defer cancelTimeout()
	}
	// One enablement check per sweep: tiles within a sweep are either all
	// traced or all bare, and the default path costs a single atomic load.
	traced := obs.Enabled()
	var span *obs.Span
	if traced {
		ctx, span = obs.Start(ctx, "eval."+e.name+".sweep",
			obs.Int("from", int64(from)), obs.Int("to", int64(to)),
			obs.Int("workers", int64(e.workers)))
		defer span.End()
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	tile := e.tile
	if tile <= 0 {
		// Tiles large enough to amortize per-tile setup (the kernel's
		// scratch buffers), small enough to load-balance across workers.
		tile = n / (e.workers * 8)
		if tile < 64 {
			tile = 64
		}
	}
	var cursor atomic.Int64
	cursor.Store(int64(from))

	workers := (n + tile - 1) / tile
	if workers > e.workers {
		workers = e.workers
	}
	shards := make([]sweepShard, workers)
	sumDone := func() int64 {
		var total int64
		for i := range shards {
			total += shards[i].done.Load()
		}
		return total
	}
	stopProgress := obs.StartProgress("eval."+e.name+".sweep", int64(n), sumDone)
	defer stopProgress()

	// Hoisted out of the tile loop: the name concat and the parent span
	// are per-sweep, and tile spans hang off the sweep span directly
	// (Span.Child) rather than re-deriving the parent from the context —
	// context machinery per tile was a measurable slice of the sweep's
	// observability overhead.
	tileName := "eval." + e.name + ".tile"

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(shard *sweepShard) {
			defer wg.Done()
			for {
				if bctx.Err() != nil {
					return
				}
				lo := int(cursor.Add(int64(tile))) - tile
				if lo >= to {
					return
				}
				hi := lo + tile
				if hi > to {
					hi = to
				}
				var tileSpan *obs.Span
				if traced {
					tileSpan = span.Child(tileName,
						obs.Int("lo", int64(lo)), obs.Int("hi", int64(hi)))
				}
				err := fn(lo, hi)
				if traced {
					tileSpan.EndObserve(e.tileHist)
				}
				if err != nil {
					fail(err)
					return
				}
				shard.done.Add(int64(hi - lo))
			}
		}(&shards[w])
	}
	wg.Wait()
	// Merge the private shards into the engine's lifetime counter once:
	// SweptPoints accounts completed tiles even when the sweep failed or
	// was cancelled partway.
	e.swept.Add(sumDone())

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// EvaluateBatch evaluates all requests with bounded parallelism and
// returns results in request order regardless of worker count or
// completion order. The first evaluation error cancels outstanding work
// and is returned promptly; on cancellation every worker goroutine exits
// before EvaluateBatch returns (evaluations already inside the backend
// run to completion — the simulator is not interruptible mid-trace).
func (e *Engine) EvaluateBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	return e.EvaluateIndexed(ctx, len(reqs), func(i int) Request { return reqs[i] })
}

// EvaluateIndexed is EvaluateBatch without a materialized request slice:
// request i is produced on demand by req(i). Large sweeps (hundreds of
// thousands of generated configurations) use this to avoid building a
// multi-megabyte request slice. req must be safe for concurrent calls
// with distinct indices.
func (e *Engine) EvaluateIndexed(ctx context.Context, n int, req func(i int) Request) ([]Result, error) {
	if n == 0 {
		return nil, nil
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.batches.Add(1)
	if e.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, e.timeout)
		defer cancelTimeout()
	}
	if obs.Enabled() {
		var span *obs.Span
		ctx, span = obs.Start(ctx, "eval."+e.name+".batch",
			obs.Int("n", int64(n)), obs.Int("workers", int64(e.workers)))
		defer span.End()
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]Result, n)
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Workers claim contiguous index chunks from a shared cursor: cheap
	// evaluations (model predictions) amortize the synchronization over
	// the chunk, while expensive ones (simulations) get chunk sizes small
	// enough to load-balance.
	chunk := n / (e.workers * 32)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 512 {
		chunk = 512
	}
	var cursor atomic.Int64
	var done atomic.Int64
	stopProgress := obs.StartProgress("eval."+e.name+".batch", int64(n), done.Load)
	defer stopProgress()

	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if bctx.Err() != nil {
					return
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if bctx.Err() != nil {
						return
					}
					res, err := e.Evaluate(bctx, req(i))
					if err != nil {
						fail(err)
						return
					}
					out[i] = res
				}
				// Progress is tracked per chunk, not per item: one atomic
				// add amortized over the whole chunk.
				done.Add(int64(hi - lo))
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
