package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
)

// countingEvaluator is a deterministic fake backend that records every
// invocation and can be made slow, blocking or failing per request.
type countingEvaluator struct {
	calls   atomic.Int64
	perKey  sync.Map // Request -> *atomic.Int64
	delay   time.Duration
	block   chan struct{} // if non-nil, Evaluate waits for close
	failFor func(Request) error
}

func (c *countingEvaluator) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	req := Request{Config: cfg, Bench: bench}
	c.calls.Add(1)
	v, _ := c.perKey.LoadOrStore(req, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
	if c.block != nil {
		<-c.block
	}
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if c.failFor != nil {
		if err := c.failFor(req); err != nil {
			return 0, 0, err
		}
	}
	// A deterministic function of the inputs so ordering tests can check
	// values, not just lengths.
	return float64(cfg.DepthFO4) + float64(len(bench)), float64(cfg.DL1KB), nil
}

func testConfig(i int) arch.Config {
	cfg := arch.Baseline()
	cfg.DepthFO4 = 9 + (i % 28)
	cfg.DL1KB = 8 << (i % 4)
	return cfg
}

func testRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Config: testConfig(i), Bench: fmt.Sprintf("b%d", i%7)}
	}
	return reqs
}

// skipUnderFaultPlan skips tests whose assertions (exact backend call
// counts, exact error identity) only hold in a fault-free world; the CI
// fault matrix arms a process-wide plan that adds retries and injected
// failures.
func skipUnderFaultPlan(t *testing.T) {
	t.Helper()
	if fault.Active() {
		t.Skip("assertions require a fault-free run; an ambient fault plan is armed")
	}
}

func TestSingleflightOneEvaluationPerKey(t *testing.T) {
	skipUnderFaultPlan(t)
	ev := &countingEvaluator{delay: 2 * time.Millisecond}
	e := NewEngine(ev, Options{Workers: 8})
	req := Request{Config: arch.Baseline(), Bench: "gzip"}

	const callers = 32
	var wg sync.WaitGroup
	results := make([]Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Evaluate(context.Background(), req)
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got %v, want %v", i, results[i], results[0])
		}
	}
	if got := ev.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times for one key, want exactly 1", got)
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != callers-1 {
		t.Fatalf("stats misses=%d hits=%d, want 1 and %d", st.CacheMisses, st.CacheHits, callers-1)
	}
}

func TestBatchDeterministicOrdering(t *testing.T) {
	reqs := testRequests(300)
	var want []Result
	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		e := NewEngine(&countingEvaluator{}, Options{Workers: workers, NoCache: true})
		got, err := e.EvaluateBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
		}
		for i, r := range got {
			wantR := Result{
				BIPS:  float64(reqs[i].Config.DepthFO4) + float64(len(reqs[i].Bench)),
				Watts: float64(reqs[i].Config.DL1KB),
			}
			if r != wantR {
				t.Fatalf("workers=%d: result %d = %v, want %v", workers, i, r, wantR)
			}
		}
		if want == nil {
			want = got
		}
	}
}

func TestBatchFirstErrorCancelsOutstandingWork(t *testing.T) {
	skipUnderFaultPlan(t)
	boom := errors.New("boom")
	ev := &countingEvaluator{
		delay: time.Millisecond,
		failFor: func(r Request) error {
			if r.Bench == "b0" {
				return boom
			}
			return nil
		},
	}
	e := NewEngine(ev, Options{Workers: 4, NoCache: true})
	const n = 500
	start := time.Now()
	_, err := e.EvaluateBatch(context.Background(), testRequests(n))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failure hits within the first handful of evaluations (bench
	// cycles every 7 requests); cancellation must stop the batch long
	// before all n requests run.
	if got := ev.calls.Load(); got >= n/2 {
		t.Fatalf("ran %d of %d evaluations after early failure", got, n)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch took %v to fail", elapsed)
	}
}

func TestBatchContextCancellation(t *testing.T) {
	release := make(chan struct{})
	ev := &countingEvaluator{block: release}
	e := NewEngine(ev, Options{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.EvaluateBatch(ctx, testRequests(50))
		done <- err
	}()

	// Wait until the workers are inside the backend, then cancel.
	for e.Stats().InFlight < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
	if got := ev.calls.Load(); got > 4 {
		t.Fatalf("%d evaluations ran after immediate cancel", got)
	}
}

func TestEvaluateWaiterHonorsCancellation(t *testing.T) {
	skipUnderFaultPlan(t)
	release := make(chan struct{})
	ev := &countingEvaluator{block: release}
	e := NewEngine(ev, Options{Workers: 2})
	req := Request{Config: arch.Baseline(), Bench: "gzip"}

	// Owner starts and blocks inside the backend.
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		if _, err := e.Evaluate(context.Background(), req); err != nil {
			t.Errorf("owner: %v", err)
		}
	}()
	for e.Stats().InFlight < 1 {
		time.Sleep(time.Millisecond)
	}

	// A waiter with a short deadline must give up without waiting for
	// the owner.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.Evaluate(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want deadline exceeded", err)
	}

	close(release)
	<-ownerDone
	if got := ev.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1", got)
	}
}

func TestFailedEvaluationIsNotCached(t *testing.T) {
	skipUnderFaultPlan(t)
	var failures atomic.Int64
	failures.Store(1)
	ev := &countingEvaluator{failFor: func(Request) error {
		if failures.Add(-1) >= 0 {
			return errors.New("transient")
		}
		return nil
	}}
	e := NewEngine(ev, Options{Workers: 2})
	req := Request{Config: arch.Baseline(), Bench: "gzip"}

	if _, err := e.Evaluate(context.Background(), req); err == nil {
		t.Fatal("first evaluation should fail")
	}
	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if got := ev.calls.Load(); got != 2 {
		t.Fatalf("backend ran %d times, want 2 (failure not cached)", got)
	}
}

func TestEngineGoroutineLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	e := NewEngine(&countingEvaluator{}, Options{Workers: 8})
	for i := 0; i < 3; i++ {
		if _, err := e.EvaluateBatch(context.Background(), testRequests(200)); err != nil {
			t.Fatal(err)
		}
	}
	// A cancelled batch must also leave nothing behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateBatch(ctx, testRequests(200)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}
	e.Close()

	if _, err := e.EvaluateBatch(context.Background(), testRequests(10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after Close err = %v, want ErrClosed", err)
	}
	// Evaluate after Close still serves from cache state (Close fences
	// batches), but must not panic.
	if _, err := e.Evaluate(context.Background(), testRequests(1)[0]); err != nil {
		t.Fatalf("evaluate after close: %v", err)
	}

	// All batch workers are joined before EvaluateBatch returns; give the
	// runtime a moment to retire exiting goroutines, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEvaluateIndexedGeneratesRequestsOnDemand(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 4, NoCache: true})
	n := 1000
	res, err := e.EvaluateIndexed(context.Background(), n, func(i int) Request {
		return Request{Config: testConfig(i), Bench: "gen"}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("%d results, want %d", len(res), n)
	}
	for i, r := range res {
		if want := float64(testConfig(i).DepthFO4) + 3; r.BIPS != want {
			t.Fatalf("result %d bips = %v, want %v", i, r.BIPS, want)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	skipUnderFaultPlan(t)
	ev := &countingEvaluator{}
	e := NewEngine(ev, Options{Workers: 2})
	// Unique bench per request keeps all 64 keys distinct.
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Config: testConfig(i), Bench: fmt.Sprintf("u%d", i)}
	}
	if _, err := e.EvaluateBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	// Second pass over the same keys must be all hits.
	if _, err := e.EvaluateBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Evaluations != 64 {
		t.Fatalf("evaluations = %d, want 64", st.Evaluations)
	}
	if st.CacheHits != 64 || st.CacheMisses != 64 {
		t.Fatalf("hits=%d misses=%d, want 64/64", st.CacheHits, st.CacheMisses)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight = %d at rest", st.InFlight)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
}

func TestEmptyBatch(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{})
	res, err := e.EvaluateBatch(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch = %v, %v", res, err)
	}
}

func TestBatchCallsCounter(t *testing.T) {
	skipUnderFaultPlan(t)
	e := NewEngine(&countingEvaluator{}, Options{Workers: 2})
	// Three batches of eight: BatchCalls counts engine invocations, not
	// the requests inside them — the ratio is the serving layer's
	// coalescing evidence.
	for i := 0; i < 3; i++ {
		if _, err := e.EvaluateBatch(context.Background(), testRequests(8)); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.BatchCalls != 3 {
		t.Fatalf("BatchCalls = %d, want 3", st.BatchCalls)
	}
	// Empty batches return before the engine does any work and are not
	// counted as batch calls.
	if _, err := e.EvaluateBatch(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.BatchCalls != 3 {
		t.Fatalf("BatchCalls after empty batch = %d, want 3", st.BatchCalls)
	}
	// Epoch deltas: first epoch absorbs the three calls, the next sees
	// only what happened since.
	if d := e.StatsEpoch(); d.BatchCalls != 3 {
		t.Fatalf("epoch BatchCalls = %d, want 3", d.BatchCalls)
	}
	if _, err := e.EvaluateBatch(context.Background(), testRequests(4)); err != nil {
		t.Fatal(err)
	}
	if d := e.StatsEpoch(); d.BatchCalls != 1 {
		t.Fatalf("second epoch BatchCalls = %d, want 1", d.BatchCalls)
	}
}
