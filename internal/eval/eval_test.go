package eval

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/regression"
	"repro/internal/trace"
)

// TestSimulatorDistinctBenchmarksSynthesizeConcurrently is the
// regression test for traceFor holding the Simulator mutex across trace
// synthesis: first-touch synthesis of one benchmark must not serialize
// first-touch synthesis of a different benchmark.
func TestSimulatorDistinctBenchmarksSynthesizeConcurrently(t *testing.T) {
	skipUnderFaultPlan(t)
	s := NewSimulator(1000)
	slowStarted := make(chan struct{})
	release := make(chan struct{})
	s.synth = func(bench string, n int) (*trace.Trace, error) {
		if bench == "slow" {
			close(slowStarted)
			<-release
		}
		return &trace.Trace{Name: bench}, nil
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.traceFor("slow")
		done <- err
	}()
	<-slowStarted

	// With "slow" still synthesizing, "fast" must synthesize and return.
	fastDone := make(chan error, 1)
	go func() {
		tr, err := s.traceFor("fast")
		if err == nil && tr.Name != "fast" {
			err = fmt.Errorf("got trace %q", tr.Name)
		}
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("synthesis of a distinct benchmark blocked behind an in-flight one")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorSynthesisOncePerBenchmark(t *testing.T) {
	skipUnderFaultPlan(t)
	s := NewSimulator(1000)
	var calls atomic.Int64
	s.synth = func(bench string, n int) (*trace.Trace, error) {
		calls.Add(1)
		time.Sleep(2 * time.Millisecond) // widen the race window
		if bench == "bad" {
			return nil, errors.New("synthetic failure")
		}
		return &trace.Trace{Name: bench}, nil
	}

	const callers = 24
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := s.traceFor("gzip")
			if err == nil && tr.Name != "gzip" {
				err = fmt.Errorf("wrong trace %q", tr.Name)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("synthesis ran %d times for one benchmark, want 1", got)
	}

	// Errors are NOT memoized: a failed synthesis drops its entry so the
	// next call retries — transient failures (injected or real) must not
	// poison the benchmark forever.
	for i := 0; i < 3; i++ {
		if _, err := s.traceFor("bad"); err == nil {
			t.Fatal("failed synthesis reported success")
		}
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("failed synthesis ran %d times, want one per call (3)", got-1)
	}
}

// fitTestModels fits small but real performance and power models over
// the arch predictor layout, for backend tests that need genuine
// regression models without running the simulator.
func fitTestModels(t *testing.T) (perf, pow *regression.Model, space *arch.Space) {
	t.Helper()
	space = arch.ExplorationSpace()
	pts := space.SampleUAR(400, 42)
	names := arch.PredictorNames()
	n := len(pts)
	cols := make([][]float64, len(names))
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	bips := make([]float64, n)
	watts := make([]float64, n)
	for i, pt := range pts {
		vals := arch.Predictors(space.Config(pt))
		for c := range names {
			cols[c][i] = vals[c]
		}
		// Smooth positive responses with curvature and an interaction,
		// so splines and products carry signal.
		depth, width, dl1 := vals[0], vals[1], vals[5]
		bips[i] = 40/depth + 0.3*width + 0.05*dl1 + 0.01*depth*dl1
		watts[i] = 20 + 2*width + 0.5*dl1 + 100/depth
	}
	ds := regression.NewDataset(n)
	for c, name := range names {
		ds.AddColumn(name, cols[c])
	}
	ds.AddColumn("bips", bips)
	ds.AddColumn("watts", watts)
	mk := func(resp string, tr regression.Transform) *regression.Model {
		spec := regression.NewSpec(resp, tr).
			Spline(arch.PredDepth, 4).
			Linear(arch.PredWidth).
			Spline(arch.PredDL1, 3).
			Spline(arch.PredL2, 3).
			Interact(arch.PredDepth, arch.PredDL1)
		m, err := regression.Fit(spec, ds)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return mk("bips", regression.Sqrt), mk("watts", regression.Log), space
}

func TestCompiledPairMatchesInterpreted(t *testing.T) {
	perf, pow, space := fitTestModels(t)
	pair, err := CompilePair(perf, pow, space)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Perf().Leveled() || !pair.Pow().Leveled() {
		t.Fatal("pair not fully leveled against the space")
	}
	var scratch PairScratch
	for _, pt := range space.SampleUAR(500, 7) {
		cfg := space.Config(pt)
		get := arch.PredictorGetter(cfg)
		wantB, wantW := perf.Predict(get), pow.Predict(get)
		if b, w := pair.EvalConfig(cfg, &scratch); b != wantB || w != wantW {
			t.Fatalf("EvalConfig(%v) = (%v, %v), want (%v, %v)", cfg, b, w, wantB, wantW)
		}
		if b, w := pair.EvalLevels(pt[:], &scratch); b != wantB || w != wantW {
			t.Fatalf("EvalLevels(%v) = (%v, %v), want (%v, %v)", pt, b, w, wantB, wantW)
		}
	}
	// Off-grid configurations go through the value path.
	cfg := arch.Baseline() // depth 19 is not an exploration-space level
	get := arch.PredictorGetter(cfg)
	wantB, wantW := perf.Predict(get), pow.Predict(get)
	if b, w := pair.EvalConfig(cfg, &scratch); b != wantB || w != wantW {
		t.Fatalf("off-grid EvalConfig = (%v, %v), want (%v, %v)", b, w, wantB, wantW)
	}
}

func TestModelsResolutionHoisted(t *testing.T) {
	perf, pow, _ := fitTestModels(t)
	var lookups atomic.Int64
	m := NewModels(func(bench string) (*regression.Model, *regression.Model, error) {
		if bench == "nope" {
			return nil, nil, errors.New("unknown benchmark")
		}
		lookups.Add(1)
		return perf, pow, nil
	})
	cfgs := make([]arch.Config, 64)
	for i := range cfgs {
		cfgs[i] = testConfig(i)
	}
	for _, cfg := range cfgs {
		if _, _, err := m.Evaluate(cfg, "gzip"); err != nil {
			t.Fatal(err)
		}
	}
	if got := lookups.Load(); got != 1 {
		t.Fatalf("%d lookups for a 64-prediction single-benchmark batch, want 1", got)
	}
	if _, _, err := m.Evaluate(cfgs[0], "mcf"); err != nil {
		t.Fatal(err)
	}
	if got := lookups.Load(); got != 2 {
		t.Fatalf("%d lookups after benchmark switch, want 2", got)
	}
	// Failed resolutions must not be cached...
	if _, _, err := m.Evaluate(cfgs[0], "nope"); err == nil {
		t.Fatal("unknown benchmark succeeded")
	}
	// ...and must not evict the last good resolution.
	if _, _, err := m.Evaluate(cfgs[0], "mcf"); err != nil {
		t.Fatal(err)
	}
	if got := lookups.Load(); got != 2 {
		t.Fatalf("%d lookups after failed resolve, want still 2", got)
	}
	// Reset forces a re-resolve (models swapped underneath).
	m.Reset()
	if _, _, err := m.Evaluate(cfgs[0], "mcf"); err != nil {
		t.Fatal(err)
	}
	if got := lookups.Load(); got != 3 {
		t.Fatalf("%d lookups after Reset, want 3", got)
	}
}

func TestModelsCompiledLookupPreferred(t *testing.T) {
	perf, pow, space := fitTestModels(t)
	pair, err := CompilePair(perf, pow, space)
	if err != nil {
		t.Fatal(err)
	}
	var interpLookups, compiledLookups atomic.Int64
	m := NewModels(func(bench string) (*regression.Model, *regression.Model, error) {
		interpLookups.Add(1)
		return perf, pow, nil
	})
	m.LookupCompiled = func(bench string) (*CompiledPair, error) {
		compiledLookups.Add(1)
		if bench == "fallback" {
			return nil, nil
		}
		return pair, nil
	}
	cfg := space.Config(arch.Point{1, 1, 1, 1, 1, 1, 1})
	get := arch.PredictorGetter(cfg)
	wantB, wantW := perf.Predict(get), pow.Predict(get)
	b, w, err := m.Evaluate(cfg, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("compiled Evaluate = (%v, %v), want (%v, %v)", b, w, wantB, wantW)
	}
	// The interpreted models are resolved once alongside the pair — they
	// are the guardrail's reference and the degraded fallback — but
	// resolution is memoized per benchmark, not per prediction.
	if interpLookups.Load() != 1 {
		t.Fatalf("compiled resolution ran the interpreted lookup %d times, want 1", interpLookups.Load())
	}
	if _, _, err := m.Evaluate(cfg, "gzip"); err != nil {
		t.Fatal(err)
	}
	if interpLookups.Load() != 1 {
		t.Fatalf("re-evaluation re-ran the interpreted lookup (%d)", interpLookups.Load())
	}
	// A nil pair falls back to the interpreted models.
	if b, w, err = m.Evaluate(cfg, "fallback"); err != nil {
		t.Fatal(err)
	}
	if b != wantB || w != wantW {
		t.Fatalf("fallback Evaluate = (%v, %v), want (%v, %v)", b, w, wantB, wantW)
	}
	if interpLookups.Load() != 2 {
		t.Fatalf("fallback did not use the interpreted lookup (%d)", interpLookups.Load())
	}
}

func TestSweepCoversRangeExactlyOnce(t *testing.T) {
	ev := &countingEvaluator{}
	e := NewEngine(ev, Options{Workers: 7})
	const n = 10_001
	marks := make([]atomic.Int32, n)
	err := e.Sweep(context.Background(), n, func(lo, hi int) error {
		if lo < 0 || hi > n || lo >= hi {
			return fmt.Errorf("bad tile [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("index %d evaluated %d times", i, got)
		}
	}
	st := e.Stats()
	if st.SweptPoints != n {
		t.Fatalf("SweptPoints = %d, want %d", st.SweptPoints, n)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.Evaluations != 0 {
		t.Fatalf("sweep touched the cache/backend counters: %+v", st)
	}
}

// TestSweepRangeSubRange pins the sub-range contract: tiles carry
// absolute indices confined to [from, to), every index in the range is
// visited exactly once, and SweptPoints advances by the range size —
// not the full domain — so sharded sweeps report honest progress.
func TestSweepRangeSubRange(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 5, Tile: 300})
	const from, to, n = 3_100, 7_351, 10_000
	marks := make([]atomic.Int32, n)
	err := e.SweepRange(context.Background(), from, to, func(lo, hi int) error {
		if lo < from || hi > to || lo >= hi {
			return fmt.Errorf("tile [%d, %d) outside [%d, %d)", lo, hi, from, to)
		}
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range marks {
		want := int32(0)
		if i >= from && i < to {
			want = 1
		}
		if got := marks[i].Load(); got != want {
			t.Fatalf("index %d evaluated %d times, want %d", i, got, want)
		}
	}
	if st := e.Stats(); st.SweptPoints != to-from {
		t.Fatalf("SweptPoints = %d, want %d", st.SweptPoints, to-from)
	}
	// An empty or inverted range is a no-op, not an error.
	if err := e.SweepRange(context.Background(), 5, 5, func(lo, hi int) error {
		t.Fatal("tile for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepHonorsTileOption(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 3, Tile: 250})
	const n = 1_100 // 4 full tiles + a 100-point remainder
	var mu sync.Mutex
	var sizes []int
	marks := make([]atomic.Int32, n)
	err := e.Sweep(context.Background(), n, func(lo, hi int) error {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("index %d evaluated %d times", i, got)
		}
	}
	sort.Ints(sizes)
	if want := []int{100, 250, 250, 250, 250}; !slices.Equal(sizes, want) {
		t.Fatalf("tile sizes = %v, want %v", sizes, want)
	}
}

func TestSweepZeroAndSmall(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 4})
	if err := e.Sweep(context.Background(), 0, func(lo, hi int) error {
		t.Fatal("tile for empty sweep")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	if err := e.Sweep(context.Background(), 3, func(lo, hi int) error {
		count.Add(int64(hi - lo))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 3 {
		t.Fatalf("small sweep covered %d of 3", count.Load())
	}
}

func TestSweepErrorCancelsPromptly(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 4})
	boom := errors.New("boom")
	var tiles atomic.Int64
	err := e.Sweep(context.Background(), 1_000_000, func(lo, hi int) error {
		if tiles.Add(1) == 1 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Cancellation is observed between tiles: far fewer than the full
	// range's tile count should have run.
	total := int64(1_000_000/64 + 1)
	if got := tiles.Load(); got >= total {
		t.Fatalf("%d tiles ran after the error, no cancellation", got)
	}
}

func TestSweepRespectsContextAndClose(t *testing.T) {
	e := NewEngine(&countingEvaluator{}, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Sweep(ctx, 100, func(lo, hi int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v", err)
	}
	e.Close()
	if err := e.Sweep(context.Background(), 100, func(lo, hi int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine sweep returned %v", err)
	}
}
