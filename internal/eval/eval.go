// Package eval provides the unified evaluation layer: every
// (configuration, benchmark) → (bips, watts) query in the system — from
// the detailed simulator or from fitted regression models — is routed
// through one batched, cached, cancellable Engine. The studies, the
// training pipeline, heuristic search and the exhaustive sweep all
// consume the same service, so parallelism, memoization, de-duplication
// and instrumentation live in exactly one place.
package eval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Default guardrail sampling intervals: roughly one in N fast-path
// results is recomputed on the reference path and compared bit-exactly.
// The simulator's reference run costs about as much as the fast run, so
// 1/256 keeps overhead well under 1%; a compiled model prediction is so
// cheap that even the interpreted reference is nearly free, but 1/1024
// keeps the shared-counter traffic negligible in the sweep hot loop.
const (
	DefaultSimGuardInterval   = 256
	DefaultModelGuardInterval = 1024
)

// Request identifies one evaluation: a fully-resolved design point and
// the benchmark to run it on. Requests are comparable and serve directly
// as cache keys.
type Request struct {
	Config arch.Config
	Bench  string
}

// Result is the outcome of one evaluation.
type Result struct {
	BIPS  float64
	Watts float64
}

// Evaluator maps one (configuration, benchmark) pair to (bips, watts).
// Implementations must be safe for concurrent use; the Engine calls them
// from many goroutines.
type Evaluator interface {
	Evaluate(cfg arch.Config, bench string) (bips, watts float64, err error)
}

// Func adapts a plain function to the Evaluator interface.
type Func func(cfg arch.Config, bench string) (bips, watts float64, err error)

// Evaluate implements Evaluator.
func (f Func) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	return f(cfg, bench)
}

// RequestsFor builds one request per configuration against a single
// benchmark, preserving order.
func RequestsFor(cfgs []arch.Config, bench string) []Request {
	reqs := make([]Request, len(cfgs))
	for i, cfg := range cfgs {
		reqs[i] = Request{Config: cfg, Bench: bench}
	}
	return reqs
}

// Simulator is the detailed-simulation backend: it synthesizes (and
// memoizes) the benchmark trace, runs the cycle-accounting core model and
// derives power from the activity counts. By default runs go through the
// sim.Runner fast path — pooled scratch plus memoized warm cache/BHT
// state per (trace, geometry) — which is bit-identical to the full
// warmup path. Safe for concurrent use; traces are immutable once
// synthesized and runner state is internally synchronized.
type Simulator struct {
	// TraceLen is the synthetic trace length per benchmark.
	TraceLen int

	// DisableFastSim forces every run through sim.Run's full warmup walk
	// instead of the runner's memoized warm state. Output is
	// bit-identical either way; the switch exists for benchmarking and
	// as an escape hatch, mirroring core.Options.DisableCompile.
	DisableFastSim bool

	// synth synthesizes a trace; defaults to trace.ForBenchmark.
	// Overridable so tests can observe and block synthesis.
	synth func(bench string, n int) (*trace.Trace, error)

	// traces is an atomic copy-on-write snapshot of the benchmark→entry
	// map: the hot Evaluate path reads it with one atomic load, so
	// concurrent batch workers never serialize on a mutex for a map
	// read. mu serializes only first-touch inserts.
	mu     sync.Mutex
	traces atomic.Pointer[map[string]*traceEntry]

	// runner is the fast path shared by every run of this backend.
	runner *sim.Runner

	// guard cross-checks a sample of fast-path runs against sim.Run, the
	// reference warmup walk. The two paths are bit-identical by
	// construction, so one divergence means silent corruption: the guard
	// trips and every later run takes the reference path.
	guard *Guardrail
}

// traceEntry is one benchmark's synthesis slot: the once runs the
// synthesis exactly once however many goroutines race on the benchmark,
// without holding the Simulator lock.
type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// NewSimulator returns a simulator backend with the given trace length.
func NewSimulator(traceLen int) *Simulator {
	s := &Simulator{
		TraceLen: traceLen,
		synth:    trace.ForBenchmark,
		runner:   sim.NewRunner(),
		guard:    NewGuardrail(DefaultSimGuardInterval),
	}
	m := make(map[string]*traceEntry)
	s.traces.Store(&m)
	return s
}

// SetGuardInterval replaces the backend's guardrail with one checking
// every interval-th fast run; interval <= 0 disables checking. Call
// before handing the backend to an engine.
func (s *Simulator) SetGuardInterval(interval int64) { s.guard = NewGuardrail(interval) }

// Guard exposes the backend's guardrail (tests trip and inspect it).
func (s *Simulator) Guard() *Guardrail { return s.guard }

// GuardStats implements the guardStatser probe for engine stats.
func (s *Simulator) GuardStats() (checks, divergences int64, degraded bool) {
	return s.guard.Stats()
}

// WarmStats returns the runner's warm-state memo counters: runs that
// restored a memoized warm hierarchy (hits) versus runs that walked
// their own warmup (misses).
func (s *Simulator) WarmStats() (hits, misses int64) {
	return s.runner.WarmStats()
}

// traceFor returns the memoized trace for a benchmark, synthesizing it on
// first use. The steady-state path is one atomic load and a map read —
// no lock — so concurrent batch workers never serialize here. First
// touch of a benchmark inserts its entry by copying the map under the
// mutex; synthesis itself runs under a per-benchmark sync.Once, so
// first-touch synthesis of distinct benchmarks proceeds concurrently
// while racing callers of one benchmark still share a single synthesis.
// Failed synthesis is not memoized: the entry is dropped so a later call
// retries — with transient failures injectable at the trace.synth site,
// a sticky failure would defeat the engine's retry and poison the
// benchmark forever.
func (s *Simulator) traceFor(bench string) (*trace.Trace, error) {
	e, ok := (*s.traces.Load())[bench]
	if !ok {
		s.mu.Lock()
		m := *s.traces.Load()
		if e, ok = m[bench]; !ok {
			next := make(map[string]*traceEntry, len(m)+1)
			for k, v := range m {
				next[k] = v
			}
			e = &traceEntry{}
			next[bench] = e
			s.traces.Store(&next)
		}
		s.mu.Unlock()
	}
	e.once.Do(func() {
		if err := fault.Here("trace.synth"); err != nil {
			e.err = err
			return
		}
		e.tr, e.err = s.synth(bench, s.TraceLen)
	})
	if e.err != nil {
		// Drop the failed entry (only if the map still holds this exact
		// entry — a concurrent waiter may have dropped and replaced it
		// already) so the next caller synthesizes afresh.
		s.mu.Lock()
		m := *s.traces.Load()
		if m[bench] == e {
			next := make(map[string]*traceEntry, len(m))
			for k, v := range m {
				if k != bench {
					next[k] = v
				}
			}
			s.traces.Store(&next)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.tr, nil
}

// Evaluate implements Evaluator by detailed simulation. Runs go through
// the pooled, warm-state-memoizing fast path unless DisableFastSim is
// set or the guardrail has tripped; the two paths produce bit-identical
// results, and the guardrail recomputes roughly one in
// DefaultSimGuardInterval fast runs on the reference path to prove it
// at runtime. A divergence returns the reference numbers and routes all
// later runs down the reference path.
func (s *Simulator) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	tr, err := s.traceFor(bench)
	if err != nil {
		return 0, 0, err
	}
	if s.DisableFastSim || s.guard.Degraded() {
		res, err := sim.Run(cfg, tr)
		if err != nil {
			return 0, 0, fmt.Errorf("eval: simulating %s on %v: %w", bench, cfg, err)
		}
		return res.BIPS, power.Watts(res), nil
	}
	var res sim.Result
	if err := s.runner.RunInto(&res, cfg, tr); err != nil {
		return 0, 0, fmt.Errorf("eval: simulating %s on %v: %w", bench, cfg, err)
	}
	bips, watts := res.BIPS, power.Watts(&res)
	if fault.Active() {
		// Injection point for silent fast-path corruption: flips model a
		// bad memoized warm state or a scratch-pool bug.
		bips = fault.Flip("eval.sim.fast", bips)
		watts = fault.Flip("eval.sim.fast", watts)
	}
	if s.guard.Tick() {
		ref, err := sim.Run(cfg, tr)
		if err != nil {
			return 0, 0, fmt.Errorf("eval: guard reference for %s on %v: %w", bench, cfg, err)
		}
		refBIPS, refWatts := ref.BIPS, power.Watts(ref)
		diverged := bips != refBIPS || watts != refWatts
		s.guard.Record(diverged)
		if diverged {
			return refBIPS, refWatts, nil
		}
	}
	return bips, watts, nil
}

// Models is the regression backend: it evaluates the fitted per-benchmark
// performance and power models. Lookup resolves a benchmark to its two
// models (typically a closure over the Explorer's trained state), so the
// backend always sees the current models without copying them. When
// LookupCompiled is set and yields a pair, predictions run through the
// compiled fast path instead of the interpreted models.
type Models struct {
	Lookup func(bench string) (perf, pow *regression.Model, err error)

	// LookupCompiled, when non-nil, resolves a benchmark to its fused
	// compiled model pair. Returning (nil, nil) falls back to Lookup's
	// interpreted models for that benchmark.
	LookupCompiled func(bench string) (*CompiledPair, error)

	// last memoizes the most recent benchmark resolution: batches share a
	// benchmark (the common case for every sweep), so the lookups hoist
	// to once per batch instead of once per prediction.
	last atomic.Pointer[resolvedModels]

	// pool recycles per-goroutine scratch so a 262,500-point sweep does
	// not allocate per prediction.
	pool sync.Pool

	// guard cross-checks a sample of compiled predictions against the
	// interpreted models they were compiled from; a divergence trips it
	// and routes later predictions through the interpreted path.
	guard *Guardrail
}

// resolvedModels is one benchmark's evaluation state, resolved once and
// reused across the predictions of a batch.
type resolvedModels struct {
	bench     string
	pair      *CompiledPair     // non-nil on the compiled path
	perf, pow *regression.Model // interpreted fallback
}

// NewModels returns a regression-model backend over the lookup function.
func NewModels(lookup func(bench string) (perf, pow *regression.Model, err error)) *Models {
	m := &Models{Lookup: lookup, guard: NewGuardrail(DefaultModelGuardInterval)}
	m.pool.New = func() any { return new(PairScratch) }
	return m
}

// SetGuardInterval replaces the backend's guardrail with one checking
// every interval-th compiled prediction; interval <= 0 disables
// checking. Call before handing the backend to an engine.
func (m *Models) SetGuardInterval(interval int64) { m.guard = NewGuardrail(interval) }

// Guard exposes the backend's guardrail (tests trip and inspect it; the
// compiled sweep kernel shares it).
func (m *Models) Guard() *Guardrail { return m.guard }

// GuardStats implements the guardStatser probe for engine stats.
func (m *Models) GuardStats() (checks, divergences int64, degraded bool) {
	return m.guard.Stats()
}

// Reset drops the memoized benchmark resolution. Call it after the
// models behind Lookup/LookupCompiled change (retraining, LoadModels) so
// stale resolutions cannot serve predictions.
func (m *Models) Reset() { m.last.Store(nil) }

// resolve returns the cached resolution for bench, refreshing it on a
// benchmark switch. Failed resolutions are not cached. The interpreted
// models are always resolved, even on the compiled path: they are the
// guardrail's reference and the degraded fallback.
func (m *Models) resolve(bench string) (*resolvedModels, error) {
	if r := m.last.Load(); r != nil && r.bench == bench {
		return r, nil
	}
	r := &resolvedModels{bench: bench}
	if m.LookupCompiled != nil {
		pair, err := m.LookupCompiled(bench)
		if err != nil {
			return nil, err
		}
		r.pair = pair
	}
	perf, pow, err := m.Lookup(bench)
	if err != nil {
		return nil, err
	}
	r.perf, r.pow = perf, pow
	m.last.Store(r)
	return r, nil
}

// Evaluate implements Evaluator by model prediction: through the fused
// compiled pair when available and the guardrail untripped, otherwise
// the interpreted models. Roughly one in DefaultModelGuardInterval
// compiled predictions is recomputed on the interpreted path and
// compared bit-exactly; a divergence returns the interpreted numbers
// and routes later predictions down the interpreted path.
func (m *Models) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	r, err := m.resolve(bench)
	if err != nil {
		return 0, 0, err
	}
	s := m.pool.Get().(*PairScratch)
	var bips, watts float64
	if r.pair != nil && !m.guard.Degraded() {
		bips, watts = r.pair.EvalConfig(cfg, s)
		if fault.Active() {
			// Injection point for silent compiled-table corruption.
			bips = fault.Flip("eval.model.compiled", bips)
			watts = fault.Flip("eval.model.compiled", watts)
		}
		if m.guard.Tick() {
			refBIPS, refWatts := interpretedPredict(r, cfg, s)
			diverged := bips != refBIPS || watts != refWatts
			m.guard.Record(diverged)
			if diverged {
				bips, watts = refBIPS, refWatts
			}
		}
	} else {
		bips, watts = interpretedPredict(r, cfg, s)
	}
	m.pool.Put(s)
	return bips, watts, nil
}

// interpretedPredict predicts through the interpreted regression models
// — the reference path the compiled tables were built from.
func interpretedPredict(r *resolvedModels, cfg arch.Config, s *PairScratch) (bips, watts float64) {
	vals := arch.PredictorsInto(cfg, s.predictorVals())
	get := func(name string) float64 {
		idx := arch.PredictorIndex(name)
		if idx < 0 {
			panic("eval: unknown predictor " + name)
		}
		return vals[idx]
	}
	return r.perf.Predict(get), r.pow.Predict(get)
}
