// Package eval provides the unified evaluation layer: every
// (configuration, benchmark) → (bips, watts) query in the system — from
// the detailed simulator or from fitted regression models — is routed
// through one batched, cached, cancellable Engine. The studies, the
// training pipeline, heuristic search and the exhaustive sweep all
// consume the same service, so parallelism, memoization, de-duplication
// and instrumentation live in exactly one place.
package eval

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/power"
	"repro/internal/regression"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Request identifies one evaluation: a fully-resolved design point and
// the benchmark to run it on. Requests are comparable and serve directly
// as cache keys.
type Request struct {
	Config arch.Config
	Bench  string
}

// Result is the outcome of one evaluation.
type Result struct {
	BIPS  float64
	Watts float64
}

// Evaluator maps one (configuration, benchmark) pair to (bips, watts).
// Implementations must be safe for concurrent use; the Engine calls them
// from many goroutines.
type Evaluator interface {
	Evaluate(cfg arch.Config, bench string) (bips, watts float64, err error)
}

// Func adapts a plain function to the Evaluator interface.
type Func func(cfg arch.Config, bench string) (bips, watts float64, err error)

// Evaluate implements Evaluator.
func (f Func) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	return f(cfg, bench)
}

// RequestsFor builds one request per configuration against a single
// benchmark, preserving order.
func RequestsFor(cfgs []arch.Config, bench string) []Request {
	reqs := make([]Request, len(cfgs))
	for i, cfg := range cfgs {
		reqs[i] = Request{Config: cfg, Bench: bench}
	}
	return reqs
}

// Simulator is the detailed-simulation backend: it synthesizes (and
// memoizes) the benchmark trace, runs the cycle-accounting core model and
// derives power from the activity counts. Safe for concurrent use;
// traces are immutable once synthesized and sim.Run carries no shared
// state.
type Simulator struct {
	// TraceLen is the synthetic trace length per benchmark.
	TraceLen int

	mu     sync.Mutex
	traces map[string]*trace.Trace
}

// NewSimulator returns a simulator backend with the given trace length.
func NewSimulator(traceLen int) *Simulator {
	return &Simulator{TraceLen: traceLen, traces: make(map[string]*trace.Trace)}
}

// traceFor returns the memoized trace for a benchmark, synthesizing it on
// first use. Synthesis is deterministic, so racing goroutines would build
// identical traces; the lock makes the work happen once.
func (s *Simulator) traceFor(bench string) (*trace.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.traces[bench]; ok {
		return tr, nil
	}
	tr, err := trace.ForBenchmark(bench, s.TraceLen)
	if err != nil {
		return nil, err
	}
	s.traces[bench] = tr
	return tr, nil
}

// Evaluate implements Evaluator by detailed simulation.
func (s *Simulator) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	tr, err := s.traceFor(bench)
	if err != nil {
		return 0, 0, err
	}
	res, err := sim.Run(cfg, tr)
	if err != nil {
		return 0, 0, fmt.Errorf("eval: simulating %s on %v: %w", bench, cfg, err)
	}
	return res.BIPS, power.Watts(res), nil
}

// Models is the regression backend: it evaluates the fitted per-benchmark
// performance and power models. Lookup resolves a benchmark to its two
// models (typically a closure over the Explorer's trained state), so the
// backend always sees the current models without copying them.
type Models struct {
	Lookup func(bench string) (perf, pow *regression.Model, err error)

	// pool recycles the predictor-value buffers of the hot sweep path so
	// a 262,500-point sweep does not allocate one slice per prediction.
	pool sync.Pool
}

// NewModels returns a regression-model backend over the lookup function.
func NewModels(lookup func(bench string) (perf, pow *regression.Model, err error)) *Models {
	m := &Models{Lookup: lookup}
	m.pool.New = func() any {
		buf := make([]float64, len(arch.PredictorNames()))
		return &buf
	}
	return m
}

// Evaluate implements Evaluator by model prediction.
func (m *Models) Evaluate(cfg arch.Config, bench string) (float64, float64, error) {
	perf, pow, err := m.Lookup(bench)
	if err != nil {
		return 0, 0, err
	}
	buf := m.pool.Get().(*[]float64)
	vals := *buf
	arch.PredictorsInto(cfg, vals)
	get := func(name string) float64 {
		idx := arch.PredictorIndex(name)
		if idx < 0 {
			panic("eval: unknown predictor " + name)
		}
		return vals[idx]
	}
	bips, watts := perf.Predict(get), pow.Predict(get)
	m.pool.Put(buf)
	return bips, watts, nil
}
